"""Capture the golden-run fixtures that fence the simulator fast path.

Any PR that touches the event loop, the fabric solver, the telemetry
bus or the schedulers must leave these outputs *byte-identical*: the
paper's headline claims depend on bit-for-bit deterministic runs, so
"faster" is only acceptable when it is also "equivalent".

Two fixtures are captured, both at fixed seeds:

* ``trace_managed_s02_seed7.json`` — the Chrome trace of a fully
  traced managed run (2 MB interferer + IOShares, 0.2 s, seed 7).
  This pins the complete telemetry record stream of every layer,
  including the kernel's events-processed/queue-depth counters, so any
  change to event count, ordering or timing shows up as a byte diff.
* ``chaos_fig9_linkflap_s1_seed11.json`` — the ResilienceReport of a
  fig9 chaos run under the link-flap campaign (1.0 s, seed 11).  This
  pins the fault-injection path end to end: campaign scheduling,
  injector actuation, latency attribution and recovery metrics.
* ``service_replay_smoke_seed7.json`` — the full response log and
  digest of the ``service_smoke`` sim-mode service replay (500 seeded
  requests, seed 7).  This pins the served surface: trace synthesis,
  request validation, orchestrator serialization order and every
  world response field (the ISSUE's determinism contract).

Usage::

    PYTHONPATH=src python tools/capture_golden.py          # regenerate
    PYTHONPATH=src python -m pytest tests/test_golden_runs.py

Only regenerate after an *intentional* behaviour change, and say so in
the commit message; the paired test exists precisely to make silent
regeneration impossible to miss in review.
"""

from __future__ import annotations

import json
import pathlib
import sys

GOLDEN_DIR = pathlib.Path(__file__).resolve().parent.parent / "tests" / "golden"

TRACE_NAME = "trace_managed_s02_seed7.json"
CHAOS_NAME = "chaos_fig9_linkflap_s1_seed11.json"
SERVICE_NAME = "service_replay_smoke_seed7.json"

#: Axes of the traced golden run.
TRACE_SIM_S = 0.2
TRACE_SEED = 7

#: Axes of the chaos golden run.
CHAOS_SIM_S = 1.0
CHAOS_SEED = 11
CHAOS_CAMPAIGN = "link-flap"

#: Axes of the service-replay golden run.
SERVICE_PRESET = "service_smoke"
SERVICE_SEED = 7


def golden_trace_bytes() -> str:
    """The managed-scenario Chrome trace as canonical JSON text."""
    from repro.analysis import to_chrome_trace_json
    from repro.benchex import BenchExConfig
    from repro.experiments import run_scenario
    from repro.telemetry import TelemetryBus
    from repro.units import MiB

    bus = TelemetryBus()
    run_scenario(
        "golden-managed",
        interferer=BenchExConfig(name="interferer", buffer_bytes=2 * MiB),
        policy="ioshares",
        sim_s=TRACE_SIM_S,
        seed=TRACE_SEED,
        telemetry=bus,
    )
    return to_chrome_trace_json(bus) + "\n"


def golden_chaos_bytes() -> str:
    """The fig9 link-flap ResilienceReport as canonical JSON text."""
    from repro.experiments import run_chaos_scenario

    chaos = run_chaos_scenario(
        "fig9",
        campaign=CHAOS_CAMPAIGN,
        sim_s=CHAOS_SIM_S,
        seed=CHAOS_SEED,
    )
    return json.dumps(chaos.report.to_dict(), indent=2, sort_keys=True) + "\n"


def golden_service_bytes() -> str:
    """The service_smoke replay: digest + full response log.

    This pins the entire served surface — trace synthesis, parameter
    validation, the orchestrator's serialization order, every world
    response field and the sim backend's virtual-clock stepping.  Any
    of those drifting shows up as a digest (and log) diff.
    """
    from repro.service import run_service_replay

    result = run_service_replay(SERVICE_PRESET, seed=SERVICE_SEED)
    doc = {
        "preset": SERVICE_PRESET,
        "seed": SERVICE_SEED,
        "digest": result.digest,
        "responses": result.lines,
    }
    return json.dumps(doc, indent=2, sort_keys=True) + "\n"


def main() -> int:
    GOLDEN_DIR.mkdir(parents=True, exist_ok=True)
    for name, produce in ((TRACE_NAME, golden_trace_bytes),
                          (CHAOS_NAME, golden_chaos_bytes),
                          (SERVICE_NAME, golden_service_bytes)):
        path = GOLDEN_DIR / name
        text = produce()
        changed = not path.exists() or path.read_text() != text
        path.write_text(text)
        print(f"{'updated' if changed else 'unchanged'}: {path}")
    return 0


if __name__ == "__main__":
    sys.exit(main())
