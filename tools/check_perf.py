"""Compare a pytest-benchmark run against the committed perf baseline.

Usage::

    PYTHONPATH=src python -m pytest benchmarks/perf -q --benchmark-only \
        --benchmark-json=bench.json
    python tools/check_perf.py bench.json benchmarks/perf/baseline.json

Raw benchmark times are meaningless across machines, so the baseline
stores a *calibration* time alongside each benchmark: the seconds a
fixed pure-Python loop took on the host that recorded the baseline.
This script re-runs the same loop on the current host and scales every
baseline time by ``current_calibration / baseline_calibration`` before
comparing.  A benchmark fails the check when its best time exceeds the
scaled baseline by more than the threshold (default +25%).

To refresh the baseline after an intentional perf change::

    python tools/check_perf.py bench.json benchmarks/perf/baseline.json \
        --update
"""

from __future__ import annotations

import argparse
import json
import pathlib
import sys
import time

#: Normalized regression tolerance: fail when a benchmark is more than
#: this factor slower than the (calibration-scaled) baseline.
DEFAULT_THRESHOLD = 1.25

#: Barrier-efficiency ceilings for sharded workloads: max allowed
#: ``barriers / windows`` in a repro-bench document (``--barrier-gate``).
#: Elision should coalesce the overwhelmingly common quiet windows;
#: a ratio drifting up toward 1.0 means the sharded runtime has
#: regressed to paying one synchronization per lookahead window.
BARRIER_CEILINGS = {
    "cluster_scale_sharded": 0.15,
}

#: Checkpointing-cost ceilings (``--barrier-gate``): max allowed
#: ``meta.overhead`` (checkpointed wall / bare wall - 1) per workload.
#: Barrier checkpoints journal frame bytes already in hand, so at the
#: default cadence they should cost low single-digit percent; anything
#: above the ceiling means journaling or the atomic write path has
#: crept onto the barrier critical path.
OVERHEAD_CEILINGS = {
    "checkpoint_overhead": 0.05,
}


def calibrate(rounds: int = 3) -> float:
    """Best-of-``rounds`` process time of a fixed pure-Python workload.

    Shaped like the simulator's hot path (integer arithmetic, list
    append/pop, dict access) so the scale factor tracks interpreter and
    host speed rather than e.g. vector throughput.
    """
    best = float("inf")
    for _ in range(rounds):
        t0 = time.process_time()
        acc = 0
        stack = []
        table = {}
        for i in range(600_000):
            acc = (acc + i * i) & 0xFFFFFF
            stack.append(acc)
            if acc & 1:
                table[acc & 0x3FF] = i
            if len(stack) > 64:
                stack.pop()
        assert stack and table
        best = min(best, time.process_time() - t0)
    return best


def _best_times(bench_json: dict) -> dict:
    """{short_name: min seconds} from a pytest-benchmark JSON document."""
    out = {}
    for b in bench_json["benchmarks"]:
        # "test_perf_smoke[fabric_churn]" -> "fabric_churn"
        name = b["name"]
        if "[" in name:
            name = name[name.index("[") + 1 : name.rindex("]")]
        out[name] = float(b["stats"]["min"])
    return out


def check_barrier_efficiency(bench_doc: dict) -> list:
    """Gate sharded workloads on ``barriers / windows``.

    ``bench_doc`` is a repro-bench document (``BENCH_perf.json``
    layout).  For every benchmark named in :data:`BARRIER_CEILINGS`
    whose meta carries ``barriers`` and ``windows``, fail when the
    ratio exceeds its ceiling.  Returns the list of failure strings.
    """
    failures = []
    for name, ceiling in sorted(BARRIER_CEILINGS.items()):
        bench = bench_doc.get("benchmarks", {}).get(name)
        if bench is None:
            print(f"  {name:22s} not in this document (skipped)")
            continue
        meta = bench.get("meta", {})
        barriers = meta.get("barriers")
        windows = meta.get("windows")
        if barriers is None or windows is None:
            failures.append(
                f"{name}: meta lacks barriers/windows counts "
                "(barrier gate cannot run)"
            )
            continue
        if windows == 0:
            print(f"  {name:22s} zero-length run (no windows; skipped)")
            continue
        ratio = barriers / windows
        status = "ok" if ratio <= ceiling else "REGRESSION"
        print(
            f"  {name:22s} barriers {barriers} / windows {windows} "
            f"= {ratio:.3f}  (ceiling {ceiling})  {status}"
        )
        if ratio > ceiling:
            failures.append(
                f"{name}: barriers/windows {ratio:.3f} exceeds ceiling "
                f"{ceiling} — barrier elision has regressed"
            )
    return failures


def check_checkpoint_overhead(bench_doc: dict) -> list:
    """Gate checkpointing workloads on ``meta.overhead``.

    For every benchmark named in :data:`OVERHEAD_CEILINGS`, fail when
    the measured A/B overhead exceeds its ceiling, or when the
    checkpointed run's metrics were not bit-identical to the bare
    run's (``meta.identical``).  Returns the list of failure strings.
    """
    failures = []
    for name, ceiling in sorted(OVERHEAD_CEILINGS.items()):
        bench = bench_doc.get("benchmarks", {}).get(name)
        if bench is None:
            print(f"  {name:22s} not in this document (skipped)")
            continue
        meta = bench.get("meta", {})
        overhead = meta.get("overhead")
        if overhead is None:
            failures.append(
                f"{name}: meta lacks an overhead measurement "
                "(checkpoint gate cannot run)"
            )
            continue
        if meta.get("identical") is not True:
            failures.append(
                f"{name}: checkpointed run was not bit-identical to the "
                "bare run — journaling changed the simulation"
            )
        status = "ok" if overhead <= ceiling else "REGRESSION"
        print(
            f"  {name:22s} overhead {overhead:+.3f}  "
            f"(ceiling {ceiling})  {status}"
        )
        if overhead > ceiling:
            failures.append(
                f"{name}: checkpoint overhead {overhead:.3f} exceeds "
                f"ceiling {ceiling} — journaling has crept onto the "
                "barrier critical path"
            )
    return failures


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("current", help="pytest-benchmark --benchmark-json output")
    parser.add_argument(
        "baseline",
        nargs="?",
        default=None,
        help="committed baseline JSON (omit with --barrier-gate)",
    )
    parser.add_argument(
        "--barrier-gate",
        action="store_true",
        help="treat CURRENT as a repro-bench JSON (BENCH_perf.json "
        "layout) and gate sharded workloads on barriers/windows "
        "instead of comparing times",
    )
    parser.add_argument(
        "--threshold",
        type=float,
        default=None,
        help=f"normalized slowdown factor that fails the check "
        f"(default: baseline file's, else {DEFAULT_THRESHOLD})",
    )
    parser.add_argument(
        "--update",
        action="store_true",
        help="rewrite the baseline from the current run instead of checking",
    )
    args = parser.parse_args(argv)

    if args.barrier_gate:
        doc = json.loads(pathlib.Path(args.current).read_text())
        print("barrier-efficiency gate:")
        failures = check_barrier_efficiency(doc)
        print("checkpoint-overhead gate:")
        failures += check_checkpoint_overhead(doc)
        if failures:
            print("\nBARRIER GATE FAILED:", file=sys.stderr)
            for f in failures:
                print(f"  {f}", file=sys.stderr)
            return 1
        print("barrier gate passed")
        return 0

    if args.baseline is None:
        parser.error("baseline is required unless --barrier-gate is set")
    current = _best_times(json.loads(pathlib.Path(args.current).read_text()))
    cal = calibrate()

    baseline_path = pathlib.Path(args.baseline)
    if args.update:
        doc = {
            "calibration_s": round(cal, 4),
            "threshold": args.threshold or DEFAULT_THRESHOLD,
            "statistic": "min seconds per benchmark (pytest-benchmark)",
            "note": (
                "raw times are host-specific; check_perf.py scales them by "
                "the calibration ratio before comparing"
            ),
            "benchmarks": {k: round(v, 4) for k, v in sorted(current.items())},
        }
        baseline_path.write_text(json.dumps(doc, indent=2, sort_keys=True) + "\n")
        print(f"baseline updated: {baseline_path} (calibration {cal:.3f}s)")
        return 0

    baseline = json.loads(baseline_path.read_text())
    threshold = args.threshold or baseline.get("threshold", DEFAULT_THRESHOLD)
    factor = cal / baseline["calibration_s"]
    print(
        f"calibration: baseline {baseline['calibration_s']:.3f}s, "
        f"current {cal:.3f}s -> host factor {factor:.2f}x"
    )

    failures = []
    for name, base_s in sorted(baseline["benchmarks"].items()):
        got = current.get(name)
        if got is None:
            failures.append(f"{name}: missing from current run")
            continue
        allowed = base_s * factor * threshold
        ratio = got / (base_s * factor)
        status = "ok"
        if got > allowed:
            status = "REGRESSION"
            failures.append(
                f"{name}: {got:.3f}s vs allowed {allowed:.3f}s "
                f"({ratio:.2f}x normalized baseline)"
            )
        elif ratio < 1 / threshold:
            status = "faster (consider --update)"
        print(
            f"  {name:22s} {got:8.3f}s  baseline*factor {base_s * factor:8.3f}s "
            f" {ratio:5.2f}x  {status}"
        )

    extra = sorted(set(current) - set(baseline["benchmarks"]))
    if extra:
        print(f"  (new benchmarks not in baseline: {', '.join(extra)})")

    if failures:
        print("\nPERF CHECK FAILED:", file=sys.stderr)
        for f in failures:
            print(f"  {f}", file=sys.stderr)
        print(
            "\nIf the slowdown is intentional, refresh the baseline with "
            "--update and justify it in the commit message.",
            file=sys.stderr,
        )
        return 1
    print("perf check passed")
    return 0


if __name__ == "__main__":
    sys.exit(main())
