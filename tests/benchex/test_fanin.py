"""Fan-in (N:1) BenchEx and SRQ tests."""

import pytest

from repro.benchex import BenchExConfig, BenchExFanIn
from repro.errors import BenchmarkError, QPError
from repro.experiments import Testbed
from repro.units import SEC, KiB


def run_fanin(n_clients, sim_s=0.4, seed=3, **cfg_kwargs):
    bed = Testbed.paper_testbed(seed=seed)
    s, c = bed.node("server-host"), bed.node("client-host")
    cfg = BenchExConfig(name="fan", warmup_requests=30, **cfg_kwargs)
    fan = BenchExFanIn(bed, s, c, cfg, n_clients=n_clients)

    def deploy(env):
        yield from fan.deploy()
        fan.start()

    bed.env.process(deploy(bed.env))
    bed.env.run(until=int(sim_s * SEC))
    return bed, fan


class TestSRQ:
    def test_qp_with_srq_rejects_direct_recv(self):
        bed = Testbed.paper_testbed(seed=1)
        s = bed.node("server-host")
        dom = s.create_guest("vm")
        state = {}

        def scenario(env):
            fe = s.frontend(dom)
            ctx = yield from fe.open_context()
            cq = yield from fe.create_cq(ctx)
            srq = yield from fe.create_srq(ctx)
            qp = yield from fe.create_qp(ctx, cq, srq=srq)
            state["qp"] = qp
            state["srq"] = srq
            state["ctx"] = ctx
            state["fe"] = fe

        proc = bed.env.process(scenario(bed.env))
        bed.env.run(until=proc)

        # Direct recv posting must be refused when an SRQ is attached.
        with pytest.raises(QPError, match="SRQ"):
            state["qp"].post_recv(None)

    def test_srq_capacity_enforced(self):
        from repro.ib.srq import SharedReceiveQueue

        bed = Testbed.paper_testbed(seed=1)
        s = bed.node("server-host")
        with pytest.raises(QPError):
            SharedReceiveQueue(s.hca, 1, max_wr=0)

    def test_foreign_srq_rejected(self):
        bed = Testbed.paper_testbed(seed=1)
        s, c = bed.node("server-host"), bed.node("client-host")
        sdom, cdom = s.create_guest("s"), c.create_guest("c")
        failures = []

        def scenario(env):
            sfe, cfe = s.frontend(sdom), c.frontend(cdom)
            sctx = yield from sfe.open_context()
            cctx = yield from cfe.open_context()
            srq = yield from sfe.create_srq(sctx)
            from repro.ib import Access

            mr = yield from cfe.reg_mr(cctx, KiB, Access.full())
            try:
                yield from cctx.post_srq_recv(srq, mr)
            except QPError:
                failures.append(True)

        proc = bed.env.process(scenario(bed.env))
        bed.env.run(until=proc)
        assert failures == [True]


class TestFanIn:
    def test_single_client_matches_pair_baseline(self):
        _, fan = run_fanin(1)
        lat = fan.client_latencies_us()
        assert lat.mean() == pytest.approx(209.0, abs=6.0)

    def test_fcfs_fairness_across_clients(self):
        _, fan = run_fanin(4)
        counts = list(fan.server.served_by_qp.values())
        assert len(counts) == 4
        # Symmetric closed-loop clients get near-equal service.
        assert max(counts) - min(counts) <= 0.1 * max(counts) + 2

    def test_latency_grows_with_queueing(self):
        _, fan1 = run_fanin(1)
        _, fan2 = run_fanin(2)
        _, fan4 = run_fanin(4)
        m1 = fan1.client_latencies_us().mean()
        m2 = fan2.client_latencies_us().mean()
        m4 = fan4.client_latencies_us().mean()
        assert m1 < m2 < m4
        # Roughly linear in the number of closed-loop clients once the
        # server is the bottleneck.
        assert m4 > 2.0 * m2 * 0.8

    def test_server_throughput_saturates(self):
        bed2, fan2 = run_fanin(2)
        bed4, fan4 = run_fanin(4)
        rate2 = fan2.server.requests_served / (bed2.env.now / SEC)
        rate4 = fan4.server.requests_served / (bed4.env.now / SEC)
        # More clients than the server can use: throughput plateaus.
        assert rate4 == pytest.approx(rate2, rel=0.1)

    def test_think_time_reduces_load(self):
        """With per-client think time the server is no longer saturated
        and latency returns near base (the <10% utilization regime the
        paper's intro describes)."""
        _, busy = run_fanin(4)
        _, idle = run_fanin(4, think_time_ns=2_000_000)  # 2 ms
        assert (
            idle.client_latencies_us().mean()
            < busy.client_latencies_us().mean() * 0.6
        )

    def test_requires_at_least_one_client(self):
        bed = Testbed.paper_testbed(seed=1)
        s, c = bed.node("server-host"), bed.node("client-host")
        with pytest.raises(BenchmarkError):
            BenchExFanIn(bed, s, c, BenchExConfig(name="x"), n_clients=0)

    def test_start_before_deploy_rejected(self):
        bed = Testbed.paper_testbed(seed=1)
        s, c = bed.node("server-host"), bed.node("client-host")
        fan = BenchExFanIn(bed, s, c, BenchExConfig(name="x"), n_clients=1)
        with pytest.raises(BenchmarkError):
            fan.start()

    def test_component_records_kept(self):
        _, fan = run_fanin(2)
        assert len(fan.server.records) > 100
        for r in fan.server.records[:20]:
            assert r.total_ns == r.ptime_ns + r.ctime_ns + r.wtime_ns
