"""LatencyAgent edge cases: capacity, drops, peek."""

import numpy as np

from repro.benchex import LatencyAgent


class TestAgentCapacity:
    def test_full_ring_drops_and_counts(self):
        agent = LatencyAgent(1, capacity=3)
        for v in (1.0, 2.0, 3.0, 4.0, 5.0):
            agent.report(v)
        assert agent.dropped == 2
        assert agent.total_reported == 3
        np.testing.assert_array_equal(agent.drain(), [1.0, 2.0, 3.0])

    def test_drain_frees_capacity(self):
        agent = LatencyAgent(1, capacity=2)
        agent.report(1.0)
        agent.report(2.0)
        agent.drain()
        agent.report(3.0)
        assert agent.dropped == 0
        np.testing.assert_array_equal(agent.drain(), [3.0])

    def test_peek_does_not_drain(self):
        agent = LatencyAgent(1)
        agent.report(10.0)
        agent.report(20.0)
        n, mean = agent.peek_stats()
        assert n == 2
        assert mean == 15.0
        assert len(agent.drain()) == 2

    def test_peek_empty(self):
        n, mean = LatencyAgent(1).peek_stats()
        assert n == 0
        assert np.isnan(mean)
