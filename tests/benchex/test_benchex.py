"""BenchEx integration tests: calibration, interference, decomposition."""

import numpy as np
import pytest

from repro.benchex import (
    INTERFERER_2MB,
    BenchExConfig,
    BenchExPair,
    LatencyBreakdown,
    LatencyRecord,
    histogram_us,
    run_pairs,
)
from repro.errors import ConfigError
from repro.experiments.platform import Testbed
from repro.units import KiB


def small_run(interferer=None, n=150, seed=3, cap=None):
    bed = Testbed.paper_testbed(seed=seed)
    s, c = bed.node("server-host"), bed.node("client-host")
    cfg = BenchExConfig(name="rep", request_limit=n, warmup_requests=20)
    rep = BenchExPair(bed, s, c, cfg)
    pairs = [rep]
    if interferer is not None:
        intf = BenchExPair(bed, s, c, interferer)
        if cap is not None:
            s.hypervisor.set_cap(intf.server_dom.domid, cap)
        pairs.append(intf)
    run_pairs(bed, pairs)
    return bed, rep


class TestConfig:
    def test_defaults_valid(self):
        cfg = BenchExConfig()
        assert cfg.buffer_bytes == 64 * KiB
        assert cfg.label() == "64KB"

    def test_interferer_label(self):
        assert INTERFERER_2MB.label() == "2MB"

    @pytest.mark.parametrize(
        "kwargs",
        [
            dict(buffer_bytes=100),  # below one MTU
            dict(n_options=0),
            dict(pipeline_depth=0),
            dict(think_time_ns=-1),
            dict(request_limit=0),
            dict(warmup_requests=-1),
        ],
    )
    def test_validation(self, kwargs):
        with pytest.raises(ConfigError):
            BenchExConfig(**kwargs)


class TestBaseCalibration:
    def test_base_latency_near_209us(self):
        """§II / Fig. 1: base 64KB latency is highly stable around 209 us."""
        _, rep = small_run()
        lat = rep.server.latencies_us()
        assert lat.mean() == pytest.approx(209.0, abs=6.0)
        # "Highly stable": only the small compute jitter, no I/O noise.
        assert lat.std() < 6.0

    def test_client_and_server_latency_agree(self):
        _, rep = small_run()
        server = rep.server.latencies_us().mean()
        client = rep.client.latency_array().mean()
        # The client sees the same cycle (closed loop, depth 1).
        assert client == pytest.approx(server, rel=0.05)

    def test_component_decomposition_sums(self):
        _, rep = small_run()
        for r in rep.server.records:
            assert r.total_ns == r.ptime_ns + r.ctime_ns + r.wtime_ns

    def test_requests_all_served(self):
        _, rep = small_run(n=100)
        assert rep.client.requests_completed == 100
        # The server may still be waiting on the final RC ack when the
        # client's last response lands, hence the off-by-one slack.
        assert rep.server.requests_served >= 99
        assert len(rep.server.records) >= 100 - 20 - 1

    def test_deterministic_across_runs(self):
        _, rep1 = small_run(n=60, seed=11)
        _, rep2 = small_run(n=60, seed=11)
        np.testing.assert_array_equal(
            rep1.server.latencies_us(), rep2.server.latencies_us()
        )


class TestInterference:
    def test_interferer_inflates_latency_and_jitter(self):
        """Fig. 1: interference raises both mean and variance."""
        _, base = small_run()
        _, intf = small_run(INTERFERER_2MB)
        base_lat, intf_lat = base.server.latencies_us(), intf.server.latencies_us()
        assert intf_lat.mean() > base_lat.mean() * 1.3
        assert intf_lat.std() > base_lat.std() + 5.0

    def test_ctime_unaffected_wtime_ptime_grow(self):
        """Fig. 2: CTime is I/O independent; WTime and PTime grow."""
        _, base = small_run()
        _, intf = small_run(INTERFERER_2MB)
        b = base.server_breakdown()
        i = intf.server_breakdown()
        assert i.ctime_mean == pytest.approx(b.ctime_mean, rel=0.02)
        assert i.wtime_mean > b.wtime_mean * 1.4
        assert i.ptime_mean > b.ptime_mean * 1.4

    def test_cap_reduces_interference(self):
        """Fig. 4 mechanism: capping the interferer lowers victim latency."""
        _, uncapped = small_run(INTERFERER_2MB)
        _, capped = small_run(INTERFERER_2MB, cap=10)
        assert (
            capped.server.latencies_us().mean()
            < uncapped.server.latencies_us().mean() - 30.0
        )

    def test_same_size_collocation_mild(self):
        """§II: collocating two 64KB latency apps degrades much less
        than a 2MB interferer does."""
        peer = BenchExConfig(name="peer-64KB", buffer_bytes=64 * KiB)
        _, with_peer = small_run(peer)
        _, with_big = small_run(INTERFERER_2MB)
        assert (
            with_peer.server.latencies_us().mean()
            < with_big.server.latencies_us().mean() - 10.0
        )


class TestAgentReporting:
    def test_agent_collects_latencies(self):
        bed = Testbed.paper_testbed(seed=5)
        s, c = bed.node("server-host"), bed.node("client-host")
        cfg = BenchExConfig(name="rep", request_limit=50, warmup_requests=10)
        rep = BenchExPair(bed, s, c, cfg, with_agent=True)
        run_pairs(bed, [rep])
        assert rep.agent is not None
        assert rep.agent.total_reported in (39, 40)
        drained = rep.agent.drain()
        assert len(drained) == rep.agent.total_reported
        assert rep.agent.drain().size == 0  # drained empty after

    def test_reporting_costs_cpu(self):
        """The ~10us agent reporting cost shows up in the cycle."""
        bed1, rep1 = small_run(n=100)

        bed = Testbed.paper_testbed(seed=3)
        s, c = bed.node("server-host"), bed.node("client-host")
        cfg = BenchExConfig(name="rep", request_limit=100, warmup_requests=20)
        rep2 = BenchExPair(bed, s, c, cfg, with_agent=True)
        run_pairs(bed, [rep2])

        # The ~10us reporting overlaps the client's turnaround + request
        # wire time, so it is hidden by the asynchronous communication —
        # the effect the paper points out in SVII-B.  Server-side totals
        # shrink by up to the hidden 10us (the poll window starts later),
        # and the client's view is unchanged.
        delta = (
            rep2.server.latencies_us().mean() - rep1.server.latencies_us().mean()
        )
        assert -14.0 < delta < 4.0
        assert rep2.client.latency_array().mean() == pytest.approx(
            rep1.client.latency_array().mean(), rel=0.05
        )


class TestLatencyTools:
    def test_breakdown_empty(self):
        bd = LatencyBreakdown.from_records([])
        assert bd.n == 0
        assert np.isnan(bd.total_mean)

    def test_breakdown_values(self):
        records = [
            LatencyRecord(1, 0, 10_000, 20_000, 30_000),
            LatencyRecord(2, 0, 20_000, 20_000, 40_000),
        ]
        bd = LatencyBreakdown.from_records(records)
        assert bd.n == 2
        assert bd.ptime_mean == pytest.approx(15.0)
        assert bd.ctime_mean == pytest.approx(20.0)
        assert bd.wtime_mean == pytest.approx(35.0)
        assert bd.total_mean == pytest.approx(70.0)

    def test_histogram(self):
        bins = histogram_us([100.0, 101.0, 102.0, 150.0], bin_width_us=5.0)
        assert sum(c for _, c in bins) == 4
        assert bins[0][0] == 100.0
        assert bins[0][1] == 3

    def test_histogram_empty(self):
        assert histogram_us([]) == []
