"""Shared rig for IB-layer tests: two hosts, one guest each, connected QPs."""

import pytest

from repro.experiments.platform import Testbed
from repro.ib import Access, connect


class Rig:
    """Two guests on two hosts with open verbs contexts."""

    def __init__(self):
        self.bed = Testbed.paper_testbed(seed=7)
        self.env = self.bed.env
        self.server_node = self.bed.node("server-host")
        self.client_node = self.bed.node("client-host")
        self.server_dom = self.server_node.create_guest("server-vm")
        self.client_dom = self.client_node.create_guest("client-vm")
        self.server_fe = self.server_node.frontend(self.server_dom)
        self.client_fe = self.client_node.frontend(self.client_dom)
        self.server_ctx = None
        self.client_ctx = None

    def setup_contexts(self):
        """Process generator: open both contexts."""
        self.server_ctx = yield from self.server_fe.open_context()
        self.client_ctx = yield from self.client_fe.open_context()

    def setup_connected_qps(self, depth=1024):
        """Open contexts, create CQs and a connected QP pair."""
        yield from self.setup_contexts()
        self.server_cq = yield from self.server_fe.create_cq(self.server_ctx, depth)
        self.client_cq = yield from self.client_fe.create_cq(self.client_ctx, depth)
        self.server_qp = yield from self.server_fe.create_qp(
            self.server_ctx, self.server_cq
        )
        self.client_qp = yield from self.client_fe.create_qp(
            self.client_ctx, self.client_cq
        )
        yield from connect(
            self.server_ctx, self.server_qp, self.client_ctx, self.client_qp
        )

    def reg(self, side, nbytes, access=None):
        """Process generator: register an MR on 'server' or 'client'."""
        access = access if access is not None else Access.full()
        if side == "server":
            return (yield from self.server_fe.reg_mr(self.server_ctx, nbytes, access))
        return (yield from self.client_fe.reg_mr(self.client_ctx, nbytes, access))


@pytest.fixture
def rig():
    return Rig()
