"""Property-based tests on IB substrate invariants (hypothesis)."""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.experiments.platform import Testbed
from repro.ib import Access, WCStatus, connect
from repro.units import KiB


def build_rig(seed=1):
    bed = Testbed.paper_testbed(seed=seed)
    s, c = bed.node("server-host"), bed.node("client-host")
    sdom = s.create_guest("s")
    cdom = c.create_guest("c")
    return bed, s, c, sdom, cdom


@given(
    sizes=st.lists(
        st.integers(min_value=1, max_value=256).map(lambda k: k * KiB),
        min_size=1,
        max_size=12,
    )
)
@settings(max_examples=25, deadline=None)
def test_bytes_conserved_end_to_end(sizes):
    """Every byte posted is accounted exactly once: HCA per-domain
    counters, link byte counters, and receiver CQE byte_lens agree."""
    bed, s, c, sdom, cdom = build_rig()
    received = []

    def scenario(env):
        sfe, cfe = s.frontend(sdom), c.frontend(cdom)
        sctx = yield from sfe.open_context()
        cctx = yield from cfe.open_context()
        scq = yield from sfe.create_cq(sctx)
        ccq = yield from cfe.create_cq(cctx)
        sqp = yield from sfe.create_qp(sctx, scq)
        cqp = yield from cfe.create_qp(cctx, ccq)
        yield from connect(sctx, sqp, cctx, cqp)
        biggest = max(sizes)
        smr = yield from cfe.reg_mr(cctx, biggest, Access.full())
        rmr = yield from sfe.reg_mr(sctx, biggest, Access.full())
        for _ in sizes:
            yield from sctx.post_recv(sqp, rmr)
        for size in sizes:
            yield from cctx.post_send(cqp, smr, length=size)
        while len(received) < len(sizes):
            cqes, _ = yield from sctx.poll_cq_blocking(scq)
            received.extend(cqes)

    proc = bed.env.process(scenario(bed.env))
    bed.env.run(until=proc)

    total = sum(sizes)
    assert sum(c.byte_len for c in received) == total
    assert all(c.status is WCStatus.SUCCESS for c in received)
    # HCA accounting (sender side).
    assert c.hca.bytes_sent_by_domain[cdom.domid] == total
    # Link accounting: client tx and server rx both carried every byte.
    assert c.host.tx_link.bytes_accepted == total
    assert s.host.rx_link.bytes_accepted == total


@given(
    sizes=st.lists(
        st.integers(min_value=1, max_value=64).map(lambda k: k * KiB),
        min_size=2,
        max_size=10,
    )
)
@settings(max_examples=25, deadline=None)
def test_rc_ordering_always_fifo(sizes):
    """RC delivery order equals post order regardless of message sizes."""
    bed, s, c, sdom, cdom = build_rig()
    got = []

    def scenario(env):
        sfe, cfe = s.frontend(sdom), c.frontend(cdom)
        sctx = yield from sfe.open_context()
        cctx = yield from cfe.open_context()
        scq = yield from sfe.create_cq(sctx)
        ccq = yield from cfe.create_cq(cctx)
        sqp = yield from sfe.create_qp(sctx, scq)
        cqp = yield from cfe.create_qp(cctx, ccq)
        yield from connect(sctx, sqp, cctx, cqp)
        biggest = max(sizes)
        smr = yield from cfe.reg_mr(cctx, biggest, Access.full())
        rmr = yield from sfe.reg_mr(sctx, biggest, Access.full())
        for i in range(len(sizes)):
            yield from sctx.post_recv(sqp, rmr, wr_id=1000 + i)
        for i, size in enumerate(sizes):
            yield from cctx.post_send(cqp, smr, length=size, imm_data=i)
        while len(got) < len(sizes):
            cqes, _ = yield from sctx.poll_cq_blocking(scq)
            got.extend(cqes)

    proc = bed.env.process(scenario(bed.env))
    bed.env.run(until=proc)
    assert [c.imm_data for c in got] == list(range(len(sizes)))
    assert [c.wr_id for c in got] == [1000 + i for i in range(len(sizes))]


@given(seed=st.integers(min_value=0, max_value=1000))
@settings(max_examples=10, deadline=None)
def test_full_stack_determinism(seed):
    """Identical seeds give byte-identical latency traces end to end."""
    from repro.benchex import BenchExConfig, BenchExPair, run_pairs

    def run_once():
        bed = Testbed.paper_testbed(seed=seed)
        s, c = bed.node("server-host"), bed.node("client-host")
        pair = BenchExPair(
            bed, s, c, BenchExConfig(name="d", request_limit=40)
        )
        run_pairs(bed, [pair])
        return list(pair.server.latencies_us())

    assert run_once() == run_once()
