"""Tests for completion queues: ring semantics, events, introspectability."""

import pytest

from repro.errors import CQOverflowError
from repro.hw import AddressSpace, MachineMemory
from repro.hw.memory import Buffer
from repro.ib.cq import CQE, CompletionQueue, WCOpcode, WCStatus
from repro.sim import Environment
from repro.units import MiB


def make_cq(env, depth=8):
    aspace = AddressSpace(1, MachineMemory(MiB))
    page = Buffer(aspace, 4096, label="cq")
    return CompletionQueue(env, 1, depth, page), aspace


def cqe(n, blen=1024):
    return CQE(
        wr_id=n,
        qp_num=16,
        opcode=WCOpcode.SEND,
        status=WCStatus.SUCCESS,
        byte_len=blen,
        imm_data=None,
        timestamp_ns=0,
    )


class TestRing:
    def test_push_poll_fifo(self):
        env = Environment()
        cq, _ = make_cq(env)
        for i in range(3):
            cq.hw_push(cqe(i))
        out = cq.poll()
        assert [c.wr_id for c in out] == [0, 1, 2]
        assert cq.pending == 0

    def test_poll_respects_max_entries(self):
        env = Environment()
        cq, _ = make_cq(env)
        for i in range(5):
            cq.hw_push(cqe(i))
        assert len(cq.poll(max_entries=2)) == 2
        assert cq.pending == 3

    def test_ring_wraps(self):
        env = Environment()
        cq, _ = make_cq(env, depth=4)
        for i in range(10):
            cq.hw_push(cqe(i))
            assert cq.poll()[0].wr_id == i
        assert cq.producer_index == 10
        assert cq.consumer_index == 10

    def test_overflow_raises(self):
        env = Environment()
        cq, _ = make_cq(env, depth=2)
        cq.hw_push(cqe(0))
        cq.hw_push(cqe(1))
        with pytest.raises(CQOverflowError):
            cq.hw_push(cqe(2))

    def test_depth_validation(self):
        env = Environment()
        with pytest.raises(CQOverflowError):
            make_cq(env, depth=0)

    def test_counters(self):
        env = Environment()
        cq, _ = make_cq(env)
        cq.hw_push(cqe(0, blen=100))
        cq.hw_push(cqe(1, blen=200))
        assert cq.total_completions == 2
        assert cq.total_bytes_completed == 300


class TestArrivalEvent:
    def test_pretriggered_when_pending(self):
        env = Environment()
        cq, _ = make_cq(env)
        cq.hw_push(cqe(0))
        assert cq.arrival_event().triggered

    def test_fires_on_push(self):
        env = Environment()
        cq, _ = make_cq(env)
        woke = []

        def waiter(env):
            yield cq.arrival_event()
            woke.append(env.now)

        def pusher(env):
            yield env.timeout(100)
            cq.hw_push(cqe(0))

        env.process(waiter(env))
        env.process(pusher(env))
        env.run()
        assert woke == [100]

    def test_multiple_waiters_all_wake(self):
        env = Environment()
        cq, _ = make_cq(env)
        woke = []

        def waiter(env, tag):
            yield cq.arrival_event()
            woke.append(tag)

        env.process(waiter(env, "a"))
        env.process(waiter(env, "b"))

        def pusher(env):
            yield env.timeout(10)
            cq.hw_push(cqe(0))

        env.process(pusher(env))
        env.run()
        assert sorted(woke) == ["a", "b"]


class TestIntrospectability:
    def test_page_content_is_the_ring(self):
        env = Environment()
        cq, aspace = make_cq(env)
        frame = aspace.translate(cq.page.gpfn_start)
        assert frame.content is cq

    def test_observer_sees_producer_advance(self):
        """The IBMon observation channel: producer index via the frame."""
        env = Environment()
        cq, aspace = make_cq(env)
        frame = aspace.translate(cq.page.gpfn_start)
        observed = frame.content
        assert observed.producer_index == 0
        cq.hw_push(cqe(0))
        assert observed.producer_index == 1
