"""End-to-end verbs tests: SEND/RECV, RDMA write/read, errors, ordering."""

import pytest

from repro.errors import QPError
from repro.ib import Access, Opcode, QPState, WCOpcode, WCStatus
from repro.units import MS, SEC, US, KiB

GB_PER_S = float(1024**3)


def run(rig, gen, until=None):
    proc = rig.env.process(gen)
    if until is None:
        rig.env.run(until=proc)
    else:
        rig.env.run(until=until)
    return proc


class TestControlPath:
    def test_context_setup_costs_time(self, rig):
        run(rig, rig.setup_contexts())
        # Two round trips (hypercall + backend op each) happened.
        assert rig.env.now >= 2 * (10 * US)

    def test_qp_connection_state_machine(self, rig):
        run(rig, rig.setup_connected_qps())
        assert rig.server_qp.state is QPState.RTS
        assert rig.client_qp.state is QPState.RTS
        assert rig.server_qp.peer is rig.client_qp
        assert rig.client_qp.peer is rig.server_qp

    def test_reg_mr_via_frontend(self, rig):
        def scenario():
            yield from rig.setup_contexts()
            mr = yield from rig.reg("server", 64 * KiB)
            assert mr.nbytes == 64 * KiB
            assert mr in rig.server_ctx.mrs

        run(rig, scenario())

    def test_backend_counts_ops(self, rig):
        run(rig, rig.setup_connected_qps())
        # open x2 + cq x2 + qp x2 = 6 backend ops.
        assert rig.server_node.backend.ops_served >= 3
        assert rig.client_node.backend.ops_served >= 3


class TestSendRecv:
    def test_send_delivers_recv_completion(self, rig):
        result = {}

        def scenario():
            yield from rig.setup_connected_qps()
            smr = yield from rig.reg("client", 4 * KiB)
            rmr = yield from rig.reg("server", 4 * KiB)
            yield from rig.server_ctx.post_recv(rig.server_qp, rmr)
            t0 = rig.env.now
            yield from rig.client_ctx.post_send(rig.client_qp, smr)
            cqes, polled = yield from rig.server_ctx.poll_cq_blocking(rig.server_cq)
            result["latency"] = rig.env.now - t0
            result["cqes"] = cqes

        run(rig, scenario())
        (c,) = result["cqes"]
        assert c.opcode is WCOpcode.RECV
        assert c.status is WCStatus.SUCCESS
        assert c.byte_len == 4 * KiB
        # 4 KiB wire = ~3.8us + fixed overheads: single-digit microseconds.
        assert 3 * US < result["latency"] < 20 * US

    def test_sender_gets_send_completion_after_ack(self, rig):
        result = {}

        def scenario():
            yield from rig.setup_connected_qps()
            smr = yield from rig.reg("client", KiB)
            rmr = yield from rig.reg("server", KiB)
            yield from rig.server_ctx.post_recv(rig.server_qp, rmr)
            yield from rig.client_ctx.post_send(rig.client_qp, smr)
            cqes, _ = yield from rig.client_ctx.poll_cq_blocking(rig.client_cq)
            result["cqes"] = cqes

        run(rig, scenario())
        (c,) = result["cqes"]
        assert c.opcode is WCOpcode.SEND
        assert c.status is WCStatus.SUCCESS

    def test_rnr_send_waits_for_recv_post(self, rig):
        """SEND before any recv is posted: completes only after post_recv."""
        result = {}

        def sender():
            yield from rig.setup_connected_qps()
            smr = yield from rig.reg("client", KiB)
            yield from rig.client_ctx.post_send(rig.client_qp, smr)
            cqes, _ = yield from rig.client_ctx.poll_cq_blocking(rig.client_cq)
            result["send_done_at"] = rig.env.now

        def receiver():
            # Post the recv late.
            yield rig.env.timeout(5 * MS)
            rmr = yield from rig.reg("server", KiB)
            yield from rig.server_ctx.post_recv(rig.server_qp, rmr)
            result["recv_posted_at"] = rig.env.now

        rig.env.process(sender())
        rig.env.process(receiver())
        rig.env.run(until=50 * MS)
        assert result["send_done_at"] > result["recv_posted_at"]

    def test_send_larger_than_recv_buffer_errors(self, rig):
        result = {}

        def scenario():
            yield from rig.setup_connected_qps()
            smr = yield from rig.reg("client", 8 * KiB)
            rmr = yield from rig.reg("server", KiB)
            yield from rig.server_ctx.post_recv(rig.server_qp, rmr, length=KiB)
            yield from rig.client_ctx.post_send(rig.client_qp, smr, length=8 * KiB)
            cqes, _ = yield from rig.client_ctx.poll_cq_blocking(rig.client_cq)
            result["cqes"] = cqes

        run(rig, scenario())
        (c,) = result["cqes"]
        assert c.status is WCStatus.LOC_PROT_ERR
        assert rig.client_qp.state is QPState.ERROR

    def test_fifo_ordering_per_qp(self, rig):
        """RC guarantees in-order delivery: recv CQEs match post order."""
        result = {}

        def scenario():
            yield from rig.setup_connected_qps()
            smr = yield from rig.reg("client", KiB)
            rmr = yield from rig.reg("server", KiB)
            for i in range(5):
                yield from rig.server_ctx.post_recv(
                    rig.server_qp, rmr, wr_id=100 + i
                )
            for i in range(5):
                yield from rig.client_ctx.post_send(
                    rig.client_qp, smr, wr_id=200 + i
                )
            got = []
            while len(got) < 5:
                cqes, _ = yield from rig.server_ctx.poll_cq_blocking(
                    rig.server_cq
                )
                got.extend(cqes)
            result["order"] = [c.wr_id for c in got]

        run(rig, scenario())
        assert result["order"] == [100, 101, 102, 103, 104]


class TestRDMA:
    def test_rdma_write_silent_at_responder(self, rig):
        result = {}

        def scenario():
            yield from rig.setup_connected_qps()
            smr = yield from rig.reg("client", 4 * KiB)
            tmr = yield from rig.reg("server", 4 * KiB)
            yield from rig.client_ctx.post_send(
                rig.client_qp,
                smr,
                opcode=Opcode.RDMA_WRITE,
                remote_rkey=tmr.rkey,
            )
            cqes, _ = yield from rig.client_ctx.poll_cq_blocking(rig.client_cq)
            result["sender_cqes"] = cqes
            result["responder_pending"] = rig.server_cq.pending

        run(rig, scenario())
        assert result["sender_cqes"][0].status is WCStatus.SUCCESS
        assert result["responder_pending"] == 0

    def test_rdma_write_with_imm_generates_recv_cqe(self, rig):
        result = {}

        def scenario():
            yield from rig.setup_connected_qps()
            smr = yield from rig.reg("client", 4 * KiB)
            tmr = yield from rig.reg("server", 4 * KiB)
            yield from rig.client_ctx.post_send(
                rig.client_qp,
                smr,
                opcode=Opcode.RDMA_WRITE_WITH_IMM,
                remote_rkey=tmr.rkey,
                imm_data=0xBEEF,
            )
            cqes, _ = yield from rig.server_ctx.poll_cq_blocking(rig.server_cq)
            result["cqes"] = cqes

        run(rig, scenario())
        (c,) = result["cqes"]
        assert c.opcode is WCOpcode.RECV_RDMA_WITH_IMM
        assert c.imm_data == 0xBEEF

    def test_rdma_write_bad_rkey_fails(self, rig):
        result = {}

        def scenario():
            yield from rig.setup_connected_qps()
            smr = yield from rig.reg("client", KiB)
            yield from rig.client_ctx.post_send(
                rig.client_qp,
                smr,
                opcode=Opcode.RDMA_WRITE,
                remote_rkey=0xBAD,
            )
            cqes, _ = yield from rig.client_ctx.poll_cq_blocking(rig.client_cq)
            result["cqes"] = cqes

        run(rig, scenario())
        assert result["cqes"][0].status is WCStatus.LOC_PROT_ERR

    def test_rdma_write_without_remote_write_permission_fails(self, rig):
        result = {}

        def scenario():
            yield from rig.setup_connected_qps()
            smr = yield from rig.reg("client", KiB)
            tmr = yield from rig.reg(
                "server", KiB, access=Access.local_only() | Access.REMOTE_READ
            )
            yield from rig.client_ctx.post_send(
                rig.client_qp,
                smr,
                opcode=Opcode.RDMA_WRITE,
                remote_rkey=tmr.rkey,
            )
            cqes, _ = yield from rig.client_ctx.poll_cq_blocking(rig.client_cq)
            result["cqes"] = cqes

        run(rig, scenario())
        assert result["cqes"][0].status is WCStatus.LOC_PROT_ERR

    def test_rdma_read_pulls_data(self, rig):
        result = {}

        def scenario():
            yield from rig.setup_connected_qps()
            lmr = yield from rig.reg("client", 16 * KiB)
            rmr = yield from rig.reg("server", 16 * KiB)
            t0 = rig.env.now
            yield from rig.client_ctx.post_send(
                rig.client_qp,
                lmr,
                opcode=Opcode.RDMA_READ,
                remote_rkey=rmr.rkey,
            )
            cqes, _ = yield from rig.client_ctx.poll_cq_blocking(rig.client_cq)
            result["cqes"] = cqes
            result["latency"] = rig.env.now - t0

        run(rig, scenario())
        (c,) = result["cqes"]
        assert c.opcode is WCOpcode.RDMA_READ
        assert c.status is WCStatus.SUCCESS
        # 16 KiB wire ~15us + request oneway + overheads.
        assert result["latency"] > 15 * US


class TestThroughputAndInterference:
    def test_large_transfer_wire_time(self, rig):
        """2 MiB should take ~2ms on a 1 GiB/s link."""
        result = {}

        def scenario():
            yield from rig.setup_connected_qps()
            smr = yield from rig.reg("client", 2048 * KiB)
            rmr = yield from rig.reg("server", 2048 * KiB)
            yield from rig.server_ctx.post_recv(rig.server_qp, rmr)
            t0 = rig.env.now
            yield from rig.client_ctx.post_send(rig.client_qp, smr)
            yield from rig.server_ctx.poll_cq_blocking(rig.server_cq)
            result["latency"] = rig.env.now - t0

        run(rig, scenario())
        wire = 2048 * KiB * SEC / GB_PER_S  # ~2.0ms
        assert result["latency"] == pytest.approx(wire, rel=0.05)

    def test_per_domain_accounting(self, rig):
        def scenario():
            yield from rig.setup_connected_qps()
            smr = yield from rig.reg("client", 64 * KiB)
            rmr = yield from rig.reg("server", 64 * KiB)
            yield from rig.server_ctx.post_recv(rig.server_qp, rmr)
            yield from rig.client_ctx.post_send(rig.client_qp, smr)
            yield from rig.server_ctx.poll_cq_blocking(rig.server_cq)

        run(rig, scenario())
        hca = rig.client_node.hca
        domid = rig.client_dom.domid
        assert hca.bytes_sent_by_domain[domid] == 64 * KiB
        assert hca.mtus_sent_by_domain[domid] == 64  # 64 KiB / 1 KiB MTU


class TestQPValidation:
    def test_post_send_on_unconnected_qp(self, rig):
        failures = []

        def scenario():
            yield from rig.setup_contexts()
            cq = yield from rig.server_fe.create_cq(rig.server_ctx)
            qp = yield from rig.server_fe.create_qp(rig.server_ctx, cq)
            mr = yield from rig.reg("server", KiB)
            try:
                yield from rig.server_ctx.post_send(qp, mr)
            except QPError:
                failures.append(True)

        run(rig, scenario())
        assert failures == [True]

    def test_foreign_qp_rejected(self, rig):
        failures = []

        def scenario():
            yield from rig.setup_connected_qps()
            mr = yield from rig.reg("client", KiB)
            try:
                # Server QP via the client context.
                yield from rig.client_ctx.post_send(rig.server_qp, mr)
            except QPError:
                failures.append(True)

        run(rig, scenario())
        assert failures == [True]

    def test_send_queue_capacity_enforced(self, rig):
        failures = []

        def scenario():
            yield from rig.setup_contexts()
            cq_s = yield from rig.server_fe.create_cq(rig.server_ctx)
            cq_c = yield from rig.client_fe.create_cq(rig.client_ctx)
            qp_s = yield from rig.server_fe.create_qp(
                rig.server_ctx, cq_s, max_send_wr=2
            )
            qp_c = yield from rig.client_fe.create_qp(rig.client_ctx, cq_c)
            from repro.ib import connect

            yield from connect(rig.server_ctx, qp_s, rig.client_ctx, qp_c)
            mr = yield from rig.reg("server", 1024 * KiB)
            try:
                for _ in range(16):
                    yield from rig.server_ctx.post_send(qp_s, mr)
            except QPError as exc:
                failures.append("full" in str(exc))

        run(rig, scenario())
        assert failures == [True]
