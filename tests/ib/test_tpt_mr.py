"""Tests for memory regions and the translation & protection table."""

import pytest

from repro.errors import ProtectionFault
from repro.hw import AddressSpace, MachineMemory
from repro.hw.memory import Buffer
from repro.ib import TPT, Access
from repro.units import KiB, MiB


@pytest.fixture
def aspace():
    return AddressSpace(1, MachineMemory(64 * MiB))


@pytest.fixture
def tpt():
    return TPT()


class TestRegistration:
    def test_register_pins_pages(self, tpt, aspace):
        buf = Buffer(aspace, 64 * KiB)
        mr = tpt.register(buf, Access.full(), domid=1)
        assert all(f.pinned for f in buf.frames())
        assert mr.valid
        assert len(tpt) == 2  # lkey + rkey entries

    def test_keys_are_distinct(self, tpt, aspace):
        mr1 = tpt.register(Buffer(aspace, KiB), Access.full(), 1)
        mr2 = tpt.register(Buffer(aspace, KiB), Access.full(), 1)
        keys = {mr1.lkey, mr1.rkey, mr2.lkey, mr2.rkey}
        assert len(keys) == 4

    def test_deregister_unpins(self, tpt, aspace):
        buf = Buffer(aspace, 8 * KiB)
        mr = tpt.register(buf, Access.full(), 1)
        tpt.deregister(mr)
        assert not any(f.pinned for f in buf.frames())
        assert not mr.valid
        assert len(tpt) == 0

    def test_double_deregister_raises(self, tpt, aspace):
        mr = tpt.register(Buffer(aspace, KiB), Access.full(), 1)
        tpt.deregister(mr)
        with pytest.raises(ProtectionFault):
            tpt.deregister(mr)

    def test_iteration_deduplicates(self, tpt, aspace):
        tpt.register(Buffer(aspace, KiB), Access.full(), 1)
        tpt.register(Buffer(aspace, KiB), Access.full(), 1)
        assert len(list(tpt)) == 2


class TestLookups:
    def test_lookup_local(self, tpt, aspace):
        mr = tpt.register(Buffer(aspace, KiB), Access.local_only(), 1)
        assert tpt.lookup_local(mr.lkey) is mr

    def test_lkey_rkey_not_interchangeable(self, tpt, aspace):
        mr = tpt.register(Buffer(aspace, KiB), Access.full(), 1)
        with pytest.raises(ProtectionFault):
            tpt.lookup_local(mr.rkey)
        with pytest.raises(ProtectionFault):
            tpt.lookup_remote(mr.lkey, Access.REMOTE_WRITE)

    def test_unknown_key(self, tpt):
        with pytest.raises(ProtectionFault, match="bad lkey"):
            tpt.lookup_local(0xDEAD)

    def test_remote_permission_enforced(self, tpt, aspace):
        mr = tpt.register(Buffer(aspace, KiB), Access.local_only(), 1)
        with pytest.raises(ProtectionFault, match="lacks"):
            tpt.lookup_remote(mr.rkey, Access.REMOTE_WRITE)

    def test_remote_read_vs_write_permissions(self, tpt, aspace):
        ro = tpt.register(
            Buffer(aspace, KiB),
            Access.local_only() | Access.REMOTE_READ,
            1,
        )
        assert tpt.lookup_remote(ro.rkey, Access.REMOTE_READ) is ro
        with pytest.raises(ProtectionFault):
            tpt.lookup_remote(ro.rkey, Access.REMOTE_WRITE)


class TestRangeChecks:
    def test_in_range_ok(self, tpt, aspace):
        mr = tpt.register(Buffer(aspace, 4 * KiB), Access.full(), 1)
        mr.check_range(0, 4 * KiB)
        mr.check_range(KiB, KiB)

    def test_out_of_range_rejected(self, tpt, aspace):
        mr = tpt.register(Buffer(aspace, 4 * KiB), Access.full(), 1)
        with pytest.raises(ProtectionFault):
            mr.check_range(0, 4 * KiB + 1)
        with pytest.raises(ProtectionFault):
            mr.check_range(-1, 10)

    def test_deregistered_access_rejected(self, tpt, aspace):
        mr = tpt.register(Buffer(aspace, KiB), Access.full(), 1)
        tpt.deregister(mr)
        with pytest.raises(ProtectionFault, match="deregistered"):
            mr.check_range(0, 1)
