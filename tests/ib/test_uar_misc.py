"""Tests for UAR doorbell pages, non-blocking polls, and host paths."""

import pytest

from repro.errors import ConfigError, QPError
from repro.experiments.platform import Testbed
from repro.hw import FluidFabric, Host, path_between
from repro.ib import Access
from repro.sim import Environment
from repro.units import KiB


class TestUAR:
    def setup_ctx(self):
        bed = Testbed.paper_testbed(seed=2)
        s = bed.node("server-host")
        dom = s.create_guest("vm")
        state = {}

        def scenario(env):
            fe = s.frontend(dom)
            state["ctx"] = yield from fe.open_context()

        proc = bed.env.process(scenario(bed.env))
        bed.env.run(until=proc)
        return bed, s, dom, state["ctx"]

    def test_doorbell_counts_recorded(self):
        bed, s, dom, ctx = self.setup_ctx()
        uar = ctx.uar
        assert uar.total_doorbells() == 0
        # Ringing for an unknown QP is a hardware-level error.
        with pytest.raises(QPError, match="unknown QP"):
            uar.ring(0xDEAD)

    def test_uar_page_is_introspectable(self):
        bed, s, dom, ctx = self.setup_ctx()
        frame = dom.address_space.translate(ctx.uar.page.gpfn_start)
        assert frame.content is ctx.uar

    def test_doorbells_counted_per_qp(self):
        bed = Testbed.paper_testbed(seed=2)
        s, c = bed.node("server-host"), bed.node("client-host")
        sdom, cdom = s.create_guest("s"), c.create_guest("c")
        state = {}

        def scenario(env):
            from repro.ib import connect

            sfe, cfe = s.frontend(sdom), c.frontend(cdom)
            sctx = yield from sfe.open_context()
            cctx = yield from cfe.open_context()
            scq = yield from sfe.create_cq(sctx)
            ccq = yield from cfe.create_cq(cctx)
            sqp = yield from sfe.create_qp(sctx, scq)
            cqp = yield from cfe.create_qp(cctx, ccq)
            yield from connect(sctx, sqp, cctx, cqp)
            mr = yield from cfe.reg_mr(cctx, KiB, Access.full())
            rmr = yield from sfe.reg_mr(sctx, KiB, Access.full())
            for _ in range(3):
                yield from sctx.post_recv(sqp, rmr)
            for _ in range(3):
                yield from cctx.post_send(cqp, mr)
            state["uar"] = cctx.uar
            state["qpn"] = cqp.qp_num

        proc = bed.env.process(scenario(bed.env))
        bed.env.run(until=proc)
        assert state["uar"].doorbell_counts[state["qpn"]] == 3


class TestNonBlockingPoll:
    def test_poll_cq_empty_returns_nothing(self):
        bed = Testbed.paper_testbed(seed=2)
        s = bed.node("server-host")
        dom = s.create_guest("vm")
        result = {}

        def scenario(env):
            fe = s.frontend(dom)
            ctx = yield from fe.open_context()
            cq = yield from fe.create_cq(ctx)
            t0 = env.now
            cqes = yield from ctx.poll_cq(cq)
            result["cqes"] = cqes
            result["cost"] = env.now - t0

        proc = bed.env.process(scenario(bed.env))
        bed.env.run(until=proc)
        assert result["cqes"] == []
        # One poll check of CPU was charged.
        assert result["cost"] == s.hca.params.poll_check_cpu_ns


class TestHostPaths:
    def test_unattached_host_path_rejected(self):
        env = Environment()
        a = Host("a")
        b = Host("b")
        with pytest.raises(ConfigError):
            path_between(a, b)

    def test_loopback_uses_both_directions(self):
        env = Environment()
        fabric = FluidFabric(env)
        a = Host("a")
        a.attach_fabric(fabric, 1e9)
        path = path_between(a, a)
        assert path == [a.tx_link, a.rx_link]

    def test_host_validation(self):
        with pytest.raises(ConfigError):
            Host("bad", ncpus=0)
