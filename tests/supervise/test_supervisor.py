"""Supervised runtime: retries, quarantine, watchdogs, taint, resume.

Cell kinds are module-level so fork-started per-cell workers inherit
them (same reason as the engine tests).  The flaky kinds key off
``REPRO_SWEEP_ATTEMPT`` — the supervisor exports the attempt number
precisely so tests can inject attempt-correlated failures.
"""

import json
import os
import time

import pytest

from repro.errors import ConfigError
from repro.parallel import ResultCache, SweepJob, register_job_kind
from repro.sim import invariants
from repro.sim.invariants import GUARD_RESO_ACCOUNTING
from repro.supervise import (
    ATTEMPT_ENV,
    SupervisePolicy,
    result_digest,
    resume_sweep,
    supervised_sweep,
)

FAST = SupervisePolicy(backoff_base_s=0.001)


def _steady(job):
    return {"value": float(job.seed * 3)}


def _flaky_once(job):
    if int(os.environ.get(ATTEMPT_ENV, "1")) < 2:
        raise RuntimeError("injected first-attempt failure")
    return {"value": float(job.seed * 3)}


def _hopeless(job):
    raise RuntimeError("always fails")


def _wedged(job):
    time.sleep(60)
    return {"value": 0.0}


def _tainting(job):
    invariants.current().violation(
        GUARD_RESO_ACCOUNTING, 1, "synthetic violation", domid=job.seed
    )
    return {"value": float(job.seed)}


register_job_kind("sup-steady", _steady)
register_job_kind("sup-flaky-once", _flaky_once)
register_job_kind("sup-hopeless", _hopeless)
register_job_kind("sup-wedged", _wedged)
register_job_kind("sup-tainting", _tainting)


def _jobs(kind, n=3):
    return [SweepJob(kind, "t", s, {}) for s in range(n)]


class TestPolicy:
    def test_validation(self):
        with pytest.raises(ConfigError):
            SupervisePolicy(retries=-1)
        with pytest.raises(ConfigError):
            SupervisePolicy(timeout_s=-1)
        with pytest.raises(ConfigError):
            SupervisePolicy(heartbeat_every=0)

    def test_backoff_is_deterministic_and_grows(self):
        p = SupervisePolicy(backoff_base_s=0.1, backoff_seed=7)
        job = SweepJob("k", "n", 3, {})
        assert p.backoff_s(job, 1) == p.backoff_s(job, 1)
        assert p.backoff_s(job, 3) > p.backoff_s(job, 1)
        other = SupervisePolicy(backoff_base_s=0.1, backoff_seed=8)
        assert p.backoff_s(job, 1) != other.backoff_s(job, 1)


class TestRetryDeterminism:
    """Fail attempt 1, succeed attempt 2: the merged result must be
    indistinguishable from first-try success — serial and pooled."""

    def _reference_digests(self, tmp_path, n=3):
        ref = supervised_sweep(
            _jobs("sup-steady", n),
            run_dir=tmp_path,
            run_id="ref",
            policy=FAST,
        )
        return [
            c["digest"] for c in ref.deterministic_dict()["cells"]
        ]

    def test_serial(self, tmp_path):
        sup = supervised_sweep(
            _jobs("sup-flaky-once"),
            run_dir=tmp_path,
            run_id="serial",
            policy=SupervisePolicy(retries=1, backoff_base_s=0.001),
        )
        assert sup.complete
        assert sup.retried_attempts == 3
        assert all(c.attempts == 2 for c in sup.cells)
        digests = [
            c["digest"] for c in sup.deterministic_dict()["cells"]
        ]
        assert digests == self._reference_digests(tmp_path)

    def test_parallel_jobs_4(self, tmp_path):
        sup = supervised_sweep(
            _jobs("sup-flaky-once", 4),
            run_dir=tmp_path,
            run_id="pooled",
            workers=4,
            policy=SupervisePolicy(
                retries=1, timeout_s=60, backoff_base_s=0.001
            ),
        )
        assert sup.complete
        assert all(c.attempts == 2 for c in sup.cells)
        digests = [
            c["digest"] for c in sup.deterministic_dict()["cells"]
        ]
        assert digests == self._reference_digests(tmp_path, n=4)


class TestQuarantine:
    def test_exhausted_retries_quarantine(self, tmp_path):
        sup = supervised_sweep(
            _jobs("sup-hopeless", 2),
            run_dir=tmp_path,
            run_id="q",
            policy=SupervisePolicy(retries=2, backoff_base_s=0.001),
        )
        assert not sup.complete
        assert sup.quarantined == 2
        assert all(c.attempts == 3 for c in sup.cells)
        integrity = sup.integrity()
        assert integrity["quarantined"] == 2 and not integrity["complete"]

    def test_quarantined_cells_skip_on_resume(self, tmp_path):
        supervised_sweep(
            _jobs("sup-hopeless", 1),
            run_dir=tmp_path,
            run_id="q2",
            policy=SupervisePolicy(retries=0, backoff_base_s=0.001),
        )
        resumed = resume_sweep("q2", run_dir=tmp_path, policy=FAST)
        assert resumed.quarantined == 1
        # nothing re-ran: quarantine is terminal without the flag
        assert resumed.report.executed == 1
        assert resumed.cells[0].error is not None

    def test_retry_quarantined_gets_fresh_budget(self, tmp_path):
        supervised_sweep(
            _jobs("sup-hopeless", 1),
            run_dir=tmp_path,
            run_id="q3",
            policy=SupervisePolicy(retries=0, backoff_base_s=0.001),
        )
        resumed = resume_sweep(
            "q3",
            run_dir=tmp_path,
            retry_quarantined=True,
            policy=SupervisePolicy(retries=0, backoff_base_s=0.001),
        )
        assert resumed.quarantined == 1  # still hopeless, but it re-ran
        assert resumed.report.executed == 1


class TestWatchdogs:
    def test_timeout_kills_and_quarantines(self, tmp_path):
        t0 = time.monotonic()
        sup = supervised_sweep(
            _jobs("sup-wedged", 1),
            run_dir=tmp_path,
            run_id="to",
            policy=SupervisePolicy(
                retries=0, timeout_s=0.3, backoff_base_s=0.001
            ),
        )
        assert time.monotonic() - t0 < 10
        assert sup.quarantined == 1
        [cell] = sup.cells
        assert cell.error_code == "cell-timeout"
        assert "wall-clock" in cell.error

    def test_stall_detector_kills_silent_worker(self, tmp_path):
        sup = supervised_sweep(
            _jobs("sup-wedged", 1),
            run_dir=tmp_path,
            run_id="st",
            policy=SupervisePolicy(
                retries=0, stall_s=0.3, backoff_base_s=0.001
            ),
        )
        assert sup.quarantined == 1
        assert "stalled" in sup.cells[0].error

    def test_worker_crash_is_a_cell_error(self, tmp_path):
        def _die(job):
            os._exit(17)

        register_job_kind("sup-die", _die)
        sup = supervised_sweep(
            [SweepJob("sup-die", "t", 0, {})],
            run_dir=tmp_path,
            run_id="crash",
            policy=SupervisePolicy(
                retries=0, timeout_s=30, backoff_base_s=0.001
            ),
        )
        assert sup.quarantined == 1
        assert "died" in sup.cells[0].error


class TestTaint:
    def test_tainted_cells_marked_and_never_cached(self, tmp_path):
        cache = ResultCache(tmp_path / "cache")
        with invariants.activate("record"):
            sup = supervised_sweep(
                _jobs("sup-tainting", 2),
                run_dir=tmp_path,
                run_id="taint",
                policy=FAST,
                cache=cache,
                invariant_mode="record",
            )
        assert sup.complete  # record mode completes, honestly labelled
        assert all(c.tainted for c in sup.cells)
        assert sup.report.tainted == 2
        assert len(cache) == 0  # taint never launders through the cache
        integrity = sup.integrity()
        assert integrity["tainted"] == 2
        assert integrity["invariant_violations"] == {
            GUARD_RESO_ACCOUNTING: 2
        }

    def test_strict_mode_quarantines_violating_cells(self, tmp_path):
        sup = supervised_sweep(
            _jobs("sup-tainting", 1),
            run_dir=tmp_path,
            run_id="strict",
            policy=SupervisePolicy(retries=0, backoff_base_s=0.001),
            invariant_mode="strict",
        )
        assert sup.quarantined == 1
        assert sup.cells[0].error_code == "invariant"


class TestResume:
    def test_completed_run_resumes_byte_identical(self, tmp_path):
        sup = supervised_sweep(
            _jobs("sup-steady", 4),
            run_dir=tmp_path,
            run_id="full",
            policy=FAST,
        )
        resumed = resume_sweep("full", run_dir=tmp_path, policy=FAST)
        assert resumed.resumed == 4
        assert resumed.report.executed == 0
        a = json.dumps(sup.deterministic_dict(), sort_keys=True)
        b = json.dumps(resumed.deterministic_dict(), sort_keys=True)
        assert a == b

    def test_jobs_mismatch_is_rejected(self, tmp_path):
        supervised_sweep(
            _jobs("sup-steady", 2),
            run_dir=tmp_path,
            run_id="mm",
            policy=FAST,
        )
        with pytest.raises(ConfigError, match="mismatch"):
            supervised_sweep(
                _jobs("sup-steady", 3),
                run_dir=tmp_path,
                run_id="mm",
                resume=True,
                policy=FAST,
            )

    def test_resume_requires_run_id(self, tmp_path):
        with pytest.raises(ConfigError, match="run id"):
            supervised_sweep(
                _jobs("sup-steady", 1),
                run_dir=tmp_path,
                resume=True,
                policy=FAST,
            )


class TestCacheIntegration:
    def test_second_run_serves_cache_and_records_done(self, tmp_path):
        cache = ResultCache(tmp_path / "cache")
        supervised_sweep(
            _jobs("sup-steady", 3),
            run_dir=tmp_path,
            run_id="c1",
            policy=FAST,
            cache=cache,
        )
        sup2 = supervised_sweep(
            _jobs("sup-steady", 3),
            run_dir=tmp_path,
            run_id="c2",
            policy=FAST,
            cache=cache,
        )
        assert sup2.report.cached == 3 and sup2.report.executed == 0
        # cache hits were checkpointed too: c2 resumes entirely from
        # its own ledger even with the cache gone
        resumed = resume_sweep("c2", run_dir=tmp_path, policy=FAST)
        assert resumed.resumed == 3

    def test_digest_matches_engine_metrics(self, tmp_path):
        sup = supervised_sweep(
            _jobs("sup-steady", 1),
            run_dir=tmp_path,
            run_id="d",
            policy=FAST,
        )
        [cell] = sup.cells
        assert sup.deterministic_dict()["cells"][0]["digest"] == (
            result_digest(cell.metrics)
        )
