"""Shared cell kind for the kill-and-resume tests.

Imported both by the pytest process (to resume) and by the sacrificial
subprocess (to run the sweep that gets SIGKILLed), so the registered
kind and its metrics function are identical on both sides.
"""

import time

from repro.parallel import SweepJob, register_job_kind

KIND = "kill-slow"
#: Per-cell sleep: long enough that SIGKILL lands mid-sweep, short
#: enough that the test stays fast.
CELL_SLEEP_S = 0.15


def _slow_cell(job):
    time.sleep(CELL_SLEEP_S)
    return {"value": float(job.seed) * 2.5, "seed": float(job.seed)}


register_job_kind(KIND, _slow_cell)


def jobs(n):
    return [SweepJob(KIND, "kill", s, {}) for s in range(n)]
