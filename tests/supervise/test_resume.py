"""Kill-and-resume: SIGKILL a sweep mid-flight, resume, prove
byte-identical results against an uninterrupted run."""

import json
import os
import pathlib
import signal
import subprocess
import sys
import time

import pytest

sys.path.insert(0, str(pathlib.Path(__file__).parent))
import killhelper  # noqa: E402  (registers the cell kind in this process)

from repro.supervise import (  # noqa: E402
    DONE,
    RunManifest,
    SupervisePolicy,
    resume_sweep,
    supervised_sweep,
)

N_CELLS = 6
FAST = SupervisePolicy(backoff_base_s=0.001)

_VICTIM_SCRIPT = """
import pathlib, sys
sys.path.insert(0, {src!r})
sys.path.insert(0, {helper_dir!r})
import killhelper
from repro.supervise import SupervisePolicy, supervised_sweep

supervised_sweep(
    killhelper.jobs({n}),
    run_dir={run_dir!r},
    run_id="victim",
    policy=SupervisePolicy(backoff_base_s=0.001),
)
"""


def _count_done(manifest_path) -> int:
    try:
        text = manifest_path.read_text()
    except OSError:
        return 0
    return sum(
        1 for line in text.splitlines() if '"state":"done"' in line
    )


class TestKillAndResume:
    def test_sigkill_mid_sweep_resumes_byte_identical(self, tmp_path):
        src = str(pathlib.Path(__file__).parents[2] / "src")
        helper_dir = str(pathlib.Path(__file__).parent)
        run_dir = tmp_path / "runs"
        script = _VICTIM_SCRIPT.format(
            src=src, helper_dir=helper_dir, n=N_CELLS, run_dir=str(run_dir)
        )
        proc = subprocess.Popen([sys.executable, "-c", script])
        manifest_path = run_dir / "victim" / "manifest.jsonl"

        # Wait until at least two cells have been checkpointed, then
        # SIGKILL the whole sweep — no cleanup handlers run.
        deadline = time.monotonic() + 30
        while time.monotonic() < deadline:
            if _count_done(manifest_path) >= 2:
                break
            if proc.poll() is not None:
                pytest.fail(
                    f"victim sweep exited early (rc={proc.returncode}) "
                    f"before it could be killed"
                )
            time.sleep(0.01)
        else:
            pytest.fail("victim sweep never checkpointed two cells")
        os.kill(proc.pid, signal.SIGKILL)
        proc.wait(10)
        assert proc.returncode == -signal.SIGKILL

        done_at_kill = _count_done(manifest_path)
        assert 2 <= done_at_kill < N_CELLS, (
            f"kill landed too late ({done_at_kill}/{N_CELLS} done); "
            f"nothing left to resume"
        )

        # Resume: completed cells come from the ledger, the rest run.
        resumed = resume_sweep("victim", run_dir=run_dir, policy=FAST)
        assert resumed.complete
        assert resumed.resumed == done_at_kill
        assert resumed.report.executed == N_CELLS - done_at_kill

        # The proof: resumed output == uninterrupted output, byte for
        # byte (timing fields excluded by construction).
        reference = supervised_sweep(
            killhelper.jobs(N_CELLS),
            run_dir=run_dir,
            run_id="reference",
            policy=FAST,
        )
        a = json.dumps(resumed.deterministic_dict(), sort_keys=True)
        b = json.dumps(reference.deterministic_dict(), sort_keys=True)
        assert a == b

    def test_interrupted_attempt_replays_as_pending(self, tmp_path):
        """In-process variant: a manifest whose last record is a
        ``running`` state (exactly what SIGKILL leaves) re-runs that
        cell on resume."""
        run_dir = tmp_path / "runs"
        sup = supervised_sweep(
            killhelper.jobs(3),
            run_dir=run_dir,
            run_id="partial",
            policy=FAST,
        )
        manifest = RunManifest(run_dir / "partial" / "manifest.jsonl")
        # Forge the crash: cell 2's conclusion never made it to disk.
        lines = manifest.path.read_text().splitlines()
        kept = [
            ln
            for ln in lines
            if not ('"index":2' in ln and '"state":"done"' in ln)
        ]
        kept.append(
            json.dumps(
                {"type": "state", "index": 2, "attempt": 1, "state": "running"},
                sort_keys=True,
                separators=(",", ":"),
            )
        )
        manifest.path.write_text("\n".join(kept) + "\n")

        state = manifest.replay()
        assert state.cells[2].state == "running"

        resumed = resume_sweep("partial", run_dir=run_dir, policy=FAST)
        assert resumed.complete
        assert resumed.resumed == 2
        assert resumed.report.executed == 1
        assert resumed.cells[2].attempts == 1  # re-ran the killed attempt
        a = json.dumps(sup.deterministic_dict(), sort_keys=True)
        b = json.dumps(resumed.deterministic_dict(), sort_keys=True)
        assert a == b

    def test_resume_state_counts(self, tmp_path):
        run_dir = tmp_path / "runs"
        supervised_sweep(
            killhelper.jobs(2),
            run_dir=run_dir,
            run_id="counts",
            policy=FAST,
        )
        state = RunManifest(run_dir / "counts" / "manifest.jsonl").replay()
        assert state.counts()[DONE] == 2
        assert state.n_jobs == 2


class TestShardedCellResume:
    """Supervised sweeps of *sharded* cluster cells (``shards`` in the
    cell spec partitions each run across workers, bit-identically —
    :mod:`repro.sim.shard`) must checkpoint and resume exactly like
    serial ones, and their ledgers must be interchangeable with a
    serial sweep's."""

    SEEDS = (7, 8)

    def _jobs(self, shards):
        from repro.parallel import SweepJob

        spec = {"sim_s": 0.02}
        if shards > 1:
            spec["shards"] = shards
        return [
            SweepJob("cluster", "cluster_smoke", seed, dict(spec))
            for seed in self.SEEDS
        ]

    def test_interrupted_sharded_sweep_resumes_byte_identical(self, tmp_path):
        run_dir = tmp_path / "runs"
        sup = supervised_sweep(
            self._jobs(shards=2),
            run_dir=run_dir,
            run_id="sharded",
            policy=FAST,
        )
        assert sup.complete

        # Forge the SIGKILL: the last cell's conclusion never hit disk.
        manifest = RunManifest(run_dir / "sharded" / "manifest.jsonl")
        victim = len(self.SEEDS) - 1
        lines = manifest.path.read_text().splitlines()
        kept = [
            ln
            for ln in lines
            if not (f'"index":{victim}' in ln and '"state":"done"' in ln)
        ]
        kept.append(
            json.dumps(
                {
                    "type": "state",
                    "index": victim,
                    "attempt": 1,
                    "state": "running",
                },
                sort_keys=True,
                separators=(",", ":"),
            )
        )
        manifest.path.write_text("\n".join(kept) + "\n")

        resumed = resume_sweep(
            "sharded", run_dir=run_dir, jobs=self._jobs(shards=2), policy=FAST
        )
        assert resumed.complete
        assert resumed.resumed == victim
        assert resumed.report.executed == 1
        a = json.dumps(sup.deterministic_dict(), sort_keys=True)
        b = json.dumps(resumed.deterministic_dict(), sort_keys=True)
        assert a == b

    def test_sharded_ledger_matches_serial_ledger(self, tmp_path):
        """The deterministic projection of a sharded supervised sweep is
        byte-identical to a serial sweep of the same cells — shard count
        is an execution knob, not an input."""
        run_dir = tmp_path / "runs"
        sharded = supervised_sweep(
            self._jobs(shards=2),
            run_dir=run_dir,
            run_id="sharded-ref",
            policy=FAST,
        )
        serial = supervised_sweep(
            self._jobs(shards=1),
            run_dir=run_dir,
            run_id="serial-ref",
            policy=FAST,
        )
        a = json.dumps(sharded.deterministic_dict(), sort_keys=True)
        b = json.dumps(serial.deterministic_dict(), sort_keys=True)
        assert a == b
