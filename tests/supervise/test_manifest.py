"""Run manifest: atomic appends, replay, torn-line tolerance."""

import dataclasses
import json

import pytest

from repro.errors import CacheCorruption, ConfigError
from repro.parallel import SweepJob
from repro.supervise import (
    DONE,
    PENDING,
    QUARANTINED,
    RETRYING,
    RUNNING,
    RunManifest,
    result_digest,
)


@dataclasses.dataclass(frozen=True)
class SpecConfig:
    name: str
    depth: int = 2


def _jobs(n=3, spec=None):
    return [SweepJob("scenario", "t", s, dict(spec or {})) for s in range(n)]


def _manifest(tmp_path, jobs=None, mode="off"):
    m = RunManifest(tmp_path / "manifest.jsonl")
    m.write_header("run-1", jobs if jobs is not None else _jobs(), mode)
    return m


class TestHeaderAndReplay:
    def test_round_trip(self, tmp_path):
        m = _manifest(tmp_path, mode="record")
        state = m.replay()
        assert state.run_id == "run-1"
        assert state.invariant_mode == "record"
        assert state.n_jobs == 3
        assert [j.seed for j in state.jobs] == [0, 1, 2]
        assert state.counts()[PENDING] == 3

    def test_jobs_with_dataclass_specs_rebuild(self, tmp_path):
        jobs = [
            SweepJob("scenario", "t", 0, {"cfg": SpecConfig("a", depth=5)})
        ]
        m = _manifest(tmp_path, jobs=jobs)
        [job] = m.replay().jobs
        assert job.spec["cfg"] == SpecConfig("a", depth=5)

    def test_uncacheable_spec_stored_as_null(self, tmp_path):
        jobs = [SweepJob("scenario", "t", 0, {"fn": lambda: 1})]
        m = _manifest(tmp_path, jobs=jobs)
        assert m.replay().jobs == [None]

    def test_existing_manifest_refuses_fresh_header(self, tmp_path):
        m = _manifest(tmp_path)
        with pytest.raises(ConfigError, match="already exists"):
            m.write_header("run-1", _jobs(), "off")

    def test_missing_manifest_raises_config_error(self, tmp_path):
        with pytest.raises(ConfigError, match="cannot read"):
            RunManifest(tmp_path / "nope.jsonl").replay()


class TestStateMachine:
    def test_done_record_carries_metrics_and_digest(self, tmp_path):
        m = _manifest(tmp_path)
        metrics = {"total_mean": 123.456, "requests": 10.0}
        m.record_running(0, 1, pid=42)
        digest = m.record_done(0, 1, metrics)
        assert digest == result_digest(metrics)
        cell = m.replay().cells[0]
        assert cell.state == DONE
        assert cell.metrics == metrics
        assert cell.digest == digest
        assert not cell.tainted

    def test_retry_then_quarantine_folding(self, tmp_path):
        m = _manifest(tmp_path)
        m.record_running(1, 1)
        m.record_failure(1, 1, "RuntimeError: boom\ntrace", final=False)
        m.record_running(1, 2)
        m.record_failure(
            1, 2, "CellTimeout: stalled", error_code="cell-timeout", final=True
        )
        cell = m.replay().cells[1]
        assert cell.state == QUARANTINED
        assert cell.attempts == 2
        assert cell.error == "CellTimeout: stalled"
        assert cell.error_code == "cell-timeout"

    def test_intermediate_states_replay_as_is(self, tmp_path):
        m = _manifest(tmp_path)
        m.record_running(0, 1)
        m.record_failure(2, 1, "x", final=False)
        state = m.replay()
        assert state.cells[0].state == RUNNING
        assert state.cells[2].state == RETRYING
        counts = state.counts()
        assert counts[RUNNING] == 1 and counts[RETRYING] == 1
        assert counts[PENDING] == 1

    def test_done_after_retry_clears_error(self, tmp_path):
        m = _manifest(tmp_path)
        m.record_failure(0, 1, "boom", final=False)
        m.record_done(0, 2, {"x": 1.0})
        cell = m.replay().cells[0]
        assert cell.state == DONE and cell.error is None

    def test_tainted_done_record(self, tmp_path):
        m = _manifest(tmp_path)
        violations = [{"guard": "resex.reso_accounting", "ts_ns": 5}]
        m.record_done(0, 1, {"x": 1.0}, tainted=True, violations=violations)
        cell = m.replay().cells[0]
        assert cell.tainted
        assert cell.violations == violations


class TestCrashTolerance:
    def test_torn_trailing_line_is_skipped(self, tmp_path):
        m = _manifest(tmp_path)
        m.record_done(0, 1, {"x": 1.0})
        with open(m.path, "a", encoding="utf-8") as fh:
            fh.write('{"type": "state", "index": 1, "att')  # SIGKILL here
        state = m.replay()
        assert state.skipped_lines == 1
        assert state.cells[0].state == DONE
        assert 1 not in state.cells  # the torn record never happened

    def test_mid_file_damage_is_corruption(self, tmp_path):
        m = _manifest(tmp_path)
        m.record_done(0, 1, {"x": 1.0})
        lines = m.path.read_text().splitlines()
        lines[1] = lines[1][:10]  # damage an interior record
        m.path.write_text("\n".join(lines) + "\n")
        with pytest.raises(CacheCorruption):
            m.replay()

    def test_wrong_schema_is_corruption(self, tmp_path):
        path = tmp_path / "manifest.jsonl"
        path.write_text(
            json.dumps({"type": "run", "schema": "other/9", "jobs": 0}) + "\n"
        )
        with pytest.raises(CacheCorruption, match="schema"):
            RunManifest(path).replay()

    def test_unknown_record_types_are_ignored(self, tmp_path):
        m = _manifest(tmp_path)
        with open(m.path, "a", encoding="utf-8") as fh:
            fh.write(json.dumps({"type": "note", "text": "future"}) + "\n")
        m.record_done(0, 1, {"x": 1.0})
        assert m.replay().cells[0].state == DONE


class TestDigest:
    def test_digest_is_order_insensitive_and_value_exact(self):
        a = result_digest({"x": 1.5, "y": float("inf")})
        b = result_digest({"y": float("inf"), "x": 1.5})
        assert a == b
        assert a != result_digest({"x": 1.5000000001, "y": float("inf")})
