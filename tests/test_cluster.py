"""Tests for the cluster-scale scenario layer (repro.experiments.cluster)."""

import json

import pytest

from repro.cli import main
from repro.errors import ConfigError
from repro.experiments.cluster import (
    CLUSTER_SPECS,
    ClusterSpec,
    build_cluster,
    cluster_spec,
    run_cluster,
)
from repro.parallel import SweepJob, run_sweep
from repro.sim import invariants

#: A deliberately tiny spec so most tests run in well under a second.
TINY = ClusterSpec(
    name="tiny",
    racks=2, hosts_per_rack=2, spines=1,
    vms_per_host=2, n_flows=40, sim_s=0.02,
)


class TestSpecs:
    def test_presets_registered(self):
        assert {"cluster_smoke", "cluster_scale", "cluster_fat_tree"} <= set(
            CLUSTER_SPECS
        )
        scale = cluster_spec("cluster_scale")
        assert scale.n_hosts == 256
        assert scale.n_vms == 2048
        assert scale.n_flows == 2000

    def test_unknown_preset(self):
        with pytest.raises(ConfigError, match="unknown cluster preset"):
            cluster_spec("nope")

    def test_validation(self):
        with pytest.raises(ConfigError, match="unknown topology"):
            ClusterSpec(name="x", topology="torus")
        with pytest.raises(ConfigError, match="at least two racks"):
            ClusterSpec(name="x", racks=1)
        with pytest.raises(ConfigError, match="intra_rack_frac"):
            ClusterSpec(name="x", intra_rack_frac=1.5)
        with pytest.raises(ConfigError, match="flow_bytes"):
            ClusterSpec(name="x", flow_bytes_min=0)
        with pytest.raises(ConfigError, match="cross_rack_latency_ns"):
            ClusterSpec(name="x", cross_rack_latency_ns=0)
        with pytest.raises(ConfigError, match="chaos_flaps"):
            ClusterSpec(name="x", chaos_flaps=-1)
        with pytest.raises(ConfigError, match="hosts per rack"):
            ClusterSpec(name="x", hosts_per_rack=1, vms_per_host=1)
        with pytest.raises(ConfigError, match="relay_epoch_ns"):
            ClusterSpec(name="x", relay_epoch_ns=0)

    def test_send_horizon_promises_epoch_boundaries(self):
        """The elision contract: a quiet world's earliest possible
        cross-domain send is the next relay epoch boundary, and an
        armed egress queue pulls the promise back to its departure."""
        from repro.experiments.cluster import ClusterWorld

        spec = cluster_spec("cluster_smoke")
        world = ClusterWorld(spec, seed=7)
        epoch = spec.relay_epoch_ns
        # Mailbox is wired to the model promise.
        assert world.mailbox.horizon_fn is not None
        assert world._send_horizon() == epoch  # quiet at t=0
        # An armed departure earlier than the idle bound wins.
        world._egress[epoch] = [(0, 1, "ping", ())]
        assert world._send_horizon() == epoch
        world._egress.clear()
        horizon, covers = world.mailbox.send_horizon()
        assert horizon >= epoch
        assert covers is True

    def test_fat_tree_shape(self):
        spec = cluster_spec("cluster_fat_tree")
        assert spec.n_hosts == 128  # k=8 -> k^3/4
        assert spec.n_racks == 32   # one rack per edge switch


class TestRun:
    def test_tiny_cluster_end_to_end(self):
        with invariants.activate("record") as monitor:
            result = run_cluster(TINY, seed=3)
        assert not monitor.tainted, monitor.violations
        m = result.metrics()
        assert m["hosts"] == 4.0
        assert m["vms"] == 8.0
        assert m["flows_completed"] > 0
        assert m["flow_p99_us"] > 0
        # Per-rack controllers synced prices over the fabric.
        assert m["federation_syncs"] > 0
        # The reporting pair produced real monitored traffic.
        assert m["reporting_p50_us"] > 0
        # Reallocation stayed component-local for a healthy fraction
        # of solves (disjoint intra-rack components exist by design).
        assert 0.0 < m["solver_component_frac"] <= 1.0
        assert m["solver_max_component"] >= 2

    def test_deterministic_across_runs(self):
        m1 = run_cluster(TINY, seed=5).metrics()
        m2 = run_cluster(TINY, seed=5).metrics()
        assert m1 == m2

    def test_seed_changes_flows(self):
        r1 = run_cluster(TINY, seed=1)
        r2 = run_cluster(TINY, seed=2)
        assert [f.label for f in r1.flows] != [f.label for f in r2.flows]

    def test_flows_respect_rack_mix(self):
        spec = ClusterSpec(
            name="mix", racks=2, hosts_per_rack=2, spines=1,
            vms_per_host=1, n_flows=120, sim_s=0.02,
            intra_rack_frac=0.0, with_resex=False,
        )
        result = run_cluster(spec, seed=3)
        assert all(f.cross_rack for f in result.flows)

    def test_without_resex(self):
        spec = ClusterSpec(
            name="bare", racks=2, hosts_per_rack=1, spines=1,
            vms_per_host=1, n_flows=10, sim_s=0.01, with_resex=False,
        )
        setup = build_cluster(spec, seed=3)
        assert setup.federation is None and not setup.controllers
        m = setup.execute().metrics()
        assert m["federation_syncs"] == 0.0
        assert "reporting_p50_us" not in m

    def test_rack_head_wiring(self):
        setup = build_cluster(TINY, seed=3)
        assert len(setup.rack_heads) == 2
        assert len(setup.controllers) == 2
        assert setup.federation is not None
        assert len(setup.federation.racks) == 2
        # Rack heads host the controllers, in rack order.
        for head, ctl in zip(setup.rack_heads, setup.controllers):
            assert ctl.node is head


class TestSweepIntegration:
    def test_cluster_cells_are_cacheable(self, tmp_path):
        cells = [SweepJob("cluster", "cluster_smoke", 7, {"sim_s": 0.02})]
        cold = run_sweep(cells, workers=1, cache=str(tmp_path))
        warm = run_sweep(cells, workers=1, cache=str(tmp_path))
        assert cold.report.cached == 0
        assert warm.report.cached == 1
        assert warm.cells[0].metrics == cold.cells[0].metrics
        assert cold.cells[0].metrics["hosts"] == 16.0

    def test_run_cluster_set(self):
        from repro.experiments import run_cluster_set

        results, report = run_cluster_set(
            ["cluster_smoke"], seed=7, sim_s=0.02
        )
        assert set(results) == {"cluster_smoke"}
        assert results["cluster_smoke"]["flows_completed"] >= 0
        assert report.executed == 1 and report.errors == 0

    def test_run_cluster_set_unknown_name(self):
        from repro.experiments import run_cluster_set

        with pytest.raises(ConfigError, match="unknown cluster presets"):
            run_cluster_set(["bogus"])


class TestClusterCommand:
    def test_list(self, capsys):
        assert main(["cluster", "--list"]) == 0
        out = capsys.readouterr().out
        assert "cluster_scale" in out and "leaf-spine" in out

    def test_json_run_with_invariants(self, capsys):
        code = main(
            ["cluster", "cluster_smoke", "--sim-s", "0.02",
             "--invariants", "record", "--json"]
        )
        assert code == 0
        doc = json.loads(capsys.readouterr().out)
        assert doc["tainted"] is False
        assert doc["metrics"]["hosts"] == 16.0

    def test_unknown_preset_is_clean_error(self, capsys):
        assert main(["cluster", "bogus"]) != 0

    def test_sharded_run_reports_matching_digest(self, capsys):
        """--shards is an execution knob: the JSON doc carries shard
        stats but the digest equals the serial run's."""
        base = ["cluster", "cluster_smoke", "--sim-s", "0.02", "--json"]
        assert main(base) == 0
        serial = json.loads(capsys.readouterr().out)
        assert main(base + ["--shards", "2", "--shard-backend", "inline"]) == 0
        sharded = json.loads(capsys.readouterr().out)
        assert sharded["shards"] == 2
        assert sharded["shard_stats"]["backend"] == "inline"
        assert sharded["digest"] == serial["digest"]
        assert sharded["metrics"] == serial["metrics"]

    def test_kill_worker_recovers_to_serial_digest(self, capsys, tmp_path):
        """The CI recovery-smoke recipe in miniature: SIGKILL a fork
        worker mid-run, recover, match the serial digest; then resume
        the same cell from its on-disk checkpoint."""
        base = ["cluster", "cluster_smoke", "--sim-s", "0.02", "--json"]
        assert main(base) == 0
        serial = json.loads(capsys.readouterr().out)
        ckpt = str(tmp_path / "ckpt")
        killed = base + [
            "--shards", "2", "--shard-backend", "fork",
            "--checkpoint-dir", ckpt, "--kill-worker", "1@2",
        ]
        assert main(killed) == 0
        recovered = json.loads(capsys.readouterr().out)
        assert recovered["shard_stats"]["respawns"] == 1
        assert recovered["digest"] == serial["digest"]
        restored = base + [
            "--shards", "2", "--shard-backend", "fork",
            "--checkpoint-dir", ckpt, "--restore",
        ]
        assert main(restored) == 0
        resumed = json.loads(capsys.readouterr().out)
        assert resumed["digest"] == serial["digest"]

    def test_bad_kill_worker_spec_is_clean_error(self, capsys):
        rc = main(
            ["cluster", "cluster_smoke", "--sim-s", "0.02",
             "--shards", "2", "--shard-backend", "fork",
             "--kill-worker", "nonsense"]
        )
        assert rc != 0
        assert "SHARD@BARRIER" in capsys.readouterr().err
