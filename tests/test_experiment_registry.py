"""Registry and rendering sanity for the experiment harness (no sims)."""


from repro.experiments import ALL_FIGURES, FigureResult, scale_factor
from repro.experiments.ablations import ALL_ABLATIONS


class TestRegistries:
    def test_every_paper_figure_has_an_experiment(self):
        expected = {f"fig{i}" for i in range(1, 10)} | {"headline"}
        assert set(ALL_FIGURES) == expected

    def test_ablations_cover_design_doc(self):
        expected = {
            "depletion", "weights", "completion", "sampling", "reaction",
            "linkmodel", "fanin", "actuators", "federation",
        }
        assert set(ALL_ABLATIONS) == expected

    def test_all_experiments_documented(self):
        for registry in (ALL_FIGURES, ALL_ABLATIONS):
            for name, fn in registry.items():
                assert fn.__doc__, f"{name} lacks a docstring"

    def test_all_experiments_accept_seed(self):
        import inspect

        for registry in (ALL_FIGURES, ALL_ABLATIONS):
            for name, fn in registry.items():
                assert "seed" in inspect.signature(fn).parameters, name


class TestScaleFactor:
    def test_default_fast(self, monkeypatch):
        monkeypatch.delenv("REPRO_SCALE", raising=False)
        assert scale_factor() == 1.0

    def test_full(self, monkeypatch):
        monkeypatch.setenv("REPRO_SCALE", "full")
        assert scale_factor() == 4.0

    def test_unknown_value_falls_back_to_fast(self, monkeypatch):
        monkeypatch.setenv("REPRO_SCALE", "warp9")
        assert scale_factor() == 1.0


class TestFigureResult:
    def make(self):
        return FigureResult(
            figure="Fig.T",
            title="test figure",
            headers=["a", "b"],
            rows=[["r1", 1.0], ["r2", 2.0]],
            notes="a note",
        )

    def test_render_contains_everything(self):
        text = self.make().render()
        assert "Fig.T: test figure" in text
        assert "r1" in text and "r2" in text
        assert "a note" in text

    def test_render_without_notes(self):
        fig = self.make()
        fig.notes = ""
        assert fig.render().count("\n") >= 3
