"""Multi-victim scenarios: two latency-sensitive VMs plus one interferer.

Regression tests for the mutual-blame death spiral: when several
managed victims violate their SLAs simultaneously, they must attribute
the congestion to the heavy sender, never to each other (the Fig. 8
equal-I/O fairness property, generalized)."""

import numpy as np

from repro.benchex import INTERFERER_2MB, BenchExConfig, BenchExPair, run_pairs
from repro.experiments import Testbed
from repro.resex import IOShares, LatencySLA, ResExController
from repro.units import SEC

SLA = LatencySLA(base_mean_us=209.0, base_std_us=3.0, threshold_pct=10.0)


def run_two_victims(policy, sim_s=1.5, seed=13, with_interferer=True):
    bed = Testbed.paper_testbed(seed=seed)
    s, c = bed.node("server-host"), bed.node("client-host")
    victims = [
        BenchExPair(
            bed, s, c,
            BenchExConfig(name=f"vic{i}", warmup_requests=50),
            with_agent=policy is not None,
        )
        for i in range(2)
    ]
    pairs = list(victims)
    intf = None
    if with_interferer:
        intf = BenchExPair(bed, s, c, INTERFERER_2MB)
        pairs.append(intf)
    ctl = None
    if policy is not None:
        ctl = ResExController(s, policy)
        for v in victims:
            ctl.monitor(v.server_dom, agent=v.agent, sla=SLA)
        if intf is not None:
            ctl.monitor(intf.server_dom)
        ctl.start()
    run_pairs(bed, pairs, until_ns=int(sim_s * SEC))
    return victims, intf, ctl


class TestTwoVictimsOneInterferer:
    def test_both_victims_protected(self):
        unmanaged, _, _ = run_two_victims(None)
        managed, _, _ = run_two_victims(IOShares())
        for i in range(2):
            u = unmanaged[i].server.latencies_us().mean()
            m = managed[i].server.latencies_us().mean()
            assert m < u - 30.0, f"victim {i} not protected: {u} -> {m}"

    def test_victims_never_blame_each_other(self):
        victims, intf, ctl = run_two_victims(IOShares())
        for v in victims:
            tag = f"resex.dom{v.server_dom.domid}"
            rates = ctl.probes.series[f"{tag}.rate"].values
            caps = ctl.probes.series[f"{tag}.cap"].values
            assert rates.max() == 1.0, "victim was congestion-priced"
            assert caps.min() == 100, "victim was capped"

    def test_interferer_takes_all_the_blame(self):
        victims, intf, ctl = run_two_victims(IOShares())
        tag = f"resex.dom{intf.server_dom.domid}"
        assert ctl.probes.series[f"{tag}.rate"].values.max() > 1.0
        assert ctl.probes.series[f"{tag}.cap"].values.min() < 20

    def test_no_death_spiral_without_interferer(self):
        """Two victims alone: mutual fluid interference keeps both above
        the SLA sometimes, but neither should be throttled — latency must
        stay bounded (the spiral produced ~10ms latencies)."""
        victims, _, ctl = run_two_victims(IOShares(), with_interferer=False)
        for v in victims:
            lat = v.server.latencies_us()
            assert lat.mean() < 300.0
            assert np.percentile(lat, 99) < 450.0
            tag = f"resex.dom{v.server_dom.domid}"
            assert ctl.probes.series[f"{tag}.cap"].values.min() == 100
