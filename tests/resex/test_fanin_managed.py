"""Fan-in server under ResEx management (integration)."""


from repro.benchex import INTERFERER_2MB, BenchExConfig, BenchExFanIn, BenchExPair
from repro.experiments import Testbed
from repro.resex import IOShares, LatencySLA, ResExController
from repro.units import SEC


def run_fanin_vs_bulk(managed, seed=9, sim_s=1.2):
    bed = Testbed.paper_testbed(seed=seed)
    s, c = bed.node("server-host"), bed.node("client-host")
    fan = BenchExFanIn(
        bed, s, c,
        BenchExConfig(name="fan", warmup_requests=30),
        n_clients=2,
        with_agent=managed,
    )
    bulk = BenchExPair(bed, s, c, INTERFERER_2MB)
    if managed:
        ctl = ResExController(s, IOShares())
        # Server-side service time at 2-client saturation is ~147us.
        ctl.monitor(
            fan.server_dom,
            agent=fan.agent,
            sla=LatencySLA(base_mean_us=147.0, base_std_us=3.0),
        )
        ctl.monitor(bulk.server_dom)
        ctl.start()

    def deploy(env):
        yield from fan.deploy()
        yield from bulk.deploy()
        fan.start()
        bulk.start()

    bed.env.process(deploy(bed.env))
    bed.env.run(until=int(sim_s * SEC))
    return fan


class TestManagedFanIn:
    def test_resex_protects_the_fanin_server(self):
        unmanaged = run_fanin_vs_bulk(False)
        managed = run_fanin_vs_bulk(True)
        u = unmanaged.client_latencies_us().mean()
        m = managed.client_latencies_us().mean()
        assert m < u - 40.0

    def test_agent_reports_from_fanin_server(self):
        managed = run_fanin_vs_bulk(True)
        assert managed.agent is not None
        assert managed.agent.total_reported > 100

    def test_fairness_preserved_under_management(self):
        managed = run_fanin_vs_bulk(True)
        counts = list(managed.server.served_by_qp.values())
        assert max(counts) - min(counts) <= 0.15 * max(counts) + 2
