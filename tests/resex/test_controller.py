"""Integration tests: the full ResEx control loop over live workloads."""

import numpy as np
import pytest

from repro.benchex import INTERFERER_2MB, BenchExConfig, BenchExPair, run_pairs
from repro.errors import PricingError
from repro.experiments.platform import Testbed
from repro.resex import (
    FreeMarket,
    IOShares,
    LatencySLA,
    NoOpPolicy,
    ResExController,
    StaticRatio,
)
from repro.units import SEC

SLA = LatencySLA(base_mean_us=209.0, base_std_us=3.0, threshold_pct=10.0)


def scenario(policy, sim_s=1.5, seed=2, with_interferer=True):
    """Victim + optional 2MB interferer under the given policy."""
    bed = Testbed.paper_testbed(seed=seed)
    s, c = bed.node("server-host"), bed.node("client-host")
    rep = BenchExPair(
        bed, s, c, BenchExConfig(name="rep", warmup_requests=100), with_agent=True
    )
    pairs = [rep]
    intf = None
    if with_interferer:
        intf = BenchExPair(bed, s, c, INTERFERER_2MB)
        pairs.append(intf)
    ctl = None
    if policy is not None:
        ctl = ResExController(s, policy)
        ctl.monitor(rep.server_dom, agent=rep.agent, sla=SLA)
        if intf is not None:
            ctl.monitor(intf.server_dom)
        ctl.start()
    run_pairs(bed, pairs, until_ns=int(sim_s * SEC))
    return bed, rep, intf, ctl


class TestControllerMechanics:
    def test_requires_vms(self):
        bed = Testbed.paper_testbed(seed=1)
        ctl = ResExController(bed.node("server-host"), NoOpPolicy())
        with pytest.raises(PricingError):
            ctl.start()

    def test_agent_requires_sla(self):
        bed = Testbed.paper_testbed(seed=1)
        s = bed.node("server-host")
        dom = s.create_guest("vm")
        from repro.benchex.reporting import LatencyAgent

        ctl = ResExController(s, NoOpPolicy())
        with pytest.raises(PricingError, match="SLA"):
            ctl.monitor(dom, agent=LatencyAgent(dom.domid))

    def test_duplicate_monitor_rejected(self):
        bed = Testbed.paper_testbed(seed=1)
        s = bed.node("server-host")
        dom = s.create_guest("vm")
        ctl = ResExController(s, NoOpPolicy())
        ctl.monitor(dom)
        with pytest.raises(PricingError, match="already"):
            ctl.monitor(dom)

    def test_no_monitor_after_start(self):
        bed = Testbed.paper_testbed(seed=1)
        s = bed.node("server-host")
        ctl = ResExController(s, NoOpPolicy())
        ctl.monitor(s.create_guest("vm1"))
        ctl.start()
        with pytest.raises(PricingError, match="after"):
            ctl.monitor(s.create_guest("vm2"))

    def test_interval_and_epoch_cadence(self):
        _, _, _, ctl = scenario(NoOpPolicy(), sim_s=2.1)
        # ~2100 intervals and 2 epochs in 2.1 s.
        assert ctl.intervals_run == pytest.approx(2100, abs=10)
        assert ctl.epochs_run == 2

    def test_accounts_replenish_each_epoch(self):
        _, _, intf, ctl = scenario(FreeMarket(), sim_s=2.2)
        acc = ctl.vm_by_domid(intf.server_dom.domid).account
        assert acc.epochs_replenished == 2

    def test_probes_recorded(self):
        _, rep, intf, ctl = scenario(NoOpPolicy(), sim_s=1.2)
        for dom in (rep.server_dom, intf.server_dom):
            caps = ctl.probes.series[f"resex.dom{dom.domid}.cap"]
            assert len(caps) == ctl.intervals_run


class TestFreeMarketBehaviour:
    def test_interferer_account_depletes(self):
        """Fig. 6: the 2MB VM burns its Resos well before the epoch ends."""
        _, _, intf, ctl = scenario(FreeMarket(), sim_s=1.0)
        balances = ctl.probes.series[
            f"resex.dom{intf.server_dom.domid}.resos"
        ].values
        assert balances.min() < balances.max() * 0.05

    def test_victim_account_survives(self):
        """The 64KB VM's demand fits its allocation: no depletion capping."""
        _, rep, _, ctl = scenario(FreeMarket(), sim_s=1.0)
        caps = ctl.probes.series[f"resex.dom{rep.server_dom.domid}.cap"].values
        assert caps.min() == 100

    def test_rated_capping_walks_down_gradually(self):
        """Fig. 5/6: the cap steps down by the decrement, no cliff to 0."""
        _, _, intf, ctl = scenario(FreeMarket(), sim_s=1.0)
        caps = ctl.probes.series[f"resex.dom{intf.server_dom.domid}.cap"].values
        drops = np.diff(caps)
        assert drops.min() >= -10  # never falls faster than the decrement
        assert caps.min() == 10  # reaches the floor, not zero

    def test_cap_restored_at_epoch(self):
        _, _, intf, ctl = scenario(FreeMarket(), sim_s=2.2)
        caps = ctl.probes.series[f"resex.dom{intf.server_dom.domid}.cap"]
        # Find a sample right after the second epoch boundary.
        t, v = caps.times, caps.values
        after_epoch = v[(t > 1.0 * SEC) & (t < 1.05 * SEC)]
        assert after_epoch.max() == 100

    def test_freemarket_improves_on_interfered(self):
        """Fig. 5: FreeMarket's latency sits below the interfered case."""
        _, rep_none, _, _ = scenario(None, sim_s=2.5)
        _, rep_fm, _, _ = scenario(FreeMarket(), sim_s=2.5)
        assert (
            rep_fm.server.latencies_us().mean()
            < rep_none.server.latencies_us().mean() - 15.0
        )


class TestIOSharesBehaviour:
    def test_near_base_latency(self):
        """Fig. 7: IOShares brings the victim near the base case."""
        _, rep, _, _ = scenario(IOShares(), sim_s=1.5)
        mean = rep.server.latencies_us().mean()
        assert mean < 245.0  # interfered is ~315, base ~209

    def test_headline_claim_30_percent(self):
        """Abstract: 'reduce the latency interference by as much as 30%'."""
        _, rep_none, _, _ = scenario(None, sim_s=1.5)
        _, rep_ios, _, _ = scenario(IOShares(), sim_s=1.5)
        interfered = rep_none.server.latencies_us().mean()
        managed = rep_ios.server.latencies_us().mean()
        reduction = (interfered - managed) / interfered
        assert reduction > 0.20

    def test_interferer_rate_rises_and_cap_falls(self):
        _, _, intf, ctl = scenario(IOShares(), sim_s=1.0)
        tag = f"resex.dom{intf.server_dom.domid}"
        rates = ctl.probes.series[f"{tag}.rate"].values
        caps = ctl.probes.series[f"{tag}.cap"].values
        assert rates.max() > 1.0
        assert caps.min() < 20

    def test_victim_never_congestion_capped(self):
        _, rep, _, ctl = scenario(IOShares(), sim_s=1.0)
        tag = f"resex.dom{rep.server_dom.domid}"
        assert ctl.probes.series[f"{tag}.rate"].values.max() == 1.0

    def test_backoff_without_interference(self):
        """Fig. 8: with no interferer, IOShares leaves the victim alone."""
        _, rep, _, ctl = scenario(IOShares(), sim_s=1.0, with_interferer=False)
        # ~199 us: the base cycle minus the agent's hidden reporting
        # overlap (see TestAgentReporting.test_reporting_costs_cpu).
        assert rep.server.latencies_us().mean() == pytest.approx(204.0, abs=10.0)
        caps = ctl.probes.series[f"resex.dom{rep.server_dom.domid}.cap"].values
        assert caps.min() == 100

    def test_rate_decays_after_congestion_clears(self):
        """Back-off: once capped hard, violations stop and the rate
        decays toward the base rate."""
        _, _, intf, ctl = scenario(IOShares(), sim_s=1.5)
        rates = ctl.probes.series[
            f"resex.dom{intf.server_dom.domid}.rate"
        ].values
        peak = rates.argmax()
        assert rates[peak] > rates[-1]  # decayed from the peak


class TestStaticRatioBehaviour:
    def test_caps_by_inferred_buffer_ratio(self):
        _, rep, intf, ctl = scenario(StaticRatio(), sim_s=1.0)
        cap = ctl.probes.series[
            f"resex.dom{intf.server_dom.domid}.cap"
        ].values.min()
        # 2MB / 64KB = ratio 32 -> cap ~3.
        assert 2 <= cap <= 4

    def test_improves_latency(self):
        _, rep_none, _, _ = scenario(None, sim_s=1.5)
        _, rep_static, _, _ = scenario(StaticRatio(), sim_s=1.5)
        assert (
            rep_static.server.latencies_us().mean()
            < rep_none.server.latencies_us().mean() - 40.0
        )

    def test_leaves_same_size_peer_uncapped(self):
        bed = Testbed.paper_testbed(seed=3)
        s, c = bed.node("server-host"), bed.node("client-host")
        rep = BenchExPair(
            bed, s, c, BenchExConfig(name="rep", warmup_requests=50), with_agent=True
        )
        peer = BenchExPair(bed, s, c, BenchExConfig(name="peer"))
        ctl = ResExController(s, StaticRatio())
        ctl.monitor(rep.server_dom, agent=rep.agent, sla=SLA)
        ctl.monitor(peer.server_dom)
        ctl.start()
        run_pairs(bed, [rep, peer], until_ns=1 * SEC)
        caps = ctl.probes.series[
            f"resex.dom{peer.server_dom.domid}.cap"
        ].values
        assert caps.min() == 100
