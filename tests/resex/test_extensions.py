"""Tests for the paper's future-work hooks implemented here:
depletion actions, weighted Reso shares, interferer onset dynamics,
and the event-driven completion mode's interaction with ResEx."""

import numpy as np
import pytest

from repro.benchex import INTERFERER_2MB, BenchExConfig, BenchExPair, run_pairs
from repro.errors import PricingError
from repro.experiments import Testbed, run_scenario
from repro.resex import FreeMarket, IOShares
from repro.units import SEC


class TestDepletionModes:
    def test_mode_validation(self):
        with pytest.raises(PricingError, match="depletion_mode"):
            FreeMarket(depletion_mode="magic")

    def run_mode(self, mode, seed=5):
        return run_scenario(
            f"dep-{mode}",
            interferer=INTERFERER_2MB,
            policy=FreeMarket(depletion_mode=mode),
            sim_s=1.2,
            seed=seed,
        )

    def test_gradual_steps_down(self):
        res = self.run_mode("gradual")
        _, caps = res.probe_series[f"resex.dom{res.interferer_domid}.cap"]
        drops = np.diff(caps)
        assert drops.min() == -10  # exactly the decrement
        assert caps.min() == 10

    def test_hard_jumps_to_floor(self):
        res = self.run_mode("hard")
        _, caps = res.probe_series[f"resex.dom{res.interferer_domid}.cap"]
        drops = np.diff(caps)
        # At the depletion instant the cap falls by far more than the
        # gradual decrement.
        assert drops.min() <= -80
        assert caps.min() == 10

    def test_proportional_tracks_balance(self):
        res = self.run_mode("proportional")
        tag = f"resex.dom{res.interferer_domid}"
        _, caps = res.probe_series[f"{tag}.cap"]
        _, resos = res.probe_series[f"{tag}.resos"]
        # Once the balance hits zero the proportional cap is the floor.
        exhausted = resos <= 0
        assert exhausted.any()
        assert caps[exhausted].max() == 10

    def test_all_modes_contain_the_interferer(self):
        uncontrolled = run_scenario(
            "none", interferer=INTERFERER_2MB, sim_s=1.2, seed=5
        )
        for mode in ("gradual", "hard", "proportional"):
            res = self.run_mode(mode)
            assert (
                res.breakdown.total_mean
                < uncontrolled.breakdown.total_mean - 20.0
            ), mode


class TestWeightedShares:
    def test_priority_weighting_helps_the_victim(self):
        """§V-C: 'Resos can also be distributed unequally, e.g., based
        on priority of the VMs' — a 3:1 priority starves the interferer
        sooner each epoch."""
        equal = run_scenario(
            "eq", interferer=INTERFERER_2MB, policy=FreeMarket(),
            sim_s=1.2, seed=5,
        )
        weighted = run_scenario(
            "w31", interferer=INTERFERER_2MB, policy=FreeMarket(),
            sim_s=1.2, seed=5,
            reso_weights={"reporting": 3.0, "interferer": 1.0},
        )
        assert (
            weighted.breakdown.total_mean < equal.breakdown.total_mean - 10.0
        )

    def test_weighted_interferer_allocation_smaller(self):
        res = run_scenario(
            "w31", interferer=INTERFERER_2MB, policy=FreeMarket(),
            sim_s=0.5, seed=5,
            reso_weights={"reporting": 3.0, "interferer": 1.0},
        )
        tag = f"resex.dom{res.interferer_domid}"
        _, resos = res.probe_series[f"{tag}.resos"]
        # 100k CPU + 25% of the I/O pool.
        assert resos[0] == pytest.approx(100_000 + 1_048_576 * 0.25, rel=0.01)


class TestOnsetDynamics:
    def test_interferer_onset_is_visible(self):
        res = run_scenario(
            "onset",
            interferer=INTERFERER_2MB,
            interferer_start_s=0.4,
            sim_s=0.8,
            seed=5,
        )
        before = [v for t, v in res.samples if t < 0.35 * SEC]
        after = [v for t, v in res.samples if t > 0.45 * SEC]
        assert np.mean(before) == pytest.approx(209.0, abs=5.0)
        assert np.mean(after) > 300.0

    def test_ioshares_recovers_after_onset(self):
        res = run_scenario(
            "onset-ios",
            interferer=INTERFERER_2MB,
            policy=IOShares(),
            interferer_start_s=0.3,
            sim_s=1.5,
            seed=5,
        )
        tail = [v for t, v in res.samples if t > 1.0 * SEC]
        # Well after onset, IOShares has recovered to near base.
        assert np.mean(tail) < 250.0

    def test_reaction_time_bounded(self):
        """Time from onset to the first cap actuation is a few detector
        windows, not epochs."""
        res = run_scenario(
            "onset-ios2",
            interferer=INTERFERER_2MB,
            policy=IOShares(),
            interferer_start_s=0.3,
            sim_s=1.0,
            seed=5,
        )
        cap_t, cap_v = res.probe_series[f"resex.dom{res.interferer_domid}.cap"]
        capped = cap_t[cap_v < 100]
        assert capped.size > 0
        reaction_ns = capped[0] - 0.3 * SEC
        assert 0 < reaction_ns < 0.2 * SEC


class TestEventCompletionMode:
    def run_pair(self, mode, interferer_mode=None, cap=None, seed=5):
        bed = Testbed.paper_testbed(seed=seed)
        s, c = bed.node("server-host"), bed.node("client-host")
        cfg = BenchExConfig(
            name="rep", request_limit=150, warmup_requests=20,
            completion_mode=mode,
        )
        rep = BenchExPair(bed, s, c, cfg)
        pairs = [rep]
        if interferer_mode is not None:
            from dataclasses import replace

            intf = BenchExPair(
                bed, s, c,
                replace(INTERFERER_2MB, completion_mode=interferer_mode),
            )
            if cap is not None:
                s.hypervisor.set_cap(intf.server_dom.domid, cap)
            pairs.append(intf)
        run_pairs(bed, pairs)
        cpu_frac = rep.server_dom.vcpu.cumulative_ns / bed.env.now
        return rep.server.latencies_us(), cpu_frac, bed

    def test_event_mode_trades_latency_for_cpu(self):
        poll_lat, poll_cpu, _ = self.run_pair("poll")
        ev_lat, ev_cpu, _ = self.run_pair("event")
        # Interrupt cost appears in latency (2 waits x ~5us)...
        assert 4.0 < ev_lat.mean() - poll_lat.mean() < 16.0
        # ...but CPU consumption collapses.
        assert ev_cpu < poll_cpu * 0.6

    def test_event_mode_weakens_the_cap_lever(self):
        """The ablation insight: an event-driven interferer barely uses
        CPU, so the same CPU cap removes much less of its I/O."""
        poll_lat, _, _ = self.run_pair("poll", interferer_mode="poll", cap=10)
        ev_lat, _, _ = self.run_pair("poll", interferer_mode="event", cap=10)
        # Victim fares worse when the interferer is event-driven.
        assert ev_lat.mean() > poll_lat.mean() + 15.0

    def test_config_validation(self):
        from repro.errors import ConfigError

        with pytest.raises(ConfigError):
            BenchExConfig(completion_mode="irq")


class TestHwShares:
    """The HW-rate-limit actuated variant (paper §I's per-flow controls)."""

    def test_registered(self):
        from repro.resex import HwShares, policy_by_name

        assert policy_by_name("hw-shares") is HwShares

    def test_protects_victim_like_ioshares(self):
        from repro.resex import HwShares

        res = run_scenario(
            "hw", interferer=INTERFERER_2MB, policy=HwShares(),
            sim_s=1.2, seed=5,
        )
        assert res.breakdown.total_mean < 245.0

    def test_interferer_keeps_cpu(self):
        """The HW limiter throttles bandwidth, not cycles: the interferer
        VM's CPU cap stays at 100 throughout."""
        from repro.resex import HwShares

        res = run_scenario(
            "hw2", interferer=INTERFERER_2MB, policy=HwShares(),
            sim_s=1.2, seed=5,
        )
        _, caps = res.probe_series[f"resex.dom{res.interferer_domid}.cap"]
        assert caps.min() == 100

    def test_limit_cleared_when_rate_decays(self):
        from repro.resex import HwShares

        res = run_scenario(
            "hw3",
            interferer=BenchExConfig(name="quiet"),  # equal 64KB peer
            policy=HwShares(),
            sim_s=0.8,
            seed=5,
        )
        # Equal-I/O peer: never blamed, never limited.
        _, rates = res.probe_series[f"resex.dom{res.interferer_domid}.rate"]
        assert rates.max() == 1.0

    def test_min_limit_validation(self):
        from repro.resex import HwShares

        with pytest.raises(ValueError):
            HwShares(min_limit_bytes_per_sec=0)
