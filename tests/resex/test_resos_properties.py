"""Model-based property tests for the Reso currency (paper §V-C).

These fence the account arithmetic the fast-path PRs are not allowed
to change: an interpreter drives a :class:`ResoAccount` through random
``deduct`` / ``replenish`` / ``set_allocation`` programs while a
shadow model replays the exact same float operations.  The suite runs
500 derandomized examples (see ``tests/conftest.py``) so any
"optimization" that reassociates the arithmetic, reorders the clamp,
or floors differently shows up as a counterexample, not as a silent
drift in figure outputs.

Invariants checked after every operation:

* balances never go negative and never exceed the allocation;
* ``fraction_remaining`` stays in [0, 1];
* every requested Reso is conserved: it is either paid
  (``total_deducted``) or recorded as ``unmet_demand``;
* exhaustion is monotone within an epoch — once a VM runs dry it
  stays dry until the next ``replenish``;
* the account state equals the shadow model bit-for-bit.
"""

from __future__ import annotations

import math

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.resex.resos import ResoAccount

#: One program step: ("deduct", amount) | ("replenish",) |
#: ("set_allocation", new_allocation).
_amounts = st.floats(
    min_value=0.0, max_value=2e6, allow_nan=False, allow_infinity=False
)
_allocations = st.floats(
    min_value=1e-3, max_value=1e6, allow_nan=False, allow_infinity=False
)
_ops = st.one_of(
    st.tuples(st.just("deduct"), _amounts),
    st.tuples(st.just("replenish")),
    st.tuples(st.just("set_allocation"), _allocations),
)


class _ShadowAccount:
    """Float-exact replay of the documented ResoAccount semantics."""

    def __init__(self, allocation: float) -> None:
        self.allocation = float(allocation)
        self.balance = float(allocation)
        self.total_deducted = 0.0
        self.unmet_demand = 0.0
        self.epochs_replenished = 0

    def deduct(self, resos: float) -> None:
        paid = min(resos, self.balance)
        self.balance -= paid
        self.total_deducted += paid
        self.unmet_demand += resos - paid

    def replenish(self) -> None:
        self.balance = self.allocation
        self.epochs_replenished += 1

    def set_allocation(self, allocation: float) -> None:
        self.allocation = float(allocation)
        if self.balance > self.allocation:
            self.balance = self.allocation


@given(allocation=_allocations, program=st.lists(_ops, max_size=30))
@settings(max_examples=500, derandomize=True, deadline=None)
def test_account_program_invariants(allocation, program):
    acct = ResoAccount(1, allocation)
    model = _ShadowAccount(allocation)
    exhausted_this_epoch = False

    for op in program:
        requested_before = acct.total_deducted + acct.unmet_demand
        if op[0] == "deduct":
            acct.deduct(op[1])
            model.deduct(op[1])
            # Conservation: the request is split into paid + unmet with
            # nothing created or destroyed (up to one float rounding).
            delta = (acct.total_deducted + acct.unmet_demand) - requested_before
            assert math.isclose(delta, op[1], rel_tol=1e-12, abs_tol=1e-9)
        elif op[0] == "replenish":
            acct.replenish()
            model.replenish()
            exhausted_this_epoch = False
            assert acct.balance == acct.allocation
        else:
            acct.set_allocation(op[1])
            model.set_allocation(op[1])

        # Bit-exact agreement with the shadow model.
        assert acct.balance == model.balance
        assert acct.allocation == model.allocation
        assert acct.total_deducted == model.total_deducted
        assert acct.unmet_demand == model.unmet_demand

        # Range invariants.
        assert acct.balance >= 0.0
        assert acct.balance <= acct.allocation
        assert 0.0 <= acct.fraction_remaining <= 1.0
        assert acct.total_deducted >= 0.0
        assert acct.unmet_demand >= 0.0

        # Exhaustion is monotone between replenishes: deduct cannot add
        # funds and set_allocation only claws back, so a dry account
        # stays dry until the epoch boundary.
        if exhausted_this_epoch:
            assert acct.exhausted
        exhausted_this_epoch = acct.exhausted


@given(
    allocation=_allocations,
    charges=st.lists(_amounts, min_size=1, max_size=25),
)
@settings(max_examples=500, derandomize=True, deadline=None)
def test_epoch_conservation_without_reprovisioning(allocation, charges):
    """Within one epoch: spent + remaining == starting allocation, and
    requested == paid + unmet (both up to float rounding)."""
    acct = ResoAccount(1, allocation)
    for c in charges:
        acct.deduct(c)
    assert math.isclose(
        acct.total_deducted + acct.balance,
        acct.allocation,
        rel_tol=1e-12,
        abs_tol=1e-9,
    )
    requested = math.fsum(charges)
    assert math.isclose(
        acct.total_deducted + acct.unmet_demand,
        requested,
        rel_tol=1e-9,
        abs_tol=1e-6,
    )
    # Deducting strictly more than the allocation must exhaust exactly.
    if requested > allocation * (1.0 + 1e-9):
        assert acct.unmet_demand > 0.0 or acct.exhausted


@given(
    allocation=_allocations,
    deducts=st.lists(_amounts, min_size=1, max_size=10),
    new_allocation=_allocations,
)
@settings(max_examples=500, derandomize=True, deadline=None)
def test_set_allocation_keeps_fraction_in_unit_interval(
    allocation, deducts, new_allocation
):
    """Re-provisioning mid-epoch (priority change) can never push
    ``fraction_remaining`` outside [0, 1] — shrinking claws back the
    excess immediately, growing leaves the balance alone."""
    acct = ResoAccount(1, allocation)
    for d in deducts:
        acct.deduct(d)
    balance_before = acct.balance
    acct.set_allocation(new_allocation)
    assert 0.0 <= acct.fraction_remaining <= 1.0
    assert acct.balance <= balance_before  # never mints Resos mid-epoch
    acct.replenish()
    assert acct.balance == new_allocation
