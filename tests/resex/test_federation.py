"""Tests for cross-host federated ResEx (Follower + ResExFederation)."""

import pytest

from repro.benchex import INTERFERER_2MB, BenchExConfig, BenchExPair, run_pairs
from repro.errors import PricingError
from repro.experiments import Testbed
from repro.hw import LeafSpine
from repro.resex import (
    ClusterFederation,
    Follower,
    IOShares,
    LatencySLA,
    RackFollower,
    ResExController,
    ResExFederation,
)
from repro.units import SEC

SLA = LatencySLA(base_mean_us=209.0, base_std_us=3.0, threshold_pct=10.0)


def build(federated, seed=5):
    bed = Testbed.paper_testbed(seed=seed)
    s, c = bed.node("server-host"), bed.node("client-host")
    rep = BenchExPair(
        bed, s, c, BenchExConfig(name="rep", warmup_requests=50), with_agent=True
    )
    intf = BenchExPair(bed, s, c, INTERFERER_2MB)
    ctl = ResExController(s, IOShares())
    ctl.monitor(rep.server_dom, agent=rep.agent, sla=SLA)
    ctl.monitor(intf.server_dom)
    ctl.start()
    fctl = None
    fed = None
    if federated:
        fctl = ResExController(c, Follower())
        fctl.monitor(intf.client_dom)
        fctl.monitor(rep.client_dom)
        fctl.start()
        fed = ResExFederation(bed.env)
        fed.link((ctl, intf.server_dom.domid), (fctl, intf.client_dom.domid))
        fed.start()
    return bed, rep, intf, ctl, fctl, fed


class TestFederation:
    def test_rate_propagates_to_client_side(self):
        bed, rep, intf, ctl, fctl, fed = build(True)
        run_pairs(bed, [rep, intf], until_ns=1 * SEC)
        primary_rates = ctl.probes.series[
            f"resex.dom{intf.server_dom.domid}.rate"
        ].values
        follower_rates = fctl.probes.series[
            f"resex.dom{intf.client_dom.domid}.rate"
        ].values
        assert primary_rates.max() > 1.0  # congestion was priced
        # The elevated price reached the client-side controller too.
        assert follower_rates.max() > 1.0
        assert follower_rates.max() == pytest.approx(
            primary_rates.max(), rel=0.25
        )
        assert fed.syncs > 500

    def test_interferer_client_gets_capped(self):
        bed, rep, intf, ctl, fctl, _ = build(True)
        run_pairs(bed, [rep, intf], until_ns=1 * SEC)
        caps = fctl.probes.series[
            f"resex.dom{intf.client_dom.domid}.cap"
        ].values
        assert caps.min() < 100

    def test_victim_client_untouched(self):
        bed, rep, intf, ctl, fctl, _ = build(True)
        run_pairs(bed, [rep, intf], until_ns=1 * SEC)
        caps = fctl.probes.series[
            f"resex.dom{rep.client_dom.domid}.cap"
        ].values
        assert caps.min() == 100

    def test_federation_improves_on_single_sided(self):
        bed1, rep1, intf1, *_ = build(False)
        run_pairs(bed1, [rep1, intf1], until_ns=int(1.5 * SEC))
        bed2, rep2, intf2, *_ = build(True)
        run_pairs(bed2, [rep2, intf2], until_ns=int(1.5 * SEC))
        single = rep1.server.latencies_us().mean()
        fed = rep2.server.latencies_us().mean()
        assert fed < single + 1.0  # at least as good; usually better

    def test_relay_delay(self):
        """A primary rate change lands at the follower one sync round
        plus one propagation delay later — never earlier."""
        bed = Testbed.paper_testbed(seed=1)
        s, c = bed.node("server-host"), bed.node("client-host")
        dom_s = s.create_guest("a")
        dom_c = c.create_guest("b")
        ctl_s = ResExController(s, IOShares())
        ctl_c = ResExController(c, Follower())
        ctl_s.monitor(dom_s)
        ctl_c.monitor(dom_c)
        fed = ResExFederation(
            bed.env, sync_interval_ns=1_000_000, propagation_ns=50_000
        )
        fed.link((ctl_s, dom_s.domid), (ctl_c, dom_c.domid))
        fed.start()

        ctl_s.vm_by_domid(dom_s.domid).charge_rate = 5.0
        follower_vm = ctl_c.vm_by_domid(dom_c.domid)
        # Just before the sync message arrives: still the default rate.
        bed.env.run(until=1_000_000 + 49_999)
        assert follower_vm.charge_rate == 1.0
        # The moment the propagation delay elapses: rate applied.
        bed.env.run(until=1_000_000 + 50_001)
        assert follower_vm.charge_rate == 5.0
        assert fed.syncs == 1

    def test_chaos_federation_link_drop(self):
        """While the federation link is down, rate changes do not cross
        hosts; the follower keeps the stale price until recovery."""
        from repro.faults import (
            Fault,
            FaultCampaign,
            FaultEngine,
            FederationOutage,
        )

        bed = Testbed.paper_testbed(seed=1)
        s, c = bed.node("server-host"), bed.node("client-host")
        dom_s = s.create_guest("a")
        dom_c = c.create_guest("b")
        ctl_s = ResExController(s, IOShares())
        ctl_c = ResExController(c, Follower())
        ctl_s.monitor(dom_s)
        ctl_c.monitor(dom_c)
        fed = ResExFederation(
            bed.env, sync_interval_ns=1_000_000, propagation_ns=50_000
        )
        fed.link((ctl_s, dom_s.domid), (ctl_c, dom_c.domid))
        fed.start()

        # Link down from 1.5 ms to 6.0 ms (sync rounds fire at 1.00,
        # 2.05, 3.05, ... ms — each healthy round adds one propagation
        # delay to the cadence — so rounds 2.05 through 5.05 are lost).
        campaign = FaultCampaign.scripted(
            [Fault("federation-outage", "fed", 1_500_000, 4_500_000)],
            name="fed-drop",
        )
        engine = FaultEngine(bed.env, campaign).register(FederationOutage(fed))
        engine.start()

        primary_vm = ctl_s.vm_by_domid(dom_s.domid)
        follower_vm = ctl_c.vm_by_domid(dom_c.domid)
        primary_vm.charge_rate = 3.0
        bed.env.run(until=1_400_000)  # one healthy sync relays 3.0
        assert follower_vm.charge_rate == 3.0

        primary_vm.charge_rate = 9.0  # raised while the link is down
        bed.env.run(until=5_500_000)
        assert follower_vm.charge_rate == 3.0  # stale price held
        assert fed.syncs_lost >= 3

        bed.env.run(until=7_000_000)  # link healed: next sync relays
        assert follower_vm.charge_rate == 9.0
        assert engine.injected == 1 and engine.cleared == 1

    def test_link_validation(self):
        bed = Testbed.paper_testbed(seed=1)
        s, c = bed.node("server-host"), bed.node("client-host")
        dom_s = s.create_guest("a")
        dom_c = c.create_guest("b")
        ctl_s = ResExController(s, IOShares())
        ctl_c = ResExController(c, Follower())
        ctl_s.monitor(dom_s)
        ctl_c.monitor(dom_c)
        fed = ResExFederation(bed.env)
        with pytest.raises(PricingError, match="distinct"):
            fed.link((ctl_s, dom_s.domid), (ctl_s, dom_s.domid))
        with pytest.raises(PricingError):
            fed.link((ctl_s, 999), (ctl_c, dom_c.domid))
        with pytest.raises(PricingError, match="no federation links"):
            ResExFederation(bed.env).start()
        with pytest.raises(PricingError):
            ResExFederation(bed.env, sync_interval_ns=0)

    def test_duplicate_follower_link_rejected(self):
        """Two links feeding one follower VM would race (last writer
        wins on charge_rate every sync round); the registration must
        fail instead."""
        bed = Testbed.paper_testbed(seed=1)
        s, c = bed.node("server-host"), bed.node("client-host")
        dom_s1 = s.create_guest("a1")
        dom_s2 = s.create_guest("a2")
        dom_c = c.create_guest("b")
        ctl_s = ResExController(s, IOShares())
        ctl_c = ResExController(c, Follower())
        ctl_s.monitor(dom_s1)
        ctl_s.monitor(dom_s2)
        ctl_c.monitor(dom_c)
        fed = ResExFederation(bed.env)
        fed.link((ctl_s, dom_s1.domid), (ctl_c, dom_c.domid))
        with pytest.raises(PricingError, match="already the follower"):
            fed.link((ctl_s, dom_s2.domid), (ctl_c, dom_c.domid))
        # The same primary may feed several followers, though.
        dom_c2 = c.create_guest("b2")
        ctl_c.monitor(dom_c2)
        fed.link((ctl_s, dom_s1.domid), (ctl_c, dom_c2.domid))


def build_cluster_bed(racks=3, seed=3):
    """A minimal leaf-spine cluster: one host per rack, one guest each."""
    from repro.ib.params import DEFAULT_FABRIC_PARAMS

    bps = DEFAULT_FABRIC_PARAMS.link_bytes_per_sec
    bed = Testbed(
        seed=seed,
        topology_factory=lambda fabric: LeafSpine(
            fabric, bps, racks=racks, hosts_per_rack=1, spines=1
        ),
    )
    controllers = []
    for r in range(racks):
        node = bed.add_node(f"rack{r}-head", ncpus=2)
        dom = node.create_guest(f"rack{r}-vm")
        ctl = ResExController(node, IOShares() if r == 0 else RackFollower())
        ctl.monitor(dom)
        controllers.append(ctl)
    return bed, controllers


class TestClusterFederation:
    def test_price_gossips_over_the_fabric(self):
        """A price discovered in rack 0 reaches every rack's
        cluster_price after one gather + broadcast round — and not
        before the broadcast messages have crossed the fabric."""
        bed, ctls = build_cluster_bed()
        fed = ClusterFederation(bed.env, bed.fabric, sync_interval_ns=1_000_000)
        for r, ctl in enumerate(ctls):
            fed.register(r, ctl)
        fed.start()
        ctls[0].vms[0].charge_rate = 7.0

        # At the sync instant the control messages are still in flight.
        bed.env.run(until=1_000_001)
        assert fed.cluster_price == 1.0
        # Well after the round trip: reduced and applied everywhere.
        bed.env.run(until=1_200_000)
        assert fed.cluster_price == 7.0
        assert all(ctl.cluster_price == 7.0 for ctl in ctls)
        assert fed.syncs == 1

    def test_max_reduce_across_racks(self):
        bed, ctls = build_cluster_bed()
        fed = ClusterFederation(bed.env, bed.fabric, sync_interval_ns=1_000_000)
        for r, ctl in enumerate(ctls):
            fed.register(r, ctl)
        fed.start()
        ctls[1].vms[0].charge_rate = 3.0
        ctls[2].vms[0].charge_rate = 5.0
        bed.env.run(until=2_000_000)
        assert fed.cluster_price == 5.0

    def test_rack_follower_applies_cluster_price(self):
        """A started RackFollower controller prices its VMs at the
        federated cluster price and actuates the congestion cap."""
        bed, ctls = build_cluster_bed()
        fed = ClusterFederation(bed.env, bed.fabric, sync_interval_ns=1_000_000)
        for r, ctl in enumerate(ctls):
            fed.register(r, ctl)
        follower = ctls[1]
        follower.start()
        fed.start()
        ctls[0].vms[0].charge_rate = 4.0
        bed.env.run(until=int(0.1 * SEC))
        vm = follower.vms[0]
        assert vm.charge_rate == 4.0
        assert follower.get_cap(vm) == 25  # 100 / price

    def test_paused_federation_loses_rounds(self):
        bed, ctls = build_cluster_bed()
        fed = ClusterFederation(bed.env, bed.fabric, sync_interval_ns=1_000_000)
        for r, ctl in enumerate(ctls):
            fed.register(r, ctl)
        fed.start()
        ctls[0].vms[0].charge_rate = 9.0
        fed.paused = True
        bed.env.run(until=3_500_000)
        assert fed.cluster_price == 1.0
        assert fed.syncs == 0 and fed.syncs_lost == 3
        fed.paused = False
        bed.env.run(until=5_000_000)
        assert fed.cluster_price == 9.0
        assert fed.syncs >= 1

    def test_registration_validation(self):
        bed, ctls = build_cluster_bed()
        fed = ClusterFederation(bed.env, bed.fabric)
        fed.register(0, ctls[0])
        with pytest.raises(PricingError, match="already registered"):
            fed.register(0, ctls[1])
        with pytest.raises(PricingError, match="another rack"):
            fed.register(1, ctls[0])
        with pytest.raises(PricingError, match="at least two racks"):
            fed.start()
        fed.register(1, ctls[1])
        fed.start()
        with pytest.raises(PricingError, match="after the federation started"):
            fed.register(2, ctls[2])
        with pytest.raises(PricingError, match="positive"):
            ClusterFederation(bed.env, bed.fabric, sync_interval_ns=0)
        with pytest.raises(PricingError, match=">= 0"):
            ClusterFederation(bed.env, bed.fabric, payload_bytes=-1)
