"""Tests for cross-host federated ResEx (Follower + ResExFederation)."""

import pytest

from repro.benchex import INTERFERER_2MB, BenchExConfig, BenchExPair, run_pairs
from repro.errors import PricingError
from repro.experiments import Testbed
from repro.resex import (
    Follower,
    IOShares,
    LatencySLA,
    ResExController,
    ResExFederation,
)
from repro.units import SEC

SLA = LatencySLA(base_mean_us=209.0, base_std_us=3.0, threshold_pct=10.0)


def build(federated, seed=5):
    bed = Testbed.paper_testbed(seed=seed)
    s, c = bed.node("server-host"), bed.node("client-host")
    rep = BenchExPair(
        bed, s, c, BenchExConfig(name="rep", warmup_requests=50), with_agent=True
    )
    intf = BenchExPair(bed, s, c, INTERFERER_2MB)
    ctl = ResExController(s, IOShares())
    ctl.monitor(rep.server_dom, agent=rep.agent, sla=SLA)
    ctl.monitor(intf.server_dom)
    ctl.start()
    fctl = None
    fed = None
    if federated:
        fctl = ResExController(c, Follower())
        fctl.monitor(intf.client_dom)
        fctl.monitor(rep.client_dom)
        fctl.start()
        fed = ResExFederation(bed.env)
        fed.link((ctl, intf.server_dom.domid), (fctl, intf.client_dom.domid))
        fed.start()
    return bed, rep, intf, ctl, fctl, fed


class TestFederation:
    def test_rate_propagates_to_client_side(self):
        bed, rep, intf, ctl, fctl, fed = build(True)
        run_pairs(bed, [rep, intf], until_ns=1 * SEC)
        primary_rates = ctl.probes.series[
            f"resex.dom{intf.server_dom.domid}.rate"
        ].values
        follower_rates = fctl.probes.series[
            f"resex.dom{intf.client_dom.domid}.rate"
        ].values
        assert primary_rates.max() > 1.0  # congestion was priced
        # The elevated price reached the client-side controller too.
        assert follower_rates.max() > 1.0
        assert follower_rates.max() == pytest.approx(
            primary_rates.max(), rel=0.25
        )
        assert fed.syncs > 500

    def test_interferer_client_gets_capped(self):
        bed, rep, intf, ctl, fctl, _ = build(True)
        run_pairs(bed, [rep, intf], until_ns=1 * SEC)
        caps = fctl.probes.series[
            f"resex.dom{intf.client_dom.domid}.cap"
        ].values
        assert caps.min() < 100

    def test_victim_client_untouched(self):
        bed, rep, intf, ctl, fctl, _ = build(True)
        run_pairs(bed, [rep, intf], until_ns=1 * SEC)
        caps = fctl.probes.series[
            f"resex.dom{rep.client_dom.domid}.cap"
        ].values
        assert caps.min() == 100

    def test_federation_improves_on_single_sided(self):
        bed1, rep1, intf1, *_ = build(False)
        run_pairs(bed1, [rep1, intf1], until_ns=int(1.5 * SEC))
        bed2, rep2, intf2, *_ = build(True)
        run_pairs(bed2, [rep2, intf2], until_ns=int(1.5 * SEC))
        single = rep1.server.latencies_us().mean()
        fed = rep2.server.latencies_us().mean()
        assert fed < single + 1.0  # at least as good; usually better

    def test_relay_delay(self):
        """A primary rate change lands at the follower one sync round
        plus one propagation delay later — never earlier."""
        bed = Testbed.paper_testbed(seed=1)
        s, c = bed.node("server-host"), bed.node("client-host")
        dom_s = s.create_guest("a")
        dom_c = c.create_guest("b")
        ctl_s = ResExController(s, IOShares())
        ctl_c = ResExController(c, Follower())
        ctl_s.monitor(dom_s)
        ctl_c.monitor(dom_c)
        fed = ResExFederation(
            bed.env, sync_interval_ns=1_000_000, propagation_ns=50_000
        )
        fed.link((ctl_s, dom_s.domid), (ctl_c, dom_c.domid))
        fed.start()

        ctl_s.vm_by_domid(dom_s.domid).charge_rate = 5.0
        follower_vm = ctl_c.vm_by_domid(dom_c.domid)
        # Just before the sync message arrives: still the default rate.
        bed.env.run(until=1_000_000 + 49_999)
        assert follower_vm.charge_rate == 1.0
        # The moment the propagation delay elapses: rate applied.
        bed.env.run(until=1_000_000 + 50_001)
        assert follower_vm.charge_rate == 5.0
        assert fed.syncs == 1

    def test_chaos_federation_link_drop(self):
        """While the federation link is down, rate changes do not cross
        hosts; the follower keeps the stale price until recovery."""
        from repro.faults import (
            Fault,
            FaultCampaign,
            FaultEngine,
            FederationOutage,
        )

        bed = Testbed.paper_testbed(seed=1)
        s, c = bed.node("server-host"), bed.node("client-host")
        dom_s = s.create_guest("a")
        dom_c = c.create_guest("b")
        ctl_s = ResExController(s, IOShares())
        ctl_c = ResExController(c, Follower())
        ctl_s.monitor(dom_s)
        ctl_c.monitor(dom_c)
        fed = ResExFederation(
            bed.env, sync_interval_ns=1_000_000, propagation_ns=50_000
        )
        fed.link((ctl_s, dom_s.domid), (ctl_c, dom_c.domid))
        fed.start()

        # Link down from 1.5 ms to 6.0 ms (sync rounds fire at 1.00,
        # 2.05, 3.05, ... ms — each healthy round adds one propagation
        # delay to the cadence — so rounds 2.05 through 5.05 are lost).
        campaign = FaultCampaign.scripted(
            [Fault("federation-outage", "fed", 1_500_000, 4_500_000)],
            name="fed-drop",
        )
        engine = FaultEngine(bed.env, campaign).register(FederationOutage(fed))
        engine.start()

        primary_vm = ctl_s.vm_by_domid(dom_s.domid)
        follower_vm = ctl_c.vm_by_domid(dom_c.domid)
        primary_vm.charge_rate = 3.0
        bed.env.run(until=1_400_000)  # one healthy sync relays 3.0
        assert follower_vm.charge_rate == 3.0

        primary_vm.charge_rate = 9.0  # raised while the link is down
        bed.env.run(until=5_500_000)
        assert follower_vm.charge_rate == 3.0  # stale price held
        assert fed.syncs_lost >= 3

        bed.env.run(until=7_000_000)  # link healed: next sync relays
        assert follower_vm.charge_rate == 9.0
        assert engine.injected == 1 and engine.cleared == 1

    def test_link_validation(self):
        bed = Testbed.paper_testbed(seed=1)
        s, c = bed.node("server-host"), bed.node("client-host")
        dom_s = s.create_guest("a")
        dom_c = c.create_guest("b")
        ctl_s = ResExController(s, IOShares())
        ctl_c = ResExController(c, Follower())
        ctl_s.monitor(dom_s)
        ctl_c.monitor(dom_c)
        fed = ResExFederation(bed.env)
        with pytest.raises(PricingError, match="distinct"):
            fed.link((ctl_s, dom_s.domid), (ctl_s, dom_s.domid))
        with pytest.raises(PricingError):
            fed.link((ctl_s, 999), (ctl_c, dom_c.domid))
        with pytest.raises(PricingError, match="no federation links"):
            ResExFederation(bed.env).start()
        with pytest.raises(PricingError):
            ResExFederation(bed.env, sync_interval_ns=0)
