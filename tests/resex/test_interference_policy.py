"""Unit tests for the interference detector and the policy registry."""

import numpy as np
import pytest

from repro.errors import PricingError
from repro.resex import (
    FreeMarket,
    InterferenceDetector,
    IOShares,
    LatencySLA,
    NoOpPolicy,
    StaticRatio,
    policy_by_name,
    registered_policies,
)


class TestLatencySLA:
    def test_validation(self):
        with pytest.raises(PricingError):
            LatencySLA(base_mean_us=0.0)
        with pytest.raises(PricingError):
            LatencySLA(base_mean_us=100.0, base_std_us=-1.0)
        with pytest.raises(PricingError):
            LatencySLA(base_mean_us=100.0, threshold_pct=-1.0)


class TestInterferenceDetector:
    def make(self, threshold=10.0, window=50):
        return InterferenceDetector(
            LatencySLA(base_mean_us=200.0, base_std_us=2.0, threshold_pct=threshold),
            window=window,
        )

    def test_no_samples_no_interference(self):
        det = self.make()
        assert det.interference_pct() == 0.0

    def test_at_base_no_interference(self):
        det = self.make()
        det.add_samples([199.0, 200.0, 201.0, 200.0])
        assert det.interference_pct() == 0.0

    def test_mean_violation_detected(self):
        det = self.make()
        det.add_samples([300.0] * 20)
        pct = det.interference_pct()
        assert pct == pytest.approx(50.0, abs=2.0)

    def test_below_threshold_returns_zero(self):
        det = self.make(threshold=10.0)
        det.add_samples([210.0] * 20)  # only +5%
        assert det.interference_pct() == 0.0

    def test_jitter_violation_detected(self):
        """Mean at base but wild variance: still a violation (the SLA
        covers latency *variation*, the paper's second pricing goal)."""
        det = self.make()
        rng = np.random.default_rng(0)
        det.add_samples(200.0 + 60.0 * rng.standard_normal(50))
        assert det.interference_pct() > 10.0

    def test_sliding_window_forgets(self):
        det = self.make(window=10)
        det.add_samples([300.0] * 10)
        assert det.interference_pct() > 0
        det.add_samples([200.0] * 10)  # pushes the bad samples out
        assert det.interference_pct() == 0.0

    def test_reset(self):
        det = self.make()
        det.add_samples([300.0] * 10)
        det.interference_pct()
        det.reset()
        assert det.n_samples == 0
        assert det.last_pct == 0.0

    def test_window_validation(self):
        with pytest.raises(PricingError):
            InterferenceDetector(LatencySLA(100.0), window=1)


class TestPolicyRegistry:
    def test_builtins_registered(self):
        names = set(registered_policies())
        assert {"noop", "freemarket", "ioshares", "static-ratio"} <= names

    def test_lookup_by_name(self):
        assert policy_by_name("freemarket") is FreeMarket
        assert policy_by_name("ioshares") is IOShares
        assert policy_by_name("noop") is NoOpPolicy
        assert policy_by_name("static-ratio") is StaticRatio

    def test_unknown_name(self):
        with pytest.raises(PricingError, match="unknown policy"):
            policy_by_name("communism")


class TestPolicyValidation:
    def test_freemarket_params(self):
        with pytest.raises(PricingError):
            FreeMarket(low_water_fraction=0.0)
        with pytest.raises(PricingError):
            FreeMarket(cap_decrement=0)
        with pytest.raises(PricingError):
            FreeMarket(cap_floor=0)
        with pytest.raises(PricingError):
            FreeMarket(min_epoch_fraction=1.0)

    def test_ioshares_params(self):
        with pytest.raises(PricingError):
            IOShares(rate_decay=1.0)
        with pytest.raises(PricingError):
            IOShares(max_rate=0.5)
        with pytest.raises(PricingError):
            IOShares(congestion_cap_floor=0)

    def test_static_ratio_params(self):
        with pytest.raises(PricingError):
            StaticRatio(reference_bytes=0)
        with pytest.raises(PricingError):
            StaticRatio(cap_floor=101)
