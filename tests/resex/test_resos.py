"""Unit tests for Reso accounts, supply provisioning, and parameters."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.errors import PricingError
from repro.ib.params import DEFAULT_FABRIC_PARAMS
from repro.resex import ResoAccount, ResoParams, provision_accounts
from repro.units import MS, SEC


class TestResoParams:
    def test_paper_numbers(self):
        """§VI-A: 100,000 CPU Resos and 1,048,576 I/O Resos per epoch."""
        p = ResoParams()
        assert p.intervals_per_epoch == 1000
        assert p.cpu_resos_per_epoch(1) == 100_000
        assert p.io_resos_per_epoch(DEFAULT_FABRIC_PARAMS) == pytest.approx(
            1_048_576
        )

    def test_validation(self):
        with pytest.raises(PricingError):
            ResoParams(interval_ns=0)
        with pytest.raises(PricingError):
            ResoParams(epoch_ns=1 * MS, interval_ns=2 * MS)
        with pytest.raises(PricingError):
            ResoParams(epoch_ns=1500, interval_ns=1000)  # not divisible

    def test_custom_geometry(self):
        p = ResoParams(epoch_ns=2 * SEC, interval_ns=2 * MS)
        assert p.intervals_per_epoch == 1000
        assert p.io_resos_per_epoch(DEFAULT_FABRIC_PARAMS) == pytest.approx(
            2 * 1_048_576
        )


class TestResoAccount:
    def test_deduct_and_balance(self):
        acc = ResoAccount(1, 1000.0)
        acc.deduct(300.0)
        assert acc.balance == 700.0
        assert acc.fraction_remaining == pytest.approx(0.7)
        assert not acc.exhausted

    def test_balance_floors_at_zero(self):
        acc = ResoAccount(1, 100.0)
        acc.deduct(150.0)
        assert acc.balance == 0.0
        assert acc.exhausted
        assert acc.unmet_demand == 50.0

    def test_replenish_discards_leftover(self):
        acc = ResoAccount(1, 1000.0)
        acc.deduct(100.0)
        acc.replenish()
        assert acc.balance == 1000.0  # not 1900: leftovers discarded
        assert acc.epochs_replenished == 1

    def test_negative_deduction_rejected(self):
        with pytest.raises(PricingError):
            ResoAccount(1, 10.0).deduct(-1.0)

    def test_zero_allocation_rejected(self):
        with pytest.raises(PricingError):
            ResoAccount(1, 0.0)

    def test_total_deducted_tracks_paid_only(self):
        acc = ResoAccount(1, 100.0)
        acc.deduct(80.0)
        acc.deduct(80.0)  # only 20 payable
        assert acc.total_deducted == 100.0

    def test_set_allocation(self):
        acc = ResoAccount(1, 100.0)
        acc.set_allocation(200.0)
        acc.replenish()
        assert acc.balance == 200.0
        with pytest.raises(PricingError):
            acc.set_allocation(0)


class TestProvisioning:
    def test_equal_split(self):
        p = ResoParams()
        accounts = provision_accounts([1, 2], p, DEFAULT_FABRIC_PARAMS)
        # Each: 100k CPU + half of 1,048,576 I/O.
        expected = 100_000 + 1_048_576 / 2
        assert accounts[1].allocation == pytest.approx(expected)
        assert accounts[2].allocation == pytest.approx(expected)

    def test_weighted_split(self):
        p = ResoParams()
        accounts = provision_accounts(
            [1, 2], p, DEFAULT_FABRIC_PARAMS, weights={1: 3.0, 2: 1.0}
        )
        io = 1_048_576
        assert accounts[1].allocation == pytest.approx(100_000 + io * 0.75)
        assert accounts[2].allocation == pytest.approx(100_000 + io * 0.25)

    def test_missing_weight_rejected(self):
        with pytest.raises(PricingError, match="missing"):
            provision_accounts(
                [1, 2], ResoParams(), DEFAULT_FABRIC_PARAMS, weights={1: 1.0}
            )

    def test_empty_domains_rejected(self):
        with pytest.raises(PricingError):
            provision_accounts([], ResoParams(), DEFAULT_FABRIC_PARAMS)

    def test_zero_weights_rejected(self):
        with pytest.raises(PricingError):
            provision_accounts(
                [1], ResoParams(), DEFAULT_FABRIC_PARAMS, weights={1: 0.0}
            )


class TestAccountProperties:
    @given(
        allocation=st.floats(min_value=1.0, max_value=1e9),
        charges=st.lists(
            st.floats(min_value=0.0, max_value=1e6), min_size=0, max_size=100
        ),
    )
    @settings(max_examples=100, deadline=None)
    def test_balance_invariants(self, allocation, charges):
        acc = ResoAccount(1, allocation)
        for charge in charges:
            acc.deduct(charge)
            assert 0.0 <= acc.balance <= acc.allocation
        # Conservation: paid + unmet == demanded.
        assert acc.total_deducted + acc.unmet_demand == pytest.approx(
            sum(charges), rel=1e-9, abs=1e-6
        )
        assert acc.total_deducted <= allocation + 1e-6

    @given(
        weights=st.lists(
            st.floats(min_value=0.1, max_value=10.0), min_size=1, max_size=8
        )
    )
    @settings(max_examples=50, deadline=None)
    def test_provision_conserves_io_pool(self, weights):
        p = ResoParams()
        domids = list(range(1, len(weights) + 1))
        wmap = dict(zip(domids, weights))
        accounts = provision_accounts(
            domids, p, DEFAULT_FABRIC_PARAMS, weights=wmap
        )
        io_total = sum(
            acc.allocation - p.cpu_resos_per_epoch(1)
            for acc in accounts.values()
        )
        assert io_total == pytest.approx(
            p.io_resos_per_epoch(DEFAULT_FABRIC_PARAMS), rel=1e-9
        )
