"""Tests for the parallel sweep engine and result cache."""
