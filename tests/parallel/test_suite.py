"""Registry fan-out (figures/ablations suites) and the parallel report."""

import pytest

from repro.errors import ConfigError
from repro.experiments.figures import FigureResult
from repro.experiments.suite import run_figure_set, run_registry_set


def _stub_a(seed=7):
    """Stub experiment A."""
    return FigureResult(
        figure="StubA", title="a", headers=["seed"], rows=[[float(seed)]]
    )


def _stub_b(seed=7):
    """Stub experiment B."""
    return FigureResult(
        figure="StubB", title="b", headers=["seed"], rows=[[float(seed * 2)]]
    )


@pytest.fixture
def stub_figures(monkeypatch):
    # Fork-started workers inherit the patched registry, so the stub
    # entries resolve inside pool children too.
    import repro.experiments.figures as figures

    reduced = {"stub-a": _stub_a, "stub-b": _stub_b}
    monkeypatch.setattr(figures, "ALL_FIGURES", reduced)
    return reduced


class TestRegistrySet:
    def test_serial_runs_in_registry_order(self, stub_figures):
        results, report = run_figure_set(seed=5)
        assert list(results) == ["stub-a", "stub-b"]
        assert results["stub-a"].rows == [[5.0]]
        assert results["stub-b"].rows == [[10.0]]
        assert report.executed == 2

    def test_parallel_matches_serial(self, stub_figures):
        serial, _ = run_figure_set(seed=5, jobs=1)
        pooled, _ = run_figure_set(seed=5, jobs=2)
        assert list(serial) == list(pooled)
        for name in serial:
            assert serial[name].rows == pooled[name].rows

    def test_subset_selection(self, stub_figures):
        results, _ = run_figure_set(["stub-b"], seed=3)
        assert list(results) == ["stub-b"]

    def test_unknown_name_rejected(self, stub_figures):
        with pytest.raises(ConfigError, match="unknown experiments"):
            run_figure_set(["nope"])

    def test_unknown_registry_rejected(self):
        with pytest.raises(ConfigError, match="unknown experiment registry"):
            run_registry_set("nope")


class TestParallelReport:
    def test_report_parallel_matches_serial(self, stub_figures, monkeypatch):
        import repro.experiments.figures as figures
        import repro.experiments.report as report_mod

        monkeypatch.setattr(report_mod, "ALL_FIGURES", figures.ALL_FIGURES)
        from repro.experiments.report import generate_report

        serial = generate_report(seed=4, include_ablations=False, jobs=1)
        pooled = generate_report(seed=4, include_ablations=False, jobs=2)
        assert "StubA" in serial and "StubB" in serial
        # The trailing wall-time line is timing-dependent; everything
        # above it must be byte-identical.
        strip = lambda text: text.rsplit("---", 1)[0]  # noqa: E731
        assert strip(serial) == strip(pooled)
