"""Content-addressed cache: canonical encoding, keys, round-trips."""

import dataclasses
import json

import numpy as np
import pytest

from repro.parallel import (
    CELL_SCHEMA,
    ResultCache,
    Uncacheable,
    canonical,
    cell_key,
)


@dataclasses.dataclass(frozen=True)
class FakeConfig:
    name: str
    buffer_bytes: int
    depth: int = 2


class Plain:
    def __init__(self):
        self.alpha = 1
        self.beta = "b"


class TestCanonical:
    def test_primitives_pass_through(self):
        for value in (None, True, 3, 2.5, "x"):
            assert canonical(value) == value

    def test_sequences_become_lists(self):
        assert canonical((1, 2, [3, (4,)])) == [1, 2, [3, [4]]]

    def test_dict_keys_stringified(self):
        assert canonical({1: "a", "b": 2}) == {"1": "a", "b": 2}

    def test_dataclass_encoding_carries_type_and_fields(self):
        enc = canonical(FakeConfig("i", 2048))
        assert enc["__dataclass__"].endswith("FakeConfig")
        assert enc["fields"] == {"name": "i", "buffer_bytes": 2048, "depth": 2}

    def test_plain_object_encodes_qualname_and_state(self):
        enc = canonical(Plain())
        assert enc["__object__"].endswith("Plain")
        assert enc["state"] == {"alpha": 1, "beta": "b"}

    def test_numpy_scalar_lowers_to_python(self):
        assert canonical(np.float64(2.5)) == 2.5
        assert canonical(np.int64(7)) == 7

    def test_callable_is_uncacheable(self):
        with pytest.raises(Uncacheable):
            canonical(lambda: None)

    def test_result_is_json_encodable(self):
        blob = json.dumps(canonical({"cfg": FakeConfig("x", 1)}))
        assert "FakeConfig" in blob


class TestCellKey:
    def test_stable(self):
        a = cell_key("scenario", "base", 7, {"sim_s": 0.3})
        b = cell_key("scenario", "base", 7, {"sim_s": 0.3})
        assert a == b and len(a) == 64

    @pytest.mark.parametrize(
        "kwargs",
        [
            dict(kind="chaos"),
            dict(name="other"),
            dict(seed=8),
            dict(spec={"sim_s": 0.4}),
            dict(version="0.0.0-test"),
        ],
    )
    def test_any_input_changes_the_key(self, kwargs):
        base = dict(
            kind="scenario", name="base", seed=7, spec={"sim_s": 0.3}
        )
        assert cell_key(**base) != cell_key(**{**base, **kwargs})

    def test_key_independent_of_spec_insertion_order(self):
        assert cell_key("s", "n", 1, {"a": 1, "b": 2}) == cell_key(
            "s", "n", 1, {"b": 2, "a": 1}
        )


class TestResultCache:
    def test_round_trip(self, tmp_path):
        cache = ResultCache(tmp_path / "c")
        key = cache.key("scenario", "base", 7, {"sim_s": 0.3})
        assert cache.load(key) is None
        cache.store(key, {"total_mean": 209.125})
        assert cache.load(key) == {"total_mean": 209.125}
        assert len(cache) == 1

    def test_floats_round_trip_bit_exact(self, tmp_path):
        cache = ResultCache(tmp_path)
        key = cache.key("scenario", "x", 1, {})
        value = 209.12487610619473
        cache.store(key, {"v": value, "inf": float("inf")})
        loaded = cache.load(key)
        assert loaded["v"] == value
        assert loaded["inf"] == float("inf")

    def test_uncacheable_spec_yields_no_key(self, tmp_path):
        cache = ResultCache(tmp_path)
        assert cache.key("scenario", "x", 1, {"fn": lambda: 0}) is None

    def test_corrupt_entry_is_a_miss(self, tmp_path):
        cache = ResultCache(tmp_path)
        key = cache.key("scenario", "x", 1, {})
        cache.store(key, {"v": 1.0})
        path = cache._path(key)
        path.write_text("{ not json")
        assert cache.load(key) is None

    def test_schema_mismatch_is_a_miss(self, tmp_path):
        cache = ResultCache(tmp_path)
        key = cache.key("scenario", "x", 1, {})
        cache._path(key).parent.mkdir(parents=True, exist_ok=True)
        cache._path(key).write_text(
            json.dumps({"schema": "other/9", "metrics": {"v": 1.0}})
        )
        assert cache.load(key) is None
        assert CELL_SCHEMA == "repro-cell/1"

    def test_version_partitions_the_cache(self, tmp_path):
        old = ResultCache(tmp_path, version="1.0")
        new = ResultCache(tmp_path, version="2.0")
        spec = {"sim_s": 0.3}
        old.store(old.key("scenario", "x", 1, spec), {"v": 1.0})
        assert new.load(new.key("scenario", "x", 1, spec)) is None


class TestCorruptionHandling:
    """A damaged entry is a miss, gets deleted, and is reported —
    never an exception, never stale data."""

    def _truncated_entry(self, tmp_path, **kwargs):
        cache = ResultCache(tmp_path, **kwargs)
        key = cache.key("scenario", "x", 1, {"sim_s": 0.3})
        cache.store(key, {"total_mean": 209.125, "requests": 48.0})
        path = cache._path(key)
        # Simulate a crash mid-write: valid JSON prefix, cut short.
        path.write_text(path.read_text()[:37])
        return cache, key, path

    def test_truncated_json_is_dropped_and_counted(self, tmp_path):
        cache, key, path = self._truncated_entry(tmp_path)
        assert cache.load(key) is None
        assert not path.exists()  # poisoned file removed from disk
        assert cache.corrupt_dropped == 1
        # the next load is an ordinary miss, not another corruption
        assert cache.load(key) is None
        assert cache.corrupt_dropped == 1

    def test_on_corruption_callback_receives_key_and_reason(self, tmp_path):
        seen = []
        cache, key, _ = self._truncated_entry(
            tmp_path, on_corruption=lambda k, reason: seen.append((k, reason))
        )
        cache.load(key)
        assert len(seen) == 1
        got_key, reason = seen[0]
        assert got_key == key
        assert reason.startswith("invalid JSON")

    def test_store_after_drop_recovers(self, tmp_path):
        cache, key, _ = self._truncated_entry(tmp_path)
        cache.load(key)
        cache.store(key, {"total_mean": 1.0})
        assert cache.load(key) == {"total_mean": 1.0}

    def test_unreadable_entry_reports_reason(self, tmp_path):
        seen = []
        cache = ResultCache(tmp_path, on_corruption=lambda k, r: seen.append(r))
        key = cache.key("scenario", "x", 1, {})
        path = cache._path(key)
        path.parent.mkdir(parents=True, exist_ok=True)
        path.mkdir()  # a directory where a file should be
        assert cache.load(key) is None
        assert len(seen) == 1
