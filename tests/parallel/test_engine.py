"""Sweep engine: ordering, caching, error capture, crash containment.

The cell kinds registered here are module-level functions so that
fork-started workers inherit them (the engine's pool uses the fork
start method exactly for this reason).
"""

import os
import time

import pytest

from repro.errors import ConfigError
from repro.parallel import (
    ResultCache,
    SweepJob,
    register_job_kind,
    run_sweep,
)
from repro.telemetry import SWEEP, TelemetryBus


def _square(job):
    # Finish out of submission order under a pool: earlier cells
    # sleep longer, so completion order inverts submission order.
    time.sleep(0.05 * max(0, 3 - job.seed))
    return {"value": float(job.seed * job.seed)}


def _boom(job):
    if job.seed == 1:
        raise ValueError("cell exploded")
    return {"value": float(job.seed)}


def _die(job):
    if job.seed == 1:
        os._exit(13)
    time.sleep(0.1)
    return {"value": float(job.seed)}


def _payload(job):
    return ["not", "a", "metrics", "mapping", job.seed]


register_job_kind("test-square", _square)
register_job_kind("test-boom", _boom)
register_job_kind("test-die", _die)
register_job_kind("test-payload", _payload)


def _jobs(kind, seeds, spec=None):
    return [SweepJob(kind, "t", s, dict(spec or {})) for s in seeds]


class TestMergeOrder:
    def test_serial_and_parallel_results_identical(self):
        serial = run_sweep(_jobs("test-square", range(4)), workers=1)
        pooled = run_sweep(_jobs("test-square", range(4)), workers=3)
        assert serial.values("value") == pooled.values("value")
        assert pooled.values("value") == (0.0, 1.0, 4.0, 9.0)

    def test_results_carry_worker_pids(self):
        pooled = run_sweep(_jobs("test-square", range(3)), workers=2)
        assert all(c.pid > 0 for c in pooled.cells)
        assert pooled.report.executed == 3
        assert set(pooled.report.worker_cells) == {
            c.pid for c in pooled.cells
        }

    def test_payload_cells_pass_objects_through(self):
        result = run_sweep(_jobs("test-payload", [5]), workers=1)
        assert result.cells[0].payload == ["not", "a", "metrics", "mapping", 5]
        assert result.cells[0].metrics is None

    def test_workers_must_be_positive(self):
        with pytest.raises(ConfigError):
            run_sweep([], workers=0)

    def test_unknown_kind_is_a_cell_error(self):
        result = run_sweep([SweepJob("no-such-kind", "t", 1)], workers=1)
        assert not result.cells[0].ok
        assert "no-such-kind" in result.cells[0].error


class TestCacheIntegration:
    def test_cold_then_warm(self, tmp_path):
        jobs = _jobs("test-square", range(3), {"alpha": 1})
        cold = run_sweep(jobs, workers=1, cache=tmp_path)
        assert (cold.report.executed, cold.report.cached) == (3, 0)
        warm = run_sweep(jobs, workers=1, cache=tmp_path)
        assert (warm.report.executed, warm.report.cached) == (0, 3)
        assert warm.values("value") == cold.values("value")
        assert all(c.cached for c in warm.cells)

    def test_spec_change_invalidates(self, tmp_path):
        run_sweep(_jobs("test-square", [2], {"alpha": 1}), cache=tmp_path)
        miss = run_sweep(_jobs("test-square", [2], {"alpha": 2}), cache=tmp_path)
        assert miss.report.cached == 0

    def test_version_change_invalidates(self, tmp_path):
        run_sweep(
            _jobs("test-square", [2]), cache=ResultCache(tmp_path, version="a")
        )
        miss = run_sweep(
            _jobs("test-square", [2]), cache=ResultCache(tmp_path, version="b")
        )
        assert miss.report.cached == 0

    def test_uncacheable_spec_still_runs(self, tmp_path):
        jobs = [SweepJob("test-square", "t", 2, {"fn": lambda: 0})]
        first = run_sweep(jobs, workers=1, cache=tmp_path)
        again = run_sweep(jobs, workers=1, cache=tmp_path)
        assert first.values("value") == again.values("value") == (4.0,)
        assert again.report.cached == 0  # never stored, never wrongly hit

    def test_errors_are_not_cached(self, tmp_path):
        jobs = _jobs("test-boom", [1])
        run_sweep(jobs, workers=1, cache=tmp_path)
        rerun = run_sweep(jobs, workers=1, cache=tmp_path)
        assert rerun.report.cached == 0
        assert rerun.report.errors == 1


class TestErrorContainment:
    def test_exception_captured_per_cell_with_traceback(self):
        result = run_sweep(_jobs("test-boom", range(3)), workers=2)
        errs = result.failed()
        assert len(errs) == 1
        assert errs[0].job.seed == 1
        assert "ValueError: cell exploded" in errs[0].error
        assert "Traceback" in errs[0].error
        # Healthy cells still completed.
        assert result.cells[0].metrics == {"value": 0.0}
        assert result.cells[2].metrics == {"value": 2.0}

    def test_values_on_failed_sweep_raises(self):
        result = run_sweep(_jobs("test-boom", [1]), workers=1)
        with pytest.raises(ConfigError, match="no metric"):
            result.values("value")

    def test_crashed_worker_yields_cell_errors_not_a_hang(self):
        # Seed 1's worker hard-exits mid-cell.  The pool breaks; every
        # in-flight/queued cell gets a per-cell error and run_sweep
        # still returns a full, ordered result list.
        result = run_sweep(_jobs("test-die", range(4)), workers=2)
        assert len(result.cells) == 4
        assert all(c is not None for c in result.cells)
        crashed = result.failed()
        assert crashed, "hard crash must surface as cell errors"
        assert any("worker process died" in c.error for c in crashed)
        assert result.report.errors == len(crashed)


class TestTelemetry:
    def test_sweep_records_on_the_bus(self):
        bus = TelemetryBus()
        run_sweep(_jobs("test-square", range(2)), workers=1, telemetry=bus)
        cells = [r for r in bus.select(cat=SWEEP) if r.name == "cell"]
        assert len(cells) == 2
        counters = [r.name for r in bus.select(kind="counter", cat=SWEEP)]
        assert {"cells", "cache_hits", "errors"} <= set(counters)

    def test_cache_hits_marked_in_telemetry(self, tmp_path):
        jobs = _jobs("test-square", range(2))
        run_sweep(jobs, workers=1, cache=tmp_path)
        bus = TelemetryBus()
        run_sweep(jobs, workers=1, cache=tmp_path, telemetry=bus)
        hits = [
            r
            for r in bus.select(cat=SWEEP)
            if r.name == "cell" and r.args_dict().get("cached")
        ]
        assert len(hits) == 2
