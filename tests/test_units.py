"""Tests for unit conversions and formatting helpers."""

import pytest

from repro import units


class TestTimeConversions:
    def test_constants(self):
        assert units.US == 1_000
        assert units.MS == 1_000_000
        assert units.SEC == 1_000_000_000

    def test_ns_to_x(self):
        assert units.ns_to_us(1_500) == 1.5
        assert units.ns_to_ms(2_500_000) == 2.5
        assert units.ns_to_s(3 * units.SEC) == 3.0

    def test_x_to_ns(self):
        assert units.us(2.5) == 2_500
        assert units.ms(1.5) == 1_500_000
        assert units.seconds(0.25) == 250_000_000

    def test_rounding(self):
        assert units.us(0.0004) == 0  # rounds
        assert units.us(0.0006) == 1


class TestDataUnits:
    def test_constants(self):
        assert units.KiB == 1024
        assert units.MiB == 1024**2
        assert units.GiB == 1024**3


class TestWireTime:
    def test_exact_division(self):
        # 1024 bytes at 1024 bytes/sec = exactly 1 second.
        assert units.wire_time_ns(1024, 1024.0) == units.SEC

    def test_rounds_up(self):
        # Never zero for a non-empty payload.
        assert units.wire_time_ns(1, 1e12) >= 1

    def test_zero_bytes(self):
        assert units.wire_time_ns(0, 1e9) == 0

    def test_paper_link(self):
        # 1 KiB MTU at 1 GiB/s: ~954 ns.
        t = units.wire_time_ns(1024, units.gbps_to_bytes_per_sec(8.0))
        assert t == pytest.approx(1024 / 1e9 * 1e9, rel=0.05)


class TestGbps:
    def test_conversion(self):
        assert units.gbps_to_bytes_per_sec(8.0) == 1e9


class TestFormatting:
    @pytest.mark.parametrize(
        "t,expected",
        [
            (500, "500ns"),
            (1_500, "1.500us"),
            (2_500_000, "2.500ms"),
            (3_000_000_000, "3.000s"),
        ],
    )
    def test_duration(self, t, expected):
        assert units.format_duration(t) == expected

    @pytest.mark.parametrize(
        "n,expected",
        [
            (512, "512B"),
            (64 * 1024, "64KB"),
            (2 * 1024 * 1024, "2MB"),
            (3 * 1024**3, "3GB"),
            (1536, "1536B"),  # non-multiple stays in bytes
        ],
    )
    def test_bytes(self, n, expected):
        assert units.format_bytes(n) == expected


class TestErrorHierarchy:
    def test_all_errors_derive_from_repro_error(self):
        from repro import errors

        for name in dir(errors):
            cls = getattr(errors, name)
            if (
                isinstance(cls, type)
                and issubclass(cls, Exception)
                and cls not in (errors.ReproError, errors.StopSimulation)
                and cls.__module__ == "repro.errors"
            ):
                assert issubclass(cls, errors.ReproError), name

    def test_stop_simulation_carries_value(self):
        from repro.errors import StopSimulation

        assert StopSimulation(42).value == 42
