"""IBMon tests: estimates vs HCA ground truth, classification, raciness."""

import pytest

from repro.benchex import BenchExConfig, BenchExPair, run_pairs
from repro.errors import IntrospectionError
from repro.experiments.platform import Testbed
from repro.ibmon import IBMon
from repro.units import MS, KiB


def run_with_ibmon(cfg, n=120, sample_interval=250_000):
    bed = Testbed.paper_testbed(seed=9)
    s, c = bed.node("server-host"), bed.node("client-host")
    pair = BenchExPair(bed, s, c, cfg)
    ibmon = IBMon(s, sample_interval_ns=sample_interval)
    ibmon.watch_domain(pair.server_dom.domid)
    ibmon.start()
    run_pairs(bed, [pair])
    ibmon.sample_now()  # catch the tail
    return bed, pair, ibmon


class TestEstimation:
    def test_mtus_estimate_matches_ground_truth(self):
        """IBMon's MTUsSent must track the HCA's exact per-domain count."""
        cfg = BenchExConfig(name="rep", request_limit=120, warmup_requests=0)
        bed, pair, ibmon = run_with_ibmon(cfg)
        stats = ibmon.drain(pair.server_dom.domid)
        truth = bed.node("server-host").hca.mtus_sent_by_domain[
            pair.server_dom.domid
        ]
        assert stats.estimated_mtus == pytest.approx(truth, rel=0.03)

    def test_buffer_size_inference(self):
        cfg = BenchExConfig(name="rep", request_limit=60, warmup_requests=0)
        _, pair, ibmon = run_with_ibmon(cfg)
        stats = ibmon.drain(pair.server_dom.domid)
        assert stats.buffer_size_estimate == 64 * KiB

    def test_large_buffer_instance(self):
        cfg = BenchExConfig(
            name="big", buffer_bytes=512 * KiB, request_limit=40, warmup_requests=0
        )
        bed, pair, ibmon = run_with_ibmon(cfg)
        stats = ibmon.drain(pair.server_dom.domid)
        assert stats.buffer_size_estimate == 512 * KiB
        truth = bed.node("server-host").hca.mtus_sent_by_domain[
            pair.server_dom.domid
        ]
        assert stats.estimated_mtus == pytest.approx(truth, rel=0.05)

    def test_qp_number_detection(self):
        """Paper SIII: IBMon detects the QP number used by the app."""
        cfg = BenchExConfig(name="rep", request_limit=40, warmup_requests=0)
        _, pair, ibmon = run_with_ibmon(cfg)
        stats = ibmon.drain(pair.server_dom.domid)
        assert len(stats.qp_nums) >= 1

    def test_drain_resets_accumulators(self):
        cfg = BenchExConfig(name="rep", request_limit=60, warmup_requests=0)
        _, pair, ibmon = run_with_ibmon(cfg)
        first = ibmon.drain(pair.server_dom.domid)
        assert first.estimated_mtus > 0
        second = ibmon.drain(pair.server_dom.domid)
        assert second.estimated_mtus == 0

    def test_recv_completions_not_counted_as_sent(self):
        """Only send-side completions count toward MTUsSent: the server
        sends exactly what it receives here (same size both ways), so an
        estimate that double counted would be ~2x ground truth."""
        cfg = BenchExConfig(name="rep", request_limit=100, warmup_requests=0)
        bed, pair, ibmon = run_with_ibmon(cfg)
        stats = ibmon.drain(pair.server_dom.domid)
        truth = bed.node("server-host").hca.mtus_sent_by_domain[
            pair.server_dom.domid
        ]
        assert stats.estimated_mtus < truth * 1.5


class TestDaemonBehaviour:
    def test_unwatched_domain_rejected(self):
        bed = Testbed.paper_testbed(seed=1)
        ibmon = IBMon(bed.node("server-host"))
        with pytest.raises(IntrospectionError):
            ibmon.drain(42)

    def test_invalid_interval(self):
        bed = Testbed.paper_testbed(seed=1)
        with pytest.raises(IntrospectionError):
            IBMon(bed.node("server-host"), sample_interval_ns=0)

    def test_sampling_consumes_dom0_cpu(self):
        cfg = BenchExConfig(name="rep", request_limit=60, warmup_requests=0)
        bed, pair, ibmon = run_with_ibmon(cfg)
        dom0 = bed.node("server-host").hypervisor.dom0
        assert dom0.vcpu.cumulative_ns > 0
        assert ibmon.samples_taken > 10

    def test_coarse_sampling_still_counts_everything(self):
        """Counts come from the monotonic producer index, so even a slow
        sampler misses nothing (only entry *contents* are racy)."""
        cfg = BenchExConfig(name="rep", request_limit=80, warmup_requests=0)
        bed, pair, ibmon = run_with_ibmon(cfg, sample_interval=5 * MS)
        stats = ibmon.drain(pair.server_dom.domid)
        truth = bed.node("server-host").hca.mtus_sent_by_domain[
            pair.server_dom.domid
        ]
        assert stats.estimated_mtus == pytest.approx(truth, rel=0.10)

    def test_two_vms_monitored_independently(self):
        bed = Testbed.paper_testbed(seed=4)
        s, c = bed.node("server-host"), bed.node("client-host")
        small = BenchExPair(
            bed, s, c, BenchExConfig(name="small", request_limit=80, warmup_requests=0)
        )
        big = BenchExPair(
            bed,
            s,
            c,
            BenchExConfig(
                name="big",
                buffer_bytes=256 * KiB,
                request_limit=30,
                warmup_requests=0,
            ),
        )
        ibmon = IBMon(s)
        ibmon.watch_domain(small.server_dom.domid)
        ibmon.watch_domain(big.server_dom.domid)
        ibmon.start()
        run_pairs(bed, [small, big])
        ibmon.sample_now()
        s_stats = ibmon.drain(small.server_dom.domid)
        b_stats = ibmon.drain(big.server_dom.domid)
        assert s_stats.buffer_size_estimate == 64 * KiB
        assert b_stats.buffer_size_estimate == 256 * KiB
        # The big VM moved more MTUs despite fewer requests.
        assert b_stats.estimated_mtus > s_stats.estimated_mtus
