"""Split-driver placement and control-path cost tests."""

import pytest

from repro.errors import HypervisorError
from repro.experiments.platform import Testbed
from repro.ib import Access
from repro.units import US, KiB
from repro.xen import IBBackend, IBFrontend


@pytest.fixture
def bed():
    return Testbed.paper_testbed(seed=6)


class TestPlacement:
    def test_backend_requires_dom0(self, bed):
        node = bed.node("server-host")
        guest = node.create_guest("guest")
        with pytest.raises(HypervisorError, match="dom0"):
            IBBackend(node.hca, guest)

    def test_frontend_rejects_dom0(self, bed):
        node = bed.node("server-host")
        with pytest.raises(HypervisorError, match="guest"):
            IBFrontend(node.hypervisor.dom0, node.backend)

    def test_frontend_registers_with_backend(self, bed):
        node = bed.node("server-host")
        guest = node.create_guest("guest")
        fe = node.frontend(guest)
        assert node.backend.frontends[guest.domid] is fe


class TestControlPathCosts:
    def test_control_ops_charge_both_sides(self, bed):
        """Each control op costs the guest a hypercall and dom0 backend
        work — the slow path VMM-bypass avoids on the data path."""
        node = bed.node("server-host")
        guest = node.create_guest("guest")
        fe = node.frontend(guest)
        done = {}

        def scenario(env):
            ctx = yield from fe.open_context()
            yield from fe.create_cq(ctx)
            yield from fe.reg_mr(ctx, 64 * KiB, Access.full())
            done["guest_cpu"] = guest.vcpu.cumulative_ns
            done["dom0_cpu"] = node.hypervisor.dom0.vcpu.cumulative_ns
            done["ops"] = node.backend.ops_served

        proc = bed.env.process(scenario(bed.env))
        bed.env.run(until=proc)
        assert done["ops"] == 3
        assert done["guest_cpu"] >= 3 * 10 * US  # three hypercalls
        assert done["dom0_cpu"] >= 3 * 20 * US  # three backend ops

    def test_fast_path_never_touches_backend(self, bed):
        """Posts and polls leave the backend op counter unchanged."""
        node = bed.node("server-host")
        cnode = bed.node("client-host")
        sdom = node.create_guest("s")
        cdom = cnode.create_guest("c")
        counts = {}

        def scenario(env):
            from repro.ib import connect

            sfe, cfe = node.frontend(sdom), cnode.frontend(cdom)
            sctx = yield from sfe.open_context()
            cctx = yield from cfe.open_context()
            scq = yield from sfe.create_cq(sctx)
            ccq = yield from cfe.create_cq(cctx)
            sqp = yield from sfe.create_qp(sctx, scq)
            cqp = yield from cfe.create_qp(cctx, ccq)
            yield from connect(sctx, sqp, cctx, cqp)
            smr = yield from cfe.reg_mr(cctx, KiB, Access.full())
            rmr = yield from sfe.reg_mr(sctx, KiB, Access.full())
            counts["before"] = (
                node.backend.ops_served + cnode.backend.ops_served
            )
            # Data path: 10 request/response rounds.
            for _ in range(10):
                yield from sctx.post_recv(sqp, rmr)
                yield from cctx.post_send(cqp, smr)
                yield from sctx.poll_cq_blocking(scq)
            counts["after"] = (
                node.backend.ops_served + cnode.backend.ops_served
            )

        proc = bed.env.process(scenario(bed.env))
        bed.env.run(until=proc)
        assert counts["after"] == counts["before"]
