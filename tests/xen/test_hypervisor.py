"""Tests for Hypervisor, Domain, XenStat, and introspection."""

import pytest

from repro.errors import HypervisorError, IntrospectionError, SchedulerError
from repro.hw import Host
from repro.sim import Environment
from repro.units import MS
from repro.xen import Hypervisor, XenStat, xc_map_foreign_range


@pytest.fixture
def env():
    return Environment()


@pytest.fixture
def hv(env):
    return Hypervisor(env, Host("hostA", ncpus=4))


class TestDomainLifecycle:
    def test_dom0_exists(self, hv):
        assert hv.dom0.domid == 0
        assert hv.dom0.is_privileged

    def test_create_domain_ids_increment(self, hv):
        d1 = hv.create_domain("vm1", pcpus=[1])
        d2 = hv.create_domain("vm2", pcpus=[2])
        assert (d1.domid, d2.domid) == (1, 2)
        assert not d1.is_privileged

    def test_lookup_by_id_and_name(self, hv):
        d = hv.create_domain("vm1", pcpus=[1])
        assert hv.domain(d.domid) is d
        assert hv.domain_by_name("vm1") is d
        with pytest.raises(HypervisorError):
            hv.domain(99)
        with pytest.raises(HypervisorError):
            hv.domain_by_name("nope")

    def test_guest_domains_excludes_dom0(self, hv):
        hv.create_domain("vm1", pcpus=[1])
        hv.create_domain("vm2", pcpus=[2])
        names = [d.name for d in hv.guest_domains()]
        assert names == ["vm1", "vm2"]

    def test_invalid_pcpu_rejected(self, hv):
        with pytest.raises(HypervisorError):
            hv.create_domain("vm", pcpus=[42])
        with pytest.raises(HypervisorError):
            hv.create_domain("vm", pcpus=[])

    def test_multi_vcpu_domain(self, hv):
        d = hv.create_domain("smp", pcpus=[1, 2])
        assert len(d.vcpus) == 2


class TestCapControls:
    def test_set_get_cap(self, hv):
        d = hv.create_domain("vm1", pcpus=[1])
        hv.set_cap(d.domid, 25)
        assert hv.get_cap(d.domid) == 25

    def test_bad_cap_rejected(self, hv):
        d = hv.create_domain("vm1", pcpus=[1])
        with pytest.raises(SchedulerError):
            hv.set_cap(d.domid, 0)

    def test_set_weight(self, hv):
        d = hv.create_domain("vm1", pcpus=[1])
        hv.set_weight(d.domid, 512)
        assert d.vcpu.weight == 512
        with pytest.raises(HypervisorError):
            hv.set_weight(d.domid, 0)


class TestXenStat:
    def test_cpu_time_counter(self, env, hv):
        d = hv.create_domain("vm1", pcpus=[1])
        stat = XenStat(hv)

        def app(env):
            yield d.vcpu.compute(3 * MS)

        env.process(app(env))
        env.run(until=10 * MS)
        assert stat.cpu_time_ns(d.domid) == 3 * MS

    def test_percent_since_last(self, env, hv):
        d = hv.create_domain("vm1", pcpus=[1])
        stat = XenStat(hv)
        readings = []

        def app(env):
            yield d.vcpu.compute(50 * MS)

        def sampler(env):
            stat.cpu_percent_since_last(d.domid)  # baseline
            for _ in range(4):
                yield env.timeout(10 * MS)
                readings.append(stat.cpu_percent_since_last(d.domid))

        env.process(app(env))
        env.process(sampler(env))
        env.run(until=60 * MS)
        for pct in readings:
            assert pct == pytest.approx(100.0, abs=1.0)

    def test_percent_reflects_cap(self, env, hv):
        d = hv.create_domain("vm1", pcpus=[1], cap_percent=30)
        stat = XenStat(hv)
        readings = []

        def app(env):
            yield d.vcpu.compute(100 * MS)

        def sampler(env):
            stat.cpu_percent_since_last(d.domid)
            while env.now < 95 * MS:
                yield env.timeout(20 * MS)
                readings.append(stat.cpu_percent_since_last(d.domid))

        env.process(app(env))
        env.process(sampler(env))
        env.run(until=100 * MS)
        for pct in readings:
            assert pct == pytest.approx(30.0, abs=3.0)

    def test_first_read_is_zero(self, hv):
        d = hv.create_domain("vm1", pcpus=[1])
        stat = XenStat(hv)
        assert stat.cpu_percent_since_last(d.domid) == 0.0

    def test_set_cap_via_xenstat(self, hv):
        d = hv.create_domain("vm1", pcpus=[1])
        stat = XenStat(hv)
        stat.set_cap(d.domid, 40)
        assert stat.get_cap(d.domid) == 40


class TestIntrospection:
    def test_dom0_can_map_guest_pages(self, env, hv):
        guest = hv.create_domain("vm1", pcpus=[1])
        pages = guest.address_space.extend(4)

        class Ring:
            producer_index = 7

        guest.address_space.translate(pages.start).content = Ring()
        views = xc_map_foreign_range(hv, hv.dom0, guest.domid, pages.start, 1)
        assert views[0].content.producer_index == 7

    def test_view_tracks_hardware_updates(self, env, hv):
        guest = hv.create_domain("vm1", pcpus=[1])
        pages = guest.address_space.extend(1)

        class Ring:
            producer_index = 0

        ring = Ring()
        guest.address_space.translate(pages.start).content = ring
        view = xc_map_foreign_range(hv, hv.dom0, guest.domid, pages.start, 1)[0]
        ring.producer_index = 42  # "HCA DMA write"
        assert view.content.producer_index == 42

    def test_unprivileged_domain_cannot_map(self, hv):
        guest1 = hv.create_domain("vm1", pcpus=[1])
        guest2 = hv.create_domain("vm2", pcpus=[2])
        guest2.address_space.extend(1)
        with pytest.raises(IntrospectionError, match="not privileged"):
            xc_map_foreign_range(hv, guest1, guest2.domid, 0, 1)

    def test_unmapped_gpfn_raises(self, hv):
        guest = hv.create_domain("vm1", pcpus=[1])
        with pytest.raises(IntrospectionError):
            xc_map_foreign_range(hv, hv.dom0, guest.domid, 0, 1)

    def test_views_are_read_only(self, env, hv):
        guest = hv.create_domain("vm1", pcpus=[1])
        pages = guest.address_space.extend(1)
        view = xc_map_foreign_range(hv, hv.dom0, guest.domid, pages.start, 1)[0]
        with pytest.raises(HypervisorError):
            view.content = "overwrite"


class TestIsolationScenario:
    def test_pinned_domains_do_not_contend_for_cpu(self, env, hv):
        """Each VM on its own core: CPU times are independent (paper setup)."""
        d1 = hv.create_domain("vm1", pcpus=[1])
        d2 = hv.create_domain("vm2", pcpus=[2])
        finish = {}

        def app(env, dom, tag):
            yield dom.vcpu.compute(5 * MS)
            finish[tag] = env.now

        env.process(app(env, d1, "a"))
        env.process(app(env, d2, "b"))
        env.run(until=20 * MS)
        assert finish["a"] == 5 * MS
        assert finish["b"] == 5 * MS
