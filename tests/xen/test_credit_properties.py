"""Property-based tests on credit-scheduler invariants (hypothesis)."""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.sim import Environment
from repro.units import MS, US
from repro.xen.credit import PCPUScheduler
from repro.xen.vcpu import VCPU


@given(
    cap=st.integers(min_value=1, max_value=100),
    bursts=st.lists(
        st.integers(min_value=1 * US, max_value=5 * MS), min_size=1, max_size=10
    ),
)
@settings(max_examples=60, deadline=None)
def test_cap_is_never_exceeded_per_period(cap, bursts):
    """In any accounting period a VCPU consumes at most cap% + one
    final-poll-check of slack."""
    env = Environment()
    sched = PCPUScheduler(env, 0)
    vcpu = VCPU(env, 0, cap_percent=cap)
    sched.attach(vcpu)

    usage_by_period = {}
    orig_run = sched._run_vcpu

    def tracking_run(v, horizon):
        start = env.now
        ran = yield from orig_run(v, horizon)
        period = start // sched.period_ns
        usage_by_period[period] = usage_by_period.get(period, 0) + ran
        return ran

    sched._run_vcpu = tracking_run

    def app(env):
        for burst in bursts:
            yield vcpu.compute(burst)

    env.process(app(env))
    env.run(until=200 * MS)

    budget = sched.period_ns * cap // 100
    for period, used in usage_by_period.items():
        # Slack: a quantum may straddle a period edge by the final poll
        # check; compute quanta are clipped exactly.
        assert used <= budget + 1000, (period, used, budget)


@given(
    cap=st.integers(min_value=10, max_value=100),
    work_ms=st.integers(min_value=5, max_value=40),
)
@settings(max_examples=40, deadline=None)
def test_throughput_matches_cap(cap, work_ms):
    """CPU-bound work completes in ~work/cap wall time."""
    env = Environment()
    sched = PCPUScheduler(env, 0)
    vcpu = VCPU(env, 0, cap_percent=cap)
    sched.attach(vcpu)
    work = work_ms * MS

    def app(env):
        yield vcpu.compute(work)

    proc = env.process(app(env))
    env.run(until=proc)
    expected = work * 100 / cap
    # Within one period of the ideal completion time.
    assert expected - 10 * MS <= env.now <= expected + 10 * MS


@given(
    weights=st.lists(st.sampled_from([128, 256, 512]), min_size=2, max_size=4),
)
@settings(max_examples=30, deadline=None)
def test_weighted_shares_converge(weights):
    """Long-run CPU shares are proportional to weights while all VCPUs
    stay busy."""
    env = Environment()
    sched = PCPUScheduler(env, 0)
    vcpus = []
    for i, w in enumerate(weights):
        v = VCPU(env, i, weight=w)
        sched.attach(v)
        vcpus.append(v)

        def app(env, v=v):
            yield v.compute(10_000 * MS)  # effectively unbounded

        env.process(app(env))

    env.run(until=200 * MS)
    total_weight = sum(weights)
    for v, w in zip(vcpus, weights):
        expected = 200 * MS * w / total_weight
        assert abs(v.cumulative_ns - expected) <= 0.08 * 200 * MS, (
            v.vcpu_id,
            v.cumulative_ns,
            expected,
        )


@given(data=st.data())
@settings(max_examples=30, deadline=None)
def test_total_cpu_time_conserved(data):
    """Sum of per-VCPU consumption equals scheduler busy time, and never
    exceeds wall time (one PCPU)."""
    env = Environment()
    sched = PCPUScheduler(env, 0)
    n = data.draw(st.integers(min_value=1, max_value=4))
    vcpus = []
    for i in range(n):
        cap = data.draw(st.integers(min_value=10, max_value=100))
        v = VCPU(env, i, cap_percent=cap)
        sched.attach(v)
        vcpus.append(v)
        bursts = data.draw(
            st.lists(
                st.integers(min_value=1 * US, max_value=2 * MS),
                min_size=1,
                max_size=5,
            )
        )

        def app(env, v=v, bursts=bursts):
            for b in bursts:
                yield v.compute(b)

        env.process(app(env))

    env.run(until=100 * MS)
    total = sum(v.cumulative_ns for v in vcpus)
    assert total == sched.busy_ns
    assert total <= 100 * MS
