"""Tests for the credit scheduler: caps, weights, polling semantics."""

import pytest

from repro.errors import SchedulerError
from repro.sim import Environment
from repro.units import MS, US
from repro.xen.credit import PCPUScheduler
from repro.xen.vcpu import VCPU


@pytest.fixture
def env():
    return Environment()


def make(env, *, cap=100, weight=256, period=10 * MS):
    sched = PCPUScheduler(env, 0, period_ns=period)
    vcpu = VCPU(env, 0, weight=weight, cap_percent=cap)
    sched.attach(vcpu)
    return sched, vcpu


class TestBasicExecution:
    def test_compute_runs_to_completion(self, env):
        _, vcpu = make(env)
        done = []

        def app(env):
            yield vcpu.compute(50 * US)
            done.append(env.now)

        env.process(app(env))
        env.run(until=1 * MS)
        assert done == [50 * US]

    def test_sequential_computes_accumulate(self, env):
        _, vcpu = make(env)
        stamps = []

        def app(env):
            for _ in range(3):
                yield vcpu.compute(10 * US)
                stamps.append(env.now)

        env.process(app(env))
        env.run(until=1 * MS)
        assert stamps == [10 * US, 20 * US, 30 * US]

    def test_cumulative_accounting(self, env):
        _, vcpu = make(env)

        def app(env):
            yield vcpu.compute(100 * US)
            yield vcpu.compute(200 * US)

        env.process(app(env))
        env.run(until=1 * MS)
        assert vcpu.cumulative_ns == 300 * US

    def test_unattached_vcpu_rejects_work(self, env):
        vcpu = VCPU(env, 0)
        with pytest.raises(SchedulerError):
            vcpu.compute(10)

    def test_zero_duration_compute(self, env):
        _, vcpu = make(env)
        done = []

        def app(env):
            yield vcpu.compute(0)
            done.append(env.now)

        env.process(app(env))
        env.run(until=1 * MS)
        assert done == [0]

    def test_negative_duration_rejected(self, env):
        _, vcpu = make(env)
        with pytest.raises(SchedulerError):
            vcpu.compute(-1)


class TestCaps:
    def test_cap_throttles_long_compute(self, env):
        """A 50% capped VCPU takes ~2x wall time for CPU-bound work."""
        _, vcpu = make(env, cap=50)
        done = []

        def app(env):
            yield vcpu.compute(20 * MS)  # needs 4 periods at 50% of 10ms
            done.append(env.now)

        env.process(app(env))
        env.run(until=100 * MS)
        # 20ms of work at 5ms per 10ms period: finishes in the 4th period.
        assert done, "work never completed"
        assert done[0] == pytest.approx(35 * MS, abs=1 * MS)

    def test_cap_10_percent(self, env):
        _, vcpu = make(env, cap=10)

        def app(env):
            yield vcpu.compute(5 * MS)

        p = env.process(app(env))
        env.run(until=p)
        # 5ms at 1ms/period: 5 periods; finishes at 4*10ms + 1ms = 41ms.
        assert env.now == pytest.approx(41 * MS, abs=1 * MS)

    def test_cap_setting_validation(self, env):
        _, vcpu = make(env)
        with pytest.raises(SchedulerError):
            vcpu.cap_percent = 0
        with pytest.raises(SchedulerError):
            vcpu.cap_percent = 101
        vcpu.cap_percent = 1  # minimum legal
        vcpu.cap_percent = 100

    def test_cap_change_mid_run_takes_effect(self, env):
        _, vcpu = make(env, cap=100)

        def app(env):
            yield vcpu.compute(40 * MS)

        def controller(env):
            yield env.timeout(10 * MS)  # after one full-speed period
            vcpu.cap_percent = 50

        p = env.process(app(env))
        env.process(controller(env))
        env.run(until=p)
        # 10ms done in the first period; remaining 30ms at 5ms/period:
        # 6 more periods -> ends at 10ms + 5*10ms + 5ms = 65ms.
        assert env.now == pytest.approx(65 * MS, abs=2 * MS)

    def test_uncapped_work_unaffected_by_period_edges(self, env):
        _, vcpu = make(env, cap=100)

        def app(env):
            yield vcpu.compute(25 * MS)

        p = env.process(app(env))
        env.run(until=p)
        assert env.now == 25 * MS

    def test_capped_vcpu_parks_pcpu_idle(self, env):
        """Cap is not work-conserving: PCPU idles while the VCPU waits."""
        sched, vcpu = make(env, cap=50)

        def app(env):
            yield vcpu.compute(10 * MS)

        p = env.process(app(env))
        env.run(until=p)
        # busy only 10ms out of ~15-20ms elapsed.
        assert sched.busy_ns == 10 * MS
        assert env.now > 14 * MS


class TestWeightedSharing:
    def test_equal_weights_split_evenly(self, env):
        sched = PCPUScheduler(env, 0)
        v1 = VCPU(env, 0, weight=256)
        v2 = VCPU(env, 1, weight=256)
        sched.attach(v1)
        sched.attach(v2)
        finish = {}

        def app(env, vcpu, tag):
            yield vcpu.compute(10 * MS)
            finish[tag] = env.now

        env.process(app(env, v1, "a"))
        env.process(app(env, v2, "b"))
        env.run(until=50 * MS)
        # Both need 10ms CPU, sharing one PCPU: both done ~20ms.
        assert finish["a"] == pytest.approx(20 * MS, abs=2 * MS)
        assert finish["b"] == pytest.approx(20 * MS, abs=2 * MS)

    def test_weight_ratio_respected(self, env):
        sched = PCPUScheduler(env, 0)
        heavy = VCPU(env, 0, weight=512)
        light = VCPU(env, 1, weight=256)
        sched.attach(heavy)
        sched.attach(light)
        finish = {}

        def app(env, vcpu, tag, work):
            yield vcpu.compute(work)
            finish[tag] = env.now

        env.process(app(env, heavy, "heavy", 12 * MS))
        env.process(app(env, light, "light", 12 * MS))
        env.run(until=100 * MS)
        # heavy gets ~2/3 of the CPU while both run: finishes ~18ms.
        assert finish["heavy"] == pytest.approx(18 * MS, abs=2 * MS)
        assert finish["light"] == pytest.approx(24 * MS, abs=2 * MS)

    def test_work_conserving_when_one_idles(self, env):
        sched = PCPUScheduler(env, 0)
        v1 = VCPU(env, 0)
        v2 = VCPU(env, 1)
        sched.attach(v1)
        sched.attach(v2)
        finish = {}

        def busy(env):
            yield v1.compute(10 * MS)
            finish["busy"] = env.now

        env.process(busy(env))
        env.run(until=50 * MS)
        # v2 idle: v1 gets the whole PCPU.
        assert finish["busy"] == 10 * MS


class TestPolling:
    def test_poll_completes_when_event_fires(self, env):
        _, vcpu = make(env)
        result = {}

        def app(env):
            ev = env.event()

            def firer(env):
                yield env.timeout(30 * US)
                ev.succeed()

            env.process(firer(env))
            polled = yield vcpu.poll_until(ev, check_cost_ns=200)
            result["polled"] = polled
            result["at"] = env.now

        env.process(app(env))
        env.run(until=1 * MS)
        # Noticed just after the event fired (+ final check cost).
        assert result["at"] == pytest.approx(30 * US, abs=1 * US)
        # Poll CPU burned is roughly the whole wait.
        assert result["polled"] == pytest.approx(30 * US, abs=1 * US)

    def test_poll_on_already_fired_event_costs_one_check(self, env):
        _, vcpu = make(env)
        result = {}

        def app(env):
            ev = env.event()
            ev.succeed()
            yield env.timeout(10 * US)
            polled = yield vcpu.poll_until(ev, check_cost_ns=200)
            result["polled"] = polled
            result["at"] = env.now

        env.process(app(env))
        env.run(until=1 * MS)
        assert result["polled"] == 200
        assert result["at"] == 10 * US + 200

    def test_capped_vcpu_notices_completion_late(self, env):
        """A parked (capped-out) VCPU cannot observe a CQE until it is
        scheduled again — the PTime inflation mechanism."""
        _, vcpu = make(env, cap=10)  # 1ms budget per 10ms period
        result = {}

        def app(env):
            # Burn the period budget first.
            yield vcpu.compute(1 * MS)
            ev = env.event()

            def firer(env):
                yield env.timeout(2 * MS)  # fires while vcpu is parked
                ev.succeed()

            env.process(firer(env))
            yield vcpu.poll_until(ev)
            result["at"] = env.now

        env.process(app(env))
        env.run(until=100 * MS)
        # Event at 2ms, but vcpu parked until the next period at 10ms.
        assert result["at"] >= 10 * MS

    def test_poll_cpu_time_counts_toward_cap(self, env):
        _, vcpu = make(env, cap=50)

        def app(env):
            ev = env.event()  # never fires: poll forever
            yield vcpu.poll_until(ev)

        env.process(app(env))
        env.run(until=40 * MS)
        # Polled 50% of 40ms.
        assert vcpu.cumulative_ns == pytest.approx(20 * MS, rel=0.1)

    def test_invalid_check_cost(self, env):
        _, vcpu = make(env)
        with pytest.raises(SchedulerError):
            vcpu.poll_until(env.event(), check_cost_ns=0)


class TestSchedulerConfig:
    def test_invalid_period(self, env):
        with pytest.raises(SchedulerError):
            PCPUScheduler(env, 0, period_ns=0)

    def test_quantum_gt_period_rejected(self, env):
        with pytest.raises(SchedulerError):
            PCPUScheduler(env, 0, period_ns=1 * MS, quantum_ns=2 * MS)

    def test_double_attach_rejected(self, env):
        sched, vcpu = make(env)
        other = PCPUScheduler(env, 1)
        with pytest.raises(SchedulerError):
            other.attach(vcpu)

    def test_utilization_stat(self, env):
        sched, vcpu = make(env)

        def app(env):
            yield vcpu.compute(5 * MS)

        env.process(app(env))
        env.run(until=10 * MS)
        assert sched.utilization(10 * MS) == pytest.approx(0.5)
        assert sched.utilization(0) == 0.0
