"""Domain destruction: resource teardown and failure propagation."""

import pytest

from repro.errors import HypervisorError
from repro.experiments import Testbed
from repro.ib import Access, QPState, WCStatus, connect
from repro.units import MS, KiB


@pytest.fixture
def rig():
    bed = Testbed.paper_testbed(seed=3)
    return bed, bed.node("server-host"), bed.node("client-host")


class TestDestroyDomain:
    def test_cannot_destroy_dom0(self, rig):
        _, s, _ = rig
        with pytest.raises(HypervisorError, match="dom0"):
            s.hypervisor.destroy_domain(0)

    def test_domain_removed(self, rig):
        _, s, _ = rig
        dom = s.create_guest("victim")
        s.hypervisor.destroy_domain(dom.domid)
        assert not dom.alive
        with pytest.raises(HypervisorError):
            s.hypervisor.domain(dom.domid)

    def test_vcpus_detached_from_scheduler(self, rig):
        _, s, _ = rig
        dom = s.create_guest("victim")
        sched = dom.vcpu.scheduler
        s.hypervisor.destroy_domain(dom.domid)
        assert dom.vcpu not in sched.vcpus

    def test_pending_work_fails_waiters(self, rig):
        bed, s, _ = rig
        dom = s.create_guest("victim")
        caught = []

        def app(env):
            try:
                yield dom.vcpu.compute(50 * MS)
            except HypervisorError:
                caught.append(True)

        def killer(env):
            yield env.timeout(1 * MS)
            s.hypervisor.destroy_domain(dom.domid)

        bed.env.process(app(bed.env))
        bed.env.process(killer(bed.env))
        bed.env.run(until=10 * MS)
        assert caught == [True]

    def test_mrs_unpinned_and_qps_errored(self, rig):
        bed, s, c = rig
        sdom = s.create_guest("s")
        cdom = c.create_guest("c")
        state = {}

        def scenario(env):
            sfe, cfe = s.frontend(sdom), c.frontend(cdom)
            sctx = yield from sfe.open_context()
            cctx = yield from cfe.open_context()
            scq = yield from sfe.create_cq(sctx)
            ccq = yield from cfe.create_cq(cctx)
            sqp = yield from sfe.create_qp(sctx, scq)
            cqp = yield from cfe.create_qp(cctx, ccq)
            yield from connect(sctx, sqp, cctx, cqp)
            mr = yield from sfe.reg_mr(sctx, 64 * KiB, Access.full())
            state["mr"] = mr
            state["sqp"] = sqp
            state["cqp"] = cqp
            state["cctx"] = cctx
            state["ccq"] = ccq
            state["cfe"] = cfe

        proc = bed.env.process(scenario(bed.env))
        bed.env.run(until=proc)
        s.hypervisor.destroy_domain(sdom.domid)

        assert state["sqp"].state is QPState.ERROR
        mr = state["mr"]
        assert not mr.valid
        assert not any(f.pinned for f in mr.buffer.frames())

    def test_send_to_destroyed_peer_errors(self, rig):
        bed, s, c = rig
        sdom = s.create_guest("s")
        cdom = c.create_guest("c")
        result = {}

        def scenario(env):
            sfe, cfe = s.frontend(sdom), c.frontend(cdom)
            sctx = yield from sfe.open_context()
            cctx = yield from cfe.open_context()
            scq = yield from sfe.create_cq(sctx)
            ccq = yield from cfe.create_cq(cctx)
            sqp = yield from sfe.create_qp(sctx, scq)
            cqp = yield from cfe.create_qp(cctx, ccq)
            yield from connect(sctx, sqp, cctx, cqp)
            smr = yield from cfe.reg_mr(cctx, 4 * KiB, Access.full())
            # Destroy the server mid-flight, then send to it.
            s.hypervisor.destroy_domain(sdom.domid)
            yield from cctx.post_send(cqp, smr)
            cqes, _ = yield from cctx.poll_cq_blocking(ccq)
            result["status"] = cqes[0].status

        proc = bed.env.process(scenario(bed.env))
        bed.env.run(until=proc)
        assert result["status"] is not WCStatus.SUCCESS
