"""CLI tests (argument parsing and end-to-end command runs)."""

import pytest

from repro.cli import _parse_size, main
from repro.units import KiB, MiB


class TestParseSize:
    @pytest.mark.parametrize(
        "text,expected",
        [
            ("64KB", 64 * KiB),
            ("64kb", 64 * KiB),
            ("2MB", 2 * MiB),
            ("1MiB", MiB),
            ("1024", 1024),
            (" 128KB ", 128 * KiB),
        ],
    )
    def test_sizes(self, text, expected):
        assert _parse_size(text) == expected

    def test_garbage_raises(self):
        import argparse

        with pytest.raises(argparse.ArgumentTypeError, match="invalid size"):
            _parse_size("lots")

    def test_garbage_flag_is_clean_cli_error(self, capsys):
        with pytest.raises(SystemExit) as exc:
            main(["scenario", "--interferer", "lots"])
        assert exc.value.code == 2
        assert "invalid size 'lots'" in capsys.readouterr().err


class TestFiguresCommand:
    def test_list(self, capsys):
        assert main(["figures", "--list"]) == 0
        out = capsys.readouterr().out
        for name in ("fig1", "fig9", "headline"):
            assert name in out

    def test_unknown_figure(self, capsys):
        assert main(["figures", "nope"]) == 2
        assert "unknown" in capsys.readouterr().err

    def test_no_selection(self, capsys):
        assert main(["figures"]) == 2

    def test_run_one_figure_and_save(self, capsys, tmp_path, monkeypatch):
        monkeypatch.setenv("REPRO_SCALE", "fast")
        assert main(["figures", "fig1", "--out", str(tmp_path)]) == 0
        out = capsys.readouterr().out
        assert "Fig.1" in out
        assert (tmp_path / "fig1.txt").exists()


class TestScenarioCommand:
    def test_base_case(self, capsys):
        assert main(["scenario", "--sim-s", "0.3"]) == 0
        out = capsys.readouterr().out
        assert "Total mean" in out
        assert "policy=none" in out

    def test_with_interferer_and_policy(self, capsys):
        assert (
            main(
                [
                    "scenario",
                    "--interferer",
                    "2MB",
                    "--policy",
                    "ioshares",
                    "--sim-s",
                    "0.5",
                ]
            )
            == 0
        )
        out = capsys.readouterr().out
        assert "interferer=2MB" in out

    def test_with_manual_cap(self, capsys):
        assert (
            main(
                [
                    "scenario",
                    "--interferer",
                    "512KB",
                    "--cap",
                    "12",
                    "--sim-s",
                    "0.3",
                ]
            )
            == 0
        )
        assert "cap=12" in capsys.readouterr().out


class TestPoliciesCommand:
    def test_lists_builtins(self, capsys):
        assert main(["policies"]) == 0
        out = capsys.readouterr().out
        for name in ("freemarket", "ioshares", "noop", "static-ratio"):
            assert name in out


class TestReportCommand:
    def test_report_figures_only_smoke(self, tmp_path, monkeypatch, capsys):
        """End-to-end report generation over a reduced figure set."""
        import repro.experiments.report as report_mod
        from repro.experiments import ALL_FIGURES

        reduced = {"headline": ALL_FIGURES["headline"]}
        monkeypatch.setattr(report_mod, "ALL_FIGURES", reduced)
        out = tmp_path / "REPORT.md"
        assert main(
            ["report", "-o", str(out), "--no-ablations", "--seed", "3"]
        ) == 0
        text = out.read_text()
        assert "# ResEx reproduction report" in text
        assert "Headline" in text
        assert "reduction" in text.lower()
