"""CLI tests (argument parsing and end-to-end command runs)."""

import pytest

from repro.cli import _parse_size, main
from repro.units import KiB, MiB


class TestParseSize:
    @pytest.mark.parametrize(
        "text,expected",
        [
            ("64KB", 64 * KiB),
            ("64kb", 64 * KiB),
            ("2MB", 2 * MiB),
            ("1MiB", MiB),
            ("1024", 1024),
            (" 128KB ", 128 * KiB),
        ],
    )
    def test_sizes(self, text, expected):
        assert _parse_size(text) == expected

    def test_garbage_raises(self):
        import argparse

        with pytest.raises(argparse.ArgumentTypeError, match="invalid size"):
            _parse_size("lots")

    def test_garbage_flag_is_clean_cli_error(self, capsys):
        with pytest.raises(SystemExit) as exc:
            main(["scenario", "--interferer", "lots"])
        assert exc.value.code == 2
        assert "invalid size 'lots'" in capsys.readouterr().err


class TestFiguresCommand:
    def test_list(self, capsys):
        assert main(["figures", "--list"]) == 0
        out = capsys.readouterr().out
        for name in ("fig1", "fig9", "headline"):
            assert name in out

    def test_unknown_figure(self, capsys):
        assert main(["figures", "nope"]) == 2
        assert "unknown" in capsys.readouterr().err

    def test_no_selection(self, capsys):
        assert main(["figures"]) == 2

    def test_run_one_figure_and_save(self, capsys, tmp_path, monkeypatch):
        monkeypatch.setenv("REPRO_SCALE", "fast")
        assert main(["figures", "fig1", "--out", str(tmp_path)]) == 0
        out = capsys.readouterr().out
        assert "Fig.1" in out
        assert (tmp_path / "fig1.txt").exists()


class TestScenarioCommand:
    def test_base_case(self, capsys):
        assert main(["scenario", "--sim-s", "0.3"]) == 0
        out = capsys.readouterr().out
        assert "Total mean" in out
        assert "policy=none" in out

    def test_with_interferer_and_policy(self, capsys):
        assert (
            main(
                [
                    "scenario",
                    "--interferer",
                    "2MB",
                    "--policy",
                    "ioshares",
                    "--sim-s",
                    "0.5",
                ]
            )
            == 0
        )
        out = capsys.readouterr().out
        assert "interferer=2MB" in out

    def test_with_manual_cap(self, capsys):
        assert (
            main(
                [
                    "scenario",
                    "--interferer",
                    "512KB",
                    "--cap",
                    "12",
                    "--sim-s",
                    "0.3",
                ]
            )
            == 0
        )
        assert "cap=12" in capsys.readouterr().out


class TestParseSeeds:
    def test_count(self):
        from repro.cli import _parse_seeds

        assert _parse_seeds("4") == [0, 1, 2, 3]

    def test_range(self):
        from repro.cli import _parse_seeds

        assert _parse_seeds("3:6") == [3, 4, 5]

    def test_list(self):
        from repro.cli import _parse_seeds

        assert _parse_seeds("1,5,9") == [1, 5, 9]

    @pytest.mark.parametrize("text", ["", "x", "4:", "0"])
    def test_garbage_raises(self, text):
        import argparse

        from repro.cli import _parse_seeds

        with pytest.raises(argparse.ArgumentTypeError):
            _parse_seeds(text)


class TestSweepCommand:
    def test_json_sweep_smoke(self, capsys):
        import json

        assert main(
            ["sweep", "--seeds", "2", "--sim-s", "0.2", "--json"]
        ) == 0
        doc = json.loads(capsys.readouterr().out)
        assert doc["seeds"] == [0, 1]
        metrics = doc["metrics"]["total_mean"]
        assert len(metrics["values"]) == 2
        assert metrics["values"][0] != metrics["values"][1]
        assert doc["report"]["jobs"] == 2

    def test_parallel_equals_serial_and_cache_warms(self, capsys, tmp_path):
        import json

        base = ["sweep", "--seeds", "2", "--sim-s", "0.2", "--json"]
        assert main(base) == 0
        serial = json.loads(capsys.readouterr().out)

        cached = base + ["--jobs", "2", "--cache-dir", str(tmp_path / "c")]
        assert main(cached) == 0
        cold = json.loads(capsys.readouterr().out)
        assert main(cached) == 0
        warm = json.loads(capsys.readouterr().out)

        assert (
            serial["metrics"]["total_mean"]["values"]
            == cold["metrics"]["total_mean"]["values"]
            == warm["metrics"]["total_mean"]["values"]
        )
        assert cold["report"]["cached"] == 0
        assert warm["report"]["cached"] == 2

    def test_no_cache_overrides_cache_dir(self, capsys, tmp_path):
        import json

        args = [
            "sweep",
            "--seeds",
            "1",
            "--sim-s",
            "0.2",
            "--json",
            "--cache-dir",
            str(tmp_path),
            "--no-cache",
        ]
        assert main(args) == 0
        capsys.readouterr()
        assert main(args) == 0
        doc = json.loads(capsys.readouterr().out)
        assert doc["report"]["cached"] == 0

    def test_table_output(self, capsys):
        assert main(["sweep", "--seeds", "2", "--sim-s", "0.2"]) == 0
        out = capsys.readouterr().out
        assert "total_mean" in out
        assert "sweep:" in out  # the folded SweepReport line


class TestPoliciesCommand:
    def test_lists_builtins(self, capsys):
        assert main(["policies"]) == 0
        out = capsys.readouterr().out
        for name in ("freemarket", "ioshares", "noop", "static-ratio"):
            assert name in out


class TestReportCommand:
    def test_report_figures_only_smoke(self, tmp_path, monkeypatch, capsys):
        """End-to-end report generation over a reduced figure set."""
        import repro.experiments.report as report_mod
        from repro.experiments import ALL_FIGURES

        reduced = {"headline": ALL_FIGURES["headline"]}
        monkeypatch.setattr(report_mod, "ALL_FIGURES", reduced)
        out = tmp_path / "REPORT.md"
        assert main(
            ["report", "-o", str(out), "--no-ablations", "--seed", "3"]
        ) == 0
        text = out.read_text()
        assert "# ResEx reproduction report" in text
        assert "Headline" in text
        assert "reduction" in text.lower()
