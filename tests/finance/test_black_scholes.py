"""Tests for Black-Scholes pricing, Greeks, and no-arbitrage identities."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.errors import FinanceError
from repro.finance import (
    call_price,
    delta,
    gamma,
    put_call_parity_gap,
    put_price,
    rho,
    theta,
    vega,
)

# Haug (1998) reference: S=60, K=65, r=8%, sigma=30%, T=0.25 -> C=2.1334
HAUG = dict(S=60.0, K=65.0, r=0.08, sigma=0.30, T=0.25)


class TestReferenceValues:
    def test_haug_call(self):
        assert call_price(**HAUG) == pytest.approx(2.1334, abs=1e-4)

    def test_hull_put(self):
        # Hull: S=42, K=40, r=10%, sigma=20%, T=0.5 -> P=0.8086
        assert put_price(42.0, 40.0, 0.10, 0.20, 0.5) == pytest.approx(
            0.8086, abs=1e-4
        )

    def test_atm_call_approximation(self):
        # ATM forward approximation: C ~ 0.4 * S * sigma * sqrt(T).
        S = 100.0
        c = call_price(S, S, 0.0, 0.2, 1.0)
        assert c == pytest.approx(0.4 * S * 0.2, rel=0.01)

    def test_vectorised_broadcast(self):
        strikes = np.array([80.0, 90.0, 100.0, 110.0])
        prices = call_price(100.0, strikes, 0.05, 0.2, 1.0)
        assert prices.shape == (4,)
        # Monotone decreasing in strike.
        assert np.all(np.diff(prices) < 0)

    def test_dividend_yield_reduces_call(self):
        plain = call_price(100.0, 100.0, 0.05, 0.2, 1.0)
        divd = call_price(100.0, 100.0, 0.05, 0.2, 1.0, q=0.03)
        assert divd < plain


class TestValidation:
    @pytest.mark.parametrize(
        "kwargs",
        [
            dict(S=-1.0, K=100.0, r=0.05, sigma=0.2, T=1.0),
            dict(S=100.0, K=0.0, r=0.05, sigma=0.2, T=1.0),
            dict(S=100.0, K=100.0, r=0.05, sigma=0.0, T=1.0),
            dict(S=100.0, K=100.0, r=0.05, sigma=0.2, T=0.0),
        ],
    )
    def test_bad_inputs_rejected(self, kwargs):
        with pytest.raises(FinanceError):
            call_price(**kwargs)

    def test_unknown_kind_rejected(self):
        with pytest.raises(FinanceError):
            delta(100.0, 100.0, 0.05, 0.2, 1.0, kind="straddle")


class TestGreeks:
    def test_delta_bounds(self):
        d_call = delta(100.0, 100.0, 0.05, 0.2, 1.0, kind="call")
        d_put = delta(100.0, 100.0, 0.05, 0.2, 1.0, kind="put")
        assert 0 < d_call < 1
        assert -1 < d_put < 0
        assert d_call - d_put == pytest.approx(1.0)  # q=0

    def test_delta_matches_finite_difference(self):
        h = 1e-4
        fd = (
            call_price(100.0 + h, 100.0, 0.05, 0.2, 1.0)
            - call_price(100.0 - h, 100.0, 0.05, 0.2, 1.0)
        ) / (2 * h)
        assert delta(100.0, 100.0, 0.05, 0.2, 1.0) == pytest.approx(fd, abs=1e-6)

    def test_gamma_matches_finite_difference(self):
        h = 1e-3
        fd = (
            call_price(100.0 + h, 100.0, 0.05, 0.2, 1.0)
            - 2 * call_price(100.0, 100.0, 0.05, 0.2, 1.0)
            + call_price(100.0 - h, 100.0, 0.05, 0.2, 1.0)
        ) / h**2
        assert gamma(100.0, 100.0, 0.05, 0.2, 1.0) == pytest.approx(fd, abs=1e-5)

    def test_vega_matches_finite_difference(self):
        h = 1e-5
        fd = (
            call_price(100.0, 100.0, 0.05, 0.2 + h, 1.0)
            - call_price(100.0, 100.0, 0.05, 0.2 - h, 1.0)
        ) / (2 * h)
        assert vega(100.0, 100.0, 0.05, 0.2, 1.0) == pytest.approx(fd, rel=1e-5)

    def test_theta_matches_finite_difference(self):
        h = 1e-5
        # theta = -dV/dT (calendar time convention: value decays as T shrinks)
        fd = -(
            call_price(100.0, 100.0, 0.05, 0.2, 1.0 + h)
            - call_price(100.0, 100.0, 0.05, 0.2, 1.0 - h)
        ) / (2 * h)
        assert theta(100.0, 100.0, 0.05, 0.2, 1.0) == pytest.approx(fd, rel=1e-4)

    def test_rho_matches_finite_difference(self):
        h = 1e-6
        fd = (
            call_price(100.0, 100.0, 0.05 + h, 0.2, 1.0)
            - call_price(100.0, 100.0, 0.05 - h, 0.2, 1.0)
        ) / (2 * h)
        assert rho(100.0, 100.0, 0.05, 0.2, 1.0) == pytest.approx(fd, rel=1e-5)

    def test_put_rho_negative(self):
        assert rho(100.0, 100.0, 0.05, 0.2, 1.0, kind="put") < 0


class TestPropertyBased:
    @given(
        S=st.floats(min_value=1.0, max_value=500.0),
        K=st.floats(min_value=1.0, max_value=500.0),
        r=st.floats(min_value=0.0, max_value=0.15),
        sigma=st.floats(min_value=0.01, max_value=1.5),
        T=st.floats(min_value=0.01, max_value=5.0),
    )
    @settings(max_examples=200, deadline=None)
    def test_put_call_parity(self, S, K, r, sigma, T):
        gap = put_call_parity_gap(S, K, r, sigma, T)
        assert abs(gap) < 1e-8 * max(S, K)

    @given(
        S=st.floats(min_value=1.0, max_value=500.0),
        K=st.floats(min_value=1.0, max_value=500.0),
        r=st.floats(min_value=0.0, max_value=0.15),
        sigma=st.floats(min_value=0.01, max_value=1.5),
        T=st.floats(min_value=0.01, max_value=5.0),
    )
    @settings(max_examples=200, deadline=None)
    def test_no_arbitrage_bounds(self, S, K, r, sigma, T):
        c = float(call_price(S, K, r, sigma, T))
        disc_k = K * np.exp(-r * T)
        assert c >= max(S - disc_k, 0.0) - 1e-9 * max(S, K)
        assert c <= S + 1e-12

    @given(
        S=st.floats(min_value=10.0, max_value=200.0),
        sigma1=st.floats(min_value=0.05, max_value=0.5),
        bump=st.floats(min_value=0.01, max_value=0.5),
    )
    @settings(max_examples=100, deadline=None)
    def test_price_increasing_in_vol(self, S, sigma1, bump):
        c1 = float(call_price(S, S, 0.02, sigma1, 1.0))
        c2 = float(call_price(S, S, 0.02, sigma1 + bump, 1.0))
        assert c2 > c1
