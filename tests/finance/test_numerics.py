"""Tests for implied vol, binomial trees, Monte Carlo, and the workload kernel."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.errors import FinanceError
from repro.finance import (
    NS_PER_OPTION,
    PricingRequest,
    call_price,
    compute_cost_ns,
    crr_price,
    implied_vol,
    mc_european,
    process_request,
    put_price,
)


class TestImpliedVol:
    def test_roundtrip_call(self):
        sigma = 0.27
        price = float(call_price(100.0, 105.0, 0.03, sigma, 0.75))
        assert implied_vol(price, 100.0, 105.0, 0.03, 0.75) == pytest.approx(
            sigma, abs=1e-6
        )

    def test_roundtrip_put(self):
        sigma = 0.45
        price = float(put_price(50.0, 45.0, 0.01, sigma, 2.0))
        assert implied_vol(
            price, 50.0, 45.0, 0.01, 2.0, kind="put"
        ) == pytest.approx(sigma, abs=1e-6)

    def test_deep_itm_roundtrip(self):
        sigma = 0.2
        price = float(call_price(200.0, 50.0, 0.05, sigma, 0.5))
        assert implied_vol(price, 200.0, 50.0, 0.05, 0.5) == pytest.approx(
            sigma, abs=1e-4
        )

    def test_arbitrage_violating_price_rejected(self):
        with pytest.raises(FinanceError, match="no-arbitrage"):
            # Call priced above the spot: impossible.
            implied_vol(200.0, 100.0, 100.0, 0.05, 1.0)
        with pytest.raises(FinanceError, match="no-arbitrage"):
            # Deep ITM call priced below intrinsic value.
            implied_vol(0.0, 200.0, 100.0, 0.05, 1.0)

    def test_unknown_kind(self):
        with pytest.raises(FinanceError):
            implied_vol(1.0, 100.0, 100.0, 0.05, 1.0, kind="x")

    @given(sigma=st.floats(min_value=0.05, max_value=1.0))
    @settings(max_examples=50, deadline=None)
    def test_roundtrip_property(self, sigma):
        price = float(call_price(100.0, 100.0, 0.02, sigma, 1.0))
        assert implied_vol(price, 100.0, 100.0, 0.02, 1.0) == pytest.approx(
            sigma, abs=1e-5
        )


class TestBinomial:
    def test_converges_to_black_scholes(self):
        bs = float(call_price(100.0, 100.0, 0.05, 0.2, 1.0))
        tree = crr_price(100.0, 100.0, 0.05, 0.2, 1.0, steps=2000)
        assert tree == pytest.approx(bs, abs=5e-3)

    def test_put_converges(self):
        bs = float(put_price(100.0, 110.0, 0.05, 0.3, 0.5))
        tree = crr_price(100.0, 110.0, 0.05, 0.3, 0.5, steps=2000, kind="put")
        assert tree == pytest.approx(bs, abs=5e-3)

    def test_american_put_worth_more_than_european(self):
        eur = crr_price(100.0, 110.0, 0.08, 0.2, 1.0, kind="put", steps=500)
        amer = crr_price(
            100.0, 110.0, 0.08, 0.2, 1.0, kind="put", steps=500, american=True
        )
        assert amer > eur

    def test_american_call_no_dividends_equals_european(self):
        eur = crr_price(100.0, 100.0, 0.05, 0.2, 1.0, steps=500)
        amer = crr_price(100.0, 100.0, 0.05, 0.2, 1.0, steps=500, american=True)
        assert amer == pytest.approx(eur, abs=1e-9)

    def test_validation(self):
        with pytest.raises(FinanceError):
            crr_price(100.0, 100.0, 0.05, 0.2, 1.0, steps=0)
        with pytest.raises(FinanceError):
            crr_price(-1.0, 100.0, 0.05, 0.2, 1.0)
        with pytest.raises(FinanceError):
            crr_price(100.0, 100.0, 0.05, 0.2, 1.0, kind="x")


class TestMonteCarlo:
    def test_mc_matches_bs_within_3_sigma(self):
        rng = np.random.default_rng(42)
        bs = float(call_price(100.0, 100.0, 0.05, 0.2, 1.0))
        result = mc_european(100.0, 100.0, 0.05, 0.2, 1.0, 200_000, rng=rng)
        assert abs(result.price - bs) < 3 * result.stderr

    def test_put_side(self):
        rng = np.random.default_rng(7)
        bs = float(put_price(100.0, 110.0, 0.03, 0.25, 0.5))
        result = mc_european(
            100.0, 110.0, 0.03, 0.25, 0.5, 200_000, kind="put", rng=rng
        )
        assert abs(result.price - bs) < 3 * result.stderr

    def test_antithetic_reduces_stderr(self):
        plain = mc_european(
            100.0, 100.0, 0.05, 0.2, 1.0, 100_000,
            rng=np.random.default_rng(1), antithetic=False,
        )
        anti = mc_european(
            100.0, 100.0, 0.05, 0.2, 1.0, 100_000,
            rng=np.random.default_rng(1), antithetic=True,
        )
        assert anti.stderr < plain.stderr

    def test_confidence_interval(self):
        r = mc_european(100.0, 100.0, 0.05, 0.2, 1.0, 10_000)
        lo, hi = r.confidence_interval()
        assert lo < r.price < hi

    def test_validation(self):
        with pytest.raises(FinanceError):
            mc_european(100.0, 100.0, 0.05, 0.2, 1.0, n_paths=0)
        with pytest.raises(FinanceError):
            mc_european(100.0, 100.0, 0.05, 0.2, 1.0, kind="x")


class TestWorkloadKernel:
    def _req(self, n=100):
        return PricingRequest(
            request_id=1,
            n_options=n,
            spot=100.0,
            strike=100.0,
            rate=0.05,
            sigma=0.2,
            expiry_years=1.0,
        )

    def test_cost_scales_with_batch(self):
        assert compute_cost_ns(10) == 10 * NS_PER_OPTION
        assert compute_cost_ns(200) == 200 * NS_PER_OPTION
        with pytest.raises(FinanceError):
            compute_cost_ns(0)

    def test_process_returns_sane_prices(self):
        rng = np.random.default_rng(0)
        result, cost = process_request(self._req(500), rng)
        assert cost == 500 * NS_PER_OPTION
        bs_atm = float(call_price(100.0, 100.0, 0.05, 0.2, 1.0))
        # Batch perturbs strikes/spots by a few percent: mean near ATM value.
        assert result.mean_call == pytest.approx(bs_atm, rel=0.25)
        assert 0.0 < result.mean_delta < 1.0

    def test_deterministic_given_rng(self):
        a, _ = process_request(self._req(), np.random.default_rng(5))
        b, _ = process_request(self._req(), np.random.default_rng(5))
        assert a == b

    def test_request_validation(self):
        with pytest.raises(FinanceError):
            PricingRequest(1, 0, 100.0, 100.0, 0.05, 0.2, 1.0)
