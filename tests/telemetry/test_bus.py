"""Telemetry bus semantics: disabled no-op default and determinism."""

import pytest

from repro import telemetry
from repro.sim import Environment
from repro.telemetry import NULL_BUS, TelemetryBus
from repro.telemetry.bus import COUNTER, INSTANT, SPAN


class TestDisabledByDefault:
    def test_fresh_environment_gets_null_bus(self):
        env = Environment()
        assert env.telemetry is NULL_BUS
        assert env.telemetry.enabled is False

    def test_null_bus_emits_nothing(self):
        NULL_BUS.span("cat", "name", 0, 10)
        NULL_BUS.instant("cat", "name", 0)
        NULL_BUS.counter("cat", "name", 0, 1.0)
        NULL_BUS.kernel_tick(0, 1, 0, None)
        NULL_BUS.kernel_resume(0, "p")
        assert len(NULL_BUS) == 0
        assert NULL_BUS.categories() == []
        assert NULL_BUS.select() == []

    def test_untraced_simulation_records_nothing(self):
        env = Environment()

        def proc(env):
            yield env.timeout(10)
            yield env.timeout(10)

        env.process(proc(env))
        env.run()
        assert len(env.telemetry) == 0

    def test_probes_do_not_touch_null_bus(self):
        from repro.sim.monitor import ProbeSet

        env = Environment()
        probes = ProbeSet(env, prefix="x")
        probes.record("a", 1.0)
        assert len(env.telemetry) == 0
        assert len(probes.ts("a")) == 1


class TestCaptureInstall:
    def test_capture_installs_and_restores(self):
        assert telemetry.current() is NULL_BUS
        with telemetry.capture() as bus:
            assert telemetry.current() is bus
            env = Environment()
            assert env.telemetry is bus
        assert telemetry.current() is NULL_BUS

    def test_capture_restores_on_error(self):
        with pytest.raises(RuntimeError):
            with telemetry.capture():
                raise RuntimeError("boom")
        assert telemetry.current() is NULL_BUS

    def test_environment_snapshot_of_installed_bus(self):
        # An environment created inside a capture keeps its bus even
        # after the capture exits (it is the run's recording).
        with telemetry.capture() as bus:
            env = Environment()
        assert env.telemetry is bus


class TestRecording:
    def test_span_instant_counter_kinds(self):
        bus = TelemetryBus()
        bus.span("hca", "SEND", 100, 250, qp_num=3)
        bus.instant("resex", "decision", 300, domid=1)
        bus.counter("kernel", "queue_depth", 400, 7)
        kinds = [r.kind for r in bus.records]
        assert kinds == [SPAN, INSTANT, COUNTER]
        span = bus.records[0]
        assert span.ts_ns == 100 and span.dur_ns == 150
        assert span.args_dict() == {"qp_num": 3}
        assert bus.records[2].value == 7.0

    def test_lane_defaults_to_category(self):
        bus = TelemetryBus()
        bus.instant("credit", "period", 0)
        bus.instant("credit", "period", 0, lane="pcpu1")
        assert bus.records[0].lane == "credit"
        assert bus.records[1].lane == "pcpu1"

    def test_select_and_categories(self):
        bus = TelemetryBus()
        bus.span("a", "s", 0, 1)
        bus.instant("b", "i", 2)
        bus.span("a", "s2", 3, 4)
        assert bus.categories() == ["a", "b"]
        assert len(bus.select(kind=SPAN)) == 2
        assert len(bus.select(cat="b")) == 1
        assert len(bus.select(kind=SPAN, cat="b")) == 0

    def test_kernel_sampling_cadence(self):
        bus = TelemetryBus(kernel_sample_every=2)
        env = Environment()
        env.telemetry = bus

        def proc(env):
            for _ in range(6):
                yield env.timeout(1)

        env.process(proc(env))
        env.run()
        counters = bus.select(kind=COUNTER, cat="kernel")
        # Every 2nd processed event emits queue_depth + events_processed.
        assert len(counters) >= 2
        assert len(counters) % 2 == 0
        names = {c.name for c in counters}
        assert names == {"queue_depth", "events_processed"}

    def test_kernel_dispatch_firehose(self):
        bus = TelemetryBus(kernel_dispatch=True)
        env = Environment()
        env.telemetry = bus

        def proc(env):
            yield env.timeout(5)

        env.process(proc(env), name="worker")
        env.run()
        instants = bus.select(kind=INSTANT, cat="kernel")
        assert any(r.lane == "dispatch" for r in instants)
        resumes = [r for r in instants if r.name == "resume"]
        assert any(r.args_dict().get("process") == "worker" for r in resumes)


def _run_traced_scenario(seed=11):
    from repro.benchex import BenchExConfig
    from repro.experiments import run_scenario
    from repro.units import KiB

    bus = TelemetryBus()
    run_scenario(
        "determinism",
        interferer=BenchExConfig(name="intf", buffer_bytes=512 * KiB),
        policy="ioshares",
        sim_s=0.05,
        seed=seed,
        telemetry=bus,
    )
    return bus


class TestDeterminism:
    def test_two_seeded_runs_identical_records(self):
        """Span nesting and record order are reproducible end to end."""
        a = _run_traced_scenario()
        b = _run_traced_scenario()
        assert len(a.records) > 100
        assert a.records == b.records

    def test_all_layers_emit(self):
        bus = _run_traced_scenario()
        cats = set(bus.categories())
        assert {
            "kernel",
            "credit",
            "hca",
            "fabric",
            "ibmon",
            "resex",
            "benchex",
        } <= cats
        span_layers = {r.cat for r in bus.select(kind=SPAN)}
        assert {"credit", "hca", "fabric", "ibmon", "resex", "benchex"} <= span_layers

    def test_spans_nest_within_parents(self):
        """BenchEx component spans tile their request span exactly."""
        bus = _run_traced_scenario()
        benchex = bus.select(kind=SPAN, cat="benchex")
        requests = [r for r in benchex if r.name == "request"]
        assert requests
        parts = {
            name: [r for r in benchex if r.name == name]
            for name in ("PTime", "CTime", "WTime")
        }
        first = requests[0]
        window = [
            r
            for rs in parts.values()
            for r in rs
            if r.lane == first.lane
            and first.ts_ns <= r.ts_ns
            and r.ts_ns + r.dur_ns <= first.ts_ns + first.dur_ns
        ]
        assert sum(r.dur_ns for r in window) == first.dur_ns
