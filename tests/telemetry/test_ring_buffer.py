"""Flight-recorder (ring buffer) mode of the telemetry bus."""

from __future__ import annotations

import pytest

from repro.telemetry import TelemetryBus


def _emit_instants(bus, n, start=0):
    for i in range(n):
        bus.instant("kernel", f"e{start + i}", start + i)


class TestRingMode:
    def test_capacity_must_be_positive(self):
        with pytest.raises(ValueError, match="ring_capacity"):
            TelemetryBus(ring_capacity=0)
        with pytest.raises(ValueError, match="ring_capacity"):
            TelemetryBus(ring_capacity=-4)

    def test_below_capacity_matches_list_mode(self):
        ring = TelemetryBus(ring_capacity=16)
        flat = TelemetryBus()
        _emit_instants(ring, 10)
        _emit_instants(flat, 10)
        assert ring.records == flat.records
        assert len(ring) == 10

    def test_wrap_keeps_only_the_newest_records_in_order(self):
        ring = TelemetryBus(ring_capacity=8)
        flat = TelemetryBus()
        _emit_instants(ring, 21)
        _emit_instants(flat, 21)
        assert len(ring) == 8
        assert ring.records == flat.records[-8:]
        # Oldest-first ordering survives the wrap point.
        names = [r.name for r in ring.records]
        assert names == [f"e{i}" for i in range(13, 21)]

    def test_exact_capacity_boundary(self):
        ring = TelemetryBus(ring_capacity=4)
        _emit_instants(ring, 4)
        assert len(ring) == 4
        assert [r.name for r in ring.records] == ["e0", "e1", "e2", "e3"]
        ring.instant("kernel", "e4", 4)
        assert [r.name for r in ring.records] == ["e1", "e2", "e3", "e4"]

    def test_all_record_kinds_flow_through_the_ring(self):
        ring = TelemetryBus(ring_capacity=8)
        ring.span("credit", "s", 0, 10, lane="pcpu0", x=1)
        ring.instant("hca", "i", 5)
        ring.counter("kernel", "queue_depth", 6, 3.0)
        kinds = [r.kind for r in ring.records]
        assert kinds == ["span", "instant", "counter"]
        assert ring.select(kind="counter")[0].value == 3.0
        assert ring.categories() == ["credit", "hca", "kernel"]

    def test_clear_resets_and_keeps_recording(self):
        ring = TelemetryBus(ring_capacity=4)
        _emit_instants(ring, 9)
        ring.clear()
        assert len(ring) == 0
        assert ring.records == []
        _emit_instants(ring, 2, start=100)
        assert [r.name for r in ring.records] == ["e100", "e101"]

    def test_list_mode_clear_keeps_recording(self):
        flat = TelemetryBus()
        _emit_instants(flat, 3)
        flat.clear()
        _emit_instants(flat, 2, start=50)
        assert [r.name for r in flat.records] == ["e50", "e51"]

    def test_records_property_is_a_snapshot_in_ring_mode(self):
        ring = TelemetryBus(ring_capacity=4)
        _emit_instants(ring, 6)
        snapshot = ring.records
        _emit_instants(ring, 2, start=10)
        assert [r.name for r in snapshot] == ["e2", "e3", "e4", "e5"]


class TestRingInSimulation:
    def test_traced_run_with_ring_is_equivalent_and_bounded(self):
        """A ring-buffered bus records the same *tail* of the record
        stream a list bus does, without perturbing the simulation."""
        from repro.sim import Environment

        def traffic(env):
            for i in range(64):
                yield env.timeout(10)
                env.telemetry.instant("benchex", f"req{i}", env.now)

        flat_env = Environment()
        flat_env.telemetry = TelemetryBus()
        flat_env.process(traffic(flat_env))
        flat_env.run()

        ring_env = Environment()
        ring_env.telemetry = TelemetryBus(ring_capacity=16)
        ring_env.process(traffic(ring_env))
        ring_env.run()

        assert ring_env.now == flat_env.now
        flat = [r for r in flat_env.telemetry.records if r.cat == "benchex"]
        ring = [r for r in ring_env.telemetry.records if r.cat == "benchex"]
        assert ring == flat[-len(ring):]
        assert len(ring_env.telemetry) == 16
