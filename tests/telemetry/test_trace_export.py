"""Exporter tests: Chrome trace golden file, CSV, and CLI round trip."""

import csv
import json
import pathlib

from repro.analysis import (
    chrome_trace_events,
    to_chrome_trace_json,
    write_chrome_trace,
    write_telemetry_csv,
)
from repro.telemetry import TelemetryBus

GOLDEN = pathlib.Path(__file__).parent / "golden_trace.json"


def small_bus() -> TelemetryBus:
    """A fixed, hand-written record set covering every record kind."""
    bus = TelemetryBus()
    bus.counter("kernel", "queue_depth", 0, 3)
    bus.span("credit", "vcpu0", 100, 1100, lane="pcpu1", ran_ns=1000, cap_pct=20)
    bus.span("hca", "SEND", 150, 950, lane="hca-a.qp16", bytes=65536)
    bus.span("fabric", "qp16", 200, 900, lane="a.tx+b.rx", bytes=65536, weight=1.0)
    bus.instant("resex", "pricing_decision", 1200, lane="dom1", domid=1, cap_pct=20)
    bus.span("benchex", "request", 100, 1150, lane="rep0", request_id=51)
    bus.instant(
        "faults",
        "inject",
        1300,
        lane="link-degrade:a.tx",
        kind="link-degrade",
        target="a.tx",
        severity=0.5,
    )
    return bus


class TestChromeExport:
    def test_golden_file(self):
        """Byte-for-byte stable export of a fixed record set.

        If this fails after an intentional format change, regenerate
        with: ``python -m tests.telemetry.test_trace_export``.
        """
        assert to_chrome_trace_json(small_bus()) + "\n" == GOLDEN.read_text()

    def test_valid_json_structure(self):
        doc = json.loads(to_chrome_trace_json(small_bus()))
        assert set(doc) == {"traceEvents", "displayTimeUnit", "otherData"}
        phases = {e["ph"] for e in doc["traceEvents"]}
        assert phases == {"M", "X", "C", "i"}

    def test_metadata_names_processes_and_threads(self):
        events = chrome_trace_events(small_bus())
        meta = [e for e in events if e["ph"] == "M"]
        process_names = {
            e["args"]["name"] for e in meta if e["name"] == "process_name"
        }
        assert process_names == {
            "kernel",
            "credit",
            "hca",
            "fabric",
            "resex",
            "benchex",
            "faults",
        }
        thread_names = {
            e["args"]["name"] for e in meta if e["name"] == "thread_name"
        }
        assert "pcpu1" in thread_names and "rep0" in thread_names

    def test_timestamps_are_microseconds(self):
        events = chrome_trace_events(small_bus())
        span = next(e for e in events if e.get("ph") == "X")
        assert span["ts"] == 0.1  # 100 ns
        assert span["dur"] == 1.0  # 1000 ns

    def test_write_returns_record_count(self, tmp_path):
        out = tmp_path / "t.json"
        assert write_chrome_trace(out, small_bus()) == 7
        json.loads(out.read_text())


class TestCsvExport:
    def test_round_trip(self, tmp_path):
        out = tmp_path / "t.csv"
        assert write_telemetry_csv(out, small_bus()) == 7
        with out.open() as fh:
            rows = list(csv.DictReader(fh))
        assert len(rows) == 7
        assert rows[0]["kind"] == "counter"
        assert rows[0]["value"] == "3.0"
        span = rows[1]
        assert span["cat"] == "credit"
        assert int(span["dur_ns"]) == 1000
        assert json.loads(span["args"]) == {"cap_pct": 20, "ran_ns": 1000}


class TestTraceCli:
    def test_trace_subcommand_end_to_end(self, tmp_path, capsys):
        from repro.cli import main

        out = tmp_path / "fig1.json"
        assert main(
            ["trace", "fig1", "--sim-s", "0.05", "-o", str(out), "--csv"]
        ) == 0
        doc = json.loads(out.read_text())
        span_layers = {
            e["cat"] for e in doc["traceEvents"] if e.get("ph") == "X"
        }
        # Spans from >= 5 distinct layers, kernel present via counters.
        assert {"credit", "hca", "fabric", "ibmon", "resex", "benchex"} <= span_layers
        counter_layers = {
            e["cat"] for e in doc["traceEvents"] if e.get("ph") == "C"
        }
        assert "kernel" in counter_layers
        assert (tmp_path / "fig1.csv").exists()
        assert "trace records" in capsys.readouterr().err

    def test_quiet_suppresses_status(self, tmp_path, capsys):
        from repro.cli import main

        out = tmp_path / "base.json"
        assert main(["-q", "trace", "base", "--sim-s", "0.02", "-o", str(out)]) == 0
        assert capsys.readouterr().err == ""


if __name__ == "__main__":  # golden-file regeneration helper
    GOLDEN.write_text(to_chrome_trace_json(small_bus()) + "\n")
    print(f"regenerated {GOLDEN}")
