"""Import-order independence: every subpackage imports standalone.

Circular imports only bite when a subpackage is imported *first*; the
test suite normally imports things in a fixed order, so each candidate
is probed in a fresh interpreter.
"""

import subprocess
import sys

import pytest

SUBPACKAGES = [
    "repro",
    "repro.sim",
    "repro.hw",
    "repro.ib",
    "repro.xen",
    "repro.ibmon",
    "repro.resex",
    "repro.benchex",
    "repro.faults",
    "repro.finance",
    "repro.workloads",
    "repro.experiments",
    "repro.analysis",
    "repro.cli",
]


@pytest.mark.parametrize("modname", SUBPACKAGES)
def test_subpackage_imports_first(modname):
    proc = subprocess.run(
        [sys.executable, "-c", f"import {modname}"],
        capture_output=True,
        text=True,
    )
    assert proc.returncode == 0, f"{modname}: {proc.stderr[-500:]}"
