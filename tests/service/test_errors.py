"""Service error subtree: stable codes, exit code 6, wire round-trip."""

import pytest

from repro.errors import (
    SERVICE_ERROR_CODES,
    AdmissionError,
    FrameTooLarge,
    Overloaded,
    ProtocolError,
    ReproError,
    ServiceError,
    service_error_from_code,
)


class TestHierarchy:
    def test_all_service_errors_are_repro_errors(self):
        for cls in SERVICE_ERROR_CODES.values():
            assert issubclass(cls, ServiceError)
            assert issubclass(cls, ReproError)
            assert cls.exit_code == 6

    def test_codes_are_unique_and_stable(self):
        assert ServiceError.code == "service"
        assert Overloaded.code == "service-overloaded"
        assert AdmissionError.code == "service-admission"
        assert FrameTooLarge.code == "service-frame"
        codes = [cls.code for cls in SERVICE_ERROR_CODES.values()]
        assert len(codes) == len(set(codes))

    def test_frame_too_large_is_protocol_fatal(self):
        assert issubclass(FrameTooLarge, ProtocolError)


class TestWireRoundTrip:
    @pytest.mark.parametrize("code", sorted(SERVICE_ERROR_CODES))
    def test_code_maps_back_to_class(self, code):
        exc = service_error_from_code(code, "boom")
        assert type(exc) is SERVICE_ERROR_CODES[code]
        assert str(exc) == "boom"

    def test_unknown_code_falls_back_to_base(self):
        exc = service_error_from_code("service-from-the-future", "x")
        assert type(exc) is ServiceError


class TestCliExitCode:
    def test_service_error_maps_to_exit_6(self, capsys):
        from repro.cli import main

        # loadgen against a port nothing listens on -> a structured
        # ServiceUnavailable, never a raw ConnectionRefusedError.
        rc = main(
            ["loadgen", "--port", "1", "--requests", "10", "--seed", "7",
             "--retries", "0"]
        )
        assert rc == 6
        err = capsys.readouterr().err
        assert "repro: error [service-unavailable]" in err
        assert "Traceback" not in err
