"""Wire-layer tests: framing, canonical encoding, handshake checks."""

import asyncio
import json
import struct

import pytest

from repro.errors import FrameTooLarge, HandshakeError, ProtocolError
from repro.service import protocol


def _read(data: bytes, max_frame: int = protocol.DEFAULT_MAX_FRAME):
    async def scenario():
        reader = asyncio.StreamReader()
        reader.feed_data(data)
        reader.feed_eof()
        return await protocol.read_frame(reader, max_frame)

    return asyncio.run(scenario())


class TestFraming:
    def test_roundtrip(self):
        frame = protocol.request_frame(3, "price", {}, at_ns=17)
        assert _read(protocol.encode_frame(frame)) == frame

    def test_canonical_encoding_is_key_order_independent(self):
        a = protocol.encode_frame({"b": 1, "a": 2})
        b = protocol.encode_frame({"a": 2, "b": 1})
        assert a == b

    def test_clean_eof_returns_none(self):
        assert _read(b"") is None

    def test_truncated_header_raises(self):
        with pytest.raises(ProtocolError, match="mid-header"):
            _read(b"\x00\x00")

    def test_truncated_payload_raises(self):
        good = protocol.encode_frame({"type": "req"})
        with pytest.raises(ProtocolError, match="mid-frame"):
            _read(good[:-2])

    def test_oversized_header_rejected_before_payload_read(self):
        header = struct.pack(">I", 10 * 1024 * 1024)
        with pytest.raises(FrameTooLarge, match="announces"):
            _read(header, max_frame=1024)

    def test_oversized_encode_rejected(self):
        with pytest.raises(FrameTooLarge):
            protocol.encode_frame({"x": "y" * 100}, max_frame=16)

    def test_non_json_payload_raises(self):
        payload = b"\xff\xfenot json"
        with pytest.raises(ProtocolError, match="not valid JSON"):
            _read(struct.pack(">I", len(payload)) + payload)

    def test_non_object_payload_raises(self):
        payload = json.dumps([1, 2, 3]).encode()
        with pytest.raises(ProtocolError, match="JSON object"):
            _read(struct.pack(">I", len(payload)) + payload)

    def test_nan_never_crosses_the_wire(self):
        with pytest.raises(ValueError):
            protocol.canonical_json({"x": float("nan")})


class TestHandshake:
    def test_hello_roundtrip(self):
        assert protocol.check_hello(protocol.hello_frame("lg")) == "lg"

    def test_wrong_protocol_rejected(self):
        bad = dict(protocol.hello_frame("lg"), proto="resex-service/999")
        with pytest.raises(HandshakeError, match="protocol mismatch"):
            protocol.check_hello(bad)

    def test_non_hello_rejected(self):
        with pytest.raises(HandshakeError, match="expected a hello"):
            protocol.check_hello(protocol.request_frame(1, "price"))

    def test_welcome_roundtrip(self):
        frame = protocol.welcome_frame(4, "sim")
        assert protocol.check_welcome(frame)["session"] == 4

    def test_err_frame_during_handshake_raises_with_code(self):
        err = protocol.error_frame(None, "service-handshake", "nope")
        with pytest.raises(HandshakeError, match="nope"):
            protocol.check_welcome(err)


class TestRequestValidation:
    def test_valid(self):
        frame = protocol.request_frame(1, "order", {"vm": "a", "nbytes": 10})
        assert protocol.check_request(frame) is frame

    @pytest.mark.parametrize(
        "patch,match",
        [
            ({"type": "res"}, "expected a req"),
            ({"id": "one"}, "id must be"),
            ({"id": True}, "id must be"),
            ({"op": ""}, "op must be"),
            ({"op": 7}, "op must be"),
            ({"params": [1]}, "params must be"),
            ({"at_ns": -1}, "at_ns must be"),
            ({"at_ns": "now"}, "at_ns must be"),
        ],
    )
    def test_shape_breaches(self, patch, match):
        frame = dict(protocol.request_frame(1, "price"), **patch)
        with pytest.raises(ProtocolError, match=match):
            protocol.check_request(frame)
