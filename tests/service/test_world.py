"""Served-world tests: admission, trading, order flow, clock stepping."""

import pytest

from repro.errors import AdmissionError, ConfigError
from repro.service.world import (
    MAX_ORDER_BYTES,
    MIN_ORDER_BYTES,
    ResExWorld,
    ServiceConfig,
)


@pytest.fixture()
def world():
    return ResExWorld(ServiceConfig(slots=2), seed=7)


class TestConfig:
    def test_bad_slots(self):
        with pytest.raises(ConfigError, match="slots"):
            ServiceConfig(slots=0)

    def test_bad_throttle_weight(self):
        with pytest.raises(ConfigError, match="throttled_weight"):
            ServiceConfig(throttled_weight=0.0)


class TestAdmission:
    def test_admit_binds_lowest_free_slot(self, world):
        assert world.admit("a")["slot"] == 0
        assert world.admit("b")["slot"] == 1

    def test_admit_full_is_explicit(self, world):
        world.admit("a")
        world.admit("b")
        with pytest.raises(AdmissionError, match="no capacity"):
            world.admit("c")

    def test_release_recycles_slot(self, world):
        world.admit("a")
        world.admit("b")
        world.release("a")
        assert world.admit("c")["slot"] == 0

    def test_duplicate_admit_rejected(self, world):
        world.admit("a")
        with pytest.raises(AdmissionError, match="already admitted"):
            world.admit("a")

    def test_unknown_vm_rejected(self, world):
        with pytest.raises(AdmissionError, match="not admitted"):
            world.order("ghost", 4096)

    def test_readmission_resets_balance(self, world):
        world.admit("a")
        world.ask("a", 50.0)
        world.release("a")
        fresh = world.admit("b")
        account = world._account(fresh["slot"])
        assert account.balance == pytest.approx(account.allocation)


class TestTrading:
    def test_ask_moves_balance_into_pool(self, world):
        world.admit("a")
        out = world.ask("a", 10.0)
        assert out["filled"] == pytest.approx(10.0)
        assert world.pool_resos == pytest.approx(10.0)

    def test_ask_clamped_to_balance(self, world):
        world.admit("a")
        account = world._account(0)
        out = world.ask("a", account.allocation * 10)
        assert out["filled"] == pytest.approx(account.allocation)
        assert account.balance == 0.0

    def test_bid_bounded_by_pool_and_allocation(self, world):
        world.admit("a")
        world.admit("b")
        world.ask("a", 25.0)
        out = world.bid("b", 100.0)
        # b is already at full allocation: conservation forbids topping up.
        assert out["filled"] == 0.0
        world.ask("b", 40.0)  # make 40 Resos of headroom
        out = world.bid("b", 100.0)
        # Pool holds 65 but the allocation envelope caps the fill at 40.
        assert out["filled"] == pytest.approx(40.0)
        assert world.pool_resos == pytest.approx(25.0)

    def test_nonpositive_amounts_rejected(self, world):
        world.admit("a")
        with pytest.raises(AdmissionError):
            world.ask("a", 0)
        with pytest.raises(AdmissionError):
            world.bid("a", -1)

    def test_price_reflects_congestion(self, world):
        world.admit("a")
        base = world.price()
        world.order("a", 1 << 20)
        loaded = world.price()
        assert loaded["congestion"] > base["congestion"]
        assert loaded["in_flight"] == 1


class TestOrders:
    def test_order_charges_and_completes(self, world):
        world.admit("a")
        out = world.order("a", 64 * 1024)
        assert out["cost_resos"] > 0
        assert not out["throttled"]
        done = world.drain()
        assert len(done) == 1
        assert done[0]["order_id"] == out["order_id"]
        assert done[0]["latency_us"] > 0

    def test_order_size_clamped(self, world):
        world.admit("a")
        assert world.order("a", 1)["nbytes"] == MIN_ORDER_BYTES
        out = world.order("a", MAX_ORDER_BYTES * 10)
        assert out["nbytes"] == MAX_ORDER_BYTES

    def test_exhausted_account_is_throttled_not_refused(self, world):
        world.admit("a")
        world.ask("a", world._account(0).allocation)  # drain the budget
        out = world.order("a", 1 << 20)
        assert out["throttled"] is True
        assert any(t[3] for t in world._pending.values())

    def test_release_keeps_inflight_orders_draining(self, world):
        world.admit("a")
        world.order("a", 1 << 20)
        world.release("a")
        done = world.drain()
        assert [d["vm"] for d in done] == ["a"]


class TestClock:
    def test_advance_is_monotone(self, world):
        world.advance_to(5_000_000)
        assert world.now_ns == 5_000_000
        world.advance_to(1_000)  # late arrival: clamped, not rewound
        assert world.now_ns == 5_000_000

    def test_controller_epochs_advance_with_clock(self, world):
        world.admit("a")
        world.advance_to(2_100_000_000)  # past two 1 s epochs
        assert world.controller.epochs_run >= 2
        assert world.stats()["intervals_run"] > 1000
