"""Gateway failure-path tests: the ISSUE's containment checklist.

Every scenario here is hostile or unlucky client behaviour — malformed
frames, oversized payloads, mid-request disconnects, a backend that
blows up, a queue pushed past its bound — and in every one the gateway
must answer with a structured error frame (when an answer is possible)
and keep serving everyone else.
"""

import asyncio
import struct

import pytest

from repro.errors import Overloaded, ServiceBackendError
from repro.service import (
    Orchestrator,
    ServiceClient,
    ServiceConfig,
    ServiceGateway,
    SimBackend,
    protocol,
)


class GatedBackend(SimBackend):
    """A sim backend whose requests can be held at a gate (test-only)."""

    def __init__(self, *args, **kwargs):
        super().__init__(*args, **kwargs)
        self.gate = None

    async def handle(self, op, params, at_ns=0):
        if self.gate is not None:
            await self.gate.wait()
        return await super().handle(op, params, at_ns)


class ExplodingBackend(SimBackend):
    """A sim backend that raises an unexpected exception on 'price'."""

    async def handle(self, op, params, at_ns=0):
        if op == "price":
            raise RuntimeError("sensor wedged")
        return await super().handle(op, params, at_ns)


def run(coro):
    return asyncio.run(coro)


async def _gateway(backend=None, **kwargs):
    backend = backend or SimBackend(ServiceConfig(), seed=7)
    gateway = ServiceGateway(Orchestrator(backend), **kwargs)
    await gateway.start()
    return gateway


async def _raw_conn(gateway):
    """A raw handshaken connection (no client library)."""
    reader, writer = await asyncio.open_connection("127.0.0.1", gateway.port)
    writer.write(protocol.encode_frame(protocol.hello_frame("raw")))
    await writer.drain()
    welcome = await protocol.read_frame(reader)
    assert welcome["type"] == "welcome"
    return reader, writer


class TestHandshake:
    def test_wrong_protocol_gets_error_frame_and_close(self):
        async def scenario():
            gateway = await _gateway()
            try:
                reader, writer = await asyncio.open_connection(
                    "127.0.0.1", gateway.port
                )
                bad = dict(protocol.hello_frame("x"), proto="bogus/9")
                writer.write(protocol.encode_frame(bad))
                await writer.drain()
                err = await protocol.read_frame(reader)
                assert err["type"] == "err"
                assert err["code"] == "service-handshake"
                assert await protocol.read_frame(reader) is None  # closed
            finally:
                await gateway.stop()

        run(scenario())

    def test_mode_reported_in_welcome(self):
        async def scenario():
            gateway = await _gateway()
            try:
                client = await ServiceClient.connect(
                    "127.0.0.1", gateway.port
                )
                assert client.mode == "sim"
                await client.close()
            finally:
                await gateway.stop()

        run(scenario())


class TestFailureContainment:
    def test_malformed_frame_gets_error_and_gateway_survives(self):
        async def scenario():
            gateway = await _gateway()
            try:
                reader, writer = await _raw_conn(gateway)
                junk = b"\xff\xfenot json at all"
                writer.write(struct.pack(">I", len(junk)) + junk)
                await writer.drain()
                err = await protocol.read_frame(reader)
                assert err["type"] == "err"
                assert err["code"] == "service-protocol"
                # That connection is dead...
                assert await protocol.read_frame(reader) is None
                # ...but the gateway is fine:
                client = await ServiceClient.connect("127.0.0.1", gateway.port)
                assert (await client.price())["local"] >= 0
                await client.close()
            finally:
                await gateway.stop()

        run(scenario())

    def test_oversized_payload_rejected_without_allocation(self):
        async def scenario():
            gateway = await _gateway(max_frame=4096)
            try:
                reader, writer = await _raw_conn(gateway)
                # Announce a 100 MB frame; send nothing further.
                writer.write(struct.pack(">I", 100 * 1024 * 1024))
                await writer.drain()
                err = await protocol.read_frame(reader)
                assert err["code"] == "service-frame"
                assert gateway.protocol_errors >= 1
            finally:
                await gateway.stop()

        run(scenario())

    def test_backend_exception_becomes_structured_error_frame(self):
        async def scenario():
            gateway = await _gateway(
                ExplodingBackend(ServiceConfig(), seed=7)
            )
            try:
                client = await ServiceClient.connect("127.0.0.1", gateway.port)
                with pytest.raises(ServiceBackendError, match="sensor wedged"):
                    await client.price()
                # Same connection still serves other ops: no crash.
                stats = await client.stats()
                assert stats["mode"] == "sim"
                await client.close()
            finally:
                await gateway.stop()
            assert gateway.requests_served >= 1

        run(scenario())

    def test_client_disconnect_mid_request_is_contained(self):
        async def scenario():
            backend = GatedBackend(ServiceConfig(), seed=7)
            gateway = await _gateway(backend)
            backend.gate = asyncio.Event()
            try:
                reader, writer = await _raw_conn(gateway)
                writer.write(
                    protocol.encode_frame(protocol.request_frame(1, "price"))
                )
                await writer.drain()
                await asyncio.sleep(0.05)  # request is now held at the gate
                writer.close()  # vanish mid-request
                backend.gate.set()
                await asyncio.sleep(0.05)
                assert len(gateway._sessions) == 0  # session torn down
                # Gateway still serves new clients.
                backend.gate = None
                client = await ServiceClient.connect("127.0.0.1", gateway.port)
                assert (await client.stats())["mode"] == "sim"
                await client.close()
            finally:
                await gateway.stop()

        run(scenario())

    def test_shape_breach_with_id_keeps_connection(self):
        async def scenario():
            gateway = await _gateway()
            try:
                reader, writer = await _raw_conn(gateway)
                bad = {"type": "req", "id": 9, "op": "", "params": {}}
                writer.write(protocol.encode_frame(bad))
                writer.write(
                    protocol.encode_frame(protocol.request_frame(10, "stats"))
                )
                await writer.drain()
                err = await protocol.read_frame(reader)
                assert err["type"] == "err" and err["id"] == 9
                res = await protocol.read_frame(reader)
                assert res["type"] == "res" and res["id"] == 10
            finally:
                await gateway.stop()

        run(scenario())


class TestBackpressure:
    def test_queue_overflow_rejected_with_overloaded(self):
        async def scenario():
            backend = GatedBackend(ServiceConfig(), seed=7)
            gateway = await _gateway(backend, max_queue=1)
            backend.gate = asyncio.Event()
            try:
                client = await ServiceClient.connect("127.0.0.1", gateway.port)
                futures = [client.send_nowait("price") for _ in range(8)]
                await client._writer.drain()
                await asyncio.sleep(0.1)  # rejections arrive while gated
                backend.gate.set()
                outcomes = await asyncio.gather(
                    *futures, return_exceptions=True
                )
                rejected = [o for o in outcomes if isinstance(o, Overloaded)]
                served = [o for o in outcomes if isinstance(o, dict)]
                assert rejected, "bounded queue never rejected"
                assert served, "gateway served nothing"
                assert len(rejected) + len(served) == 8
                assert gateway.requests_rejected == len(rejected)
                # After the burst the connection still works.
                assert (await client.stats())["mode"] == "sim"
                await client.close()
            finally:
                await gateway.stop()

        run(scenario())
