"""Service crash tolerance: idempotent re-send, reconnect, snapshots.

The live service's recovery story has three legs, each fenced here:

* **Unavailability is structured.**  Dialing a server that is not
  listening raises :class:`~repro.errors.ServiceUnavailable` (stable
  ``service-unavailable`` wire/CLI code), never a raw
  ``ConnectionRefusedError``.
* **Re-send is at-most-once.**  A tokenized client stamps every
  request with an idempotency key; the orchestrator's bounded dedup
  window answers a duplicate with the cached response (same data,
  same serialization ``seq``) without executing twice — which is what
  makes :meth:`ServiceClient.reconnect` safe for mutating operations.
* **The served world survives a restart.**  ``snapshot``/``restore``
  round-trips the market's durable state through a digest-stamped
  JSON file, and every corruption of that file is rejected with a
  structured :class:`~repro.errors.CheckpointError`.
"""

import asyncio
import json

import pytest

from repro.errors import CheckpointError, ProtocolError, ServiceUnavailable
from repro.service import (
    Orchestrator,
    ResExWorld,
    ServiceClient,
    ServiceConfig,
    ServiceGateway,
    SimBackend,
    load_world_snapshot,
    protocol,
    save_world_snapshot,
)


def run(coro):
    return asyncio.run(coro)


async def _gateway(**kwargs):
    backend = SimBackend(ServiceConfig(slots=4), seed=7)
    gateway = ServiceGateway(Orchestrator(backend), **kwargs)
    await gateway.start()
    return gateway


class TestServiceUnavailable:
    def test_dead_port_raises_structured_unavailable(self):
        async def scenario():
            with pytest.raises(ServiceUnavailable) as err:
                await ServiceClient.connect("127.0.0.1", 1, retries=0)
            assert err.value.code == "service-unavailable"
            assert err.value.exit_code == 6
            assert "after 1 attempt(s)" in str(err.value)

        run(scenario())

    def test_retry_budget_is_counted(self):
        async def scenario():
            with pytest.raises(ServiceUnavailable, match="3 attempt"):
                await ServiceClient.connect(
                    "127.0.0.1", 1, retries=2, retry_delay_s=0.01
                )

        run(scenario())


class TestIdempotentReplay:
    def test_duplicate_ikey_replays_cached_response(self):
        async def scenario():
            gateway = await _gateway()
            try:
                orch = gateway.orchestrator
                frame = protocol.request_frame(
                    5, "admit", {"vm": "a"}, 100, ikey="tok:5"
                )
                first = await orch.handle_request(frame)
                replay = await orch.handle_request(frame)
                assert replay == first  # same data, same seq
                assert orch.deduped == 1
                assert orch.op_counts["admit"] == 1  # executed once
                assert orch.stats()["deduped"] == 1
            finally:
                await gateway.stop()

        run(scenario())

    def test_requests_without_ikey_are_never_deduped(self):
        async def scenario():
            gateway = await _gateway()
            try:
                orch = gateway.orchestrator
                a = await orch.handle("price")
                b = await orch.handle("price")
                assert a["seq"] != b["seq"]
                assert orch.deduped == 0
            finally:
                await gateway.stop()

        run(scenario())

    def test_failures_are_not_cached(self):
        async def scenario():
            gateway = await _gateway()
            try:
                orch = gateway.orchestrator
                frame = protocol.request_frame(
                    1, "release", {"vm": "ghost"}, ikey="tok:1"
                )
                from repro.errors import AdmissionError

                for _ in range(2):
                    with pytest.raises(AdmissionError):
                        await orch.handle_request(frame)
                # Both attempts executed (error counted twice): a retry
                # after a legitimate failure must be allowed to succeed.
                assert orch.error_counts["release"] == 2
                assert orch.deduped == 0
            finally:
                await gateway.stop()

        run(scenario())

    def test_dedup_window_is_bounded(self):
        async def scenario():
            gateway = await _gateway()
            try:
                orch = gateway.orchestrator
                orch.dedup_window = 4
                for i in range(10):
                    await orch.handle("price", ikey=f"tok:{i}")
                assert len(orch._dedup) == 4
                # The evicted oldest key re-executes...
                before = orch.op_counts["price"]
                await orch.handle("price", ikey="tok:0")
                assert orch.op_counts["price"] == before + 1
                # ...while a still-windowed key replays.
                await orch.handle("price", ikey="tok:9")
                assert orch.op_counts["price"] == before + 1
            finally:
                await gateway.stop()

        run(scenario())

    def test_ikey_shape_is_validated_on_the_wire(self):
        frame = protocol.request_frame(1, "price", ikey="tok:1")
        assert protocol.check_request(dict(frame)) == frame
        bad = dict(frame, ikey="")
        with pytest.raises(ProtocolError, match="ikey"):
            protocol.check_request(bad)
        bad = dict(frame, ikey=7)
        with pytest.raises(ProtocolError, match="ikey"):
            protocol.check_request(bad)


class TestClientReconnect:
    def test_reconnect_resends_and_resolves_inflight(self):
        async def scenario():
            gateway = await _gateway()
            try:
                client = await ServiceClient.connect(
                    "127.0.0.1", gateway.port, token="tok"
                )
                await client.admit("a", at_ns=100)
                future = client.send_nowait(
                    "order", {"vm": "a", "nbytes": 4096}, at_ns=200
                )
                await asyncio.sleep(0.05)
                client._writer.transport.abort()
                await asyncio.sleep(0.05)
                # Tokenized: the future survives the dead transport.
                assert not (future.done() and future.exception())
                await client.reconnect()
                data = await asyncio.wait_for(future, 5)
                assert data["order_id"] == 1
                # The dedup window guaranteed single execution even if
                # the first send reached the backend before the abort.
                assert gateway.orchestrator.op_counts.get("order") == 1
                await client.close()
            finally:
                await gateway.stop()

        run(scenario())

    def test_untokenized_client_fails_fast_on_connection_loss(self):
        async def scenario():
            gateway = await _gateway()
            try:
                client = await ServiceClient.connect(
                    "127.0.0.1", gateway.port
                )
                with pytest.raises(ProtocolError, match="reconnect"):
                    await client.reconnect()
                await client.close()
            finally:
                await gateway.stop()

        run(scenario())


class TestGatewayDrain:
    def test_drain_refuses_new_dials_answers_queued(self):
        async def scenario():
            gateway = await _gateway()
            try:
                client = await ServiceClient.connect(
                    "127.0.0.1", gateway.port
                )
                await client.admit("a", at_ns=10)
                await gateway.drain()
                with pytest.raises((ConnectionError, OSError)):
                    await asyncio.open_connection("127.0.0.1", gateway.port)
                # The surviving session still gets answers.
                stats = await client.stats()
                assert stats["admitted"] == 1
                await client.close()
            finally:
                await gateway.stop()

        run(scenario())


class TestWorldSnapshot:
    def _world_with_state(self):
        world = ResExWorld(ServiceConfig(slots=4), seed=11)
        world.advance_to(50_000)
        world.admit("alpha")
        world.admit("beta")
        world.ask("alpha", 3.0)
        world.order("beta", 8192)
        return world

    def test_snapshot_restore_round_trip(self):
        world = self._world_with_state()
        snap = world.snapshot()
        assert snap["in_flight_lost"] == 1  # the un-drained order
        restored = ResExWorld.restore(snap)
        assert restored.bindings == {"alpha": 0, "beta": 1}
        assert restored.now_ns == world.now_ns
        assert restored.pool_resos == snap["pool_resos"]
        # The restored world's own snapshot is identical except for the
        # in-flight orders, which are declared lost — not resurrected.
        assert restored.snapshot() == {**snap, "in_flight_lost": 0}

    def test_restored_world_serves_consistently(self):
        world = self._world_with_state()
        restored = ResExWorld.restore(world.snapshot())
        # Order numbering continues: no id reuse after a restart.
        order = restored.order("alpha", 4096)
        assert order["order_id"] == 2
        # Slots freed before the snapshot stay free.
        third = restored.admit("gamma")
        assert third["slot"] == 2

    def test_schema_mismatch_rejected(self):
        with pytest.raises(CheckpointError, match="schema"):
            ResExWorld.restore({"schema": "resex-world/999"})

    def test_malformed_snapshot_rejected(self):
        snap = self._world_with_state().snapshot()
        del snap["balances"]
        with pytest.raises(CheckpointError, match="malformed"):
            ResExWorld.restore(snap)

    def test_out_of_range_slot_rejected(self):
        snap = self._world_with_state().snapshot()
        snap["bindings"]["alpha"] = 99
        with pytest.raises(CheckpointError, match="slot"):
            ResExWorld.restore(snap)


class TestSnapshotFiles:
    def test_file_round_trip(self, tmp_path):
        snap = ResExWorld(ServiceConfig(slots=2), seed=3).snapshot()
        path = tmp_path / "world.json"
        digest = save_world_snapshot(str(path), snap)
        assert load_world_snapshot(str(path)) == snap
        doc = json.loads(path.read_text())
        assert doc["digest"] == digest

    def test_digest_mismatch_rejected(self, tmp_path):
        snap = ResExWorld(ServiceConfig(slots=2), seed=3).snapshot()
        path = tmp_path / "world.json"
        save_world_snapshot(str(path), snap)
        doc = json.loads(path.read_text())
        doc["snapshot"]["pool_resos"] = 1e9
        path.write_text(json.dumps(doc))
        with pytest.raises(CheckpointError, match="digest mismatch"):
            load_world_snapshot(str(path))

    def test_truncated_file_rejected(self, tmp_path):
        snap = ResExWorld(ServiceConfig(slots=2), seed=3).snapshot()
        path = tmp_path / "world.json"
        save_world_snapshot(str(path), snap)
        path.write_text(path.read_text()[: 50])
        with pytest.raises(CheckpointError, match="JSON"):
            load_world_snapshot(str(path))

    def test_missing_file_rejected(self, tmp_path):
        with pytest.raises(CheckpointError, match="cannot read"):
            load_world_snapshot(str(tmp_path / "nope.json"))
