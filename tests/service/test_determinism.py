"""The determinism contract: sim mode, fixed seed + fixed trace ⇒
byte-identical response logs, in process and over the wire."""

import asyncio

from repro.service import (
    Orchestrator,
    ServiceConfig,
    ServiceGateway,
    SimBackend,
    run_loadgen,
    run_service_replay,
)


def _socket_run(requests: int = 200, seed: int = 7):
    async def scenario():
        gateway = ServiceGateway(
            Orchestrator(SimBackend(ServiceConfig(), seed=seed))
        )
        await gateway.start()
        try:
            return await run_loadgen(
                "127.0.0.1", gateway.port, requests=requests, seed=seed
            )
        finally:
            await gateway.stop()

    return asyncio.run(scenario())


class TestReplayDeterminism:
    def test_same_seed_same_digest(self):
        a = run_service_replay("service_smoke", 7, overrides={"requests": 150})
        b = run_service_replay("service_smoke", 7, overrides={"requests": 150})
        assert a.lines == b.lines
        assert a.digest == b.digest

    def test_different_seed_different_digest(self):
        a = run_service_replay("service_smoke", 7, overrides={"requests": 150})
        b = run_service_replay("service_smoke", 8, overrides={"requests": 150})
        assert a.digest != b.digest

    def test_bursty_and_diurnal_presets_replay(self):
        for preset in ("service_bursty", "service_diurnal"):
            r = run_service_replay(preset, 7, overrides={"requests": 120})
            assert r.ok > 0
            assert r.metrics()["digest48"] > 0

    def test_metrics_are_floats(self):
        r = run_service_replay("service_smoke", 7, overrides={"requests": 100})
        assert all(isinstance(v, float) for v in r.metrics().values())


class TestWireEqualsInProcess:
    def test_socket_digest_matches_replay_digest(self):
        """The wire adds framing, a queue and a worker task — and zero
        semantic drift: the socket-path response log digests identically
        to the in-process replay of the same (preset, seed)."""
        report = _socket_run(requests=200, seed=7)
        replay = run_service_replay(
            "service_smoke", 7, overrides={"requests": 200}
        )
        assert report.errors == 0
        assert report.digest == replay.digest

    def test_fresh_servers_agree(self):
        a = _socket_run(requests=150, seed=13)
        b = _socket_run(requests=150, seed=13)
        assert a.digest == b.digest
