"""Live-mode backend: the wall clock drives the served DES."""

import asyncio

from repro.service import (
    LiveBackend,
    Orchestrator,
    ServiceClient,
    ServiceConfig,
    ServiceGateway,
)


class TestLiveBackend:
    def test_wall_clock_advances_virtual_time(self):
        async def scenario():
            backend = LiveBackend(ServiceConfig(), seed=7, tick_s=0.005)
            orch = Orchestrator(backend)
            await orch.start()
            try:
                await asyncio.sleep(0.05)
                stats = await orch.handle("stats")
                assert stats["now_ns"] >= 40_000_000  # >= ~40 ms elapsed
                assert stats["intervals_run"] > 10  # 1 ms pricing intervals
            finally:
                await orch.stop()

        asyncio.run(scenario())

    def test_orders_complete_in_real_time(self):
        async def scenario():
            gateway = ServiceGateway(
                Orchestrator(LiveBackend(ServiceConfig(), seed=7, tick_s=0.005))
            )
            await gateway.start()
            try:
                client = await ServiceClient.connect("127.0.0.1", gateway.port)
                assert client.mode == "live"
                await client.admit("vm0")
                # 1 MiB at 1 GiB/s needs ~1 ms of (wall) clock.
                order = await client.order("vm0", 1 << 20)
                assert order["order_id"] == 1
                deadline = asyncio.get_running_loop().time() + 5.0
                completed = []
                while not completed:
                    assert asyncio.get_running_loop().time() < deadline, (
                        "order never completed in live mode"
                    )
                    await asyncio.sleep(0.01)
                    completed = (await client.flush())["completed"]
                assert completed[0]["order_id"] == 1
                assert completed[0]["latency_us"] > 0
                await client.close()
            finally:
                await gateway.stop()

        asyncio.run(scenario())
