"""Load-generator tests: arrival processes, trace synthesis, digests."""

import pytest

from repro.errors import ConfigError
from repro.service.loadgen import (
    arrival_offsets,
    build_trace,
    response_digest,
    response_log_lines,
)


class TestArrivals:
    @pytest.mark.parametrize("kind", ["constant", "bursty", "diurnal"])
    def test_monotone_nonnegative(self, kind):
        offsets = arrival_offsets(kind, 500, 10_000.0, seed=7)
        assert len(offsets) == 500
        assert offsets[0] >= 0
        assert all(b >= a for a, b in zip(offsets, offsets[1:]))

    @pytest.mark.parametrize("kind", ["constant", "bursty", "diurnal"])
    def test_seeded(self, kind):
        a = arrival_offsets(kind, 200, 5_000.0, seed=3)
        b = arrival_offsets(kind, 200, 5_000.0, seed=3)
        c = arrival_offsets(kind, 200, 5_000.0, seed=4)
        assert a == b
        assert a != c

    def test_mean_rate_roughly_honoured(self):
        offsets = arrival_offsets("constant", 5000, 10_000.0, seed=7)
        span_s = offsets[-1] / 1e9
        assert 5000 / span_s == pytest.approx(10_000.0, rel=0.1)

    def test_unknown_kind(self):
        with pytest.raises(ConfigError, match="arrival kind"):
            arrival_offsets("lunar", 10, 1.0, seed=7)

    def test_bad_rate(self):
        with pytest.raises(ConfigError, match="rate"):
            arrival_offsets("constant", 10, 0.0, seed=7)


class TestTraceSynthesis:
    def test_admissions_come_first_then_mix_then_flush(self):
        trace = build_trace(requests=100, vms=3, seed=7)
        assert [r["op"] for r in trace[:3]] == ["admit"] * 3
        assert [r["params"]["vm"] for r in trace[:3]] == ["vm0", "vm1", "vm2"]
        assert trace[-1]["op"] == "flush"
        assert any(r["op"] == "order" for r in trace[3:-1])

    def test_seeded_and_distinct(self):
        a = build_trace(requests=80, seed=7)
        b = build_trace(requests=80, seed=7)
        c = build_trace(requests=80, seed=8)
        assert a == b
        assert a != c

    def test_arrival_offsets_monotone_in_trace(self):
        trace = build_trace(requests=60, seed=7)
        ats = [r["at_ns"] for r in trace]
        assert all(b >= a for a, b in zip(ats, ats[1:]))

    def test_too_few_requests_rejected(self):
        with pytest.raises(ConfigError, match="cannot cover"):
            build_trace(requests=3, vms=4, seed=7)

    def test_unknown_mix_op_rejected(self):
        with pytest.raises(ConfigError, match="unknown ops"):
            build_trace(requests=50, seed=7, mix={"teleport": 1.0})


class TestDigest:
    def test_sorted_by_request_id(self):
        responses = {2: {"op": "b", "ok": True}, 1: {"op": "a", "ok": True}}
        lines = response_log_lines(responses)
        assert lines[0].startswith('{"id":1')
        assert lines[1].startswith('{"id":2')

    def test_digest_is_order_independent(self):
        a = {1: {"op": "a", "ok": True}, 2: {"op": "b", "ok": True}}
        b = dict(reversed(list(a.items())))
        assert response_digest(a) == response_digest(b)

    def test_digest_sensitive_to_content(self):
        a = {1: {"op": "a", "ok": True}}
        b = {1: {"op": "a", "ok": False}}
        assert response_digest(a) != response_digest(b)
