"""Service replay through the sweep engine: fan-out, cache, suite."""

import pytest

from repro.errors import ConfigError
from repro.experiments.suite import run_service_set
from repro.parallel import SweepJob, run_sweep


def _jobs(requests=80):
    return [
        SweepJob("service", "service_smoke", 7, {"requests": requests}),
        SweepJob("service", "service_smoke", 8, {"requests": requests}),
    ]


class TestServiceCells:
    def test_serial_metrics(self):
        result = run_sweep(_jobs(), workers=1)
        assert result.report.errors == 0
        m7, m8 = (cell.metrics for cell in result.cells)
        assert m7["ok"] == 80.0
        assert m7["digest48"] != m8["digest48"]  # seed-sensitive

    def test_parallel_matches_serial(self):
        serial = run_sweep(_jobs(), workers=1)
        pooled = run_sweep(_jobs(), workers=2)
        assert [c.metrics for c in serial.cells] == [
            c.metrics for c in pooled.cells
        ]

    def test_cacheable(self, tmp_path):
        cold = run_sweep(_jobs(), workers=1, cache=tmp_path)
        warm = run_sweep(_jobs(), workers=1, cache=tmp_path)
        assert cold.report.cached == 0
        assert warm.report.cached == 2
        assert [c.metrics for c in cold.cells] == [
            c.metrics for c in warm.cells
        ]


class TestServiceSet:
    def test_named_subset(self):
        results, report = run_service_set(
            ["service_smoke"], seed=7, requests=60
        )
        assert list(results) == ["service_smoke"]
        assert results["service_smoke"]["requests"] == 60.0
        assert report.executed == 1

    def test_unknown_preset_rejected(self):
        with pytest.raises(ConfigError, match="unknown service presets"):
            run_service_set(["service_nope"])
