"""End-to-end CLI pair: ``repro serve`` + ``repro loadgen``.

The server runs as a real subprocess (signal handlers only install in
a main thread) on an ephemeral port; the loadgen runs in-process so
its report object is directly assertable.  This is the same shape as
the CI ``serve-smoke`` job, scaled down.
"""

import os
import signal
import subprocess
import sys
import time

import pytest

from repro.cli import main

_SRC = os.path.join(os.path.dirname(__file__), "..", "..", "src")


@pytest.fixture()
def serve_proc(tmp_path):
    env = dict(os.environ)
    env["PYTHONPATH"] = _SRC + os.pathsep + env.get("PYTHONPATH", "")
    out_path = tmp_path / "serve.out"
    with open(out_path, "w") as out:
        proc = subprocess.Popen(
            [sys.executable, "-m", "repro", "serve", "--mode", "sim",
             "--port", "0"],
            stdout=out,
            stderr=subprocess.DEVNULL,
            env=env,
        )
    port = None
    for _ in range(100):
        text = out_path.read_text()
        if "listening" in text:
            port = int(text.split()[1].rsplit(":", 1)[1])
            break
        if proc.poll() is not None:
            pytest.fail(f"serve exited early with {proc.returncode}")
        time.sleep(0.1)
    assert port, "server never reported its port"
    yield proc, port
    if proc.poll() is None:
        proc.kill()
        proc.wait()


class TestServeLoadgen:
    def test_loadgen_against_live_server_and_clean_sigterm(
        self, serve_proc, capsys
    ):
        proc, port = serve_proc
        rc = main(
            ["loadgen", "--port", str(port), "--requests", "120",
             "--seed", "7", "--json"]
        )
        assert rc == 0
        out = capsys.readouterr().out
        assert '"requests": 120' in out
        assert '"errors": 0' in out
        assert '"digest"' in out
        # Graceful shutdown: SIGTERM -> exit 0.
        proc.send_signal(signal.SIGTERM)
        assert proc.wait(timeout=10) == 0
