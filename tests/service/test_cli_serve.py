"""End-to-end CLI pair: ``repro serve`` + ``repro loadgen``.

The server runs as a real subprocess (signal handlers only install in
a main thread) on an ephemeral port; the loadgen runs in-process so
its report object is directly assertable.  This is the same shape as
the CI ``serve-smoke`` job, scaled down.
"""

import os
import signal
import subprocess
import sys
import time

import pytest

from repro.cli import main

_SRC = os.path.join(os.path.dirname(__file__), "..", "..", "src")


@pytest.fixture()
def serve_proc(tmp_path):
    env = dict(os.environ)
    env["PYTHONPATH"] = _SRC + os.pathsep + env.get("PYTHONPATH", "")
    out_path = tmp_path / "serve.out"
    with open(out_path, "w") as out:
        proc = subprocess.Popen(
            [sys.executable, "-m", "repro", "serve", "--mode", "sim",
             "--port", "0"],
            stdout=out,
            stderr=subprocess.DEVNULL,
            env=env,
        )
    port = None
    for _ in range(100):
        text = out_path.read_text()
        if "listening" in text:
            port = int(text.split()[1].rsplit(":", 1)[1])
            break
        if proc.poll() is not None:
            pytest.fail(f"serve exited early with {proc.returncode}")
        time.sleep(0.1)
    assert port, "server never reported its port"
    yield proc, port
    if proc.poll() is None:
        proc.kill()
        proc.wait()


class TestServeLoadgen:
    def test_loadgen_against_live_server_and_clean_sigterm(
        self, serve_proc, capsys
    ):
        proc, port = serve_proc
        rc = main(
            ["loadgen", "--port", str(port), "--requests", "120",
             "--seed", "7", "--json"]
        )
        assert rc == 0
        out = capsys.readouterr().out
        assert '"requests": 120' in out
        assert '"errors": 0' in out
        assert '"digest"' in out
        # Graceful shutdown: SIGTERM -> exit 0.
        proc.send_signal(signal.SIGTERM)
        assert proc.wait(timeout=10) == 0


def _spawn_serve(tmp_path, extra, name):
    env = dict(os.environ)
    env["PYTHONPATH"] = _SRC + os.pathsep + env.get("PYTHONPATH", "")
    out_path = tmp_path / f"{name}.out"
    with open(out_path, "w") as out:
        proc = subprocess.Popen(
            [sys.executable, "-m", "repro", "serve", "--mode", "sim",
             "--port", "0", *extra],
            stdout=out,
            stderr=subprocess.DEVNULL,
            env=env,
        )
    for _ in range(100):
        text = out_path.read_text()
        if "listening" in text:
            return proc, int(text.split()[1].rsplit(":", 1)[1])
        if proc.poll() is not None:
            pytest.fail(f"serve exited early with {proc.returncode}")
        time.sleep(0.1)
    pytest.fail("server never reported its port")


class TestServeCheckpointRestore:
    def test_sigterm_checkpoints_and_restore_resumes(self, tmp_path):
        """Stop a server under SIGTERM, restart from its snapshot:
        bindings, clock and order numbering carry across the restart."""
        import asyncio

        from repro.service import ServiceClient, load_world_snapshot

        snap_path = tmp_path / "world.json"
        proc, port = _spawn_serve(
            tmp_path, ["--slots", "4", "--seed", "11",
                       "--checkpoint", str(snap_path)], "first",
        )
        try:
            async def drive():
                client = await ServiceClient.connect(
                    "127.0.0.1", port, retries=5
                )
                await client.admit("alpha", at_ns=10_000)
                await client.order("alpha", 4096, at_ns=20_000)
                await client.flush(at_ns=30_000)
                await client.close()

            asyncio.run(drive())
            proc.send_signal(signal.SIGTERM)
            assert proc.wait(timeout=15) == 0
        finally:
            if proc.poll() is None:
                proc.kill()
                proc.wait()

        snap = load_world_snapshot(str(snap_path))  # digest-verified
        assert snap["bindings"] == {"alpha": 0}
        assert snap["order_seq"] == 1

        proc2, port2 = _spawn_serve(
            tmp_path, ["--restore", str(snap_path)], "second"
        )
        try:
            async def check():
                client = await ServiceClient.connect(
                    "127.0.0.1", port2, retries=5
                )
                stats = await client.stats()
                assert stats["admitted"] == 1
                assert stats["slots"] == 4
                # Order ids continue from the snapshot: no reuse.
                order = await client.order("alpha", 4096)
                assert order["order_id"] == 2
                await client.close()

            asyncio.run(check())
            proc2.send_signal(signal.SIGTERM)
            assert proc2.wait(timeout=15) == 0
        finally:
            if proc2.poll() is None:
                proc2.kill()
                proc2.wait()
