"""Tests for Fault/FaultCampaign/FaultEngine (repro.faults.campaign)."""

import pytest

from repro.errors import FaultError
from repro.faults import (
    Fault,
    FaultCampaign,
    FaultEngine,
    Injector,
    RenewalSpec,
    campaign_presets,
    preset_campaign,
)
from repro.sim import Environment
from repro.sim.rng import RngRegistry
from repro.telemetry import TelemetryBus
from repro.units import MS, SEC


@pytest.fixture
def env():
    return Environment()


class Recorder(Injector):
    """Records (verb, fault, now) tuples for assertion."""

    def __init__(self, kind, env):
        self.kind = kind
        self.env = env
        self.events = []

    def inject(self, fault):
        self.events.append(("inject", fault, self.env.now))

    def clear(self, fault):
        self.events.append(("clear", fault, self.env.now))


class TestFaultValidation:
    def test_valid(self):
        f = Fault("link-degrade", "a.tx", 100, 50, 0.5)
        assert f.end_ns == 150

    def test_empty_kind(self):
        with pytest.raises(FaultError, match="kind"):
            Fault("", "a.tx", 0, 1)

    def test_negative_start(self):
        with pytest.raises(FaultError, match="start"):
            Fault("k", "t", -1, 1)

    def test_zero_duration(self):
        with pytest.raises(FaultError, match="duration"):
            Fault("k", "t", 0, 0)

    def test_severity_out_of_range(self):
        with pytest.raises(FaultError, match="severity"):
            Fault("k", "t", 0, 1, 1.5)


class TestScriptedCampaign:
    def test_canonical_order(self):
        c = FaultCampaign.scripted(
            [
                Fault("b", "t", 200, 10),
                Fault("a", "t", 100, 10),
                Fault("a", "s", 100, 10),
            ]
        )
        assert [(f.start_ns, f.kind, f.target) for f in c.faults] == [
            (100, "a", "s"),
            (100, "a", "t"),
            (200, "b", "t"),
        ]

    def test_overlap_same_hook_rejected(self):
        with pytest.raises(FaultError, match="overlap"):
            FaultCampaign.scripted(
                [Fault("k", "t", 0, 100), Fault("k", "t", 50, 100)]
            )

    def test_overlap_different_target_allowed(self):
        c = FaultCampaign.scripted(
            [Fault("k", "t1", 0, 100), Fault("k", "t2", 50, 100)]
        )
        assert len(c) == 2

    def test_kinds_and_horizon(self):
        c = FaultCampaign.scripted(
            [Fault("b", "t", 0, 10), Fault("a", "t", 5_000, 250)]
        )
        assert c.kinds() == ["a", "b"]
        assert c.horizon_ns() == 5_250
        assert FaultCampaign.scripted([]).horizon_ns() == 0

    def test_shifted(self):
        c = FaultCampaign.scripted([Fault("k", "t", 100, 10, 0.3)])
        s = c.shifted(1_000)
        assert s.faults[0].start_ns == 1_100
        assert s.faults[0].severity == 0.3
        assert s.name == c.name


class TestStochasticCampaign:
    SPECS = [
        RenewalSpec("link-degrade", "a.tx", mtbf_ns=20 * MS, mttr_ns=2 * MS),
        RenewalSpec("ibmon-dropout", "host", mtbf_ns=30 * MS, mttr_ns=5 * MS,
                    severity=0.5),
    ]

    def _build(self, seed):
        rng = RngRegistry(seed).stream("faults/test-campaign")
        return FaultCampaign.stochastic(self.SPECS, int(0.2 * SEC), rng)

    def test_same_seed_same_campaign(self):
        assert self._build(7) == self._build(7)

    def test_different_seed_differs(self):
        assert self._build(7) != self._build(8)

    def test_windows_within_horizon(self):
        c = self._build(7)
        assert len(c) > 0
        assert all(f.end_ns <= int(0.2 * SEC) for f in c.faults)
        assert all(f.duration_ns >= 1 for f in c.faults)

    def test_renewal_spec_validation(self):
        with pytest.raises(FaultError):
            RenewalSpec("k", "t", mtbf_ns=0, mttr_ns=1)


class TestPresets:
    def test_all_presets_build(self):
        for name in campaign_presets():
            c = preset_campaign(name, sim_s=1.0, seed=7)
            assert c.name == name
            assert c.horizon_ns() <= int(1.0 * SEC)

    def test_unknown_preset(self):
        with pytest.raises(FaultError, match="unknown campaign"):
            preset_campaign("nope", sim_s=1.0)

    def test_bad_sim_s(self):
        with pytest.raises(FaultError, match="sim_s"):
            preset_campaign("link-flap", sim_s=0.0)

    def test_random_preset_is_seeded(self):
        a = preset_campaign("random", sim_s=1.0, seed=3)
        b = preset_campaign("random", sim_s=1.0, seed=3)
        c = preset_campaign("random", sim_s=1.0, seed=4)
        assert a == b
        assert a != c


class TestFaultEngine:
    def test_injects_and_clears_on_schedule(self, env):
        camp = FaultCampaign.scripted(
            [Fault("k", "t", 100, 50), Fault("k", "t", 300, 25)]
        )
        rec = Recorder("k", env)
        engine = FaultEngine(env, camp).register(rec)
        engine.start()
        env.run(until=1_000)
        assert [(v, t) for v, _, t in rec.events] == [
            ("inject", 100),
            ("clear", 150),
            ("inject", 300),
            ("clear", 325),
        ]
        assert engine.injected == 2 and engine.cleared == 2
        assert engine.active == []
        assert [(inj, clr) for _, inj, clr in engine.log] == [
            (100, 150),
            (300, 325),
        ]

    def test_active_mid_window(self, env):
        camp = FaultCampaign.scripted([Fault("k", "t", 100, 1_000)])
        engine = FaultEngine(env, camp).register(Recorder("k", env))
        engine.start()
        env.run(until=500)
        assert [f.kind for f in engine.active] == ["k"]

    def test_missing_injector_rejected(self, env):
        camp = FaultCampaign.scripted([Fault("k", "t", 0, 10)])
        engine = FaultEngine(env, camp)
        with pytest.raises(FaultError, match="no injector"):
            engine.start()

    def test_duplicate_injector_rejected(self, env):
        engine = FaultEngine(env, FaultCampaign.scripted([]))
        engine.register(Recorder("k", env))
        with pytest.raises(FaultError, match="duplicate"):
            engine.register(Recorder("k", env))

    def test_double_start_rejected(self, env):
        engine = FaultEngine(env, FaultCampaign.scripted([]))
        engine.start()
        with pytest.raises(FaultError, match="already started"):
            engine.start()

    def test_telemetry_instants(self):
        bus = TelemetryBus()
        env = Environment()
        env.telemetry = bus
        camp = FaultCampaign.scripted([Fault("k", "t", 100, 50, 0.5)])
        FaultEngine(env, camp).register(Recorder("k", env)).start()
        env.run(until=1_000)
        faults = [r for r in bus.records if r.cat == "faults"]
        assert [(r.name, r.ts_ns) for r in faults] == [
            ("inject", 100),
            ("clear", 150),
        ]
        assert dict(faults[0].args)["severity"] == 0.5
