"""Campaign-validation and RNG-stream reproducibility gaps.

Complements ``test_campaign.py``: property-based overlap rejection
(scripted campaigns must reject exactly the overlapping window sets,
accepting back-to-back windows), and the named-stream discipline from
:mod:`repro.sim.rng` — the same (seed, stream name) always yields the
same stochastic campaign, regardless of what other streams were drawn
from first, while different names yield independent campaigns.
"""

from __future__ import annotations

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.errors import FaultError
from repro.faults import Fault, FaultCampaign, RenewalSpec
from repro.sim.rng import RngRegistry
from repro.units import MS, SEC

_windows = st.lists(
    st.tuples(
        st.integers(min_value=0, max_value=500),  # start
        st.integers(min_value=1, max_value=200),  # duration
    ),
    min_size=1,
    max_size=8,
)


@given(windows=_windows, same_hook=st.booleans())
@settings(max_examples=300, derandomize=True, deadline=None)
def test_scripted_rejects_exactly_the_overlapping_window_sets(
    windows, same_hook
):
    """``FaultCampaign.scripted`` must raise iff two windows on the same
    (kind, target) hook overlap; windows on distinct targets never
    conflict.  Back-to-back windows (one starting the instant the
    previous ends) are legal — the clear actuates before the inject at
    the same timestamp because faults are scheduled in start order."""
    faults = [
        Fault("link-degrade", "t" if same_hook else f"t{i}", start, dur)
        for i, (start, dur) in enumerate(windows)
    ]
    by_hook = {}
    overlaps = False
    for f in sorted(faults, key=lambda f: (f.start_ns, f.kind, f.target)):
        key = (f.kind, f.target)
        if f.start_ns < by_hook.get(key, 0):
            overlaps = True
            break
        by_hook[key] = f.end_ns
    if overlaps:
        with pytest.raises(FaultError, match="overlapping"):
            FaultCampaign.scripted(faults)
    else:
        campaign = FaultCampaign.scripted(faults)
        assert len(campaign) == len(faults)
        starts = [f.start_ns for f in campaign.faults]
        assert starts == sorted(starts)


def test_back_to_back_windows_on_one_hook_are_legal():
    campaign = FaultCampaign.scripted(
        [Fault("k", "t", 0, 100), Fault("k", "t", 100, 50)]
    )
    assert len(campaign) == 2


_SPECS = [
    RenewalSpec("link-degrade", "a.tx", mtbf_ns=15 * MS, mttr_ns=2 * MS),
    RenewalSpec("hca-stall", "a", mtbf_ns=25 * MS, mttr_ns=4 * MS, severity=0.5),
]
_HORIZON = int(0.3 * SEC)


def _campaign_from_stream(seed: int, name: str, warm_other_streams: bool = False):
    registry = RngRegistry(seed)
    if warm_other_streams:
        # Draw from unrelated streams first: named-stream isolation means
        # this must not perturb the campaign stream's draws.
        registry.stream("benchex/client").random(64)
        registry.stream("some/new/component").normal(size=32)
    return FaultCampaign.stochastic(
        _SPECS, _HORIZON, registry.stream(name), name="repro-test"
    )


@given(seed=st.integers(min_value=0, max_value=2**32 - 1))
@settings(max_examples=100, derandomize=True, deadline=None)
def test_same_named_stream_reproduces_the_campaign_exactly(seed):
    """Two independent runs that draw the campaign from the same named
    stream of the same root seed get identical fault schedules — even
    if one of the runs touched other streams first."""
    a = _campaign_from_stream(seed, "faults/chaos")
    b = _campaign_from_stream(seed, "faults/chaos", warm_other_streams=True)
    assert a == b
    # And the generated schedule is always a valid campaign: windows on
    # one hook are disjoint by construction (renewal processes).
    last_end = {}
    for f in a.faults:
        key = (f.kind, f.target)
        assert f.start_ns >= last_end.get(key, 0)
        last_end[key] = f.end_ns


def test_distinct_stream_names_give_independent_campaigns():
    a = _campaign_from_stream(7, "faults/chaos")
    b = _campaign_from_stream(7, "faults/other")
    assert a != b


def test_spawned_registries_are_independent_of_parent_draw_order():
    """Per-host sub-registries reproduce regardless of when the parent
    created them relative to its own draws."""
    r1 = RngRegistry(7)
    child1 = r1.spawn("host-a")
    r2 = RngRegistry(7)
    r2.stream("something").random(10)
    child2 = r2.spawn("host-a")
    assert child1.stream("s").integers(0, 10**9, size=16).tolist() == \
        child2.stream("s").integers(0, 10**9, size=16).tolist()
