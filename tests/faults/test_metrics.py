"""Resilience-metric tests on synthetic latency traces."""

import json
import math

import pytest

from repro.faults import (
    Fault,
    FaultCampaign,
    ResilienceReport,
    degradation_table,
    fault_impacts,
)
from repro.units import MS

#: 100 request cycles, one per ms; latency 100 us except cycles 50-59
#: (started inside the 10 ms fault window) which take 300 us.
FAULT = Fault("link-degrade", "a.tx", 50 * MS, 10 * MS, 0.5)
CAMPAIGN = FaultCampaign.scripted([FAULT], name="synthetic")


def synthetic_samples(spike_until=60):
    samples = []
    for k in range(100):
        lat = 300.0 if 50 <= k < spike_until else 100.0
        samples.append((k * MS, lat))
    return samples


class TestFaultImpacts:
    def test_baseline_from_prefault_samples(self):
        (impact,) = fault_impacts(synthetic_samples(), CAMPAIGN,
                                  rolling_window=4)
        assert impact.baseline_us == pytest.approx(100.0)

    def test_window_means(self):
        (impact,) = fault_impacts(synthetic_samples(), CAMPAIGN,
                                  rolling_window=4)
        assert impact.during_us == pytest.approx(300.0)
        # After the fault: 40 clean samples at 100 us.
        assert impact.after_us == pytest.approx(100.0)
        assert impact.peak_us == pytest.approx(300.0)

    def test_excursion_area(self):
        """10 spiked samples, 200 us over baseline: 9 full 1 ms gaps
        plus the 0.8 ms gap where the completion times re-converge."""
        (impact,) = fault_impacts(synthetic_samples(), CAMPAIGN,
                                  rolling_window=4)
        assert impact.excursion_us_s == pytest.approx(
            200.0 * (9 * 0.001 + 0.0008)
        )

    def test_recovery_time(self):
        """The 4-sample trailing mean last violates +10% at cycle 62
        (300,100,100,100)/4 = 150; recovery is cycle 63's completion."""
        (impact,) = fault_impacts(synthetic_samples(), CAMPAIGN,
                                  rolling_window=4)
        assert impact.recovered
        assert impact.recovery_ns == 63 * MS + 100_000
        assert impact.ttr_ns == 13 * MS + 100_000

    def test_never_recovers(self):
        (impact,) = fault_impacts(synthetic_samples(spike_until=100),
                                  CAMPAIGN, rolling_window=4)
        assert not impact.recovered
        assert impact.ttr_ns is None

    def test_harmless_fault_recovers_instantly(self):
        samples = [(k * MS, 100.0) for k in range(100)]
        (impact,) = fault_impacts(samples, CAMPAIGN, rolling_window=4)
        assert impact.recovery_ns == FAULT.start_ns
        assert impact.ttr_ns == 0
        assert impact.excursion_us_s == 0.0

    def test_fault_beyond_samples(self):
        late = FaultCampaign.scripted([Fault("k", "t", 500 * MS, 10 * MS)])
        (impact,) = fault_impacts(synthetic_samples(), late)
        assert math.isnan(impact.during_us)
        assert impact.excursion_us_s == 0.0
        assert not impact.recovered

    def test_explicit_baseline_overrides(self):
        (impact,) = fault_impacts(synthetic_samples(), CAMPAIGN,
                                  rolling_window=4, baseline_us=300.0)
        # Generous baseline: the spike never leaves the +10% band.
        assert impact.baseline_us == 300.0
        assert impact.ttr_ns == 0
        assert impact.excursion_us_s == 0.0

    def test_empty_campaign(self):
        assert fault_impacts(synthetic_samples(),
                             FaultCampaign.scripted([])) == []


def make_report(spike_until=60, policy="ioshares"):
    impacts = fault_impacts(synthetic_samples(spike_until), CAMPAIGN,
                            rolling_window=4)
    return ResilienceReport(
        scenario="synthetic",
        policy=policy,
        campaign=CAMPAIGN.name,
        seed=7,
        sim_s=0.1,
        baseline_us=impacts[0].baseline_us,
        impacts=tuple(impacts),
    )


class TestResilienceReport:
    def test_aggregates(self):
        report = make_report()
        assert report.recovered_all
        assert report.worst_ttr_ms == pytest.approx(13.1)
        assert report.total_excursion_us_s == pytest.approx(1.96)

    def test_worst_ttr_none_when_unrecovered(self):
        report = make_report(spike_until=100)
        assert not report.recovered_all
        assert report.worst_ttr_ms is None

    def test_render_deterministic(self):
        a, b = make_report().render(), make_report().render()
        assert a == b
        assert "Resilience report" in a and "ttr (ms)" in a

    def test_to_dict_is_json_serializable(self):
        doc = json.loads(json.dumps(make_report().to_dict()))
        assert doc["policy"] == "ioshares"
        assert len(doc["impacts"]) == 1
        assert doc["impacts"][0]["kind"] == "link-degrade"

    def test_degradation_table_sorted_and_stable(self):
        reports = {
            "static-ratio": make_report(spike_until=100, policy="static-ratio"),
            "ioshares": make_report(policy="ioshares"),
        }
        table = degradation_table(reports)
        assert table == degradation_table(reports)
        lines = table.splitlines()
        io_line = next(i for i, l in enumerate(lines) if "ioshares" in l)
        st_line = next(i for i, l in enumerate(lines) if "static-ratio" in l)
        assert io_line < st_line  # label-sorted rows
        assert "NO" in lines[st_line]
