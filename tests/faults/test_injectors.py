"""Layer-hook tests: each injector's effect on its component."""

import pytest

from repro.errors import FabricError, HypervisorError
from repro.experiments import Testbed
from repro.faults import Fault, LinkDegradation
from repro.hw import FluidFabric
from repro.sim import Environment
from repro.units import MS, US, GiB, KiB
from repro.xen.credit import PCPUScheduler
from repro.xen.vcpu import VCPU

GB_PER_S = float(GiB)


@pytest.fixture
def env():
    return Environment()


class TestLinkDegradation:
    def test_validation(self, env):
        fabric = FluidFabric(env)
        fabric.add_link("l", GB_PER_S)
        with pytest.raises(FabricError):
            fabric.set_link_degradation("l", -0.1)
        with pytest.raises(FabricError):
            fabric.set_link_degradation("l", 1.1)

    def test_degrade_halves_in_flight_rate(self, env):
        fabric = FluidFabric(env)
        link = fabric.add_link("l", GB_PER_S)
        t = fabric.submit([link], 1024 * KiB, "t")
        # Half the bytes transfer at full rate, then capacity halves:
        # the remaining half takes twice as long -> 1.5x nominal total.
        nominal_ns = 1024 * KiB / (GB_PER_S / 1e9)

        def chaos(env):
            yield env.timeout(int(nominal_ns / 2))
            fabric.set_link_degradation("l", 0.5)

        env.process(chaos(env))
        env.run(until=t.done)
        assert t.completed_at == pytest.approx(1.5 * nominal_ns, rel=0.01)

    def test_flap_to_zero_stalls_and_resumes(self, env):
        fabric = FluidFabric(env)
        link = fabric.add_link("l", GB_PER_S)
        t = fabric.submit([link], 64 * KiB, "t")
        nominal_ns = 64 * KiB / (GB_PER_S / 1e9)
        down_ns = 500_000

        def chaos(env):
            fabric.set_link_degradation("l", 0.0)
            yield env.timeout(down_ns)
            fabric.set_link_degradation("l", 1.0)

        env.process(chaos(env))
        env.run(until=t.done)
        assert t.completed_at == pytest.approx(down_ns + nominal_ns, rel=0.01)

    def test_capacity_change_while_degraded_keeps_factor(self, env):
        fabric = FluidFabric(env)
        link = fabric.add_link("l", GB_PER_S)
        fabric.set_link_degradation("l", 0.5)
        assert link.capacity_bps == pytest.approx(GB_PER_S / 2)
        # An administrative capacity change applies under the factor...
        fabric.set_link_capacity("l", 2 * GB_PER_S)
        assert link.capacity_bps == pytest.approx(GB_PER_S)
        # ...and healing restores the new nominal capacity.
        fabric.set_link_degradation("l", 1.0)
        assert link.capacity_bps == pytest.approx(2 * GB_PER_S)

    def test_injector_maps_severity_to_lost_fraction(self, env):
        fabric = FluidFabric(env)
        link = fabric.add_link("a.tx", GB_PER_S)
        inj = LinkDegradation(fabric)
        fault = Fault("link-degrade", "a.tx", 0, 100, severity=0.75)
        inj.inject(fault)
        assert link.capacity_bps == pytest.approx(GB_PER_S * 0.25)
        inj.clear(fault)
        assert link.capacity_bps == pytest.approx(GB_PER_S)


class TestVCPUFreeze:
    def test_frozen_vcpu_makes_no_progress(self, env):
        """Work queued on a frozen VCPU is never dispatched.

        (Freeze takes effect at dispatch boundaries: an already-running
        slice completes, matching the scheduler's event granularity.)
        """
        sched = PCPUScheduler(env, 0)
        vcpu = VCPU(env, 0)
        sched.attach(vcpu)
        vcpu.frozen = True
        done = []

        def app(env):
            yield vcpu.compute(100 * US)
            done.append(env.now)

        env.process(app(env))
        env.run(until=50 * MS)
        assert not done  # still frozen: compute never dispatched

    def test_thawed_vcpu_completes(self, env):
        sched = PCPUScheduler(env, 0)
        vcpu = VCPU(env, 0)
        sched.attach(vcpu)
        vcpu.frozen = True
        done = []

        def app(env):
            yield vcpu.compute(100 * US)
            done.append(env.now)

        env.process(app(env))

        def chaos(env):
            yield env.timeout(20 * MS)
            vcpu.frozen = False
            vcpu.scheduler.notify_work()

        env.process(chaos(env))
        env.run(until=100 * MS)
        assert len(done) == 1
        assert 20 * MS <= done[0] <= 21 * MS  # right after the thaw

    def test_hypervisor_pause_unpause(self):
        bed = Testbed.paper_testbed(seed=1)
        node = bed.node("server-host")
        dom = node.create_guest("g")
        hv = node.hypervisor
        hv.pause_domain(dom.domid)
        assert all(v.frozen for v in dom.vcpus)
        hv.unpause_domain(dom.domid)
        assert not any(v.frozen for v in dom.vcpus)

    def test_dom0_pause_rejected(self):
        bed = Testbed.paper_testbed(seed=1)
        node = bed.node("server-host")
        with pytest.raises(HypervisorError, match="dom0"):
            node.hypervisor.pause_domain(0)


class TestHCAHooks:
    def test_fault_fields_default_clear(self):
        bed = Testbed.paper_testbed(seed=1)
        hca = bed.node("server-host").hca
        assert hca.fault_doorbell_stall_ns == 0
        assert hca.fault_cqe_delay_ns == 0
