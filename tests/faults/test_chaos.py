"""End-to-end chaos runs: determinism, policy resilience, CLI."""

import json

import numpy as np
import pytest

from repro.benchex import BenchExConfig
from repro.experiments import replicate_chaos, run_chaos_scenario
from repro.resex import LatencySLA
from repro.telemetry import TelemetryBus
from repro.units import SEC, KiB


class TestDeterminism:
    def test_identical_reports_for_fixed_seed(self):
        """Two `repro chaos fig9 --campaign link-flap --seed 7` runs
        render byte-identical resilience reports."""
        runs = [
            run_chaos_scenario("fig9", campaign="link-flap",
                               sim_s=0.5, seed=7)
            for _ in range(2)
        ]
        assert runs[0].report.render() == runs[1].report.render()
        # json round-trip: NaN fields compare as identical tokens.
        assert json.dumps(runs[0].report.to_dict()) == json.dumps(
            runs[1].report.to_dict()
        )
        assert np.array_equal(
            runs[0].scenario.latencies_us, runs[1].scenario.latencies_us
        )


class TestPolicyResilience:
    """The acceptance property: under a 50%-capacity degradation of the
    contended link, IOShares re-enters the +10% band of its pre-fault
    baseline while StaticRatio stays out until the link heals."""

    #: A 256 KiB interferer: StaticRatio's buffer-ratio rule caps it at
    #: only 25% CPU, while IOShares can squelch it to the floor.
    INTERFERER = BenchExConfig(name="intf", buffer_bytes=256 * KiB)
    #: Lenient SLA: the controller tolerates the interferer pre-fault,
    #: so the pre-fault baseline reflects managed coexistence.
    SLA = LatencySLA(base_mean_us=209.0, base_std_us=3.0, threshold_pct=30.0)

    def _run(self, policy):
        from repro.faults import Fault, FaultCampaign

        campaign = FaultCampaign.scripted(
            [Fault("link-degrade", "server-host.tx",
                   int(0.5 * SEC), int(1.0 * SEC), 0.5)],
            name="half-capacity",
        )
        return run_chaos_scenario(
            "policy-resilience",
            campaign=campaign,
            sim_s=1.5,
            seed=7,
            interferer=self.INTERFERER,
            policy=policy,
            sla=self.SLA,
        )

    def test_ioshares_recovers_static_ratio_does_not(self):
        io = self._run("ioshares").impacts[0]
        st = self._run("static-ratio").impacts[0]

        # IOShares re-enters the band mid-window by squelching the
        # interferer; its during-mean sits near the victim-alone floor.
        assert io.recovered
        assert io.ttr_ns < int(0.6 * SEC)
        assert io.during_us < io.baseline_us * 1.10

        # StaticRatio's fixed cap cannot adapt: latency never returns
        # to within 10% of its pre-fault baseline before the run ends.
        assert not st.recovered
        assert st.during_us > st.baseline_us * 1.10


class TestInjectedBehaviour:
    def test_hca_faults_raise_victim_latency(self):
        from repro.faults import Fault, FaultCampaign

        campaign = FaultCampaign.scripted(
            [
                Fault("hca-doorbell-stall", "server-host",
                      int(0.15 * SEC), int(0.10 * SEC), 1.0),
                Fault("hca-cqe-delay", "server-host",
                      int(0.30 * SEC), int(0.10 * SEC), 1.0),
            ],
            name="hca-faults",
        )
        chaos = run_chaos_scenario("base", campaign=campaign,
                                   sim_s=0.5, seed=7)
        stall, cqe = chaos.impacts
        # The 100 us doorbell stall lands in full on every cycle; the
        # completion delay partly overlaps the next receive, so its
        # visible share is smaller.  Both heal once cleared.
        assert stall.during_us > stall.baseline_us * 1.3
        assert cqe.during_us > cqe.baseline_us * 1.15
        assert chaos.report.recovered_all

    def test_monitor_and_controller_faults(self):
        from repro.faults import Fault, FaultCampaign

        campaign = FaultCampaign.scripted(
            [
                Fault("ibmon-dropout", "server-host",
                      int(0.10 * SEC), int(0.08 * SEC)),
                Fault("ibmon-stale", "server-host",
                      int(0.20 * SEC), int(0.08 * SEC)),
                Fault("controller-outage", "server-host",
                      int(0.30 * SEC), int(0.08 * SEC)),
            ],
            name="mgmt-faults",
        )
        chaos = run_chaos_scenario("fig9", campaign=campaign,
                                   sim_s=0.45, seed=7)
        ibmon = chaos.engine.injectors["ibmon-dropout"].ibmon
        controller = chaos.engine.injectors["controller-outage"].controller
        assert ibmon.samples_dropped > 0
        assert not ibmon.fault_drop_samples  # cleared again
        assert controller.intervals_skipped > 0
        assert not controller.paused
        assert chaos.engine.injected == 3 and chaos.engine.cleared == 3

    def test_fault_track_in_telemetry(self):
        bus = TelemetryBus()
        chaos = run_chaos_scenario("base", campaign="link-flap",
                                   sim_s=0.4, seed=7, telemetry=bus)
        faults = [r for r in bus.records if r.cat == "faults"]
        names = [r.name for r in faults]
        assert names.count("inject") == 3
        assert names.count("clear") == 3
        # Post-run recovery instants were appended for healed windows.
        assert names.count("recover") == sum(
            1 for i in chaos.impacts if i.recovered
        ) > 0


class TestReplicateChaos:
    def test_seed_sweep_reproducible_with_finite_ci(self):
        seeds = (3, 5)
        kwargs = dict(campaign="link-flap", sim_s=0.4)
        a = replicate_chaos("base", seeds, **kwargs)
        b = replicate_chaos("base", seeds, **kwargs)
        assert set(a) == {"excursion_us_s", "worst_ttr_ms", "recovered"}
        for metric in a:
            assert a[metric].values == b[metric].values  # reproducible
        exc = a["excursion_us_s"]
        assert np.isfinite(exc.ci95_halfwidth())
        assert exc.mean > 0.0
        assert a["recovered"].minimum == 1.0  # flaps heal on this bed

    def test_requires_seeds(self):
        from repro.errors import ConfigError

        with pytest.raises(ConfigError):
            replicate_chaos("base", (), campaign="link-flap")


class TestChaosCli:
    def test_dry_run_prints_schedule(self, capsys):
        from repro.cli import main

        assert main(["chaos", "fig9", "--campaign", "link-flap",
                     "--dry-run"]) == 0
        out = capsys.readouterr().out
        assert "campaign schedule (3 faults)" in out
        assert "link-degrade" in out and "server-host.tx" in out

    def test_json_report(self, capsys):
        from repro.cli import main

        assert main(["-q", "chaos", "base", "--campaign", "link-flap",
                     "--seed", "7", "--sim-s", "0.3", "--json"]) == 0
        doc = json.loads(capsys.readouterr().out)
        assert doc["campaign"] == "link-flap"
        assert len(doc["impacts"]) == 3

    def test_unknown_scenario_exits_with_config_code(self, capsys):
        from repro.cli import main
        from repro.errors import ConfigError

        assert main(["chaos", "nope", "--dry-run", "--sim-s", "0.1"]) == \
            ConfigError.exit_code
        err = capsys.readouterr().err
        assert "unknown chaos scenario" in err and "[config]" in err
