"""Tests for BENCH_perf.json history preservation (write_bench_json)."""

import json

from repro.bench import BENCH_HISTORY_LIMIT, WORKLOADS, write_bench_json


def _doc(marker: str) -> dict:
    return {
        "schema": "repro-bench/1",
        "version": marker,
        "benchmarks": {"kernel_timeout_ping": {"process_s_best": 0.1}},
    }


class TestWriteBenchJson:
    def test_first_write_has_empty_history(self, tmp_path):
        path = tmp_path / "bench.json"
        write_bench_json(path, _doc("v1"))
        doc = json.loads(path.read_text())
        assert doc["version"] == "v1"
        assert doc["history"] == []

    def test_rerun_demotes_prior_run_into_history(self, tmp_path):
        path = tmp_path / "bench.json"
        write_bench_json(path, _doc("v1"))
        write_bench_json(path, _doc("v2"))
        write_bench_json(path, _doc("v3"))
        doc = json.loads(path.read_text())
        assert doc["version"] == "v3"
        # Newest first, and the demoted entries carry no nested history.
        assert [h["version"] for h in doc["history"]] == ["v2", "v1"]
        assert all("history" not in h for h in doc["history"])

    def test_history_is_capped(self, tmp_path):
        path = tmp_path / "bench.json"
        for i in range(BENCH_HISTORY_LIMIT + 5):
            write_bench_json(path, _doc(f"v{i}"))
        doc = json.loads(path.read_text())
        assert len(doc["history"]) == BENCH_HISTORY_LIMIT

    def test_foreign_file_is_overwritten_without_history(self, tmp_path):
        path = tmp_path / "bench.json"
        path.write_text('{"something": "else"}')
        write_bench_json(path, _doc("v1"))
        doc = json.loads(path.read_text())
        assert doc["version"] == "v1"
        assert doc["history"] == []

    def test_corrupt_file_does_not_fail_the_write(self, tmp_path):
        path = tmp_path / "bench.json"
        path.write_text("not json {{{")
        write_bench_json(path, _doc("v1"))
        assert json.loads(path.read_text())["version"] == "v1"


def test_cluster_scale_workload_registered():
    fn, description = WORKLOADS["cluster_scale"]
    assert "256-host" in description
    assert callable(fn)
