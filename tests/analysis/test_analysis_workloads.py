"""Tests for analysis helpers and the synthetic workload traces."""

import numpy as np
import pytest

from repro.analysis import (
    LatencySummary,
    downsample,
    interference_reduction_pct,
    render_histogram,
    render_series,
    render_table,
)
from repro.errors import ConfigError
from repro.units import SEC
from repro.workloads import TradingDayConfig, TradingDayTrace, poisson_think_times


class TestLatencySummary:
    def test_basic_stats(self):
        s = LatencySummary.from_samples([1.0, 2.0, 3.0, 4.0, 5.0])
        assert s.n == 5
        assert s.mean == 3.0
        assert s.p50 == 3.0
        assert s.minimum == 1.0
        assert s.maximum == 5.0

    def test_empty(self):
        s = LatencySummary.from_samples([])
        assert s.n == 0
        assert np.isnan(s.mean)

    def test_as_dict_keys(self):
        d = LatencySummary.from_samples([1.0]).as_dict()
        assert set(d) == {
            "n", "mean_us", "std_us", "p50_us", "p95_us", "p99_us",
            "min_us", "max_us",
        }


class TestReduction:
    def test_headline_metric(self):
        # 300us interfered -> 210us managed = 30% reduction.
        assert interference_reduction_pct(300.0, 210.0) == pytest.approx(30.0)

    def test_no_improvement(self):
        assert interference_reduction_pct(300.0, 300.0) == 0.0

    def test_degenerate(self):
        assert np.isnan(interference_reduction_pct(0.0, 10.0))


class TestDownsample:
    def test_short_series_untouched(self):
        arr = np.arange(10)
        np.testing.assert_array_equal(downsample(arr, 20), arr)

    def test_long_series_strided(self):
        arr = np.arange(1000)
        out = downsample(arr, 100)
        assert len(out) <= 100
        assert out[0] == 0


class TestRendering:
    def test_table_alignment(self):
        text = render_table(
            ["name", "mean"], [["base", 209.13], ["intf", 325.6]], title="T"
        )
        lines = text.splitlines()
        assert lines[0] == "T"
        assert "209.1" in text
        assert "325.6" in text
        # All data lines the same width.
        assert len(set(len(l) for l in lines[1:])) == 1

    def test_histogram(self):
        text = render_histogram([(200.0, 10), (205.0, 5)], title="H")
        assert "H" in text
        assert "#" in text
        assert "200.0" in text

    def test_histogram_empty(self):
        assert "(no samples)" in render_histogram([])

    def test_series_downsamples(self):
        text = render_series(
            [i / 10 for i in range(100)], list(range(100)), max_rows=10
        )
        assert len(text.splitlines()) <= 13

    def test_series_empty(self):
        assert "(empty series)" in render_series([], [])


class TestTradingDayTrace:
    def make(self, **kw):
        cfg = TradingDayConfig(**kw)
        return TradingDayTrace(cfg, np.random.default_rng(1))

    def test_burst_at_open_and_close(self):
        trace = self.make(day_s=10.0, open_fraction=0.1, close_fraction=0.1)
        open_rate = trace.rate_at(int(0.5 * SEC))
        midday_rate = trace.rate_at(int(5 * SEC))
        close_rate = trace.rate_at(int(9.5 * SEC))
        assert open_rate == midday_rate * 4.0
        assert close_rate == midday_rate * 4.0

    def test_arrival_counts_scale_with_rate(self):
        trace = self.make(day_s=2.0, midday_rate_hz=500.0)
        arrivals = trace.arrivals(2 * SEC)
        # Expected: bursts (0.6s at 2000Hz) + midday (1.4s at 500Hz) = 1900.
        assert 1500 < len(arrivals) < 2400
        assert np.all(np.diff(arrivals) >= 0)

    def test_gap_is_nonnegative(self):
        trace = self.make()
        for t in range(0, 10**9, 10**8):
            assert trace.next_gap_ns(t) >= 0

    def test_validation(self):
        with pytest.raises(ConfigError):
            TradingDayConfig(day_s=0)
        with pytest.raises(ConfigError):
            TradingDayConfig(open_fraction=0.6, close_fraction=0.6)
        with pytest.raises(ConfigError):
            TradingDayConfig(burst_factor=0.5)
        with pytest.raises(ConfigError):
            TradingDayConfig(midday_rate_hz=0)


class TestPoissonThinkTimes:
    def test_mean_matches_rate(self):
        gaps = poisson_think_times(1000.0, 20_000, np.random.default_rng(0))
        assert gaps.mean() == pytest.approx(1e6, rel=0.05)  # 1ms in ns

    def test_validation(self):
        with pytest.raises(ConfigError):
            poisson_think_times(0.0, 10, np.random.default_rng(0))
        with pytest.raises(ConfigError):
            poisson_think_times(1.0, -1, np.random.default_rng(0))


class TestTracePacedClient:
    def test_pacer_slows_request_rate(self):
        from repro.benchex import BenchExConfig, BenchExPair
        from repro.experiments.platform import Testbed

        bed = Testbed.paper_testbed(seed=8)
        s, c = bed.node("server-host"), bed.node("client-host")
        cfg = BenchExConfig(name="paced", request_limit=50, warmup_requests=5)
        pair = BenchExPair(bed, s, c, cfg)

        def deploy_and_pace(env):
            yield from pair.deploy()
            pair.client.pacer = lambda now: 1_000_000  # 1 ms think
            pair.start()

        bed.env.process(deploy_and_pace(bed.env))
        bed.env.run(until=pair_done(bed, pair))
        lat = pair.client.latency_array()
        # Latency unchanged (closed loop), but the run took ~50 * (cycle
        # + 1ms) of simulated time.
        assert bed.env.now > 50 * 1_000_000


def pair_done(bed, pair):
    def waiter(env):
        while pair.client_proc is None:
            yield env.timeout(100_000)
        yield pair.client_proc

    return bed.env.process(waiter(bed.env))
