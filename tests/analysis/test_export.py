"""Tests for CSV/JSON export helpers."""

import csv
import json

import numpy as np
import pytest

from repro.analysis import (
    figure_to_json,
    write_figure_json,
    write_latency_records_csv,
    write_series_csv,
)
from repro.benchex import LatencyRecord
from repro.experiments import FigureResult


@pytest.fixture
def records():
    return [
        LatencyRecord(1, 0, 10_000, 20_000, 30_000),
        LatencyRecord(2, 100_000, 11_000, 20_000, 31_000),
    ]


class TestLatencyCsv:
    def test_roundtrip(self, tmp_path, records):
        path = tmp_path / "lat.csv"
        assert write_latency_records_csv(path, records) == 2
        with path.open() as fh:
            rows = list(csv.DictReader(fh))
        assert len(rows) == 2
        assert int(rows[0]["total_ns"]) == 60_000
        assert int(rows[1]["request_id"]) == 2

    def test_empty(self, tmp_path):
        path = tmp_path / "empty.csv"
        assert write_latency_records_csv(path, []) == 0
        assert path.read_text().startswith("request_id")


class TestSeriesCsv:
    def test_long_format(self, tmp_path):
        series = {
            "cap": (np.array([0, 1000]), np.array([100.0, 50.0])),
            "resos": (np.array([0]), np.array([624288.0])),
        }
        path = tmp_path / "series.csv"
        assert write_series_csv(path, series) == 3
        with path.open() as fh:
            rows = list(csv.DictReader(fh))
        names = {r["series"] for r in rows}
        assert names == {"cap", "resos"}
        cap_rows = [r for r in rows if r["series"] == "cap"]
        assert float(cap_rows[1]["value"]) == 50.0


class TestFigureJson:
    def make_figure(self):
        return FigureResult(
            figure="Fig.X",
            title="demo",
            headers=["a", "b"],
            rows=[["x", 1.5]],
            notes="n",
            extra={
                "np_int": np.int64(3),
                "np_float": np.float64(2.5),
                "arr": np.array([1.0, 2.0]),
                "set": {2, 1},
            },
        )

    def test_serializes_numpy_types(self):
        doc = json.loads(figure_to_json(self.make_figure()))
        assert doc["extra"]["np_int"] == 3
        assert doc["extra"]["np_float"] == 2.5
        assert doc["extra"]["arr"] == [1.0, 2.0]
        assert doc["extra"]["set"] == [1, 2]
        assert doc["rows"] == [["x", 1.5]]

    def test_write_to_file(self, tmp_path):
        path = tmp_path / "fig.json"
        write_figure_json(path, self.make_figure())
        doc = json.loads(path.read_text())
        assert doc["figure"] == "Fig.X"

    def test_unserializable_raises(self):
        fig = self.make_figure()
        fig.extra["bad"] = object()
        with pytest.raises(TypeError):
            figure_to_json(fig)
