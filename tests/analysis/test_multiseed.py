"""Tests for the multi-seed replication helpers."""

import math

import numpy as np
import pytest

from repro.errors import ConfigError, SweepError
from repro.experiments.multiseed import (
    Replication,
    replicate_chaos,
    replicate_comparison,
    replicate_scenario,
    sweep_scenario,
)


class TestReplicationStats:
    def test_aggregates(self):
        r = Replication("x", (1, 2, 3), (10.0, 12.0, 14.0))
        assert r.mean == 12.0
        assert r.minimum == 10.0
        assert r.maximum == 14.0
        assert r.std == pytest.approx(2.0)
        assert r.ci95_halfwidth() == pytest.approx(1.96 * 2.0 / 3**0.5)

    def test_single_sample(self):
        r = Replication("x", (1,), (10.0,))
        assert r.std == 0.0

        assert np.isnan(r.ci95_halfwidth())

    def test_median_and_percentiles(self):
        r = Replication("x", (1, 2, 3, 4), (10.0, 30.0, 20.0, 40.0))
        assert r.median == 25.0
        assert r.percentile(0) == 10.0
        assert r.percentile(100) == 40.0
        assert r.percentile(50) == r.median

    def test_percentile_bounds_checked(self):
        r = Replication("x", (1,), (10.0,))
        with pytest.raises(ConfigError):
            r.percentile(101)
        with pytest.raises(ConfigError):
            r.percentile(-1)


class TestReplicationInfSafety:
    """worst_ttr_ms is inf when a chaos run never recovered; the moment
    statistics must degrade to the finite subsample, not to inf/NaN."""

    def test_inf_sample_counted_not_propagated(self):
        r = Replication("ttr", (1, 2, 3), (10.0, 12.0, float("inf")))
        assert r.n_nonfinite == 1
        assert r.finite_values == (10.0, 12.0)
        assert math.isinf(r.mean)  # the honest full-series mean
        assert r.finite_mean == pytest.approx(11.0)
        assert math.isfinite(r.std)
        assert r.std == pytest.approx(np.std([10.0, 12.0], ddof=1))
        assert math.isfinite(r.ci95_halfwidth())
        assert r.ci95_halfwidth() == pytest.approx(
            1.96 * r.std / math.sqrt(2)
        )

    def test_median_robust_to_minority_inf(self):
        r = Replication("ttr", (1, 2, 3), (10.0, 12.0, float("inf")))
        assert r.median == 12.0

    def test_all_inf_series(self):
        r = Replication("ttr", (1, 2), (float("inf"), float("inf")))
        assert r.n_nonfinite == 2
        assert r.std == 0.0
        assert math.isnan(r.ci95_halfwidth())
        assert math.isnan(r.finite_mean)

    def test_repr_flags_nonfinite(self):
        r = Replication("ttr", (1, 2, 3), (10.0, 12.0, float("inf")))
        assert "1 non-finite" in repr(r)

    def test_finite_series_unchanged(self):
        r = Replication("x", (1, 2, 3), (10.0, 12.0, 14.0))
        assert r.n_nonfinite == 0
        assert r.finite_values == r.values


class TestReplicateScenario:
    def test_runs_each_seed(self):
        rep = replicate_scenario("base", seeds=[1, 2], sim_s=0.3)
        assert len(rep.values) == 2
        assert rep.seeds == (1, 2)
        # Base case is ~209us at every seed.
        assert all(200 < v < 220 for v in rep.values)

    def test_different_seeds_different_samples(self):
        rep = replicate_scenario("base", seeds=[1, 2], sim_s=0.3)
        # Compute jitter differs by seed (not byte-identical runs).
        assert rep.values[0] != rep.values[1]

    def test_empty_seeds_rejected(self):
        with pytest.raises(ConfigError):
            replicate_scenario("x", seeds=[])

    def test_comparison(self):
        reps = replicate_comparison(
            [1], {"a": dict(sim_s=0.3), "b": dict(sim_s=0.3)}
        )
        assert set(reps) == {"a", "b"}


class TestSerialParallelEquivalence:
    """The engine's contract: pool width changes wall time, never floats."""

    def test_replicate_scenario_bit_identical(self):
        serial = replicate_scenario("eq", seeds=[1, 2, 3], sim_s=0.2)
        pooled = replicate_scenario("eq", seeds=[1, 2, 3], jobs=2, sim_s=0.2)
        assert serial == pooled  # tuple equality: bit-for-bit floats

    def test_replicate_comparison_bit_identical(self):
        from repro.benchex import BenchExConfig
        from repro.units import KiB

        configs = {
            "base": dict(sim_s=0.2),
            "capped": dict(
                sim_s=0.2,
                interferer=BenchExConfig(
                    name="interferer", buffer_bytes=512 * KiB
                ),
                manual_cap=12,
            ),
        }
        serial = replicate_comparison([1, 2], configs)
        pooled = replicate_comparison([1, 2], configs, jobs=2)
        assert serial == pooled

    def test_replicate_chaos_bit_identical(self):
        serial = replicate_chaos(
            "fig9", seeds=[1, 2], campaign="link-flap", sim_s=0.3
        )
        pooled = replicate_chaos(
            "fig9", seeds=[1, 2], campaign="link-flap", jobs=2, sim_s=0.3
        )
        assert serial == pooled
        assert set(serial) == {"excursion_us_s", "worst_ttr_ms", "recovered"}


class TestSweepCache:
    def test_warm_rerun_served_from_cache_identically(self, tmp_path):
        cold_rep, cold_report = sweep_scenario(
            "cached", [1, 2], cache=tmp_path, sim_s=0.2
        )
        warm_rep, warm_report = sweep_scenario(
            "cached", [1, 2], cache=tmp_path, sim_s=0.2
        )
        assert cold_report.cached == 0 and cold_report.executed == 2
        assert warm_report.cached == 2 and warm_report.executed == 0
        assert warm_rep == cold_rep

    def test_kwarg_change_misses(self, tmp_path):
        sweep_scenario("cached", [1], cache=tmp_path, sim_s=0.2)
        _, report = sweep_scenario("cached", [1], cache=tmp_path, sim_s=0.3)
        assert report.cached == 0

    def test_failed_cell_raises_sweep_error_with_labels(self):
        with pytest.raises(SweepError) as err:
            replicate_scenario("bad", seeds=[1], policy="no-such-policy")
        assert err.value.cell_errors
        label, detail = err.value.cell_errors[0]
        assert label == "scenario:bad@s1"
        assert detail
