"""Tests for the multi-seed replication helpers."""

import pytest

from repro.errors import ConfigError
from repro.experiments.multiseed import (
    Replication,
    replicate_comparison,
    replicate_scenario,
)


class TestReplicationStats:
    def test_aggregates(self):
        r = Replication("x", (1, 2, 3), (10.0, 12.0, 14.0))
        assert r.mean == 12.0
        assert r.minimum == 10.0
        assert r.maximum == 14.0
        assert r.std == pytest.approx(2.0)
        assert r.ci95_halfwidth() == pytest.approx(1.96 * 2.0 / 3**0.5)

    def test_single_sample(self):
        r = Replication("x", (1,), (10.0,))
        assert r.std == 0.0
        import numpy as np

        assert np.isnan(r.ci95_halfwidth())


class TestReplicateScenario:
    def test_runs_each_seed(self):
        rep = replicate_scenario("base", seeds=[1, 2], sim_s=0.3)
        assert len(rep.values) == 2
        assert rep.seeds == (1, 2)
        # Base case is ~209us at every seed.
        assert all(200 < v < 220 for v in rep.values)

    def test_different_seeds_different_samples(self):
        rep = replicate_scenario("base", seeds=[1, 2], sim_s=0.3)
        # Compute jitter differs by seed (not byte-identical runs).
        assert rep.values[0] != rep.values[1]

    def test_empty_seeds_rejected(self):
        with pytest.raises(ConfigError):
            replicate_scenario("x", seeds=[])

    def test_comparison(self):
        reps = replicate_comparison(
            [1], {"a": dict(sim_s=0.3), "b": dict(sim_s=0.3)}
        )
        assert set(reps) == {"a", "b"}
