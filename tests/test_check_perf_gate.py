"""Tests for the barrier-efficiency gate in ``tools/check_perf.py``.

The tool lives outside the package (it must run without ``PYTHONPATH``
in CI), so it is loaded by file path here.
"""

import importlib.util
import pathlib

_TOOL = pathlib.Path(__file__).resolve().parents[1] / "tools" / "check_perf.py"
_spec = importlib.util.spec_from_file_location("check_perf", _TOOL)
check_perf = importlib.util.module_from_spec(_spec)
_spec.loader.exec_module(check_perf)


def _doc(meta: dict) -> dict:
    return {"benchmarks": {"cluster_scale_sharded": {"meta": meta}}}


class TestBarrierEfficiencyGate:
    def test_ratio_within_ceiling_passes(self):
        doc = _doc({"barriers": 51, "windows": 500})
        assert check_perf.check_barrier_efficiency(doc) == []

    def test_ratio_over_ceiling_fails(self):
        doc = _doc({"barriers": 400, "windows": 500})
        failures = check_perf.check_barrier_efficiency(doc)
        assert len(failures) == 1
        assert "exceeds ceiling" in failures[0]

    def test_missing_counts_fail_loudly(self):
        failures = check_perf.check_barrier_efficiency(_doc({}))
        assert len(failures) == 1
        assert "lacks barriers/windows" in failures[0]

    def test_zero_barriers_is_a_count_not_missing_metadata(self):
        """A legitimate integer 0 must not be misread as absent meta
        (`not barriers` was the old, falsy-confused test)."""
        doc = _doc({"barriers": 0, "windows": 500})
        assert check_perf.check_barrier_efficiency(doc) == []

    def test_zero_windows_skips_instead_of_dividing(self):
        doc = _doc({"barriers": 0, "windows": 0})
        assert check_perf.check_barrier_efficiency(doc) == []

    def test_absent_benchmark_is_skipped(self):
        assert check_perf.check_barrier_efficiency({"benchmarks": {}}) == []


def _overhead_doc(meta: dict) -> dict:
    return {"benchmarks": {"checkpoint_overhead": {"meta": meta}}}


class TestCheckpointOverheadGate:
    def test_overhead_within_ceiling_passes(self):
        doc = _overhead_doc({"overhead": 0.02, "identical": True})
        assert check_perf.check_checkpoint_overhead(doc) == []

    def test_overhead_over_ceiling_fails(self):
        doc = _overhead_doc({"overhead": 0.12, "identical": True})
        failures = check_perf.check_checkpoint_overhead(doc)
        assert len(failures) == 1
        assert "exceeds" in failures[0]

    def test_negative_overhead_is_fine(self):
        """Noise can make the checkpointed arm measure faster; the
        gate is a ceiling, not a band."""
        doc = _overhead_doc({"overhead": -0.01, "identical": True})
        assert check_perf.check_checkpoint_overhead(doc) == []

    def test_nonidentical_metrics_fail_even_when_cheap(self):
        doc = _overhead_doc({"overhead": 0.0, "identical": False})
        failures = check_perf.check_checkpoint_overhead(doc)
        assert len(failures) == 1
        assert "bit-identical" in failures[0]

    def test_missing_overhead_fails_loudly(self):
        failures = check_perf.check_checkpoint_overhead(_overhead_doc({}))
        assert len(failures) == 1
        assert "lacks an overhead" in failures[0]

    def test_absent_benchmark_is_skipped(self):
        assert check_perf.check_checkpoint_overhead({"benchmarks": {}}) == []
