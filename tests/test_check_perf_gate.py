"""Tests for the barrier-efficiency gate in ``tools/check_perf.py``.

The tool lives outside the package (it must run without ``PYTHONPATH``
in CI), so it is loaded by file path here.
"""

import importlib.util
import pathlib

_TOOL = pathlib.Path(__file__).resolve().parents[1] / "tools" / "check_perf.py"
_spec = importlib.util.spec_from_file_location("check_perf", _TOOL)
check_perf = importlib.util.module_from_spec(_spec)
_spec.loader.exec_module(check_perf)


def _doc(meta: dict) -> dict:
    return {"benchmarks": {"cluster_scale_sharded": {"meta": meta}}}


class TestBarrierEfficiencyGate:
    def test_ratio_within_ceiling_passes(self):
        doc = _doc({"barriers": 51, "windows": 500})
        assert check_perf.check_barrier_efficiency(doc) == []

    def test_ratio_over_ceiling_fails(self):
        doc = _doc({"barriers": 400, "windows": 500})
        failures = check_perf.check_barrier_efficiency(doc)
        assert len(failures) == 1
        assert "exceeds ceiling" in failures[0]

    def test_missing_counts_fail_loudly(self):
        failures = check_perf.check_barrier_efficiency(_doc({}))
        assert len(failures) == 1
        assert "lacks barriers/windows" in failures[0]

    def test_zero_barriers_is_a_count_not_missing_metadata(self):
        """A legitimate integer 0 must not be misread as absent meta
        (`not barriers` was the old, falsy-confused test)."""
        doc = _doc({"barriers": 0, "windows": 500})
        assert check_perf.check_barrier_efficiency(doc) == []

    def test_zero_windows_skips_instead_of_dividing(self):
        doc = _doc({"barriers": 0, "windows": 0})
        assert check_perf.check_barrier_efficiency(doc) == []

    def test_absent_benchmark_is_skipped(self):
        assert check_perf.check_barrier_efficiency({"benchmarks": {}}) == []
