"""Tests for repro.hw.topology: generators, routing, attach guards."""

import pytest

from repro.errors import ConfigError
from repro.hw import Crossbar, FatTree, FluidFabric, Host, LeafSpine, path_between
from repro.sim import Environment
from repro.units import GiB

BPS = float(GiB)


def _fabric():
    return FluidFabric(Environment())


def _attach_hosts(topo, n, prefix="h"):
    hosts = [Host(f"{prefix}{i}", ncpus=1) for i in range(n)]
    for h in hosts:
        topo.attach(h)
    return hosts


class TestAttachment:
    def test_attach_creates_port_links(self):
        fabric = _fabric()
        topo = Crossbar(fabric, BPS)
        (h,) = _attach_hosts(topo, 1)
        assert h.is_attached
        assert h.topology is topo
        assert fabric.links["h0.tx"] is h.tx_link
        assert fabric.links["h0.rx"] is h.rx_link

    def test_double_attach_to_topology_rejected(self):
        topo = Crossbar(_fabric(), BPS)
        (h,) = _attach_hosts(topo, 1)
        with pytest.raises(ConfigError, match="already attached"):
            topo.attach(h)

    def test_host_double_fabric_attachment_rejected(self):
        """Satellite guard: a host with ports cannot attach again (it
        would create duplicate port links under fresh names)."""
        fabric = _fabric()
        h = Host("h", ncpus=1)
        h.attach_fabric(fabric, BPS)
        with pytest.raises(ConfigError, match="already attached"):
            h.attach_fabric(fabric, BPS)

    def test_full_topology_rejected(self):
        topo = LeafSpine(_fabric(), BPS, racks=1, hosts_per_rack=2, spines=1)
        _attach_hosts(topo, 2)
        with pytest.raises(ConfigError, match="full"):
            topo.attach(Host("extra", ncpus=1))

    def test_unknown_host_rejected(self):
        topo = Crossbar(_fabric(), BPS)
        with pytest.raises(ConfigError, match="not attached"):
            topo.index_of(Host("stranger", ncpus=1))

    def test_bad_link_rate_rejected(self):
        with pytest.raises(ConfigError, match="> 0"):
            Crossbar(_fabric(), 0.0)


class TestPathBetween:
    def test_unattached_hosts_rejected(self):
        with pytest.raises(ConfigError, match="attached"):
            path_between(Host("a", ncpus=1), Host("b", ncpus=1))

    def test_cross_topology_route_rejected(self):
        fabric = _fabric()
        t1 = Crossbar(fabric, BPS)
        t2 = Crossbar(fabric, BPS)
        (a,) = _attach_hosts(t1, 1, prefix="a")
        (b,) = _attach_hosts(t2, 1, prefix="b")
        with pytest.raises(ConfigError, match="different topologies"):
            path_between(a, b)

    def test_topology_host_and_legacy_host_do_not_route(self):
        fabric = _fabric()
        topo = Crossbar(fabric, BPS)
        (a,) = _attach_hosts(topo, 1, prefix="a")
        legacy = Host("legacy", ncpus=1)
        legacy.attach_fabric(fabric, BPS)
        with pytest.raises(ConfigError, match="different topologies"):
            path_between(a, legacy)

    def test_crossbar_matches_legacy_two_link_path(self):
        """The default topology is byte-identical to direct attachment:
        same link names, same two-link paths, loopback included."""
        fabric = _fabric()
        topo = Crossbar(fabric, BPS)
        a, b = _attach_hosts(topo, 2)
        assert path_between(a, b) == [a.tx_link, b.rx_link]
        assert path_between(b, a) == [b.tx_link, a.rx_link]
        assert path_between(a, a) == [a.tx_link, a.rx_link]

    def test_routes_are_cached_but_fresh_lists(self):
        topo = Crossbar(_fabric(), BPS)
        a, b = _attach_hosts(topo, 2)
        p1, p2 = topo.path(a, b), topo.path(a, b)
        assert p1 == p2
        assert p1 is not p2  # callers may mutate their copy


class TestLeafSpine:
    def test_switch_links_exist_at_construction(self):
        fabric = _fabric()
        LeafSpine(fabric, BPS, racks=2, hosts_per_rack=1, spines=2)
        for name in ("leaf0.up0", "leaf0.up1", "leaf1.down0", "leaf1.down1"):
            assert name in fabric.links

    def test_intra_rack_path_is_two_links(self):
        topo = LeafSpine(_fabric(), BPS, racks=2, hosts_per_rack=2, spines=2)
        hosts = _attach_hosts(topo, 4)
        assert path_between(hosts[0], hosts[1]) == [
            hosts[0].tx_link, hosts[1].rx_link
        ]

    def test_cross_rack_path_crosses_one_spine(self):
        topo = LeafSpine(_fabric(), BPS, racks=2, hosts_per_rack=2, spines=2)
        hosts = _attach_hosts(topo, 4)
        # hosts 0,1 in rack 0; hosts 2,3 in rack 1.  Spine = (0+2)%2 = 0.
        path = path_between(hosts[0], hosts[2])
        assert [link.name for link in path] == [
            "h0.tx", "leaf0.up0", "leaf1.down0", "h2.rx"
        ]
        # Reverse direction uses rack 1's uplink and rack 0's downlink.
        back = path_between(hosts[2], hosts[0])
        assert [link.name for link in back] == [
            "h2.tx", "leaf1.up0", "leaf0.down0", "h0.rx"
        ]

    def test_spine_choice_is_deterministic_function_of_indices(self):
        topo = LeafSpine(_fabric(), BPS, racks=2, hosts_per_rack=2, spines=2)
        hosts = _attach_hosts(topo, 4)
        # (1 + 2) % 2 == 1: this pair rides spine 1.
        path = path_between(hosts[1], hosts[2])
        assert [link.name for link in path][1:3] == [
            "leaf0.up1", "leaf1.down1"
        ]

    def test_rack_of(self):
        topo = LeafSpine(_fabric(), BPS, racks=3, hosts_per_rack=2, spines=1)
        hosts = _attach_hosts(topo, 6)
        assert [topo.rack_of(h) for h in hosts] == [0, 0, 1, 1, 2, 2]

    def test_oversubscribed_uplinks(self):
        fabric = _fabric()
        LeafSpine(
            fabric, BPS, racks=2, hosts_per_rack=4, spines=1,
            uplink_bytes_per_sec=BPS / 2,
        )
        assert fabric.links["leaf0.up0"].capacity_bps == BPS / 2
        assert fabric.links["leaf1.down0"].capacity_bps == BPS / 2

    def test_shape_validation(self):
        with pytest.raises(ConfigError, match=">= 1"):
            LeafSpine(_fabric(), BPS, racks=0, hosts_per_rack=1, spines=1)


class TestFatTree:
    def test_capacity_is_k_cubed_over_four(self):
        topo = FatTree(_fabric(), BPS, k=4)
        assert topo.max_hosts == 16
        topo8 = FatTree(_fabric(), BPS, k=8)
        assert topo8.max_hosts == 128

    def test_odd_arity_rejected(self):
        with pytest.raises(ConfigError, match="even"):
            FatTree(_fabric(), BPS, k=3)

    def test_same_edge_path_is_two_links(self):
        topo = FatTree(_fabric(), BPS, k=4)
        hosts = _attach_hosts(topo, 16)
        # Hosts 0 and 1 share edge switch 0 of pod 0.
        assert path_between(hosts[0], hosts[1]) == [
            hosts[0].tx_link, hosts[1].rx_link
        ]

    def test_same_pod_path_crosses_aggregation(self):
        topo = FatTree(_fabric(), BPS, k=4)
        hosts = _attach_hosts(topo, 16)
        # Hosts 0 (edge 0) and 2 (edge 1) both in pod 0; agg = (0+2)%2.
        path = path_between(hosts[0], hosts[2])
        assert [link.name for link in path] == [
            "h0.tx", "pod0.edge0.up0", "pod0.agg0.down1", "h2.rx"
        ]

    def test_cross_pod_path_crosses_core(self):
        topo = FatTree(_fabric(), BPS, k=4)
        hosts = _attach_hosts(topo, 16)
        # Host 0 (pod 0) -> host 4 (pod 1): core = (0+4)%4 = 0, agg 0.
        path = path_between(hosts[0], hosts[4])
        assert [link.name for link in path] == [
            "h0.tx",
            "pod0.edge0.up0",
            "pod0.agg0.up0",
            "core0.down1",
            "pod1.agg0.down0",
            "h4.rx",
        ]

    def test_rack_is_the_edge_switch(self):
        topo = FatTree(_fabric(), BPS, k=4)
        hosts = _attach_hosts(topo, 16)
        assert [topo.rack_of(h) for h in hosts[:6]] == [0, 0, 1, 1, 2, 2]

    def test_routing_total_is_deterministic(self):
        """Every (src, dst) route is a pure function of the indices:
        rebuilding the same topology gives the same link names."""
        def routes():
            topo = FatTree(_fabric(), BPS, k=4)
            hosts = _attach_hosts(topo, 16)
            return {
                (i, j): [link.name for link in path_between(hosts[i], hosts[j])]
                for i in range(16)
                for j in range(16)
            }

        assert routes() == routes()


class TestTopologyTraffic:
    def test_cross_rack_transfers_contend_on_uplink(self):
        """Two cross-rack flows sharing a leaf uplink split it; the
        fluid solver must see the switch hop as a constraining link."""
        env = Environment()
        fabric = FluidFabric(env)
        topo = LeafSpine(
            fabric, BPS, racks=2, hosts_per_rack=2, spines=1,
            uplink_bytes_per_sec=BPS / 2,
        )
        hosts = _attach_hosts(topo, 4)
        nbytes = 1_000_000
        t1 = fabric.submit(path_between(hosts[0], hosts[2]), nbytes, "a")
        t2 = fabric.submit(path_between(hosts[1], hosts[3]), nbytes, "b")
        # Both flows ride leaf0.up0 (capacity BPS/2): each gets BPS/4.
        assert t1.rate == pytest.approx(BPS / 4 / 1e9)
        assert t2.rate == pytest.approx(BPS / 4 / 1e9)

    def test_intra_rack_transfers_do_not_touch_uplinks(self):
        env = Environment()
        fabric = FluidFabric(env)
        topo = LeafSpine(fabric, BPS, racks=2, hosts_per_rack=2, spines=1)
        hosts = _attach_hosts(topo, 4)
        t = fabric.submit(path_between(hosts[0], hosts[1]), 1_000_000, "a")
        assert all("leaf" not in link.name for link in t.path)
        assert t.rate == pytest.approx(BPS / 1e9)


class TestDomainPlans:
    """The shardable plan of a topology must mirror the real thing:
    same link inventory (disjoint across domains), same routes for
    every host pair — so a cluster partitioned on the plan contends on
    exactly the links a monolithic fabric would."""

    def _middle(self, hosts, i, j):
        """Switch-hop names of the real route (host ports stripped)."""
        return [link.name for link in path_between(hosts[i], hosts[j])][1:-1]

    def _assert_routes_match(self, plan, hosts):
        n = len(hosts)
        assert n == plan.n_hosts
        for i in range(n):
            for j in range(n):
                if i == j:
                    continue
                middle = self._middle(hosts, i, j)
                if plan.domain_of(i) == plan.domain_of(j):
                    assert list(plan.intra_hops(i, j)) == middle, (i, j)
                else:
                    src_side, dst_side = plan.cross_hops(i, j)
                    assert list(src_side) + list(dst_side) == middle, (i, j)

    def _assert_links_partition(self, plan, fabric):
        """Every switch link is owned by exactly one domain, at the
        rate the real fabric created it with."""
        owned = [
            link
            for d in range(plan.n_domains)
            for link in plan.domain_links(d)
        ]
        names = [name for name, _bps in owned]
        assert len(names) == len(set(names)), "link owned by two domains"
        assert sorted(names) == sorted(fabric.links)
        for name, bps in owned:
            assert fabric.links[name].nominal_bps == pytest.approx(bps)

    def test_leaf_spine_plan_matches_topology(self):
        from repro.hw.topology import LeafSpinePlan

        fabric = _fabric()
        topo = LeafSpine(fabric, BPS, racks=3, hosts_per_rack=2, spines=2)
        plan = LeafSpinePlan(
            racks=3, hosts_per_rack=2, spines=2, link_bytes_per_sec=BPS
        )
        self._assert_links_partition(plan, fabric)  # before host ports
        hosts = _attach_hosts(topo, 6)
        self._assert_routes_match(plan, hosts)
        for i in range(6):
            assert plan.domain_of(i) == topo.rack_of(hosts[i])
            assert i in plan.hosts_of(plan.domain_of(i))

    def test_leaf_spine_plan_oversubscribed_uplinks(self):
        from repro.hw.topology import LeafSpinePlan

        fabric = _fabric()
        LeafSpine(
            fabric, BPS, racks=2, hosts_per_rack=2, spines=1,
            uplink_bytes_per_sec=BPS / 4,
        )
        plan = LeafSpinePlan(
            racks=2, hosts_per_rack=2, spines=1,
            link_bytes_per_sec=BPS, uplink_bytes_per_sec=BPS / 4,
        )
        self._assert_links_partition(plan, fabric)

    def test_fat_tree_plan_matches_topology(self):
        from repro.hw.topology import FatTreePlan

        fabric = _fabric()
        topo = FatTree(fabric, BPS, k=4)
        plan = FatTreePlan(k=4, link_bytes_per_sec=BPS)
        self._assert_links_partition(plan, fabric)
        hosts = _attach_hosts(topo, 16)
        self._assert_routes_match(plan, hosts)
        per_pod = 4  # (k/2)^2
        for i in range(16):
            assert plan.domain_of(i) == i // per_pod
            assert i in plan.hosts_of(plan.domain_of(i))

    def test_plan_route_split_misuse_rejected(self):
        from repro.hw.topology import FatTreePlan, LeafSpinePlan

        ls = LeafSpinePlan(
            racks=2, hosts_per_rack=2, spines=1, link_bytes_per_sec=BPS
        )
        with pytest.raises(ConfigError, match="share rack"):
            ls.cross_hops(0, 1)
        ft = FatTreePlan(k=4, link_bytes_per_sec=BPS)
        with pytest.raises(ConfigError, match="different pods"):
            ft.intra_hops(0, 4)
        with pytest.raises(ConfigError, match="share pod"):
            ft.cross_hops(0, 1)
        with pytest.raises(ConfigError, match="out of range"):
            ls.intra_hops(0, 99)

    def test_plan_validation(self):
        from repro.hw.topology import FatTreePlan, LeafSpinePlan

        with pytest.raises(ConfigError):
            LeafSpinePlan(
                racks=0, hosts_per_rack=2, spines=1, link_bytes_per_sec=BPS
            )
        with pytest.raises(ConfigError):
            FatTreePlan(k=3, link_bytes_per_sec=BPS)
