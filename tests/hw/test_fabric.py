"""Tests for the fluid fabric: fair sharing, completion timing, stats."""

import pytest

from repro.errors import FabricError
from repro.hw import FluidFabric, PacketLink, maxmin_rates
from repro.hw.fabric import Transfer
from repro.sim import Environment
from repro.units import SEC, US, GiB, KiB, MiB

GB_PER_S = float(GiB)  # 1 GiB/s link, the paper's effective IB rate


@pytest.fixture
def env():
    return Environment()


def make_fabric(env, nlinks=1):
    fabric = FluidFabric(env)
    links = [fabric.add_link(f"l{i}", GB_PER_S) for i in range(nlinks)]
    return fabric, links


class TestSingleTransfer:
    def test_wire_time_matches_capacity(self, env):
        fabric, (link,) = make_fabric(env)
        t = fabric.submit([link], 64 * KiB)
        env.run(until=t.done)
        # 64 KiB at 1 GiB/s = 61.035 us
        expected = 64 * KiB * SEC / GB_PER_S
        assert t.completed_at == pytest.approx(expected, abs=2)

    def test_zero_byte_completes_immediately(self, env):
        fabric, (link,) = make_fabric(env)
        t = fabric.submit([link], 0)
        assert t.done.triggered
        assert t.completed_at == 0

    def test_negative_size_rejected(self, env):
        fabric, (link,) = make_fabric(env)
        with pytest.raises(FabricError):
            fabric.submit([link], -1)

    def test_empty_path_rejected(self, env):
        fabric, _ = make_fabric(env)
        with pytest.raises(FabricError):
            fabric.submit([], 100)

    def test_foreign_link_rejected(self, env):
        fabric, _ = make_fabric(env)
        other = FluidFabric(env).add_link("x", GB_PER_S)
        with pytest.raises(FabricError):
            fabric.submit([other], 100)

    def test_duplicate_link_name_rejected(self, env):
        fabric, _ = make_fabric(env)
        with pytest.raises(FabricError):
            fabric.add_link("l0", GB_PER_S)

    def test_bytes_accepted_accounting(self, env):
        fabric, (link,) = make_fabric(env)
        fabric.submit([link], 1000)
        fabric.submit([link], 2000)
        assert link.bytes_accepted == 3000


class TestFairSharing:
    def test_two_equal_transfers_share_evenly(self, env):
        fabric, (link,) = make_fabric(env)
        t1 = fabric.submit([link], 64 * KiB, "a")
        t2 = fabric.submit([link], 64 * KiB, "b")
        env.run(until=env.all_of([t1.done, t2.done]))
        solo = 64 * KiB * SEC / GB_PER_S
        # Both finish at ~2x solo time (they share the whole way).
        assert t1.completed_at == pytest.approx(2 * solo, rel=0.01)
        assert t2.completed_at == pytest.approx(2 * solo, rel=0.01)

    def test_small_transfer_against_big_one(self, env):
        """A 64 KiB message vs a 2 MiB stream: the small one takes ~2x solo.

        This is the paper's core interference mechanism (Figs. 1-2).
        """
        fabric, (link,) = make_fabric(env)
        big = fabric.submit([link], 2 * MiB, "interferer")
        small = fabric.submit([link], 64 * KiB, "victim")
        env.run(until=small.done)
        solo = 64 * KiB * SEC / GB_PER_S
        assert small.completed_at == pytest.approx(2 * solo, rel=0.01)
        assert not big.done.triggered  # still draining

    def test_rate_reallocated_after_completion(self, env):
        fabric, (link,) = make_fabric(env)
        t1 = fabric.submit([link], 64 * KiB, "short")
        t2 = fabric.submit([link], 128 * KiB, "long")
        env.run(until=env.all_of([t1.done, t2.done]))
        solo64 = 64 * KiB * SEC / GB_PER_S
        # short: shares until done at 2*solo64.
        assert t1.completed_at == pytest.approx(2 * solo64, rel=0.01)
        # long: 64 KiB done while sharing (at t=2*solo64), then 64 KiB alone.
        assert t2.completed_at == pytest.approx(3 * solo64, rel=0.01)

    def test_three_way_sharing(self, env):
        fabric, (link,) = make_fabric(env)
        transfers = [fabric.submit([link], 90 * KiB, f"t{i}") for i in range(3)]
        env.run(until=env.all_of([t.done for t in transfers]))
        solo = 90 * KiB * SEC / GB_PER_S
        for t in transfers:
            assert t.completed_at == pytest.approx(3 * solo, rel=0.01)

    def test_staggered_arrival(self, env):
        fabric, (link,) = make_fabric(env)
        results = {}

        def starter(env):
            t1 = fabric.submit([link], 128 * KiB, "first")
            yield env.timeout(int(64 * KiB * SEC / GB_PER_S))  # first is half done
            t2 = fabric.submit([link], 32 * KiB, "second")
            yield env.all_of([t1.done, t2.done])
            results["t1"] = t1.completed_at
            results["t2"] = t2.completed_at

        env.process(starter(env))
        env.run()
        u = 64 * KiB * SEC / GB_PER_S  # time for 64 KiB solo
        # After t2 arrives, both share: t2 finishes 32 KiB at rate/2 -> u
        assert results["t2"] == pytest.approx(2 * u, rel=0.01)
        # t1: 64 KiB left at t=u; shares for 32 KiB (u), then alone for 32 KiB (u/2)
        assert results["t1"] == pytest.approx(2.5 * u, rel=0.01)


class TestMultiLinkPaths:
    def test_two_hop_path_bottleneck(self, env):
        fabric = FluidFabric(env)
        fast = fabric.add_link("fast", 2 * GB_PER_S)
        slow = fabric.add_link("slow", GB_PER_S)
        t = fabric.submit([fast, slow], 64 * KiB)
        env.run(until=t.done)
        expected = 64 * KiB * SEC / GB_PER_S  # bottleneck = slow link
        assert t.completed_at == pytest.approx(expected, abs=2)

    def test_cross_traffic_on_shared_ingress(self, env):
        """Two senders into the same destination port share its rx link."""
        fabric = FluidFabric(env)
        tx_a = fabric.add_link("a.tx", GB_PER_S)
        tx_b = fabric.add_link("b.tx", GB_PER_S)
        rx_c = fabric.add_link("c.rx", GB_PER_S)
        t1 = fabric.submit([tx_a, rx_c], 64 * KiB)
        t2 = fabric.submit([tx_b, rx_c], 64 * KiB)
        env.run(until=env.all_of([t1.done, t2.done]))
        solo = 64 * KiB * SEC / GB_PER_S
        assert t1.completed_at == pytest.approx(2 * solo, rel=0.01)
        assert t2.completed_at == pytest.approx(2 * solo, rel=0.01)

    def test_disjoint_paths_do_not_interfere(self, env):
        fabric = FluidFabric(env)
        l1 = fabric.add_link("p1", GB_PER_S)
        l2 = fabric.add_link("p2", GB_PER_S)
        t1 = fabric.submit([l1], 64 * KiB)
        t2 = fabric.submit([l2], 64 * KiB)
        env.run(until=env.all_of([t1.done, t2.done]))
        solo = 64 * KiB * SEC / GB_PER_S
        assert t1.completed_at == pytest.approx(solo, abs=2)
        assert t2.completed_at == pytest.approx(solo, abs=2)


class TestMaxMinAlgorithm:
    def _mk(self, path, nbytes=1000):
        return Transfer(0, tuple(path), nbytes, None, 0, "")

    def test_single_link_even_split(self, env):
        fabric, (link,) = make_fabric(env)
        ts = [self._mk([link]) for _ in range(4)]
        rates = maxmin_rates(ts, lambda l: l.capacity_bytes_per_ns)
        for t in ts:
            assert rates[t] == pytest.approx(link.capacity_bytes_per_ns / 4)

    def test_bottleneck_flow_frees_capacity_elsewhere(self, env):
        # Classic max-min example: flows A:[l1], B:[l1,l2], C:[l2]
        # l1 cap 1, l2 cap 2 => B gets 0.5 (l1 bottleneck), A gets 0.5,
        # C gets l2 leftover 1.5.
        fabric = FluidFabric(env)
        l1 = fabric.add_link("l1", 1e9)
        l2 = fabric.add_link("l2", 2e9)
        a = self._mk([l1])
        b = self._mk([l1, l2])
        c = self._mk([l2])
        rates = maxmin_rates([a, b, c], lambda l: l.capacity_bytes_per_ns)
        assert rates[a] == pytest.approx(0.5, rel=1e-9)
        assert rates[b] == pytest.approx(0.5, rel=1e-9)
        assert rates[c] == pytest.approx(1.5, rel=1e-9)

    def test_no_link_oversubscribed(self, env):
        fabric = FluidFabric(env)
        links = [fabric.add_link(f"l{i}", (i + 1) * 1e9) for i in range(3)]
        import itertools

        ts = []
        for r in range(1, 4):
            for combo in itertools.combinations(links, r):
                ts.append(self._mk(list(combo)))
        rates = maxmin_rates(ts, lambda l: l.capacity_bytes_per_ns)
        for link in links:
            total = sum(rates[t] for t in ts if link in t.path)
            assert total <= link.capacity_bytes_per_ns * (1 + 1e-9)

    def test_empty_input(self):
        assert maxmin_rates([], lambda l: 0) == {}


class TestUtilizationStats:
    def test_saturated_link_reports_full_utilization(self, env):
        fabric, (link,) = make_fabric(env)
        t = fabric.submit([link], MiB)
        env.run(until=t.done)
        assert link.utilization(env.now) == pytest.approx(1.0, rel=0.01)

    def test_idle_link_zero_utilization(self, env):
        fabric, (link,) = make_fabric(env)
        assert link.utilization(1000) == 0.0


class TestFluidVsPacketCrossValidation:
    """The fluid model must agree with exact per-MTU round robin."""

    def test_two_flows_same_size(self, env):
        # Packet model
        penv = Environment()
        plink = PacketLink(penv, GB_PER_S, mtu_bytes=1 * KiB)
        d1 = plink.submit(64 * KiB, "a")
        d2 = plink.submit(64 * KiB, "b")
        penv.run(until=penv.all_of([d1, d2]))
        packet_finish = penv.now

        fabric, (link,) = make_fabric(env)
        t1 = fabric.submit([link], 64 * KiB, "a")
        t2 = fabric.submit([link], 64 * KiB, "b")
        env.run(until=env.all_of([t1.done, t2.done]))
        fluid_finish = env.now

        mtu_time = 1 * KiB * SEC / GB_PER_S
        assert abs(packet_finish - fluid_finish) <= 2 * mtu_time

    def test_small_vs_large_flow(self):
        mtu_time = 1 * KiB * SEC / GB_PER_S

        penv = Environment()
        plink = PacketLink(penv, GB_PER_S, mtu_bytes=1 * KiB)
        plink.submit(512 * KiB, "big")
        small_done = plink.submit(32 * KiB, "small")
        penv.run(until=small_done)
        packet_small = penv.now

        fenv = Environment()
        fabric = FluidFabric(fenv)
        link = fabric.add_link("l", GB_PER_S)
        fabric.submit([link], 512 * KiB, "big")
        t_small = fabric.submit([link], 32 * KiB, "small")
        fenv.run(until=t_small.done)
        fluid_small = fenv.now

        # Round-robin alternation vs fluid: within a few MTU slots.
        assert abs(packet_small - fluid_small) <= 4 * mtu_time

    def test_packet_link_rejects_bad_input(self, env):
        link = PacketLink(env, GB_PER_S)
        with pytest.raises(FabricError):
            link.submit(-5)

    def test_packet_link_zero_bytes(self, env):
        link = PacketLink(env, GB_PER_S)
        done = link.submit(0)
        assert done.triggered


class TestDeterminism:
    def test_identical_runs_identical_completions(self):
        def run_once():
            env = Environment()
            fabric = FluidFabric(env)
            link = fabric.add_link("l", GB_PER_S)

            def traffic(env):
                for i in range(20):
                    fabric.submit([link], (i % 5 + 1) * 16 * KiB, f"f{i}")
                    yield env.timeout(10 * US)

            env.process(traffic(env))
            env.run()
            return fabric.completions

        assert run_once() == run_once()
