"""Weighted max-min sharing, runtime capacity changes, rate limiters."""

import pytest

from repro.errors import FabricError
from repro.hw import FluidFabric, maxmin_rates
from repro.hw.fabric import Transfer
from repro.sim import Environment
from repro.units import SEC, GiB, KiB

GB_PER_S = float(GiB)


@pytest.fixture
def env():
    return Environment()


class TestWeightedMaxMin:
    def _mk(self, path, weight=1.0):
        return Transfer(0, tuple(path), 1000, None, 0, "", weight=weight)

    def test_weighted_split(self, env):
        fabric = FluidFabric(env)
        link = fabric.add_link("l", 3e9)
        heavy = self._mk([link], weight=2.0)
        light = self._mk([link], weight=1.0)
        rates = maxmin_rates([heavy, light], lambda l: l.capacity_bytes_per_ns)
        assert rates[heavy] == pytest.approx(2.0, rel=1e-9)
        assert rates[light] == pytest.approx(1.0, rel=1e-9)

    def test_unit_weights_reduce_to_plain_maxmin(self, env):
        fabric = FluidFabric(env)
        link = fabric.add_link("l", 2e9)
        a, b = self._mk([link]), self._mk([link])
        rates = maxmin_rates([a, b], lambda l: l.capacity_bytes_per_ns)
        assert rates[a] == rates[b] == pytest.approx(1.0)

    def test_invalid_weight_rejected(self, env):
        fabric = FluidFabric(env)
        link = fabric.add_link("l", 1e9)
        bad = self._mk([link], weight=0.0)
        with pytest.raises(FabricError):
            maxmin_rates([bad], lambda l: l.capacity_bytes_per_ns)

    def test_weighted_completion_times(self, env):
        """A weight-3 transfer finishes ~3x the data in the same time."""
        fabric = FluidFabric(env)
        link = fabric.add_link("l", GB_PER_S)
        fast = fabric.submit([link], 192 * KiB, "fast", weight=3.0)
        slow = fabric.submit([link], 64 * KiB, "slow", weight=1.0)
        env.run(until=env.all_of([fast.done, slow.done]))
        # Both finish together: rates were 3:1 and sizes 3:1.
        assert fast.completed_at == pytest.approx(slow.completed_at, rel=0.01)


class TestRuntimeCapacityChange:
    def test_capacity_change_mid_transfer(self, env):
        fabric = FluidFabric(env)
        link = fabric.add_link("l", GB_PER_S)
        results = {}

        def scenario(env):
            t = fabric.submit([link], 128 * KiB)
            # Let half of it pass, then halve the link.
            yield env.timeout(int(64 * KiB * SEC / GB_PER_S))
            fabric.set_link_capacity("l", GB_PER_S / 2)
            yield t.done
            results["t"] = env.now

        env.process(scenario(env))
        env.run()
        # First half at full rate (u), second half at half rate (2u).
        u = 64 * KiB * SEC / GB_PER_S
        assert results["t"] == pytest.approx(3 * u, rel=0.01)

    def test_invalid_capacity(self, env):
        fabric = FluidFabric(env)
        fabric.add_link("l", GB_PER_S)
        with pytest.raises(FabricError):
            fabric.set_link_capacity("l", 0)


class TestDomainRateLimiters:
    def make_rig(self):
        from repro.experiments.platform import Testbed

        bed = Testbed.paper_testbed(seed=4)
        return bed, bed.node("server-host"), bed.node("client-host")

    def test_limit_throttles_throughput(self):
        from repro.benchex import BenchExConfig, BenchExPair, run_pairs

        bed, s, c = self.make_rig()
        pair = BenchExPair(
            bed, s, c, BenchExConfig(name="p", request_limit=30, warmup_requests=5)
        )
        # Limit the server domain to 1/4 of the link.
        s.hca.set_domain_rate_limit(pair.server_dom.domid, GB_PER_S / 4)
        run_pairs(bed, [pair])
        lat = pair.server.latencies_us()
        # Response WTime quadruples (~65us -> ~260us): total well above base.
        assert lat.mean() > 350.0

    def test_limit_clear_restores(self):
        from repro.benchex import BenchExConfig, BenchExPair, run_pairs

        bed, s, c = self.make_rig()
        pair = BenchExPair(
            bed, s, c, BenchExConfig(name="p", request_limit=30, warmup_requests=5)
        )
        s.hca.set_domain_rate_limit(pair.server_dom.domid, GB_PER_S / 4)
        s.hca.set_domain_rate_limit(pair.server_dom.domid, None)
        assert s.hca.domain_rate_limit(pair.server_dom.domid) is None
        run_pairs(bed, [pair])
        assert pair.server.latencies_us().mean() == pytest.approx(209.0, abs=6.0)

    def test_limit_validation(self):
        _, s, _ = self.make_rig()
        with pytest.raises(FabricError):
            s.hca.set_domain_rate_limit(1, 0)

    def test_qp_priority_validation(self):
        bed, s, c = self.make_rig()
        dom = s.create_guest("vm")
        state = {}

        def scenario(env):
            fe = s.frontend(dom)
            ctx = yield from fe.open_context()
            cq = yield from fe.create_cq(ctx)
            state["qp"] = yield from fe.create_qp(ctx, cq)

        proc = bed.env.process(scenario(bed.env))
        bed.env.run(until=proc)
        s.hca.set_qp_priority(state["qp"], 4.0)
        assert state["qp"].flow_weight == 4.0
        with pytest.raises(FabricError):
            s.hca.set_qp_priority(state["qp"], 0)
