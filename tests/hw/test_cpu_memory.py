"""Unit tests for PCPU, MachineMemory, AddressSpace, Buffer."""

import pytest

from repro.errors import ConfigError, HypervisorError
from repro.hw import PAGE_SIZE, PCPU, AddressSpace, Buffer, MachineMemory, ReadOnlyView
from repro.units import KiB, MiB


class TestPCPU:
    def test_cycle_time_roundtrip(self):
        cpu = PCPU(0, freq_hz=2e9)
        # 2 GHz: 1000 cycles = 500 ns
        assert cpu.cycles_to_ns(1000) == 500
        assert cpu.ns_to_cycles(500) == pytest.approx(1000)

    def test_cycles_to_ns_rounds_up(self):
        cpu = PCPU(0, freq_hz=3e9)
        # 1 cycle at 3 GHz = 0.333 ns -> rounds up to 1 ns.
        assert cpu.cycles_to_ns(1) == 1

    def test_zero_cycles(self):
        assert PCPU(0).cycles_to_ns(0) == 0

    def test_invalid_params(self):
        with pytest.raises(ConfigError):
            PCPU(-1)
        with pytest.raises(ConfigError):
            PCPU(0, freq_hz=0)
        with pytest.raises(ConfigError):
            PCPU(0).cycles_to_ns(-5)


class TestMachineMemory:
    def test_allocate_and_free(self):
        mem = MachineMemory(16 * PAGE_SIZE)
        frames = mem.allocate(owner_domid=1, nframes=4)
        assert len(frames) == 4
        assert mem.allocated_frames == 4
        assert mem.free_frames == 12
        mem.free(frames)
        assert mem.allocated_frames == 0

    def test_unique_mfns(self):
        mem = MachineMemory(16 * PAGE_SIZE)
        frames = mem.allocate(1, 8)
        assert len({f.mfn for f in frames}) == 8

    def test_out_of_memory(self):
        mem = MachineMemory(4 * PAGE_SIZE)
        with pytest.raises(HypervisorError, match="out of memory"):
            mem.allocate(1, 5)

    def test_cannot_free_pinned(self):
        mem = MachineMemory(4 * PAGE_SIZE)
        frames = mem.allocate(1, 1)
        frames[0].pinned = True
        with pytest.raises(HypervisorError, match="pinned"):
            mem.free(frames)

    def test_lookup(self):
        mem = MachineMemory(4 * PAGE_SIZE)
        frame = mem.allocate(7, 1)[0]
        assert mem.lookup(frame.mfn) is frame
        with pytest.raises(HypervisorError):
            mem.lookup(999)

    def test_too_small(self):
        with pytest.raises(HypervisorError):
            MachineMemory(100)


class TestAddressSpace:
    def test_extend_and_translate(self):
        mem = MachineMemory(MiB)
        aspace = AddressSpace(domid=1, memory=mem)
        rng = aspace.extend(4)
        assert rng == range(0, 4)
        frame = aspace.translate(2)
        assert frame.owner_domid == 1

    def test_translate_unmapped_raises(self):
        mem = MachineMemory(MiB)
        aspace = AddressSpace(1, mem)
        with pytest.raises(HypervisorError, match="not mapped"):
            aspace.translate(0)

    def test_pin_unpin_range(self):
        mem = MachineMemory(MiB)
        aspace = AddressSpace(1, mem)
        aspace.extend(8)
        frames = aspace.pin_range(2, 3)
        assert all(f.pinned for f in frames)
        aspace.unpin_range(2, 3)
        assert not any(f.pinned for f in frames)

    def test_contiguous_extension(self):
        mem = MachineMemory(MiB)
        aspace = AddressSpace(1, mem)
        assert aspace.extend(2) == range(0, 2)
        assert aspace.extend(3) == range(2, 5)
        assert aspace.nr_pages == 5


class TestBuffer:
    def test_buffer_spans_enough_pages(self):
        mem = MachineMemory(16 * MiB)
        aspace = AddressSpace(1, mem)
        buf = Buffer(aspace, 64 * KiB, label="app")
        assert buf.nframes == 16  # 64 KiB / 4 KiB pages
        assert len(buf.frames()) == 16

    def test_odd_size_rounds_up(self):
        mem = MachineMemory(MiB)
        aspace = AddressSpace(1, mem)
        buf = Buffer(aspace, PAGE_SIZE + 1)
        assert buf.nframes == 2

    def test_zero_size_rejected(self):
        mem = MachineMemory(MiB)
        aspace = AddressSpace(1, mem)
        with pytest.raises(HypervisorError):
            Buffer(aspace, 0)


class TestReadOnlyView:
    def test_reads_pass_through(self):
        class Thing:
            x = 5

            def get_x(self):
                return self.x

        view = ReadOnlyView(Thing())
        assert view.x == 5
        assert view.get_x() == 5

    def test_writes_rejected(self):
        class Thing:
            x = 5

        view = ReadOnlyView(Thing())
        with pytest.raises(HypervisorError):
            view.x = 6

    def test_setter_methods_rejected(self):
        class Thing:
            def set_x(self, v):  # pragma: no cover - must not run
                pass

        view = ReadOnlyView(Thing())
        with pytest.raises(HypervisorError):
            view.set_x(1)
