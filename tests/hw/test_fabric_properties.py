"""Property-based tests for the fluid fabric (hypothesis)."""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.hw import FluidFabric
from repro.sim import Environment
from repro.units import SEC, GiB, KiB

GB_PER_S = float(GiB)


@given(
    sizes=st.lists(
        st.integers(min_value=1, max_value=256 * KiB), min_size=1, max_size=12
    ),
    gaps=st.lists(st.integers(min_value=0, max_value=100_000), min_size=0, max_size=12),
)
@settings(max_examples=40, deadline=None)
def test_every_transfer_completes_no_earlier_than_solo_time(sizes, gaps):
    env = Environment()
    fabric = FluidFabric(env)
    link = fabric.add_link("l", GB_PER_S)
    transfers = []

    def submitter(env):
        for i, size in enumerate(sizes):
            transfers.append(fabric.submit([link], size, f"t{i}"))
            gap = gaps[i] if i < len(gaps) else 0
            if gap:
                yield env.timeout(gap)
        if False:  # pragma: no cover - make this a generator
            yield

    env.process(submitter(env))
    env.run()

    assert len(fabric.completions) == len(sizes)
    for t in transfers:
        assert t.done.triggered
        solo = t.nbytes * SEC / GB_PER_S
        elapsed = t.completed_at - t.submitted_at
        # Sharing can only slow a transfer down (minus 2ns rounding slack).
        assert elapsed + 2 >= solo


@given(
    sizes=st.lists(
        st.integers(min_value=1 * KiB, max_value=128 * KiB), min_size=2, max_size=8
    )
)
@settings(max_examples=40, deadline=None)
def test_aggregate_throughput_never_exceeds_capacity(sizes):
    env = Environment()
    fabric = FluidFabric(env)
    link = fabric.add_link("l", GB_PER_S)
    for i, size in enumerate(sizes):
        fabric.submit([link], size, f"t{i}")
    env.run()
    total_bytes = sum(sizes)
    min_time = total_bytes * SEC / GB_PER_S
    # All bytes through one link cannot finish faster than capacity allows.
    assert env.now + 2 >= min_time
    assert link.utilization(env.now) <= 1.0 + 1e-6


@given(
    seed=st.integers(min_value=0, max_value=10**6),
    n=st.integers(min_value=1, max_value=10),
)
@settings(max_examples=20, deadline=None)
def test_work_conservation_busy_until_all_done(seed, n):
    """With all transfers submitted at t=0, the link stays saturated:
    finish time == total bytes / capacity."""
    import numpy as np

    rng = np.random.default_rng(seed)
    sizes = [int(s) for s in rng.integers(1 * KiB, 64 * KiB, size=n)]
    env = Environment()
    fabric = FluidFabric(env)
    link = fabric.add_link("l", GB_PER_S)
    for i, size in enumerate(sizes):
        fabric.submit([link], size, f"t{i}")
    env.run()
    expected = sum(sizes) * SEC / GB_PER_S
    assert abs(env.now - expected) <= n + 2  # ns rounding per completion event
