"""Randomized differential tests: fluid fabric vs exact packet model.

The fluid max-min model is the simulator's fast path (O(1) events per
transfer); :class:`PacketLink` is the exact per-MTU round-robin model
it abstracts.  These tests drive both with identical randomized
workloads — including mid-transfer joins and leaves, which exercise the
incremental reconvergence path in ``FluidFabric._reallocate`` — and
check that:

* per-flow completion times agree to within the round-robin
  discretization error (one MTU service time per competing flow);
* flows whose fluid completion times are well separated complete in
  the same order under both models;
* the incremental (component-restricted) solver yields rates that are
  bit-identical to a from-scratch global ``maxmin_rates`` solve at
  every churn point;
* tracing a run does not perturb it (the telemetry fast path is
  observation-only).

Runs under the pinned ``thorough`` Hypothesis profile; the per-test
``max_examples`` below put the differential suite at 500+ derandomized
examples total while keeping the packet-model event cost bounded
(sizes are capped at a few dozen MTUs).
"""

from __future__ import annotations

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.hw import FluidFabric
from repro.hw.fabric import (
    PacketLink,
    Transfer,
    _maxmin_rates_numpy,
    _maxmin_rates_python,
    maxmin_rates,
)
from repro.sim import Environment
from repro.sim.events import Event
from repro.telemetry import TelemetryBus
from repro.units import SEC, GiB, KiB

CAPACITY = float(GiB)  # bytes/s
MTU = 1 * KiB
#: Service time of one full MTU at CAPACITY, in ns (ceil like PacketLink).
MTU_NS = -(-MTU * SEC // int(CAPACITY))

_sizes = st.lists(
    st.integers(min_value=1, max_value=32 * KiB), min_size=2, max_size=5
)
_gaps = st.lists(
    st.integers(min_value=0, max_value=20 * MTU_NS), min_size=0, max_size=5
)


def _run_fluid(sizes, gaps):
    """Fluid completion times (ns) per flow, submitted with ``gaps``."""
    env = Environment()
    fabric = FluidFabric(env)
    link = fabric.add_link("l", CAPACITY)
    transfers = []

    def submitter(env):
        for i, size in enumerate(sizes):
            transfers.append(fabric.submit([link], size, f"t{i}"))
            gap = gaps[i] if i < len(gaps) else 0
            if gap:
                yield env.timeout(gap)
        if False:  # pragma: no cover - make this a generator
            yield

    env.process(submitter(env))
    env.run()
    return [t.completed_at for t in transfers]


def _run_packet(sizes, gaps):
    """Exact per-MTU completion times (ns) for the same workload."""
    env = Environment()
    link = PacketLink(env, CAPACITY, mtu_bytes=MTU)
    done_at = [None] * len(sizes)

    def submitter(env):
        for i, size in enumerate(sizes):
            ev = link.submit(size, f"t{i}")
            ev.callbacks.append(
                lambda _ev, i=i: done_at.__setitem__(i, env.now)
            )
            gap = gaps[i] if i < len(gaps) else 0
            if gap:
                yield env.timeout(gap)
        if False:  # pragma: no cover - make this a generator
            yield

    env.process(submitter(env))
    env.run()
    return done_at


@given(sizes=_sizes, gaps=_gaps)
@settings(max_examples=250, derandomize=True, deadline=None)
def test_completion_times_agree_within_round_robin_error(sizes, gaps):
    """Fluid vs packet per-flow completion time differs by at most the
    round-robin discretization: each competing flow can delay (or be
    delayed by) one MTU per rotation, so the bound is one MTU service
    time per flow (plus per-packet integer-ceil slack)."""
    fluid = _run_fluid(sizes, gaps)
    packet = _run_packet(sizes, gaps)
    n = len(sizes)
    npackets_total = sum(-(-s // MTU) for s in sizes)
    # (n+1) MTU slots of rotation skew + 1ns ceil rounding per packet.
    bound = (n + 1) * MTU_NS + npackets_total + 2
    for i, (tf, tp) in enumerate(zip(fluid, packet)):
        assert tp is not None, f"flow {i} never completed in packet model"
        assert abs(tf - tp) <= bound, (
            f"flow {i} (size {sizes[i]}): fluid {tf} vs packet {tp} ns "
            f"(bound {bound})"
        )


@given(sizes=_sizes, gaps=_gaps)
@settings(max_examples=150, derandomize=True, deadline=None)
def test_well_separated_flows_complete_in_the_same_order(sizes, gaps):
    """If two flows finish more than the discretization bound apart in
    the fluid model, the exact model must agree on their order."""
    fluid = _run_fluid(sizes, gaps)
    packet = _run_packet(sizes, gaps)
    n = len(sizes)
    npackets_total = sum(-(-s // MTU) for s in sizes)
    margin = 2 * ((n + 1) * MTU_NS + npackets_total + 2)
    for i in range(n):
        for j in range(n):
            if fluid[i] + margin < fluid[j]:
                assert packet[i] < packet[j], (
                    f"order flip: fluid has {i} << {j} "
                    f"({fluid[i]} vs {fluid[j]}) but packet has "
                    f"{packet[i]} vs {packet[j]}"
                )


_topo_sizes = st.lists(
    st.integers(min_value=1, max_value=64 * KiB), min_size=1, max_size=8
)
_path_picks = st.lists(
    st.integers(min_value=0, max_value=5), min_size=1, max_size=8
)
_churn_gaps = st.lists(
    st.integers(min_value=0, max_value=50_000), min_size=1, max_size=8
)


def _assert_rates_match_global_solve(fabric):
    """Every active transfer's incremental rate equals a from-scratch
    global progressive-filling solve, bit for bit."""
    active = list(fabric._active)
    if not active:
        return
    expected = maxmin_rates(active, lambda link: link.capacity_bytes_per_ns)
    for t in active:
        assert t.rate == expected[t], (
            f"{t!r}: incremental rate {t.rate!r} != global {expected[t]!r}"
        )


@given(
    sizes=_topo_sizes,
    picks=_path_picks,
    gaps=_churn_gaps,
    degrade_step=st.integers(min_value=0, max_value=7),
)
@settings(max_examples=100, derandomize=True, deadline=None)
def test_incremental_reconvergence_matches_global_solve(
    sizes, picks, gaps, degrade_step
):
    """Join, leave and capacity-change churn on a multi-link fabric:
    after every event the component-restricted re-solve must leave the
    whole fabric in exactly the state a global solve produces.  This is
    the fence for the incremental solver: progressive filling
    decomposes over connected components, so "incremental" may never
    mean "approximate"."""
    env = Environment()
    fabric = FluidFabric(env)
    links = [fabric.add_link(f"l{i}", CAPACITY * (1 + i % 3)) for i in range(3)]
    # Paths of one or two links, chosen by the drawn pick: 0..2 are the
    # single links, 3..5 are the two-link pairs — so examples mix
    # disjoint components with overlapping paths.
    paths = [
        (links[0],),
        (links[1],),
        (links[2],),
        (links[0], links[1]),
        (links[1], links[2]),
        (links[0], links[2]),
    ]
    checked = {"joins": 0, "leaves": 0}

    def on_done(_ev):
        checked["leaves"] += 1
        _assert_rates_match_global_solve(fabric)

    def submitter(env):
        for i, size in enumerate(sizes):
            pick = picks[i % len(picks)]
            t = fabric.submit(list(paths[pick]), size, f"t{i}")
            t.done.callbacks.append(on_done)
            checked["joins"] += 1
            _assert_rates_match_global_solve(fabric)
            if i == degrade_step:
                fabric.set_link_degradation("l1", 0.25)
                _assert_rates_match_global_solve(fabric)
            yield env.timeout(gaps[i % len(gaps)])
        fabric.set_link_degradation("l1", 1.0)
        _assert_rates_match_global_solve(fabric)

    env.process(submitter(env))
    env.run()
    assert checked["joins"] == len(sizes)
    assert checked["leaves"] == len(sizes)
    for t in fabric.active_transfers:  # pragma: no cover - sanity
        raise AssertionError(f"transfer left active: {t!r}")


# -- vectorized solver differential ------------------------------------------
#
# ``maxmin_rates`` dispatches to a numpy fixed-point above
# ``_VECTOR_MIN_TRANSFERS``; its contract is *bit identity* with the
# pure-Python reference — same floats, same freeze order — so the
# dispatch threshold can never change a simulation.  This strategy
# draws randomized multi-link topologies (weights, capacities, path
# shapes, well past the dispatch threshold in size) and compares the
# two implementations directly.

_solver_cases = st.integers(min_value=2, max_value=10).flatmap(
    lambda n_links: st.tuples(
        st.just(n_links),
        st.lists(  # per-link capacity multipliers (distinct scales)
            st.floats(min_value=0.05, max_value=4.0,
                      allow_nan=False, allow_infinity=False),
            min_size=n_links, max_size=n_links,
        ),
        st.lists(  # one (path, weight) per transfer
            st.tuples(
                st.sets(
                    st.integers(min_value=0, max_value=n_links - 1),
                    min_size=1, max_size=min(n_links, 4),
                ),
                st.one_of(
                    st.just(1.0),
                    st.floats(min_value=0.125, max_value=8.0,
                              allow_nan=False, allow_infinity=False),
                ),
            ),
            min_size=1, max_size=80,
        ),
    )
)


@given(case=_solver_cases)
@settings(max_examples=200, derandomize=True, deadline=None)
def test_numpy_solver_is_bit_identical_to_python_reference(case):
    """The vectorized solver must reproduce the reference solver's
    result dict exactly: identical float rates AND identical insertion
    (freeze) order, on arbitrary multi-link topologies."""
    n_links, cap_mults, flows = case
    env = Environment()
    fabric = FluidFabric(env)
    links = [
        fabric.add_link(f"l{i}", CAPACITY * cap_mults[i])
        for i in range(n_links)
    ]
    transfers = [
        Transfer(
            i,
            tuple(links[li] for li in sorted(path_links)),
            1,
            Event(env),
            0,
            f"t{i}",
            weight=weight,
        )
        for i, (path_links, weight) in enumerate(flows)
    ]

    def capacity_of(link):
        return link.capacity_bytes_per_ns

    reference = _maxmin_rates_python(transfers, capacity_of)
    vectorized = _maxmin_rates_numpy(transfers, capacity_of)
    assert vectorized is not None  # paths are non-empty and duplicate-free
    # Bit-identical values *and* identical freeze order.
    assert list(vectorized.items()) == list(reference.items())
    # The public dispatcher agrees with both, whichever path it takes.
    dispatched = maxmin_rates(transfers, capacity_of)
    assert list(dispatched.items()) == list(reference.items())


def test_numpy_solver_declines_degenerate_paths():
    """Duplicate links within one path fall back to the reference
    solver (returns None) rather than risking a divergent sum order."""
    env = Environment()
    fabric = FluidFabric(env)
    link = fabric.add_link("l", CAPACITY)
    twice = Transfer(0, (link, link), 1, Event(env), 0, "t0")
    assert _maxmin_rates_numpy([twice], lambda li: li.capacity_bytes_per_ns) is None
    # The dispatcher still solves it via the reference path.
    rates = maxmin_rates([twice], lambda li: li.capacity_bytes_per_ns)
    assert rates[twice] > 0.0


@given(sizes=_sizes, gaps=_gaps)
@settings(max_examples=100, derandomize=True, deadline=None)
def test_tracing_does_not_perturb_the_simulation(sizes, gaps):
    """A recording telemetry bus must be observation-only: the traced
    run's completion log is identical to the untraced run's."""
    untraced = _run_fluid(sizes, gaps)

    env = Environment()
    env.telemetry = TelemetryBus()
    fabric = FluidFabric(env)
    link = fabric.add_link("l", CAPACITY)
    transfers = []

    def submitter(env):
        for i, size in enumerate(sizes):
            transfers.append(fabric.submit([link], size, f"t{i}"))
            gap = gaps[i] if i < len(gaps) else 0
            if gap:
                yield env.timeout(gap)
        if False:  # pragma: no cover - make this a generator
            yield

    env.process(submitter(env))
    env.run()
    assert [t.completed_at for t in transfers] == untraced
    # The trace actually recorded the flows (one span per transfer).
    spans = [r for r in env.telemetry.records if r.cat == "fabric"]
    assert len(spans) == len(sizes)
