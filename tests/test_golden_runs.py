"""Golden-run byte-identity: the fence around every fast-path change.

The fixtures under ``tests/golden/`` were captured by
``tools/capture_golden.py`` and are the *reference semantics* of the
simulator: a fully traced managed run (which pins the complete
telemetry record stream of every layer, including the kernel's
events-processed counters — so event count, order and timing are all
immovable) and a chaos-campaign ResilienceReport (which pins the
fault-injection path end to end).

Any PR may make the simulator faster; no PR may make these outputs
differ by a single byte without regenerating the fixtures and saying
so in the commit message.
"""

from __future__ import annotations

import importlib.util
import pathlib
import sys

import pytest

_TOOLS = pathlib.Path(__file__).resolve().parent.parent / "tools"
GOLDEN_DIR = pathlib.Path(__file__).resolve().parent / "golden"


def _load_capture_golden():
    spec = importlib.util.spec_from_file_location(
        "capture_golden", _TOOLS / "capture_golden.py"
    )
    module = importlib.util.module_from_spec(spec)
    sys.modules.setdefault("capture_golden", module)
    spec.loader.exec_module(module)
    return module


@pytest.fixture(scope="module")
def capture_golden():
    return _load_capture_golden()


def test_managed_trace_is_byte_identical(capture_golden):
    golden = (GOLDEN_DIR / capture_golden.TRACE_NAME).read_text()
    produced = capture_golden.golden_trace_bytes()
    assert produced == golden, (
        "the managed-run Chrome trace drifted from the golden fixture; "
        "if the behaviour change is intentional, regenerate with "
        "`PYTHONPATH=src python tools/capture_golden.py` and say so in "
        "the commit message"
    )


def test_chaos_report_is_byte_identical(capture_golden):
    golden = (GOLDEN_DIR / capture_golden.CHAOS_NAME).read_text()
    produced = capture_golden.golden_chaos_bytes()
    assert produced == golden, (
        "the fig9 link-flap ResilienceReport drifted from the golden "
        "fixture; if the behaviour change is intentional, regenerate "
        "with `PYTHONPATH=src python tools/capture_golden.py` and say "
        "so in the commit message"
    )


def test_service_replay_is_byte_identical(capture_golden):
    golden = (GOLDEN_DIR / capture_golden.SERVICE_NAME).read_text()
    produced = capture_golden.golden_service_bytes()
    assert produced == golden, (
        "the service_smoke replay response log drifted from the golden "
        "fixture; if the behaviour change is intentional, regenerate "
        "with `PYTHONPATH=src python tools/capture_golden.py` and say "
        "so in the commit message"
    )


def test_golden_runs_are_repeatable(capture_golden):
    """Two in-process runs at the same seed produce the same bytes —
    the determinism claim underlying the fixtures themselves."""
    assert (
        capture_golden.golden_chaos_bytes()
        == capture_golden.golden_chaos_bytes()
    )
