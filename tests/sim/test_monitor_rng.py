"""Unit tests for probes (TimeSeries/Counter/ProbeSet) and RNG streams."""

import numpy as np
import pytest

from repro.sim import Counter, Environment, ProbeSet, RngRegistry, TimeSeries
from repro.sim.monitor import jitter, sampled_mean


class TestTimeSeries:
    def test_record_and_arrays(self):
        ts = TimeSeries("lat")
        ts.record(0, 1.0)
        ts.record(10, 2.0)
        ts.record(10, 3.0)
        assert len(ts) == 3
        np.testing.assert_array_equal(ts.times, [0, 10, 10])
        np.testing.assert_array_equal(ts.values, [1.0, 2.0, 3.0])

    def test_non_monotonic_rejected(self):
        ts = TimeSeries()
        ts.record(10, 1.0)
        with pytest.raises(ValueError):
            ts.record(5, 2.0)

    def test_array_conversion_is_cached(self):
        ts = TimeSeries()
        ts.record(0, 1.0)
        assert ts.times is ts.times
        assert ts.values is ts.values

    def test_cache_invalidated_on_record(self):
        ts = TimeSeries()
        ts.record(0, 1.0)
        stale_times, stale_values = ts.times, ts.values
        ts.record(5, 2.0)
        assert ts.times is not stale_times
        np.testing.assert_array_equal(ts.times, [0, 5])
        np.testing.assert_array_equal(ts.values, [1.0, 2.0])
        # The previously handed-out arrays are unchanged.
        np.testing.assert_array_equal(stale_values, [1.0])

    def test_last(self):
        ts = TimeSeries()
        ts.record(3, 7.0)
        assert ts.last() == (3, 7.0)

    def test_last_empty_raises(self):
        with pytest.raises(IndexError):
            TimeSeries().last()

    def test_window_half_open(self):
        ts = TimeSeries()
        for t in range(10):
            ts.record(t, float(t))
        np.testing.assert_array_equal(ts.window(2, 5), [2.0, 3.0, 4.0])

    def test_stats(self):
        ts = TimeSeries()
        for i, v in enumerate([1.0, 2.0, 3.0, 4.0]):
            ts.record(i, v)
        assert ts.mean() == pytest.approx(2.5)
        assert ts.std() == pytest.approx(np.std([1, 2, 3, 4]))
        assert ts.percentile(50) == pytest.approx(2.5)

    def test_stats_empty_are_nan(self):
        ts = TimeSeries()
        assert np.isnan(ts.mean())
        assert np.isnan(ts.std())
        assert np.isnan(ts.percentile(99))


class TestCounter:
    def test_add_and_mean(self):
        c = Counter("pkts")
        c.add(10.0)
        c.add(20.0)
        assert c.count == 2
        assert c.total == 30.0
        assert c.mean == 15.0

    def test_mean_empty_is_nan(self):
        assert np.isnan(Counter().mean)


class TestProbeSet:
    def test_record_uses_sim_time(self):
        env = Environment()
        probes = ProbeSet(env, prefix="vm1")

        def proc(env):
            yield env.timeout(100)
            probes.record("latency", 209.0)

        env.process(proc(env))
        env.run()
        ts = probes.ts("latency")
        assert ts.name == "vm1.latency"
        assert ts.last() == (100, 209.0)

    def test_record_mirrors_to_telemetry_bus(self):
        from repro.telemetry import TelemetryBus

        env = Environment()
        env.telemetry = TelemetryBus()
        probes = ProbeSet(env, prefix="resex")
        probes.record("dom1.cap", 40.0)
        counters = env.telemetry.select(kind="counter", cat="resex")
        assert len(counters) == 1
        assert counters[0].name == "resex.dom1.cap"
        assert counters[0].value == 40.0
        # The probe store itself still records (backward-compatible).
        assert len(probes.ts("dom1.cap")) == 1

    def test_same_name_same_series(self):
        env = Environment()
        probes = ProbeSet(env)
        assert probes.ts("a") is probes.ts("a")
        assert probes.counter("c") is probes.counter("c")


class TestHelpers:
    def test_sampled_mean_empty(self):
        assert np.isnan(sampled_mean([]))

    def test_jitter(self):
        assert jitter([5.0, 5.0, 5.0]) == 0.0
        assert jitter([0.0, 2.0]) == pytest.approx(1.0)


class TestRngRegistry:
    def test_streams_are_deterministic(self):
        a = RngRegistry(42).stream("hca").random(5)
        b = RngRegistry(42).stream("hca").random(5)
        np.testing.assert_array_equal(a, b)

    def test_streams_differ_by_name(self):
        reg = RngRegistry(42)
        a = reg.stream("hca").random(5)
        b = reg.stream("client").random(5)
        assert not np.array_equal(a, b)

    def test_stream_independent_of_creation_order(self):
        r1 = RngRegistry(7)
        r1.stream("x")
        a = r1.stream("y").random(3)
        r2 = RngRegistry(7)
        b = r2.stream("y").random(3)  # no prior stream("x")
        np.testing.assert_array_equal(a, b)

    def test_spawn_gives_independent_root(self):
        reg = RngRegistry(1)
        child = reg.spawn("host0")
        a = child.stream("s").random(3)
        b = reg.stream("s").random(3)
        assert not np.array_equal(a, b)

    def test_spawn_deterministic(self):
        a = RngRegistry(1).spawn("host0").stream("s").random(3)
        b = RngRegistry(1).spawn("host0").stream("s").random(3)
        np.testing.assert_array_equal(a, b)

    def test_same_stream_instance_returned(self):
        reg = RngRegistry(0)
        assert reg.stream("a") is reg.stream("a")
