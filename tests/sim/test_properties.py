"""Property-based tests on DES kernel invariants (hypothesis)."""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.sim import Environment, Resource, Store


@given(delays=st.lists(st.integers(min_value=0, max_value=10**6), min_size=1, max_size=50))
@settings(max_examples=50, deadline=None)
def test_clock_is_monotonic_and_events_fire_at_their_time(delays):
    env = Environment()
    observed = []

    def waiter(env, d):
        yield env.timeout(d)
        observed.append((d, env.now))

    for d in delays:
        env.process(waiter(env, d))
    env.run()

    # Each process wakes exactly at its delay.
    assert sorted(d for d, _ in observed) == sorted(delays)
    for d, t in observed:
        assert t == d
    # The kernel processed events in non-decreasing time order.
    times = [t for _, t in observed]
    assert all(a <= b for a, b in zip(times, sorted(times))) or times == sorted(times)


@given(
    holds=st.lists(st.integers(min_value=1, max_value=1000), min_size=1, max_size=30),
    capacity=st.integers(min_value=1, max_value=4),
)
@settings(max_examples=50, deadline=None)
def test_resource_never_exceeds_capacity_and_serves_everyone(holds, capacity):
    env = Environment()
    res = Resource(env, capacity=capacity)
    max_in_use = [0]
    served = []

    def user(env, idx, hold):
        with res.request() as req:
            yield req
            max_in_use[0] = max(max_in_use[0], res.count)
            yield env.timeout(hold)
            served.append(idx)

    for idx, hold in enumerate(holds):
        env.process(user(env, idx, hold))
    env.run()

    assert max_in_use[0] <= capacity
    assert sorted(served) == list(range(len(holds)))


@given(items=st.lists(st.integers(), min_size=0, max_size=50))
@settings(max_examples=50, deadline=None)
def test_store_preserves_fifo_order_and_conserves_items(items):
    env = Environment()
    store = Store(env)
    received = []

    def producer(env):
        for item in items:
            yield store.put(item)
            yield env.timeout(1)

    def consumer(env):
        for _ in items:
            received.append((yield store.get()))

    env.process(producer(env))
    env.process(consumer(env))
    env.run()
    assert received == items
    assert len(store) == 0


@given(
    seed=st.integers(min_value=0, max_value=2**31),
    n=st.integers(min_value=1, max_value=20),
)
@settings(max_examples=30, deadline=None)
def test_simulation_determinism_under_random_workloads(seed, n):
    """Two runs with the same seed produce byte-identical event traces."""
    from repro.sim import RngRegistry

    def run_once():
        env = Environment()
        rng = RngRegistry(seed).stream("workload")
        trace = []

        def worker(env, tag, periods):
            for p in periods:
                yield env.timeout(int(p))
                trace.append((env.now, tag))

        for i in range(n):
            periods = rng.integers(1, 1000, size=5)
            env.process(worker(env, i, list(periods)))
        env.run()
        return trace

    assert run_once() == run_once()
