"""Unit tests for Resource, PriorityResource, Store, FilterStore."""

import pytest

from repro.errors import SimulationError
from repro.sim import Environment, FilterStore, PriorityResource, Resource, Store


@pytest.fixture
def env():
    return Environment()


class TestResource:
    def test_capacity_validation(self, env):
        with pytest.raises(SimulationError):
            Resource(env, capacity=0)

    def test_immediate_grant_under_capacity(self, env):
        res = Resource(env, capacity=2)
        log = []

        def user(env, tag):
            req = res.request()
            yield req
            log.append((tag, env.now))
            yield env.timeout(10)
            req.cancel()

        env.process(user(env, "a"))
        env.process(user(env, "b"))
        env.run()
        assert log == [("a", 0), ("b", 0)]

    def test_fifo_queueing(self, env):
        res = Resource(env, capacity=1)
        log = []

        def user(env, tag, hold):
            with res.request() as req:
                yield req
                log.append((tag, env.now))
                yield env.timeout(hold)

        env.process(user(env, "a", 10))
        env.process(user(env, "b", 10))
        env.process(user(env, "c", 10))
        env.run()
        assert log == [("a", 0), ("b", 10), ("c", 20)]

    def test_cancel_queued_request(self, env):
        res = Resource(env, capacity=1)
        granted = []

        def holder(env):
            with res.request() as req:
                yield req
                yield env.timeout(100)

        def impatient(env):
            req = res.request()
            result = yield env.any_of([req, env.timeout(10)])
            if req not in result:
                req.cancel()  # give up
                granted.append("gave-up")
            else:
                granted.append("got-it")
                req.cancel()

        def patient(env):
            yield env.timeout(1)
            with res.request() as req:
                yield req
                granted.append(("patient", env.now))

        env.process(holder(env))
        env.process(impatient(env))
        env.process(patient(env))
        env.run()
        assert "gave-up" in granted
        assert ("patient", 100) in granted

    def test_count_property(self, env):
        res = Resource(env, capacity=3)

        def user(env):
            req = res.request()
            yield req
            yield env.timeout(10)
            req.cancel()

        env.process(user(env))
        env.process(user(env))
        env.run(until=5)
        assert res.count == 2
        env.run()
        assert res.count == 0

    def test_double_release_is_noop(self, env):
        res = Resource(env, capacity=1)

        def user(env):
            req = res.request()
            yield req
            req.cancel()
            req.cancel()  # idempotent

        env.process(user(env))
        env.run()
        assert res.count == 0


class TestPriorityResource:
    def test_priority_ordering(self, env):
        res = PriorityResource(env, capacity=1)
        log = []

        def holder(env):
            with res.request(priority=0) as req:
                yield req
                yield env.timeout(50)

        def user(env, tag, prio, at):
            yield env.timeout(at)
            with res.request(priority=prio) as req:
                yield req
                log.append(tag)
                yield env.timeout(1)

        env.process(holder(env))
        env.process(user(env, "low", 10, 1))
        env.process(user(env, "high", 1, 2))
        env.process(user(env, "mid", 5, 3))
        env.run()
        assert log == ["high", "mid", "low"]

    def test_fifo_within_same_priority(self, env):
        res = PriorityResource(env, capacity=1)
        log = []

        def holder(env):
            with res.request(priority=0) as req:
                yield req
                yield env.timeout(50)

        def user(env, tag, at):
            yield env.timeout(at)
            with res.request(priority=3) as req:
                yield req
                log.append(tag)

        env.process(holder(env))
        env.process(user(env, "first", 1))
        env.process(user(env, "second", 2))
        env.run()
        assert log == ["first", "second"]

    def test_cancel_queued_priority_request(self, env):
        res = PriorityResource(env, capacity=1)
        log = []

        def holder(env):
            with res.request() as req:
                yield req
                yield env.timeout(20)

        def quitter(env):
            yield env.timeout(1)
            req = res.request(priority=0)
            yield env.timeout(5)
            req.cancel()

        def stayer(env):
            yield env.timeout(2)
            with res.request(priority=9) as req:
                yield req
                log.append(env.now)

        env.process(holder(env))
        env.process(quitter(env))
        env.process(stayer(env))
        env.run()
        assert log == [20]


class TestStore:
    def test_put_get_fifo(self, env):
        store = Store(env)
        got = []

        def producer(env):
            for i in range(3):
                yield store.put(i)
                yield env.timeout(1)

        def consumer(env):
            for _ in range(3):
                item = yield store.get()
                got.append(item)

        env.process(producer(env))
        env.process(consumer(env))
        env.run()
        assert got == [0, 1, 2]

    def test_get_blocks_until_item(self, env):
        store = Store(env)
        got = []

        def consumer(env):
            item = yield store.get()
            got.append((item, env.now))

        def producer(env):
            yield env.timeout(25)
            yield store.put("x")

        env.process(consumer(env))
        env.process(producer(env))
        env.run()
        assert got == [("x", 25)]

    def test_bounded_put_blocks(self, env):
        store = Store(env, capacity=1)
        log = []

        def producer(env):
            yield store.put("a")
            log.append(("a-in", env.now))
            yield store.put("b")
            log.append(("b-in", env.now))

        def consumer(env):
            yield env.timeout(30)
            item = yield store.get()
            log.append((item, env.now))

        env.process(producer(env))
        env.process(consumer(env))
        env.run()
        assert ("a-in", 0) in log
        assert ("b-in", 30) in log

    def test_capacity_validation(self, env):
        with pytest.raises(SimulationError):
            Store(env, capacity=0)

    def test_cancel_get(self, env):
        store = Store(env)

        def consumer(env):
            g = store.get()
            result = yield env.any_of([g, env.timeout(5)])
            if g not in result:
                assert store.cancel_get(g)

        env.process(consumer(env))
        env.run()
        # The queued get was withdrawn; a later put should simply buffer.
        store.put("late")
        env.run()
        assert list(store.items) == ["late"]

    def test_len(self, env):
        store = Store(env)
        store.put(1)
        store.put(2)
        env.run()
        assert len(store) == 2


class TestFilterStore:
    def test_filter_selects_matching_item(self, env):
        store = FilterStore(env)
        got = []

        def producer(env):
            yield store.put({"id": 1})
            yield store.put({"id": 2})
            yield store.put({"id": 3})

        def consumer(env):
            item = yield store.get(lambda it: it["id"] == 2)
            got.append(item["id"])

        env.process(producer(env))
        env.process(consumer(env))
        env.run()
        assert got == [2]
        assert [it["id"] for it in store.items] == [1, 3]

    def test_filter_blocks_until_match(self, env):
        store = FilterStore(env)
        got = []

        def consumer(env):
            item = yield store.get(lambda it: it > 10)
            got.append((item, env.now))

        def producer(env):
            yield store.put(5)
            yield env.timeout(10)
            yield store.put(50)

        env.process(consumer(env))
        env.process(producer(env))
        env.run()
        assert got == [(50, 10)]

    def test_unfiltered_get_takes_head(self, env):
        store = FilterStore(env)
        store.put("a")
        store.put("b")
        got = []

        def consumer(env):
            got.append((yield store.get()))

        env.process(consumer(env))
        env.run()
        assert got == ["a"]
