"""Property fence for the conservative shard-synchronization kernel.

Hypothesis-driven invariants of :mod:`repro.sim.shard`, independent of
the cluster model (a scripted toy world with echo replies stands in):

* **Conservative horizon** — no cross-domain message is ever delivered
  earlier than its send time plus the lookahead, under any partition.
* **Barrier monotonicity** — :func:`window_boundaries` is strictly
  increasing, gap-bounded by the lookahead, and ends exactly at the
  run horizon.
* **Order independence** — the merged outcome does not depend on the
  order shards execute their windows in (the stand-in for worker
  completion order): any per-window permutation produces the same
  bytes as the identity order, which produces the same bytes as the
  serial run.

Runs under the pinned derandomized profiles of ``tests/conftest.py``.
"""

from hypothesis import given, settings
from hypothesis import strategies as st
import pytest

from repro.errors import ConfigError, ShardSyncError
from repro.sim import Environment
from repro.sim.shard import (
    Mailbox,
    Message,
    ShardMap,
    run_sharded,
    window_boundaries,
)

LOOKAHEAD = 100
UNTIL = 1_500


class EchoWorld:
    """Scripted multi-domain toy world.

    ``schedule`` rows are ``(send_at, src, dst, extra_latency, ttl)``:
    domain ``src`` mails ``dst`` at ``send_at`` with ``LOOKAHEAD +
    extra_latency`` of delay; a receiver with ``ttl > 0`` echoes back
    immediately (a send issued *during* message delivery — the hard
    case for barrier bookkeeping).  Every delivery is logged with its
    full identity, so sorted logs are comparable across partitions.
    """

    def __init__(self, domains, schedule):
        self.env = Environment()
        self.mailbox = Mailbox(self.env, LOOKAHEAD)
        self.log = []
        self.horizon_violations = 0
        for d in domains:
            self.mailbox.register(d, self._on_msg)
        for tag, (at, src, dst, extra, ttl) in enumerate(schedule):
            if src in domains and src != dst:
                self.env.process(self._sender(at, src, dst, extra, ttl, tag))

    def _sender(self, at, src, dst, extra, ttl, tag):
        if at:
            yield self.env.timeout(at)
        self.mailbox.send(
            src, dst, LOOKAHEAD + extra, "ping", (tag, ttl, self.env.now)
        )

    def _on_msg(self, msg):
        tag, ttl, sent_at = msg.payload
        if self.env.now - sent_at < LOOKAHEAD:
            self.horizon_violations += 1
        self.log.append((self.env.now, msg.origin, msg.dest, tag, ttl))
        if ttl > 0:
            self.mailbox.send(
                msg.dest, msg.origin, LOOKAHEAD,
                "ping", (tag, ttl - 1, self.env.now),
            )

    def finalize(self):
        return {"log": self.log, "violations": self.horizon_violations}


#: Egress cadence of :class:`EpochEchoWorld` — deliberately coprime-ish
#: with ``LOOKAHEAD`` so epoch boundaries and barrier instants interleave.
EPOCH = 250


class EpochEchoWorld:
    """Echo world that funnels every send through an epoch-batched
    egress stage — the :class:`ClusterWorld` relay shape, and the one
    model that can honestly register a ``covers_deliveries`` horizon.

    ``schedule`` rows are ``(send_at, src, dst, ttl)``: at ``send_at``
    domain ``src`` queues a ping to ``dst``; the ping departs at the
    next ``EPOCH`` boundary with ``LOOKAHEAD`` of latency.  A receiver
    with ``ttl > 0`` queues an echo the same way, so a delivery into an
    otherwise heap-idle shard still produces a future send — the case
    the covered horizon must bound without help from the barrier
    loop's earliest-delivery cap.
    """

    def __init__(self, domains, schedule):
        self.env = Environment()
        self.mailbox = Mailbox(self.env, LOOKAHEAD)
        self.mailbox.horizon_fn = self._send_horizon
        self.log = []
        self.horizon_violations = 0
        self._egress = {}
        for d in domains:
            self.mailbox.register(d, self._on_msg)
        for tag, (at, src, dst, ttl) in enumerate(schedule):
            if src in domains and src != dst:
                self.env.process(self._sender(at, src, dst, ttl, tag))

    def _sender(self, at, src, dst, ttl, tag):
        if at:
            yield self.env.timeout(at)
        self._queue(src, dst, ttl, tag)

    def _queue(self, src, dst, ttl, tag):
        boundary = (self.env.now // EPOCH + 1) * EPOCH
        batch = self._egress.get(boundary)
        if batch is None:
            self._egress[boundary] = [(src, dst, ttl, tag)]
            flush = self.env.timeout(boundary - self.env.now)
            flush.callbacks.append(lambda _ev, b=boundary: self._flush(b))
        else:
            batch.append((src, dst, ttl, tag))

    def _flush(self, boundary):
        for src, dst, ttl, tag in self._egress.pop(boundary):
            self.mailbox.send(
                src, dst, LOOKAHEAD, "ping", (tag, ttl, self.env.now)
            )

    def _send_horizon(self):
        nxt = (self.env.now // EPOCH + 1) * EPOCH
        if self._egress:
            armed = min(self._egress)
            if armed < nxt:
                return armed
        return nxt

    def _on_msg(self, msg):
        tag, ttl, sent_at = msg.payload
        if self.env.now - sent_at < LOOKAHEAD:
            self.horizon_violations += 1
        self.log.append((self.env.now, msg.origin, msg.dest, tag, ttl))
        if ttl > 0:
            self._queue(msg.dest, msg.origin, ttl - 1, tag)

    def finalize(self):
        return {"log": self.log, "violations": self.horizon_violations}


def _merge(parts):
    log = sorted(entry for part in parts for entry in part["log"])
    return {
        "log": log,
        "violations": sum(part["violations"] for part in parts),
    }


def _run(
    n_domains, shards, schedule, backend="inline", inline_order=None,
    coalesce=True,
):
    result, stats = run_sharded(
        lambda doms: EchoWorld(
            range(n_domains) if doms is None else doms, schedule
        ),
        n_domains=n_domains,
        shards=shards,
        until_ns=UNTIL,
        lookahead_ns=LOOKAHEAD,
        merge=_merge,
        backend=backend,
        inline_order=inline_order,
        coalesce=coalesce,
    )
    return result, stats


def _schedules(n_domains):
    return st.lists(
        st.tuples(
            st.integers(0, 600),               # send_at
            st.integers(0, n_domains - 1),     # src
            st.integers(0, n_domains - 1),     # dst
            st.integers(0, 150),               # extra latency
            st.integers(0, 2),                 # echo depth
        ),
        max_size=12,
    )


#: (n_domains, shards, schedule) with 1 <= shards <= n_domains.
world_cases = st.integers(2, 5).flatmap(
    lambda n: st.tuples(
        st.just(n), st.integers(1, n), _schedules(n)
    )
)


class TestConservativeSync:
    @given(case=world_cases)
    @settings(max_examples=150)
    def test_sharded_equals_serial_and_horizon_holds(self, case):
        n_domains, shards, schedule = case
        serial, _ = _run(n_domains, 1, schedule, backend="serial")
        assert serial["violations"] == 0
        sharded, stats = _run(n_domains, shards, schedule)
        assert sharded["violations"] == 0
        assert sharded["log"] == serial["log"]
        if shards > 1:
            # Elision may skip quiet barriers but never invents one.
            assert 1 <= stats.barriers <= stats.windows
            assert stats.max_stride >= 1

    @given(case=world_cases)
    @settings(max_examples=100)
    def test_coalescing_is_unobservable(self, case):
        """Barrier elision changes the execution shape only: per-window
        barriers (coalesce=False) produce the same bytes, with every
        window paying its exchange."""
        n_domains, shards, schedule = case
        coalesced, stats_on = _run(n_domains, shards, schedule)
        plain, stats_off = _run(n_domains, shards, schedule, coalesce=False)
        assert plain == coalesced
        assert stats_off.barriers == stats_off.windows
        assert stats_off.max_stride == 1
        if shards > 1:
            assert stats_on.barriers <= stats_off.barriers

    @given(
        case=st.integers(2, 5).flatmap(
            lambda n: st.tuples(
                st.just(n),
                st.integers(1, n),
                st.lists(
                    st.tuples(
                        st.integers(0, 600),            # send_at
                        st.integers(0, n - 1),          # src
                        st.integers(0, n - 1),          # dst
                        st.integers(0, 2),              # echo depth
                    ),
                    max_size=12,
                ),
            )
        )
    )
    @settings(max_examples=150)
    def test_covered_horizon_equals_serial(self, case):
        """A model-promised (covers-deliveries) horizon never lets the
        stride outrun a send triggered by a delivery ingested at the
        barrier: epoch-batched sharded == serial, coalescing on or off."""
        n_domains, shards, schedule = case

        def build(doms):
            return EpochEchoWorld(
                range(n_domains) if doms is None else doms, schedule
            )

        kwargs = dict(
            n_domains=n_domains,
            shards=shards,
            until_ns=UNTIL,
            lookahead_ns=LOOKAHEAD,
            merge=_merge,
        )
        serial, _ = run_sharded(build, backend="serial", shards=1, **{
            k: v for k, v in kwargs.items() if k != "shards"
        })
        assert serial["violations"] == 0
        coalesced, stats = run_sharded(build, backend="inline", **kwargs)
        assert coalesced == serial
        plain, _ = run_sharded(
            build, backend="inline", coalesce=False, **kwargs
        )
        assert plain == serial
        if shards > 1:
            assert 1 <= stats.barriers <= stats.windows

    def test_heap_idle_shard_with_covered_horizon_pinned(self):
        """Regression: a heap-idle shard (peek = infinity) whose only
        activity is a send-triggering delivery ingested at a barrier.
        ``send_horizon`` used to report ``max(peek, horizon_fn())``
        with ``covers_deliveries=True``; the inflated bound skipped the
        earliest-delivery cap, the stride overshot, and the echo (due
        at 600) was exchanged after the peer's clock had advanced to
        750 — a ShardSyncError, or silent divergence from serial."""
        schedule = [
            (0, 0, 1, 1),    # ping; echo due back at t=600 via epoch 500
            (700, 0, 1, 0),  # advances domain 0's clock past the echo
        ]

        def build(doms):
            return EpochEchoWorld(
                range(2) if doms is None else doms, schedule
            )

        kwargs = dict(
            n_domains=2,
            until_ns=UNTIL,
            lookahead_ns=LOOKAHEAD,
            merge=_merge,
        )
        serial, _ = run_sharded(build, backend="serial", shards=1, **kwargs)
        assert [entry[0] for entry in serial["log"]] == [350, 600, 850]
        for backend in ("inline", "fork"):
            for coalesce in (True, False):
                sharded, _ = run_sharded(
                    build, backend=backend, shards=2, coalesce=coalesce,
                    **kwargs,
                )
                assert sharded == serial, (backend, coalesce)

    @given(case=world_cases, rotations=st.lists(st.integers(0, 4), max_size=8))
    @settings(max_examples=150)
    def test_merge_is_execution_order_independent(self, case, rotations):
        """Permuting which shard runs its window first never changes
        the merged outcome — completion order is not an input."""
        n_domains, shards, schedule = case

        def permute(k, order):
            if not rotations:
                return list(reversed(order))
            r = rotations[k % len(rotations)] % len(order)
            return order[r:] + order[:r]

        identity, _ = _run(n_domains, shards, schedule)
        permuted, _ = _run(
            n_domains, shards, schedule, inline_order=permute
        )
        assert permuted == identity

    @given(
        until=st.integers(0, 10_000),
        lookahead=st.integers(1, 3_000),
    )
    @settings(max_examples=300)
    def test_window_boundaries_monotonic_and_exact(self, until, lookahead):
        bounds = window_boundaries(until, lookahead)
        assert all(b2 > b1 for b1, b2 in zip(bounds, bounds[1:]))
        assert all(0 < b <= until for b in bounds)
        if until > 0:
            assert bounds[-1] == until
            gaps = [b2 - b1 for b1, b2 in zip([0] + bounds, bounds)]
            assert all(gap <= lookahead for gap in gaps)
        else:
            assert bounds == []

    def test_round_horizon_has_no_zero_length_terminal_window(self):
        """A horizon that is an exact multiple of the lookahead ends on
        the last full window's boundary — no duplicated terminal
        boundary, no zero-length window inflating the count."""
        bounds = window_boundaries(1_000, 200)
        assert bounds == [200, 400, 600, 800, 1_000]
        assert len(bounds) == 1_000 // 200
        assert len(set(bounds)) == len(bounds)
        # Ragged horizon: one extra short window, exactly to the end.
        assert window_boundaries(1_100, 200) == [200, 400, 600, 800,
                                                 1_000, 1_100]
        assert window_boundaries(199, 200) == [199]

    @given(
        shape=st.integers(1, 64).flatmap(
            lambda n: st.tuples(st.just(n), st.integers(1, n))
        )
    )
    @settings(max_examples=300)
    def test_shard_map_partitions_contiguously(self, shape):
        n_domains, shards = shape
        smap = ShardMap(n_domains, shards)
        seen = []
        for s in range(shards):
            block = smap.domains_of(s)
            assert block  # never an empty shard
            assert list(block) == list(range(block[0], block[-1] + 1))
            for d in block:
                assert smap.shard_of(d) == s
            seen.extend(block)
        assert seen == list(range(n_domains))
        sizes = [len(smap.domains_of(s)) for s in range(shards)]
        assert max(sizes) - min(sizes) <= 1


class TestMailboxGuards:
    def test_latency_below_lookahead_rejected(self):
        mailbox = Mailbox(Environment(), LOOKAHEAD)
        mailbox.register(0, lambda msg: None)
        with pytest.raises(ShardSyncError):
            mailbox.send(0, 1, LOOKAHEAD - 1, "ping")

    def test_self_send_rejected(self):
        mailbox = Mailbox(Environment(), LOOKAHEAD)
        mailbox.register(0, lambda msg: None)
        with pytest.raises(ShardSyncError):
            mailbox.send(0, 0, LOOKAHEAD, "ping")

    def test_stale_ingest_rejected(self):
        """A message arriving behind the destination clock is the
        conservative horizon breaking — loudly, not silently."""
        env = Environment()
        mailbox = Mailbox(env, LOOKAHEAD)
        mailbox.register(0, lambda msg: None)
        env.timeout(50)
        env.run()
        assert env.now == 50
        stale = Message(
            origin=1, seq=0, dest=0, deliver_at=10, kind="ping", payload=()
        )
        with pytest.raises(ShardSyncError):
            mailbox.ingest([stale])

    def test_misrouted_ingest_rejected(self):
        mailbox = Mailbox(Environment(), LOOKAHEAD)
        mailbox.register(0, lambda msg: None)
        lost = Message(
            origin=0, seq=0, dest=7, deliver_at=200, kind="ping", payload=()
        )
        with pytest.raises(ShardSyncError):
            mailbox.ingest([lost])

    def test_same_instant_delivery_orders_by_origin_then_seq(self):
        env = Environment()
        mailbox = Mailbox(env, LOOKAHEAD)
        order = []
        mailbox.register(0, lambda msg: order.append(msg.order_key))
        # Ingest in scrambled arrival order; delivery must sort.
        mailbox.ingest(
            [
                Message(2, 0, 0, LOOKAHEAD, "p", ()),
                Message(1, 1, 0, LOOKAHEAD, "p", ()),
                Message(1, 0, 0, LOOKAHEAD, "p", ()),
            ]
        )
        env.run()
        assert order == [(1, 0), (1, 1), (2, 0)]


class TestForkBackendToyWorld:
    def test_fork_matches_inline_on_echo_world(self):
        schedule = [
            (0, 0, 1, 0, 2),
            (120, 1, 2, 30, 1),
            (120, 2, 0, 0, 0),
            (400, 0, 2, 150, 2),
        ]
        inline, _ = _run(3, 3, schedule, backend="inline")
        forked, stats = _run(3, 3, schedule, backend="fork")
        assert forked == inline
        assert stats.backend == "fork"
        assert stats.messages_exchanged > 0

    def test_worker_failure_surfaces_as_shard_sync_error(self):
        class ExplodingWorld(EchoWorld):
            def _on_msg(self, msg):
                raise RuntimeError("boom in shard worker")

        with pytest.raises(ShardSyncError, match="boom"):
            run_sharded(
                lambda doms: ExplodingWorld(doms, [(0, 0, 1, 0, 0)]),
                n_domains=2,
                shards=2,
                until_ns=UNTIL,
                lookahead_ns=LOOKAHEAD,
                merge=_merge,
                backend="fork",
            )


class TestRunShardedValidation:
    def test_unknown_backend_rejected(self):
        with pytest.raises(ConfigError):
            _run(2, 2, [], backend="threads")

    def test_serial_backend_requires_one_shard(self):
        with pytest.raises(ConfigError):
            _run(2, 2, [], backend="serial")

    def test_more_shards_than_domains_rejected(self):
        with pytest.raises(ConfigError):
            ShardMap(2, 3)
