"""Integrity fence for the ``ckpt/1`` checkpoint format.

The crash-recovery story rests on the checkpoint *store* never lying:
a file either loads to exactly the payload that was saved, or it is
rejected with a structured :class:`~repro.errors.CheckpointError` —
for every corruption a torn write, a bad disk or a stray editor can
produce.  Hypothesis drives byte-level corruptions (any strict prefix,
any single-byte change must be rejected — the digest makes this a
theorem, the test keeps it one); pinned cases cover the fallback walk,
pruning, geometry validation and the seeded recovery backoff.

Runs under the pinned derandomized profiles of ``tests/conftest.py``.
"""

import pickle

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.errors import CheckpointError, ConfigError
from repro.sim.checkpoint import (
    CKPT_MAGIC,
    CKPT_SCHEMA,
    CheckpointConfig,
    RecoveryPolicy,
    ShardJournal,
    checkpoint_payload,
    journal_from_payload,
    list_checkpoints,
    load_checkpoint,
    load_latest,
    save_checkpoint,
    validate_restore,
)


def make_payload(k=8, shards=2, exchanges=3, world_key="world/test"):
    journal = ShardJournal(shards)
    for s in range(shards):
        for i in range(exchanges):
            journal.record_parent_frame(s, f"frame-{s}-{i}".encode() * 7)
            journal.record_worker_frame(s, f"barrier-{s}-{i}".encode())
    return checkpoint_payload(
        world_key=world_key, k=k, stride=2, until_ns=1_000_000,
        lookahead_ns=10_000, n_domains=4, shards=shards, coalesce=True,
        stats={"barriers": k, "messages_exchanged": 17, "max_stride": 2},
        journal=journal,
    )


@pytest.fixture
def config(tmp_path):
    return CheckpointConfig(dir=tmp_path / "ckpt", every=4, keep=3)


class TestRoundTrip:
    def test_save_then_load_is_identity(self, config):
        payload = make_payload()
        path = save_checkpoint(config, payload)
        assert path.name.startswith("ckpt-00000008-")
        assert path.suffix == ".rxc"
        assert load_checkpoint(path) == payload

    def test_file_layout_is_magic_digest_body(self, config):
        path = save_checkpoint(config, make_payload())
        blob = path.read_bytes()
        assert blob[:4] == CKPT_MAGIC
        import hashlib

        assert blob[4:36] == hashlib.sha256(blob[36:]).digest()
        assert pickle.loads(blob[36:])["schema"] == CKPT_SCHEMA

    def test_same_payload_converges_on_one_file(self, config):
        save_checkpoint(config, make_payload())
        save_checkpoint(config, make_payload())
        assert len(list_checkpoints(config.path)) == 1

    def test_pruning_keeps_newest(self, config):
        for k in range(4, 4 + 6 * 4, 4):
            save_checkpoint(config, make_payload(k=k))
        files = list_checkpoints(config.path)
        assert len(files) == config.keep
        # Zero-padded window index: lexicographic order is barrier order.
        assert [f.name[5:13] for f in files] == ["00000016", "00000020", "00000024"]

    def test_journal_round_trips_through_payload(self):
        payload = make_payload(shards=3, exchanges=5)
        journal = journal_from_payload(payload)
        assert journal.shards == 3
        assert journal.exchanges(0) == 5
        assert journal.frames == [list(p) for p in payload["journal_frames"]]
        assert journal.digests == [list(p) for p in payload["journal_digests"]]


class TestCorruption:
    """Any strict prefix, any byte change: structured rejection."""

    @pytest.fixture
    def path(self, config):
        return save_checkpoint(config, make_payload())

    @given(data=st.data())
    @settings(max_examples=100)
    def test_any_truncation_rejected(self, data):
        import tempfile

        with tempfile.TemporaryDirectory() as d:
            cfg = CheckpointConfig(dir=d)
            path = save_checkpoint(cfg, make_payload())
            blob = path.read_bytes()
            cut = data.draw(st.integers(0, len(blob) - 1))
            path.write_bytes(blob[:cut])
            with pytest.raises(CheckpointError):
                load_checkpoint(path)

    @given(data=st.data())
    @settings(max_examples=150)
    def test_any_single_byte_flip_rejected(self, data):
        import tempfile

        with tempfile.TemporaryDirectory() as d:
            cfg = CheckpointConfig(dir=d)
            path = save_checkpoint(cfg, make_payload())
            blob = bytearray(path.read_bytes())
            pos = data.draw(st.integers(0, len(blob) - 1))
            flip = data.draw(st.integers(1, 255))
            blob[pos] ^= flip
            path.write_bytes(bytes(blob))
            with pytest.raises(CheckpointError):
                load_checkpoint(path)

    def test_bad_magic_names_the_magic(self, path):
        path.write_bytes(b"NOPE" + path.read_bytes()[4:])
        with pytest.raises(CheckpointError, match="magic"):
            load_checkpoint(path)

    def test_torn_write_names_the_digest(self, path):
        blob = path.read_bytes()
        path.write_bytes(blob[: len(blob) // 2])
        with pytest.raises(CheckpointError, match="digest|truncated"):
            load_checkpoint(path)

    def test_wrong_schema_rejected(self, config, path):
        body = pickle.dumps({"schema": "ckpt/999"})
        import hashlib

        path.write_bytes(CKPT_MAGIC + hashlib.sha256(body).digest() + body)
        with pytest.raises(CheckpointError, match="schema"):
            load_checkpoint(path)

    def test_missing_file_is_a_structured_error(self, tmp_path):
        with pytest.raises(CheckpointError, match="cannot read"):
            load_checkpoint(tmp_path / "nope.rxc")


class TestLoadLatest:
    def test_empty_or_absent_directory_is_none(self, tmp_path):
        assert load_latest(tmp_path) is None
        assert load_latest(tmp_path / "never-made") is None

    def test_picks_the_newest(self, config):
        save_checkpoint(config, make_payload(k=4))
        save_checkpoint(config, make_payload(k=8))
        payload, path = load_latest(config.path)
        assert payload["k"] == 8
        assert "00000008" in path.name

    def test_corrupt_newest_falls_back_to_next_older(self, config):
        save_checkpoint(config, make_payload(k=4))
        newest = save_checkpoint(config, make_payload(k=8))
        newest.write_bytes(newest.read_bytes()[:-10])
        skips = []
        payload, path = load_latest(
            config.path, on_skip=lambda p, why: skips.append((p.name, why))
        )
        assert payload["k"] == 4
        assert len(skips) == 1 and skips[0][0] == newest.name

    def test_all_corrupt_raises(self, config):
        for k in (4, 8):
            p = save_checkpoint(config, make_payload(k=k))
            p.write_bytes(b"garbage")
        with pytest.raises(CheckpointError, match="no usable checkpoint"):
            load_latest(config.path)

    def test_foreign_world_is_refused_not_skipped(self, config):
        save_checkpoint(config, make_payload(world_key="world/other"))
        with pytest.raises(CheckpointError, match="refusing to restore"):
            load_latest(config.path, world_key="world/test")


class TestGeometryValidation:
    def test_matching_run_passes(self):
        validate_restore(
            make_payload(), world_key="world/test", shards=2, n_domains=4,
            until_ns=1_000_000, lookahead_ns=10_000, coalesce=True,
            n_windows=100,
        )

    @pytest.mark.parametrize(
        "override",
        [{"world_key": "w2"}, {"shards": 4}, {"n_domains": 8},
         {"until_ns": 5}, {"lookahead_ns": 5}, {"coalesce": False}],
        ids=lambda o: next(iter(o)),
    )
    def test_any_geometry_mismatch_rejected(self, override):
        kwargs = dict(
            world_key="world/test", shards=2, n_domains=4,
            until_ns=1_000_000, lookahead_ns=10_000, coalesce=True,
            n_windows=100,
        )
        kwargs.update(override)
        with pytest.raises(CheckpointError, match="does not match this run"):
            validate_restore(make_payload(), **kwargs)

    def test_window_index_beyond_horizon_rejected(self):
        with pytest.raises(CheckpointError, match="outside"):
            validate_restore(
                make_payload(k=101), world_key="world/test", shards=2,
                n_domains=4, until_ns=1_000_000, lookahead_ns=10_000,
                coalesce=True, n_windows=100,
            )

    def test_ragged_journal_rejected(self):
        payload = make_payload()
        payload["journal_frames"][1].pop()
        with pytest.raises(CheckpointError, match="ragged"):
            journal_from_payload(payload)

    def test_shard_count_mismatch_rejected(self):
        payload = make_payload()
        payload["shards"] = 3
        with pytest.raises(CheckpointError, match="shard"):
            journal_from_payload(payload)


class TestConfigAndPolicy:
    def test_cadence_and_retention_validated(self, tmp_path):
        with pytest.raises(ConfigError):
            CheckpointConfig(dir=tmp_path, every=0)
        with pytest.raises(ConfigError):
            CheckpointConfig(dir=tmp_path, keep=0)
        with pytest.raises(ConfigError):
            RecoveryPolicy(max_respawns=-1)

    def test_backoff_is_deterministic_and_bounded(self):
        policy = RecoveryPolicy(
            backoff_base_s=0.1, backoff_cap_s=1.0, backoff_seed=42
        )
        for shard in range(4):
            for attempt in range(1, 6):
                d1 = policy.backoff_s(shard, attempt)
                d2 = policy.backoff_s(shard, attempt)
                assert d1 == d2
                base = min(0.1 * 2.0 ** (attempt - 1), 1.0)
                assert 0.5 * base <= d1 <= 1.5 * base

    def test_backoff_jitter_differs_across_shards(self):
        policy = RecoveryPolicy(backoff_seed=7)
        delays = {policy.backoff_s(s, 1) for s in range(8)}
        assert len(delays) == 8
