"""Runtime invariant guards: modes, recording, strict raise, hooks."""

import numpy as np
import pytest

from repro.errors import ConfigError, InvariantViolation
from repro.sim import invariants
from repro.sim.core import Environment
from repro.sim.invariants import (
    GUARD_CREDIT_CAP,
    GUARD_EVENT_TIME,
    GUARD_LINK_CAPACITY,
    GUARD_RATE_NONNEGATIVE,
    GUARD_RESO_ACCOUNTING,
    GUARDS,
    NULL_MONITOR,
    InvariantMonitor,
    check_fabric_rates,
)
from repro.telemetry import TelemetryBus
from repro import telemetry


class TestRegistry:
    def test_all_stack_guards_registered(self):
        for name in (
            GUARD_EVENT_TIME,
            GUARD_RATE_NONNEGATIVE,
            GUARD_LINK_CAPACITY,
            GUARD_RESO_ACCOUNTING,
            GUARD_CREDIT_CAP,
        ):
            assert name in GUARDS
            assert GUARDS[name].description

    def test_guard_names_are_category_dotted(self):
        for name, guard in GUARDS.items():
            assert name.startswith(guard.category + ".")


class TestModes:
    def test_default_is_disabled_null_monitor(self):
        assert invariants.current() is NULL_MONITOR
        assert not NULL_MONITOR.enabled
        assert not NULL_MONITOR.tainted
        NULL_MONITOR.violation(GUARD_EVENT_TIME, 0, "ignored")  # no-op

    def test_record_mode_accumulates_and_taints(self):
        mon = InvariantMonitor("record")
        assert mon.enabled and not mon.tainted
        mon.violation(GUARD_EVENT_TIME, 5, "went backwards", now=7)
        assert mon.tainted
        [v] = mon.to_dicts()
        assert v["guard"] == GUARD_EVENT_TIME
        assert v["category"] == "kernel"
        assert v["ts_ns"] == 5
        assert v["details"] == {"now": 7}

    def test_record_mode_is_bounded(self):
        mon = InvariantMonitor("record", max_records=3)
        for i in range(10):
            mon.violation(GUARD_EVENT_TIME, i, "v")
        assert len(mon.violations) == 3
        assert mon.dropped == 7
        assert mon.tainted

    def test_strict_mode_raises_structured_error(self):
        mon = InvariantMonitor("strict")
        with pytest.raises(InvariantViolation) as exc_info:
            mon.violation(GUARD_RESO_ACCOUNTING, 42, "balance off", domid=3)
        exc = exc_info.value
        assert exc.guard == GUARD_RESO_ACCOUNTING
        assert exc.category == "resex"
        assert exc.ts_ns == 42
        assert exc.details == {"domid": 3}
        assert exc.code == "invariant"
        assert exc.exit_code == 4

    def test_record_mode_mirrors_to_telemetry(self):
        with telemetry.capture() as bus:
            mon = InvariantMonitor("record")
            mon.violation(GUARD_EVENT_TIME, 9, "oops", now=11)
        recs = bus.select(cat="invariant")
        assert len(recs) == 1
        assert recs[0].name == GUARD_EVENT_TIME
        assert recs[0].args_dict()["message"] == "oops"

    def test_monitor_for_mode(self):
        assert invariants.monitor_for_mode("off") is NULL_MONITOR
        assert invariants.monitor_for_mode("record").mode == "record"
        assert invariants.monitor_for_mode("strict").mode == "strict"
        with pytest.raises(ConfigError):
            invariants.monitor_for_mode("chatty")
        with pytest.raises(ConfigError):
            InvariantMonitor("off")

    def test_activate_restores_previous(self):
        assert invariants.current() is NULL_MONITOR
        with invariants.activate("record") as mon:
            assert invariants.current() is mon
            with invariants.activate("strict") as inner:
                assert invariants.current() is inner
            assert invariants.current() is mon
        assert invariants.current() is NULL_MONITOR


class TestFabricCheck:
    class _Link:
        def __init__(self, name):
            self.name = name

    class _Transfer:
        def __init__(self, path):
            self.path = path

    def test_clean_solution_records_nothing(self):
        link = self._Link("l0")
        rates = {self._Transfer((link,)): 5.0, self._Transfer((link,)): 4.0}
        mon = InvariantMonitor("record")
        check_fabric_rates(mon, rates, lambda l: 10.0)
        assert not mon.tainted

    def test_negative_rate_flagged(self):
        link = self._Link("l0")
        mon = InvariantMonitor("record")
        check_fabric_rates(mon, {self._Transfer((link,)): -1.0}, lambda l: 10.0)
        assert any(
            v["guard"] == GUARD_RATE_NONNEGATIVE for v in mon.to_dicts()
        )

    def test_oversubscribed_link_flagged(self):
        link = self._Link("l0")
        rates = {
            self._Transfer((link,)): 8.0,
            self._Transfer((link,)): 7.0,
        }
        mon = InvariantMonitor("record")
        check_fabric_rates(mon, rates, lambda l: 10.0)
        assert any(v["guard"] == GUARD_LINK_CAPACITY for v in mon.to_dicts())

    def test_float_accumulation_slack_tolerated(self):
        link = self._Link("l0")
        rates = {
            self._Transfer((link,)): 10.0 / 3.0,
            self._Transfer((link,)): 10.0 / 3.0,
            self._Transfer((link,)): 10.0 / 3.0,
        }
        mon = InvariantMonitor("record")
        check_fabric_rates(mon, rates, lambda l: 10.0)
        assert not mon.tainted


class TestKernelGuard:
    def test_environment_snapshots_installed_monitor(self):
        with invariants.activate("record") as mon:
            env = Environment()
            assert env.invariants is mon
        assert Environment().invariants is NULL_MONITOR

    def test_healthy_run_stays_clean(self):
        with invariants.activate("strict"):
            env = Environment()

            def proc(env):
                for _ in range(100):
                    yield env.timeout(7)

            env.process(proc(env))
            env.run()
        assert env.events_processed > 100


class TestResoGuard:
    def test_account_operations_stay_clean_in_strict(self):
        from repro.resex.resos import ResoAccount

        with invariants.activate("strict"):
            acct = ResoAccount(1, 1000.0)
            acct.deduct(400.0)
            acct.deduct(700.0)  # floors at zero, tracks unmet demand
            acct.replenish()
        assert acct.unmet_demand == 100.0

    def test_corrupted_balance_is_flagged(self):
        from repro.resex.resos import ResoAccount

        acct = ResoAccount(2, 100.0)
        acct.balance = 150.0  # corrupt the books behind the API
        with invariants.activate("record") as mon:
            acct.deduct(1.0)
        assert any(
            v["guard"] == GUARD_RESO_ACCOUNTING and v["details"]["domid"] == 2
            for v in mon.to_dicts()
        )


class TestGoldenScenarioUnchanged:
    """Guard modes observe; they must never perturb the simulation."""

    def test_strict_mode_is_bit_identical_and_clean(self):
        from repro.experiments import run_scenario

        base = run_scenario("inv-off", sim_s=0.1, seed=3, policy="ioshares")
        with invariants.activate("strict"):
            checked = run_scenario(
                "inv-strict", sim_s=0.1, seed=3, policy="ioshares"
            )
        assert np.array_equal(base.latencies_us, checked.latencies_us)

    def test_record_mode_full_stack_stays_untainted(self):
        from repro.experiments import run_scenario
        from repro.benchex import BenchExConfig

        with invariants.activate("record") as mon:
            run_scenario(
                "inv-record",
                sim_s=0.1,
                seed=5,
                policy="ioshares",
                interferer=BenchExConfig(
                    name="interferer", buffer_bytes=2 * 1024 * 1024
                ),
            )
        assert not mon.tainted, mon.to_dicts()
