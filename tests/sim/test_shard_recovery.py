"""Crash-recovery fence: a killed, respawned, replayed run == serial.

The tentpole claim of the checkpoint/recovery subsystem is digest
equality under fire: SIGKILL a fork worker mid-run and the run must
still complete with metrics byte-identical to an uninterrupted serial
run — recovery is allowed to cost wall-clock, never bits.  The same
holds for a run resumed from an on-disk barrier checkpoint, on either
backend (the journal is backend-portable).  Error paths are pinned
too: without recovery armed, a worker death must name the barrier,
the window and the killing signal; with a budget of zero it must name
the exhausted budget.
"""

import json

import pytest

from repro.errors import CheckpointError, ConfigError, ShardSyncError
from repro.experiments.cluster import cluster_spec, run_cluster, scaled_spec
from repro.faults import WorkerKill, parse_worker_kill
from repro.sim.checkpoint import CheckpointConfig, RecoveryPolicy, list_checkpoints
from repro.supervise.manifest import result_digest

SMOKE = scaled_spec(cluster_spec("cluster_smoke"), 0.02)


def _canonical(metrics):
    return json.dumps(metrics, sort_keys=True, separators=(",", ":"))


@pytest.fixture(scope="module")
def serial_reference():
    return run_cluster(SMOKE, seed=7).metrics()


class TestKillRecovery:
    def test_sigkilled_worker_recovers_to_serial_digest(
        self, serial_reference, tmp_path
    ):
        """The acceptance differential: kill shard 1 at barrier 2,
        respawn + journal replay, finish — same digest as serial."""
        kill = WorkerKill(shard=1, at_barrier=2)
        result = run_cluster(
            SMOKE, seed=7, shards=4, backend="fork",
            checkpoint_dir=tmp_path / "ckpt", worker_faults=(kill,),
        )
        assert kill.fired == 2
        assert result.shard_stats.respawns == 1
        assert result.shard_stats.to_dict()["respawns"] == 1
        metrics = result.metrics()
        assert _canonical(metrics) == _canonical(serial_reference)
        assert result_digest(metrics) == result_digest(serial_reference)

    def test_recovery_without_checkpoint_dir_still_replays(
        self, serial_reference
    ):
        """Recovery needs only the in-memory journal; the disk
        checkpoint is for cross-process resume."""
        kill = WorkerKill(shard=0, at_barrier=1)
        result = run_cluster(
            SMOKE, seed=7, shards=2, backend="fork",
            recovery=RecoveryPolicy(backoff_base_s=0.01, backoff_seed=7),
            worker_faults=(kill,),
        )
        assert kill.fired == 1
        assert result.shard_stats.respawns == 1
        assert _canonical(result.metrics()) == _canonical(serial_reference)

    def test_unrecovered_death_names_barrier_window_and_signal(self):
        with pytest.raises(ShardSyncError) as err:
            run_cluster(
                SMOKE, seed=7, shards=2, backend="fork",
                worker_faults=(WorkerKill(shard=1, at_barrier=2),),
            )
        message = str(err.value)
        assert "shard 1" in message
        assert "barrier" in message
        assert "window" in message
        assert "killed by signal 9 (SIGKILL)" in message
        assert "recovery is off" in message

    def test_exhausted_respawn_budget_is_terminal_and_named(self):
        with pytest.raises(ShardSyncError, match="respawn budget exhausted"):
            run_cluster(
                SMOKE, seed=7, shards=2, backend="fork",
                recovery=RecoveryPolicy(max_respawns=0),
                worker_faults=(WorkerKill(shard=0, at_barrier=1),),
            )


class TestDiskRestore:
    def test_fork_restore_matches_serial(self, serial_reference, tmp_path):
        ckpt = tmp_path / "ckpt"
        first = run_cluster(
            SMOKE, seed=7, shards=2, backend="fork",
            checkpoint_dir=ckpt, checkpoint_every=4,
        )
        files = list_checkpoints(ckpt)
        assert files, "cadence 4 over this horizon must write checkpoints"
        assert len(files) <= CheckpointConfig(dir=ckpt).keep
        resumed = run_cluster(
            SMOKE, seed=7, shards=2, backend="fork",
            checkpoint_dir=ckpt, checkpoint_every=4, restore=True,
        )
        assert _canonical(first.metrics()) == _canonical(serial_reference)
        assert _canonical(resumed.metrics()) == _canonical(serial_reference)

    def test_inline_restores_a_fork_written_checkpoint(
        self, serial_reference, tmp_path
    ):
        """The journal records frame bytes, not process state — a
        checkpoint written by fork workers restores inline."""
        ckpt = tmp_path / "ckpt"
        run_cluster(
            SMOKE, seed=7, shards=2, backend="fork",
            checkpoint_dir=ckpt, checkpoint_every=4,
        )
        resumed = run_cluster(
            SMOKE, seed=7, shards=2, backend="inline",
            checkpoint_dir=ckpt, checkpoint_every=4, restore=True,
        )
        assert _canonical(resumed.metrics()) == _canonical(serial_reference)

    def test_restore_refuses_a_different_seed(self, tmp_path):
        """The world key binds a checkpoint to (spec, seed, horizon);
        resuming someone else's run is an error, not a silent restart."""
        ckpt = tmp_path / "ckpt"
        run_cluster(
            SMOKE, seed=7, shards=2, backend="inline",
            checkpoint_dir=ckpt, checkpoint_every=4,
        )
        with pytest.raises(CheckpointError, match="refusing to restore"):
            run_cluster(
                SMOKE, seed=8, shards=2, backend="inline",
                checkpoint_dir=ckpt, checkpoint_every=4, restore=True,
            )

    def test_restore_from_empty_directory_is_a_fresh_run(
        self, serial_reference, tmp_path
    ):
        result = run_cluster(
            SMOKE, seed=7, shards=2, backend="inline",
            checkpoint_dir=tmp_path / "never-written",
            checkpoint_every=4, restore=True,
        )
        assert _canonical(result.metrics()) == _canonical(serial_reference)


class TestConfigSurface:
    def test_serial_run_refuses_checkpointing(self, tmp_path):
        with pytest.raises(ConfigError, match="barrier"):
            run_cluster(SMOKE, seed=7, checkpoint_dir=tmp_path / "c")

    def test_worker_faults_need_fork_workers(self):
        with pytest.raises(ConfigError, match="fork"):
            run_cluster(
                SMOKE, seed=7, shards=2, backend="inline",
                worker_faults=(WorkerKill(shard=0, at_barrier=1),),
            )

    def test_parse_worker_kill(self):
        from repro.errors import FaultError

        fault = parse_worker_kill("1@2")
        assert fault.shard == 1 and fault.at_barrier == 2
        for bad in ("", "1", "a@b", "1@", "@2"):
            with pytest.raises(FaultError, match="SHARD@BARRIER"):
                parse_worker_kill(bad)


class TestSupervisedCells:
    def test_cluster_cells_get_a_checkpoint_dir_injected(self, tmp_path):
        from repro.parallel.engine import SweepJob
        from repro.supervise.supervisor import _with_cell_checkpoint

        job = SweepJob("cluster", "cluster_smoke", 7, {"shards": 2})
        out = _with_cell_checkpoint(job, tmp_path, 3)
        assert out.spec["checkpoint_dir"] == str(
            tmp_path / "checkpoints" / "cell-3"
        )
        assert out.spec["restore"] is True
        # The injected knobs are execution-only: the content address
        # (and therefore the ledger identity) must not move.
        from repro.parallel.cache import cell_key

        assert cell_key(
            job.kind, job.name, job.seed, job.spec
        ) == cell_key(out.kind, out.name, out.seed, out.spec)

    def test_serial_and_service_cells_left_alone(self, tmp_path):
        from repro.parallel.engine import SweepJob
        from repro.supervise.supervisor import _with_cell_checkpoint

        serial = SweepJob("cluster", "cluster_smoke", 7, {})
        assert _with_cell_checkpoint(serial, tmp_path, 0) is serial
        service = SweepJob("service", "burst", 7, {"shards": 4})
        assert _with_cell_checkpoint(service, tmp_path, 0) is service

    def test_explicit_checkpoint_dir_wins(self, tmp_path):
        from repro.parallel.engine import SweepJob
        from repro.supervise.supervisor import _with_cell_checkpoint

        job = SweepJob(
            "cluster", "cluster_smoke", 7,
            {"shards": 2, "checkpoint_dir": "/elsewhere"},
        )
        assert _with_cell_checkpoint(job, tmp_path, 0) is job
