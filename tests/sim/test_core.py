"""Unit tests for the DES kernel: Environment, events, processes."""

import pytest

from repro.errors import SimulationError
from repro.sim import INFINITY, Environment, Event, Interrupt
from repro.units import MS, US


@pytest.fixture
def env():
    return Environment()


class TestPeekInfinity:
    def test_empty_queue_peeks_infinity(self, env):
        assert env.peek() == INFINITY

    def test_infinity_is_int64_max(self):
        assert INFINITY == 2**63 - 1

    def test_peek_returns_next_event_time(self, env):
        env.timeout(30)
        env.timeout(10)
        assert env.peek() == 10
        env.run()
        assert env.peek() == INFINITY


class TestEnvironmentBasics:
    def test_initial_time_zero(self, env):
        assert env.now == 0

    def test_initial_time_custom(self):
        assert Environment(initial_time=42).now == 42

    def test_run_empty_queue_returns_none(self, env):
        assert env.run() is None

    def test_step_on_empty_queue_raises(self, env):
        with pytest.raises(SimulationError):
            env.step()

    def test_run_until_past_raises(self):
        env = Environment(initial_time=100)
        with pytest.raises(SimulationError):
            env.run(until=50)

    def test_events_processed_counter(self, env):
        env.timeout(5)
        env.timeout(7)
        env.run()
        assert env.events_processed == 2


class TestTimeout:
    def test_timeout_advances_clock(self, env):
        def proc(env):
            yield env.timeout(10 * US)
            assert env.now == 10 * US
            yield env.timeout(5 * US)
            assert env.now == 15 * US

        env.process(proc(env))
        env.run()
        assert env.now == 15 * US

    def test_timeout_zero_is_legal(self, env):
        log = []

        def proc(env):
            yield env.timeout(0)
            log.append(env.now)

        env.process(proc(env))
        env.run()
        assert log == [0]

    def test_negative_timeout_raises(self, env):
        with pytest.raises(SimulationError):
            env.timeout(-1)

    def test_timeout_carries_value(self, env):
        def proc(env):
            got = yield env.timeout(3, value="payload")
            assert got == "payload"

        env.process(proc(env))
        env.run()

    def test_timeouts_fire_in_order(self, env):
        log = []

        def waiter(env, delay, tag):
            yield env.timeout(delay)
            log.append(tag)

        env.process(waiter(env, 30, "c"))
        env.process(waiter(env, 10, "a"))
        env.process(waiter(env, 20, "b"))
        env.run()
        assert log == ["a", "b", "c"]

    def test_same_time_fifo_order(self, env):
        log = []

        def waiter(env, tag):
            yield env.timeout(10)
            log.append(tag)

        for tag in "abcd":
            env.process(waiter(env, tag))
        env.run()
        assert log == ["a", "b", "c", "d"]


class TestRunUntil:
    def test_run_until_time_stops_clock(self, env):
        def proc(env):
            while True:
                yield env.timeout(10)

        env.process(proc(env))
        env.run(until=105)
        assert env.now == 105

    def test_run_until_time_runs_simultaneous_events_first(self, env):
        log = []

        def proc(env):
            yield env.timeout(100)
            log.append("at-100")

        env.process(proc(env))
        env.run(until=100)
        assert log == ["at-100"]

    def test_run_until_event_returns_value(self, env):
        def proc(env):
            yield env.timeout(7)
            return "result"

        p = env.process(proc(env))
        assert env.run(until=p) == "result"
        assert env.now == 7

    def test_run_until_never_triggered_event_raises(self, env):
        ev = env.event()
        env.timeout(5)
        with pytest.raises(SimulationError):
            env.run(until=ev)

    def test_run_until_already_processed_event(self, env):
        def proc(env):
            yield env.timeout(1)
            return 99

        p = env.process(proc(env))
        env.run()
        assert env.run(until=p) == 99


class TestEventSemantics:
    def test_succeed_once_only(self, env):
        ev = env.event()
        ev.succeed(1)
        with pytest.raises(SimulationError):
            ev.succeed(2)

    def test_fail_requires_exception(self, env):
        ev = env.event()
        with pytest.raises(TypeError):
            ev.fail("not an exception")

    def test_value_before_trigger_raises(self, env):
        ev = env.event()
        with pytest.raises(SimulationError):
            _ = ev.value

    def test_event_wakes_waiter_with_value(self, env):
        ev = env.event()
        got = []

        def waiter(env):
            got.append((yield ev))

        def trigger(env):
            yield env.timeout(4)
            ev.succeed("hello")

        env.process(waiter(env))
        env.process(trigger(env))
        env.run()
        assert got == ["hello"]

    def test_failed_event_raises_in_waiter(self, env):
        ev = env.event()
        caught = []

        def waiter(env):
            try:
                yield ev
            except ValueError as exc:
                caught.append(str(exc))

        def trigger(env):
            yield env.timeout(1)
            ev.fail(ValueError("boom"))

        env.process(waiter(env))
        env.process(trigger(env))
        env.run()
        assert caught == ["boom"]

    def test_unhandled_event_failure_propagates_to_run(self, env):
        ev = env.event()

        def trigger(env):
            yield env.timeout(1)
            ev.fail(RuntimeError("unhandled"))

        env.process(trigger(env))
        with pytest.raises(RuntimeError, match="unhandled"):
            env.run()

    def test_multiple_waiters_all_wake(self, env):
        ev = env.event()
        woke = []

        def waiter(env, tag):
            yield ev
            woke.append(tag)

        for tag in range(5):
            env.process(waiter(env, tag))
        ev.succeed()
        env.run()
        assert woke == [0, 1, 2, 3, 4]


class TestProcess:
    def test_process_return_value(self, env):
        def proc(env):
            yield env.timeout(1)
            return 123

        p = env.process(proc(env))
        env.run()
        assert p.value == 123
        assert not p.is_alive

    def test_process_failure_propagates_if_unwatched(self, env):
        def proc(env):
            yield env.timeout(1)
            raise KeyError("dead")

        env.process(proc(env))
        with pytest.raises(KeyError):
            env.run()

    def test_process_failure_caught_by_watcher(self, env):
        def child(env):
            yield env.timeout(1)
            raise KeyError("dead")

        caught = []

        def parent(env):
            try:
                yield env.process(child(env))
            except KeyError:
                caught.append(True)

        env.process(parent(env))
        env.run()
        assert caught == [True]

    def test_waiting_on_finished_process(self, env):
        def child(env):
            yield env.timeout(1)
            return "done"

        def parent(env, child_proc):
            yield env.timeout(50)
            value = yield child_proc
            assert value == "done"
            assert env.now == 50

        c = env.process(child(env))
        env.process(parent(env, c))
        env.run()

    def test_yield_non_event_fails_process(self, env):
        def proc(env):
            yield 42

        env.process(proc(env))
        with pytest.raises(SimulationError, match="non-event"):
            env.run()

    def test_cross_environment_yield_fails(self, env):
        other = Environment()

        def proc(env):
            yield other.timeout(1)

        env.process(proc(env))
        with pytest.raises(SimulationError, match="different environment"):
            env.run()

    def test_process_name(self, env):
        def my_proc(env):
            yield env.timeout(1)

        p = env.process(my_proc(env), name="worker-1")
        assert p.name == "worker-1"
        assert "worker-1" in repr(p)


class TestInterrupt:
    def test_interrupt_delivers_cause(self, env):
        causes = []

        def victim(env):
            try:
                yield env.timeout(100)
            except Interrupt as intr:
                causes.append(intr.cause)
                assert env.now == 10

        def attacker(env, v):
            yield env.timeout(10)
            v.interrupt(cause="preempt")

        v = env.process(victim(env))
        env.process(attacker(env, v))
        env.run()
        assert causes == ["preempt"]

    def test_interrupted_timeout_can_be_reawaited(self, env):
        log = []

        def victim(env):
            to = env.timeout(100)
            try:
                yield to
            except Interrupt:
                log.append(("interrupted", env.now))
            yield to  # original timeout still fires at t=100
            log.append(("resumed", env.now))

        def attacker(env, v):
            yield env.timeout(40)
            v.interrupt()

        v = env.process(victim(env))
        env.process(attacker(env, v))
        env.run()
        assert log == [("interrupted", 40), ("resumed", 100)]

    def test_interrupt_dead_process_raises(self, env):
        def victim(env):
            yield env.timeout(1)

        v = env.process(victim(env))
        env.run()
        with pytest.raises(SimulationError):
            v.interrupt()

    def test_self_interrupt_raises(self, env):
        failures = []

        def proc(env):
            p = env.active_process
            try:
                p.interrupt()
            except SimulationError:
                failures.append(True)
            yield env.timeout(1)

        env.process(proc(env))
        env.run()
        assert failures == [True]

    def test_uncaught_interrupt_kills_process(self, env):
        def victim(env):
            yield env.timeout(100)

        def attacker(env, v):
            yield env.timeout(1)
            v.interrupt()

        v = env.process(victim(env))
        env.process(attacker(env, v))
        with pytest.raises(Interrupt):
            env.run()


class TestConditions:
    def test_all_of_waits_for_all(self, env):
        def proc(env):
            t1 = env.timeout(10, value="a")
            t2 = env.timeout(30, value="b")
            result = yield env.all_of([t1, t2])
            assert env.now == 30
            assert result[t1] == "a"
            assert result[t2] == "b"

        env.process(proc(env))
        env.run()

    def test_any_of_returns_on_first(self, env):
        def proc(env):
            t1 = env.timeout(10, value="fast")
            t2 = env.timeout(30, value="slow")
            result = yield env.any_of([t1, t2])
            assert env.now == 10
            assert t1 in result
            assert t2 not in result

        env.process(proc(env))
        env.run()

    def test_all_of_empty_triggers_immediately(self, env):
        def proc(env):
            result = yield env.all_of([])
            assert len(result) == 0
            assert env.now == 0

        env.process(proc(env))
        env.run()

    def test_any_of_empty_triggers_immediately(self, env):
        def proc(env):
            yield env.any_of([])
            assert env.now == 0

        env.process(proc(env))
        env.run()

    def test_condition_propagates_failure(self, env):
        ev = env.event()

        def trigger(env):
            yield env.timeout(5)
            ev.fail(ValueError("cond-fail"))

        caught = []

        def waiter(env):
            try:
                yield env.all_of([ev, env.timeout(100)])
            except ValueError:
                caught.append(True)

        env.process(trigger(env))
        env.process(waiter(env))
        env.run()
        assert caught == [True]

    def test_condition_with_already_processed_event(self, env):
        def proc(env):
            t = env.timeout(1, value="x")
            yield t
            # t is processed now; condition must still work.
            result = yield env.all_of([t, env.timeout(2, value="y")])
            assert result[t] == "x"

        env.process(proc(env))
        env.run()

    def test_mixing_environments_raises(self, env):
        other = Environment()

        def proc(env):
            yield env.all_of([env.timeout(1), other.timeout(1)])

        env.process(proc(env))
        with pytest.raises(SimulationError):
            env.run()


class TestDeterminism:
    def test_identical_runs_produce_identical_traces(self):
        def make_trace():
            env = Environment()
            trace = []

            def worker(env, tag, period):
                while env.now < 1 * MS:
                    yield env.timeout(period)
                    trace.append((env.now, tag))

            env.process(worker(env, "x", 7 * US))
            env.process(worker(env, "y", 11 * US))
            env.process(worker(env, "z", 13 * US))
            env.run(until=1 * MS)
            return trace

        assert make_trace() == make_trace()
