"""Property fence for the shard wire format (:mod:`repro.sim.frames`).

The fork backend's correctness rests on ``decode_batch(encode_batch(b))``
being the identity (up to the canonical ``(origin, seq)`` sort) for
*every* batch the kernel can produce — scalar fast-path payloads and
pickle-fallback payloads alike.  Hypothesis drives the round trip;
pinned cases cover the format's edges (empty batch, max-width scalar
vectors, deliberately corrupted frames).

Runs under the pinned derandomized profiles of ``tests/conftest.py``.
"""

import pickle
import struct

from hypothesis import given, settings
from hypothesis import strategies as st
import pytest

from repro.errors import ShardSyncError
from repro.sim.frames import (
    MAGIC,
    _PICKLE,
    _SCALARS,
    decode_batch,
    encode_batch,
)
from repro.sim.shard_types import Message

I64 = st.integers(-(2**63), 2**63 - 1)
U63 = st.integers(0, 2**63 - 1)

#: Scalars the struct fast path covers.
fast_scalars = st.one_of(
    st.none(),
    st.booleans(),
    I64,
    st.floats(allow_nan=False),
    st.text(max_size=40),
)

#: Payload elements that must route through the pickle fallback.
slow_elements = st.one_of(
    st.integers(2**63, 2**70),                 # beyond i64
    st.integers(-(2**70), -(2**63) - 1),
    st.tuples(st.integers(), st.integers()),   # nested tuple
    st.binary(max_size=16),                    # bytes aren't scalars
    st.lists(st.integers(), max_size=3).map(tuple),
)

payloads = st.one_of(
    st.lists(fast_scalars, max_size=8).map(tuple),
    st.lists(st.one_of(fast_scalars, slow_elements), min_size=1,
             max_size=6).map(tuple),
)


def message_strategy(origin=U63, seq=U63):
    return st.builds(
        Message,
        origin=origin,
        seq=seq,
        dest=U63,
        deliver_at=U63,
        kind=st.text(max_size=20),
        payload=payloads,
    )


batches = st.lists(message_strategy(), max_size=20)

#: Batches with unique ``(origin, seq)`` keys — the kernel's actual
#: contract (``seq`` is a per-origin counter), needed wherever tie
#: order would otherwise be unspecified.
unique_batches = st.lists(
    message_strategy(), max_size=20,
    unique_by=lambda m: (m.origin, m.seq),
)


def canonical(messages):
    return sorted(messages, key=lambda m: (m.origin, m.seq))


class TestRoundTrip:
    @given(batch=batches)
    @settings(max_examples=300)
    def test_decode_inverts_encode_up_to_canonical_order(self, batch):
        assert decode_batch(encode_batch(batch)) == canonical(batch)

    @given(batch=unique_batches)
    @settings(max_examples=100)
    def test_decode_order_is_independent_of_encode_order(self, batch):
        """Any permutation of the batch encodes to a frame that decodes
        to the same canonical sequence — routing code may append
        messages in any order."""
        assert decode_batch(encode_batch(list(reversed(batch)))) == (
            decode_batch(encode_batch(batch))
        )

    @given(
        payload=st.lists(slow_elements, min_size=1, max_size=4).map(tuple)
    )
    @settings(max_examples=100)
    def test_pickle_fallback_payloads_round_trip(self, payload):
        msg = Message(1, 2, 3, 400, "blob", payload)
        frame = encode_batch([msg])
        assert decode_batch(frame) == [msg]
        # And the frame really did take the fallback: mode byte after
        # the fixed record header + kind is _PICKLE.
        mode_off = 4 + 4 + 32 + 2 + len("blob")
        assert frame[mode_off] == _PICKLE

    def test_float_payloads_round_trip_bit_exactly(self):
        values = (0.0, -0.0, 1e-320, float("inf"), float("-inf"), 2.0**52)
        msg = Message(0, 0, 1, 10, "f", values)
        (out,) = decode_batch(encode_batch([msg]))
        assert [struct.pack("!d", v) for v in out.payload] == [
            struct.pack("!d", v) for v in values
        ]

    def test_empty_batch_is_a_valid_frame(self):
        frame = encode_batch([])
        assert frame == MAGIC + struct.pack("!I", 0)
        assert decode_batch(frame) == []

    def test_max_width_scalar_vector_stays_on_fast_path(self):
        payload = tuple(range(0xFFFF))
        msg = Message(0, 0, 1, 10, "wide", payload)
        frame = encode_batch([msg])
        mode_off = 4 + 4 + 32 + 2 + len("wide")
        assert frame[mode_off] == _SCALARS
        assert decode_batch(frame) == [msg]

    def test_one_element_past_max_width_falls_back_to_pickle(self):
        payload = tuple(range(0xFFFF + 1))
        msg = Message(0, 0, 1, 10, "wide", payload)
        frame = encode_batch([msg])
        mode_off = 4 + 4 + 32 + 2 + len("wide")
        assert frame[mode_off] == _PICKLE
        assert decode_batch(frame) == [msg]

    def test_bool_and_int_survive_distinctly(self):
        """True is not 1 after a round trip — the tag encoding must
        keep bool identity (payload equality via == would hide it)."""
        msg = Message(0, 0, 1, 10, "b", (True, 1, False, 0))
        (out,) = decode_batch(encode_batch([msg]))
        assert [type(v) for v in out.payload] == [bool, int, bool, int]


class TestCorruptFrames:
    def _frame(self):
        return encode_batch(
            [Message(1, 2, 3, 400, "ping", (42, "x", None))]
        )

    def test_bad_magic_rejected(self):
        with pytest.raises(ShardSyncError, match="magic"):
            decode_batch(b"NOPE" + self._frame()[4:])

    def test_truncated_frame_rejected(self):
        frame = self._frame()
        for cut in (5, len(frame) // 2, len(frame) - 1):
            with pytest.raises(ShardSyncError, match="truncated"):
                decode_batch(frame[:cut])

    def test_trailing_garbage_rejected(self):
        with pytest.raises(ShardSyncError, match="trailing"):
            decode_batch(self._frame() + b"\x00")

    def test_unknown_payload_mode_rejected(self):
        frame = bytearray(self._frame())
        mode_off = 4 + 4 + 32 + 2 + len("ping")
        assert frame[mode_off] == _SCALARS
        frame[mode_off] = 0x7F
        with pytest.raises(ShardSyncError, match="payload mode"):
            decode_batch(bytes(frame))

    def test_unknown_scalar_tag_rejected(self):
        frame = bytearray(self._frame())
        # First scalar tag: after magic+count+record+kind+mode+elems u16.
        tag_off = 4 + 4 + 32 + 2 + len("ping") + 1 + 2
        frame[tag_off] = 0x7F
        with pytest.raises(ShardSyncError, match="scalar tag"):
            decode_batch(bytes(frame))

    def test_oversized_kind_rejected_at_encode(self):
        msg = Message(0, 0, 1, 10, "k" * 0x10000, ())
        with pytest.raises(ShardSyncError, match="kind"):
            encode_batch([msg])
