"""Differential fence: sharded cluster runs == serial, bit for bit.

The shard kernel's whole value rests on one claim: partitioning a
cluster run across workers changes *nothing* observable — same
metrics dict (byte-identical canonical JSON), same golden digest —
for every shard count, every backend, every topology, with and
without a chaos campaign.  This suite holds that claim to the digest
on the registered presets.
"""

import json

import pytest

from dataclasses import replace

from repro.experiments.cluster import (
    ClusterSpec,
    cluster_spec,
    run_cluster,
    scaled_spec,
)
from repro.sim import invariants
from repro.supervise.manifest import result_digest

#: Sim durations are cut far below the presets' (the fence is about
#: equality, not steady state) but stay long enough that flows cross
#: racks, the federation completes rounds, and chaos flaps land.
SMOKE = scaled_spec(cluster_spec("cluster_smoke"), 0.02)
SCALE = scaled_spec(cluster_spec("cluster_scale"), 0.01)
FAT_TREE = ClusterSpec(
    name="diff_fat_tree", topology="fat-tree", fat_tree_k=4,
    vms_per_host=2, n_flows=60, sim_s=0.02,
)
CHAOS = replace(SMOKE, name="diff_chaos", chaos_flaps=2)


def _serial(spec, seed=7):
    with invariants.activate("record") as monitor:
        result = run_cluster(spec, seed=seed)
    assert not monitor.tainted, monitor.to_dicts()
    return result


def _canonical(metrics):
    return json.dumps(metrics, sort_keys=True, separators=(",", ":"))


@pytest.fixture(scope="module")
def serial_results():
    """One serial reference run per spec, shared across the matrix."""
    return {
        spec.name: _serial(spec).metrics()
        for spec in (SMOKE, SCALE, FAT_TREE, CHAOS)
    }


class TestShardDifferential:
    @pytest.mark.parametrize("shards", [1, 2, 4])
    @pytest.mark.parametrize(
        "spec", [SMOKE, SCALE, FAT_TREE, CHAOS], ids=lambda s: s.name
    )
    def test_inline_matches_serial(self, serial_results, spec, shards):
        reference = serial_results[spec.name]
        with invariants.activate("record") as monitor:
            result = run_cluster(spec, seed=7, shards=shards, backend="inline")
        assert not monitor.tainted, monitor.to_dicts()
        metrics = result.metrics()
        assert _canonical(metrics) == _canonical(reference)
        assert result_digest(metrics) == result_digest(reference)

    @pytest.mark.parametrize("shards", [2, 4])
    def test_forked_matches_serial(self, serial_results, shards):
        """The real multi-process transport, on the CI-sized preset."""
        with invariants.activate("record") as monitor:
            result = run_cluster(SMOKE, seed=7, shards=shards, backend="fork")
        assert not monitor.tainted, monitor.to_dicts()
        metrics = result.metrics()
        assert _canonical(metrics) == _canonical(serial_results[SMOKE.name])

    @pytest.mark.parametrize("backend", ["inline", "fork"])
    @pytest.mark.parametrize("coalesce", [True, False], ids=["on", "off"])
    @pytest.mark.parametrize(
        "spec", [SMOKE, SCALE], ids=lambda s: s.name
    )
    def test_coalescing_matrix_matches_serial(
        self, serial_results, spec, coalesce, backend
    ):
        """Barrier elision x transport: every cell byte-identical to
        serial.  With elision off, every window pays a barrier and the
        stride never leaves 1; with it on, barriers shrink (strictly,
        on these presets' epoch-batched relay traffic)."""
        with invariants.activate("record") as monitor:
            result = run_cluster(
                spec, seed=7, shards=2, backend=backend, coalesce=coalesce
            )
        assert not monitor.tainted, monitor.to_dicts()
        assert _canonical(result.metrics()) == _canonical(
            serial_results[spec.name]
        )
        stats = result.shard_stats
        if coalesce:
            assert stats.barriers < stats.windows
            assert stats.max_stride > 1
        else:
            assert stats.barriers == stats.windows
            assert stats.max_stride == 1

    def test_forked_chaos_campaign_matches_serial(self, serial_results):
        """Fault campaigns shard too: per-rack link flaps are rack-local
        state, so a forked run replays them identically."""
        result = run_cluster(CHAOS, seed=7, shards=4, backend="fork")
        metrics = result.metrics()
        assert _canonical(metrics) == _canonical(serial_results[CHAOS.name])

    def test_seed_sensitivity_is_preserved(self, serial_results):
        """Sharding must not flatten seed sensitivity: a different seed
        diverges identically in both modes."""
        other_serial = _serial(SMOKE, seed=8).metrics()
        assert _canonical(other_serial) != _canonical(
            serial_results[SMOKE.name]
        )
        other_sharded = run_cluster(
            SMOKE, seed=8, shards=2, backend="inline"
        ).metrics()
        assert _canonical(other_sharded) == _canonical(other_serial)

    def test_shard_stats_report_execution_shape(self):
        result = run_cluster(SMOKE, seed=7, shards=2, backend="inline")
        stats = result.shard_stats
        assert stats is not None
        assert stats.shards == 2
        assert stats.backend == "inline"
        assert stats.windows > 0
        assert stats.messages_exchanged > 0
        # ShardStats never leak into the deterministic projection.
        assert "shards" not in result.metrics()

    def test_shards_must_divide_domains(self):
        from repro.errors import ConfigError

        with pytest.raises(ConfigError):
            run_cluster(SMOKE, seed=7, shards=5)  # only 4 racks
