"""Shared test configuration: pinned Hypothesis profiles.

Three profiles are registered:

* ``thorough`` — 500 examples, derandomized (the pinned-seed profile the
  property/differential fast-path fences run under in CI);
* ``dev`` — 50 examples for quick local iteration;
* ``default`` — Hypothesis defaults.

Select with ``HYPOTHESIS_PROFILE=dev pytest ...``; the default is
``thorough`` so the tier-1 suite always runs the full fence.
Individual tests may still override ``max_examples`` downward for
expensive simulation-backed properties.
"""

from __future__ import annotations

import os

from hypothesis import settings

settings.register_profile(
    "thorough", max_examples=500, derandomize=True, deadline=None
)
settings.register_profile("dev", max_examples=50, derandomize=True, deadline=None)
settings.register_profile("default", deadline=None)

settings.load_profile(os.environ.get("HYPOTHESIS_PROFILE", "thorough"))
