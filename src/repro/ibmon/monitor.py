"""IBMon: asynchronous monitoring of VMM-bypass InfiniBand usage.

Because guests talk to the HCA directly, dom0 never sees their I/O.
IBMon (paper [19], §III) recovers an *estimate* by mapping each guest's
completion-queue rings read-only (``xc_map_foreign_range``, with the
backend driver's help in locating them) and sampling periodically:

* the producer index delta gives an exact count of completions between
  samples (it is monotonic, so nothing is ever missed);
* ring entries that have not yet been consumed by the guest reveal the
  operation type and byte length, from which IBMon classifies each CQ
  (send vs receive side) and infers the application's buffer size;
* MTUsSent is then completions x ceil(buffer/MTU) over send-side CQs.

The estimates inherit real IBMon's raciness: an entry consumed before
the next sample hides its contents (though never its count), so buffer
size inference needs the sampler to win the race at least once.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import TYPE_CHECKING, Dict, List, Optional, Set

from repro.errors import IntrospectionError
from repro.ib.cq import WCOpcode
from repro.units import US
from repro.xen.introspect import xc_map_foreign_range

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.experiments.platform import Node


@dataclass
class IBMonStats:
    """What IBMon can tell ResEx about one VM."""

    domid: int
    completions: int
    estimated_bytes: int
    estimated_mtus: int
    buffer_size_estimate: Optional[int]
    qp_nums: Set[int]


class _MonitoredCQ:
    """Sampling state for one mapped completion queue."""

    __slots__ = (
        "cqn",
        "content",
        "last_producer",
        "classification",
        "inferred_bytes",
        "qp_nums",
        "completions_accum",
        "unattributed",
    )

    def __init__(self, cqn: int, content) -> None:
        self.cqn = cqn
        #: Read-only view of the ring (via the foreign-mapped frame).
        self.content = content
        #: Producer indices start at 0 when the ring is created, so a
        #: freshly-discovered CQ can be counted from the beginning.
        self.last_producer = 0
        #: None until an entry has been observed; then 'send' or 'recv'.
        self.classification: Optional[str] = None
        #: Most recently observed completion byte length.
        self.inferred_bytes: Optional[int] = None
        self.qp_nums: Set[int] = set()
        #: Completions attributed to this CQ since the last drain.
        self.completions_accum = 0
        #: Completions counted before the CQ could be classified.
        self.unattributed = 0


class _MonitoredVM:
    __slots__ = ("domid", "cqs", "known_cqns")

    def __init__(self, domid: int) -> None:
        self.domid = domid
        self.cqs: List[_MonitoredCQ] = []
        self.known_cqns: Set[int] = set()


class IBMon:
    """The dom0 monitoring daemon for one host."""

    def __init__(
        self,
        node: "Node",
        sample_interval_ns: int = 250_000,
        sample_cpu_ns: int = 2 * US,
    ) -> None:
        if sample_interval_ns <= 0:
            raise IntrospectionError("sample interval must be positive")
        self.node = node
        self.env = node.hypervisor.env
        self.sample_interval_ns = sample_interval_ns
        self.sample_cpu_ns = sample_cpu_ns
        self._vms: Dict[int, _MonitoredVM] = {}
        self.samples_taken = 0
        self.samples_dropped = 0
        self._proc = None
        #: Fault-injection hooks (:mod:`repro.faults`).  While
        #: ``fault_drop_samples`` is set the periodic sampler skips its
        #: pass entirely (CQ rings keep filling; counts are recovered
        #: from the producer index after the outage).  While
        #: ``fault_stale_reads`` is set :meth:`drain` silently returns
        #: the previous estimate without touching the accumulators —
        #: the consumer cannot tell the data is stale.
        self.fault_drop_samples = False
        self.fault_stale_reads = False
        self._last_stats: Dict[int, IBMonStats] = {}

    # -- registration ----------------------------------------------------------
    def watch_domain(self, domid: int) -> None:
        """Begin monitoring a guest; its CQs are discovered lazily (new
        queues created later are picked up on subsequent samples)."""
        self.node.hypervisor.domain(domid)  # validates existence
        if domid not in self._vms:
            self._vms[domid] = _MonitoredVM(domid)

    def watched_domains(self) -> List[int]:
        return sorted(self._vms)

    def _discover(self, vm: _MonitoredVM) -> None:
        """Find this domain's CQ rings with the backend driver's help,
        then map their pages read-only."""
        hca = self.node.hca
        for cqn, cq in hca.cqs.items():
            if cqn in vm.known_cqns:
                continue
            if cq.page.address_space.domid != vm.domid:
                continue
            views = xc_map_foreign_range(
                self.node.hypervisor,
                self.node.hypervisor.dom0,
                vm.domid,
                cq.page.gpfn_start,
                1,
            )
            vm.known_cqns.add(cqn)
            vm.cqs.append(_MonitoredCQ(cqn, views[0].content))

    # -- the sampling daemon -------------------------------------------------------
    def start(self) -> None:
        """Launch the periodic sampling loop as a dom0 process."""
        if self._proc is None:
            self._proc = self.env.process(self._run(), name="ibmon")

    def _run(self):
        dom0 = self.node.hypervisor.dom0
        while True:
            yield self.env.timeout(self.sample_interval_ns)
            if self.fault_drop_samples:
                self.samples_dropped += 1
                continue
            sample_start = self.env.now
            ncqs = sum(len(vm.cqs) for vm in self._vms.values())
            # Introspection costs dom0 CPU per mapped ring.
            yield dom0.vcpu.compute(self.sample_cpu_ns * max(ncqs, 1))
            self.sample_now()
            tel = self.env.telemetry
            if tel.enabled:
                tel.span(
                    "ibmon",
                    "sample",
                    sample_start,
                    self.env.now,
                    lane=f"ibmon-{self.node.host.name}",
                    sample=self.samples_taken,
                    cqs_mapped=ncqs,
                    vms=len(self._vms),
                )

    def sample_now(self) -> None:
        """One sampling pass over every watched VM (also callable
        synchronously from tests)."""
        self.samples_taken += 1
        for vm in self._vms.values():
            self._discover(vm)
            for mcq in vm.cqs:
                self._sample_cq(mcq)

    def _sample_cq(self, mcq: _MonitoredCQ) -> None:
        content = mcq.content
        producer = content.producer_index
        delta = producer - mcq.last_producer
        if delta <= 0:
            return
        # Entries stay readable until the ring wraps and overwrites
        # them; only a sampler slower than one full ring turn loses
        # entry contents (never counts — those come from the index).
        depth = content.depth
        ring = content._ring
        first_visible = max(mcq.last_producer, producer - depth)
        for index in range(first_visible, producer):
            entry = ring[index % depth]
            if entry is None:
                continue
            mcq.qp_nums.add(entry.qp_num)
            if entry.opcode in (WCOpcode.RECV, WCOpcode.RECV_RDMA_WITH_IMM):
                mcq.classification = "recv"
            else:
                mcq.classification = "send"
                mcq.inferred_bytes = entry.byte_len
        mcq.last_producer = producer
        if mcq.classification is None:
            mcq.unattributed += delta
        else:
            mcq.completions_accum += delta + mcq.unattributed
            mcq.unattributed = 0

    # -- the ResEx-facing interface ---------------------------------------------
    def get_mtus(self, domid: int) -> int:
        """MTUsSent estimate since the previous call (Algorithm 1/2,
        the GetMTUs step).  Resets the accumulator."""
        stats = self.drain(domid)
        return stats.estimated_mtus

    def drain(self, domid: int) -> IBMonStats:
        """Full estimate since the previous drain; resets accumulators.

        Under an injected stale-read fault the previous drain's result
        is returned unchanged and nothing is reset, so the backlog
        surfaces in one large estimate once the fault clears.
        """
        vm = self._vms.get(domid)
        if vm is None:
            raise IntrospectionError(f"domain {domid} is not being monitored")
        if self.fault_stale_reads:
            prev = self._last_stats.get(domid)
            if prev is not None:
                return prev
            return IBMonStats(
                domid=domid,
                completions=0,
                estimated_bytes=0,
                estimated_mtus=0,
                buffer_size_estimate=None,
                qp_nums=set(),
            )
        mtu = self.node.hca.params.mtu_bytes
        completions = 0
        est_bytes = 0
        buffer_est: Optional[int] = None
        qp_nums: Set[int] = set()
        for mcq in vm.cqs:
            qp_nums |= mcq.qp_nums
            if mcq.classification == "send":
                count = mcq.completions_accum
                completions += count
                size = mcq.inferred_bytes or 0
                est_bytes += count * size
                if size and (buffer_est is None or size > buffer_est):
                    buffer_est = size
            mcq.completions_accum = 0
        stats = IBMonStats(
            domid=domid,
            completions=completions,
            estimated_bytes=est_bytes,
            estimated_mtus=-(-est_bytes // mtu) if est_bytes else 0,
            buffer_size_estimate=buffer_est,
            qp_nums=qp_nums,
        )
        self._last_stats[domid] = stats
        tel = self.env.telemetry
        if tel.enabled:
            tel.event(
                "ibmon",
                "observation",
                self.env.now,
                lane=f"dom{domid}",
                domid=domid,
                completions=stats.completions,
                est_bytes=stats.estimated_bytes,
                est_mtus=stats.estimated_mtus,
                buffer_est=stats.buffer_size_estimate,
            )
        return stats

    def __repr__(self) -> str:
        return f"<IBMon {self.node.host.name} vms={len(self._vms)}>"
