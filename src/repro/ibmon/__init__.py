"""IBMon: introspection-based monitoring of VMM-bypass IB devices."""

from repro.ibmon.monitor import IBMon, IBMonStats

__all__ = ["IBMon", "IBMonStats"]
