"""Named fault-campaign presets for the chaos CLI and tests.

Presets are expressed as fractions of the run length so the same
preset scales with ``--sim-s``.  Targets use the canonical paper
testbed names (:meth:`~repro.experiments.platform.Testbed.paper_testbed`):
the shared contention point is the server host's egress port
``server-host.tx`` — the link the 2 MB interferer saturates.
"""

from __future__ import annotations

from typing import Callable, Dict, List

from repro.errors import FaultError
from repro.faults.campaign import Fault, FaultCampaign, RenewalSpec
from repro.sim.rng import RngRegistry
from repro.units import MS, SEC

#: The contended link in the paper testbed.
SERVER_TX = "server-host.tx"


def _at(sim_s: float, fraction: float) -> int:
    return int(sim_s * fraction * SEC)


def _link_flap(sim_s: float, seed: int) -> FaultCampaign:
    """Three short full outages of the server egress link."""
    flap_ns = 10 * MS
    return FaultCampaign.scripted(
        [
            Fault("link-degrade", SERVER_TX, _at(sim_s, frac), flap_ns, 1.0)
            for frac in (0.35, 0.50, 0.65)
        ],
        name="link-flap",
    )


def _link_degrade(sim_s: float, seed: int) -> FaultCampaign:
    """One long 50%-capacity degradation window on the server egress."""
    start = _at(sim_s, 0.35)
    return FaultCampaign.scripted(
        [Fault("link-degrade", SERVER_TX, start, _at(sim_s, 0.40), 0.5)],
        name="link-degrade",
    )


def _monitor_dropout(sim_s: float, seed: int) -> FaultCampaign:
    """IBMon stops sampling, then serves stale estimates."""
    return FaultCampaign.scripted(
        [
            Fault("ibmon-dropout", "server-host", _at(sim_s, 0.35),
                  _at(sim_s, 0.20)),
            Fault("ibmon-stale", "server-host", _at(sim_s, 0.60),
                  _at(sim_s, 0.15)),
        ],
        name="monitor-dropout",
    )


def _controller_restart(sim_s: float, seed: int) -> FaultCampaign:
    """The ResEx controller goes down mid-run and restarts."""
    return FaultCampaign.scripted(
        [
            Fault("controller-outage", "server-host", _at(sim_s, 0.35),
                  _at(sim_s, 0.20)),
        ],
        name="controller-restart",
    )


def _combined(sim_s: float, seed: int) -> FaultCampaign:
    """Degraded link, blind monitor, then a controller restart."""
    return FaultCampaign.scripted(
        [
            Fault("link-degrade", SERVER_TX, _at(sim_s, 0.30),
                  _at(sim_s, 0.20), 0.5),
            Fault("ibmon-dropout", "server-host", _at(sim_s, 0.45),
                  _at(sim_s, 0.15)),
            Fault("controller-outage", "server-host", _at(sim_s, 0.62),
                  _at(sim_s, 0.12)),
        ],
        name="combined",
    )


def _random(sim_s: float, seed: int) -> FaultCampaign:
    """Seeded MTBF/MTTR renewal mix across several fault sources."""
    rng = RngRegistry(seed).stream("faults/random-campaign")
    horizon = int(sim_s * SEC)
    specs = [
        RenewalSpec("link-degrade", SERVER_TX,
                    mtbf_ns=int(0.5 * horizon), mttr_ns=int(0.05 * horizon),
                    severity=0.5),
        RenewalSpec("hca-doorbell-stall", "server-host",
                    mtbf_ns=int(0.7 * horizon), mttr_ns=int(0.05 * horizon),
                    severity=0.5),
        RenewalSpec("ibmon-dropout", "server-host",
                    mtbf_ns=int(0.6 * horizon), mttr_ns=int(0.08 * horizon)),
    ]
    return FaultCampaign.stochastic(specs, horizon, rng, name="random")


_PRESETS: Dict[str, Callable[[float, int], FaultCampaign]] = {
    "link-flap": _link_flap,
    "link-degrade": _link_degrade,
    "monitor-dropout": _monitor_dropout,
    "controller-restart": _controller_restart,
    "combined": _combined,
    "random": _random,
}


def campaign_presets() -> List[str]:
    """Available preset names, sorted."""
    return sorted(_PRESETS)


def preset_campaign(name: str, sim_s: float, seed: int = 7) -> FaultCampaign:
    """Build the named preset scaled to a ``sim_s``-second run."""
    try:
        builder = _PRESETS[name]
    except KeyError:
        raise FaultError(
            f"unknown campaign preset {name!r} (try {campaign_presets()})"
        ) from None
    if sim_s <= 0:
        raise FaultError("sim_s must be positive")
    return builder(sim_s, seed)
