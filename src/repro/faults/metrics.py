"""Resilience metrics: what a fault cost and how fast the system healed.

Inputs are the victim's request-latency samples ``(t_ns, latency_us)``
— exactly what :class:`~repro.experiments.scenarios.ScenarioResult`
collects — plus the campaign that ran against it.  For every fault
window this module computes:

* **baseline** — mean victim latency before the first fault;
* **excursion area** — integral of latency *above* baseline from fault
  onset until recovery (us x s): the total pain the fault caused;
* **time-to-recover** — from fault onset until the rolling mean
  latency re-enters (and stays within) ``recover_pct`` of baseline;
* window means (during / after the fault) for degradation tables.

All reductions are pure functions of the sample arrays, so a seeded
run renders a byte-identical report every time.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from repro.analysis.tables import render_table
from repro.faults.campaign import Fault, FaultCampaign
from repro.units import MS, SEC, US

#: Default recovery threshold: within 10% of pre-fault latency.
DEFAULT_RECOVER_PCT = 10.0
#: Default rolling-mean window (requests) for recovery detection.
DEFAULT_ROLLING_WINDOW = 25


@dataclass(frozen=True)
class FaultImpact:
    """Resilience metrics for one fault window."""

    fault: Fault
    baseline_us: float
    #: Mean latency while the fault was active.
    during_us: float
    #: Mean latency from fault end to the end of the measure window.
    after_us: float
    #: Peak rolling-mean latency from onset to measure-window end.
    peak_us: float
    #: Integral of max(latency - baseline, 0) dt, onset -> window end.
    excursion_us_s: float
    #: Absolute time the rolling mean re-entered the recovery band for
    #: good; None if it was still outside at the end of the window.
    recovery_ns: Optional[int]
    recover_pct: float

    @property
    def recovered(self) -> bool:
        return self.recovery_ns is not None

    @property
    def ttr_ns(self) -> Optional[int]:
        """Time-to-recover from fault onset (None if never recovered)."""
        if self.recovery_ns is None:
            return None
        return max(self.recovery_ns - self.fault.start_ns, 0)

    def __repr__(self) -> str:
        ttr = self.ttr_ns
        return (
            f"<FaultImpact {self.fault.kind}:{self.fault.target} "
            f"ttr={'-' if ttr is None else f'{ttr / MS:.1f}ms'} "
            f"area={self.excursion_us_s:.1f}us*s>"
        )


def _rolling_mean(values: np.ndarray, window: int) -> np.ndarray:
    """Trailing rolling mean; the first ``window - 1`` entries use the
    shorter prefix (so early samples still produce a value)."""
    if len(values) == 0:
        return values.astype(float)
    window = max(int(window), 1)
    csum = np.cumsum(np.concatenate([[0.0], values.astype(float)]))
    n = np.arange(1, len(values) + 1)
    lo = np.maximum(n - window, 0)
    return (csum[n] - csum[lo]) / (n - lo)


def fault_impacts(
    samples: Sequence[Tuple[int, float]],
    campaign: FaultCampaign,
    recover_pct: float = DEFAULT_RECOVER_PCT,
    rolling_window: int = DEFAULT_ROLLING_WINDOW,
    baseline_us: Optional[float] = None,
) -> List[FaultImpact]:
    """Compute per-fault resilience metrics from latency samples.

    Each fault's measure window runs from its onset to the next
    fault's onset (or the last sample).  ``baseline_us`` defaults to
    the mean latency over every sample before the first fault starts.
    """
    if not campaign.faults:
        return []
    times = np.asarray([t for t, _ in samples], dtype=np.int64)
    lats = np.asarray([lat for _, lat in samples], dtype=float)
    # A request observes a fault when it *completes*: attribute each
    # sample to its completion instant, so damage from a fault landing
    # mid-request never bleeds into the preceding measure window.
    times = times + (lats * US).astype(np.int64)

    first_start = campaign.faults[0].start_ns
    if baseline_us is None:
        pre = lats[times < first_start]
        baseline_us = float(pre.mean()) if len(pre) else float("nan")
    rolling = _rolling_mean(lats, rolling_window)
    threshold = baseline_us * (1.0 + recover_pct / 100.0)

    impacts: List[FaultImpact] = []
    starts = [f.start_ns for f in campaign.faults]
    for index, fault in enumerate(campaign.faults):
        window_end = (
            starts[index + 1]
            if index + 1 < len(starts)
            else int(times[-1]) + 1 if len(times) else fault.end_ns
        )
        sel = (times >= fault.start_ns) & (times < window_end)
        idx = np.flatnonzero(sel)
        if len(idx) == 0:
            impacts.append(
                FaultImpact(
                    fault=fault,
                    baseline_us=baseline_us,
                    during_us=float("nan"),
                    after_us=float("nan"),
                    peak_us=float("nan"),
                    excursion_us_s=0.0,
                    recovery_ns=None,
                    recover_pct=recover_pct,
                )
            )
            continue

        w_times = times[idx]
        w_lats = lats[idx]
        w_roll = rolling[idx]

        during = w_lats[w_times < fault.end_ns]
        after = w_lats[w_times >= fault.end_ns]
        during_us = float(during.mean()) if len(during) else float("nan")
        after_us = float(after.mean()) if len(after) else float("nan")
        peak_us = float(w_roll.max())

        # Excursion area: rectangle integration of latency above
        # baseline between consecutive samples inside the window.
        if math.isnan(baseline_us):
            excursion = 0.0
        else:
            over = np.maximum(w_lats[:-1] - baseline_us, 0.0)
            dt_s = np.diff(w_times) / SEC
            excursion = float(np.dot(over, dt_s))

        # Recovery: the first instant after which the rolling mean
        # never leaves the band again within this window.
        recovery_ns: Optional[int] = None
        if not math.isnan(baseline_us):
            violating = np.flatnonzero(w_roll > threshold)
            if len(violating) == 0:
                recovery_ns = fault.start_ns  # never left the band
            elif violating[-1] + 1 < len(w_roll):
                recovery_ns = int(w_times[violating[-1] + 1])

        impacts.append(
            FaultImpact(
                fault=fault,
                baseline_us=baseline_us,
                during_us=during_us,
                after_us=after_us,
                peak_us=peak_us,
                excursion_us_s=excursion,
                recovery_ns=recovery_ns,
                recover_pct=recover_pct,
            )
        )
    return impacts


@dataclass(frozen=True)
class ResilienceReport:
    """Everything a chaos run measured, renderable byte-identically."""

    scenario: str
    policy: str
    campaign: str
    seed: int
    sim_s: float
    baseline_us: float
    impacts: Tuple[FaultImpact, ...]

    @property
    def recovered_all(self) -> bool:
        return all(i.recovered for i in self.impacts)

    @property
    def total_excursion_us_s(self) -> float:
        return float(sum(i.excursion_us_s for i in self.impacts))

    @property
    def worst_ttr_ms(self) -> Optional[float]:
        """Largest time-to-recover in ms; None if any fault never healed."""
        ttrs = []
        for impact in self.impacts:
            if impact.ttr_ns is None:
                return None
            ttrs.append(impact.ttr_ns / MS)
        return max(ttrs) if ttrs else 0.0

    def rows(self) -> List[List[object]]:
        rows: List[List[object]] = []
        for impact in self.impacts:
            f = impact.fault
            ttr = impact.ttr_ns
            rows.append(
                [
                    f"{f.kind}:{f.target}",
                    f"{f.start_ns / SEC:.3f}",
                    f"{f.duration_ns / MS:.1f}",
                    f"{f.severity:.2f}",
                    f"{impact.during_us:.1f}",
                    f"{impact.peak_us:.1f}",
                    f"{impact.excursion_us_s:.2f}",
                    "-" if ttr is None else f"{ttr / MS:.1f}",
                ]
            )
        return rows

    def render(self) -> str:
        """Deterministic text report (the ``repro chaos`` output)."""
        lines = [
            f"Resilience report: scenario={self.scenario} "
            f"policy={self.policy} campaign={self.campaign} seed={self.seed}",
            f"baseline latency: {self.baseline_us:.1f} us "
            f"(recovery band +{self.impacts[0].recover_pct:.0f}%)"
            if self.impacts
            else f"baseline latency: {self.baseline_us:.1f} us",
            "",
            render_table(
                [
                    "fault",
                    "start (s)",
                    "dur (ms)",
                    "sev",
                    "during (us)",
                    "peak (us)",
                    "area (us*s)",
                    "ttr (ms)",
                ],
                self.rows(),
                title=f"fault windows ({len(self.impacts)})",
            ),
            "",
            f"total excursion area: {self.total_excursion_us_s:.2f} us*s",
            "recovered: "
            + ("yes" if self.recovered_all else "NO (some windows never healed)")
            + (
                f" (worst ttr {self.worst_ttr_ms:.1f} ms)"
                if self.worst_ttr_ms is not None
                else ""
            ),
        ]
        return "\n".join(lines)

    def to_dict(self) -> Dict[str, object]:
        """JSON-friendly structure (for ``repro chaos --json``)."""
        return {
            "scenario": self.scenario,
            "policy": self.policy,
            "campaign": self.campaign,
            "seed": self.seed,
            "sim_s": self.sim_s,
            "baseline_us": self.baseline_us,
            "total_excursion_us_s": self.total_excursion_us_s,
            "recovered_all": self.recovered_all,
            "impacts": [
                {
                    "kind": i.fault.kind,
                    "target": i.fault.target,
                    "start_ns": i.fault.start_ns,
                    "duration_ns": i.fault.duration_ns,
                    "severity": i.fault.severity,
                    "baseline_us": i.baseline_us,
                    "during_us": i.during_us,
                    "after_us": i.after_us,
                    "peak_us": i.peak_us,
                    "excursion_us_s": i.excursion_us_s,
                    "recovery_ns": i.recovery_ns,
                }
                for i in self.impacts
            ],
        }


def degradation_table(reports: Dict[str, "ResilienceReport"]) -> str:
    """Per-policy degradation table across chaos runs of one campaign.

    ``reports`` maps a label (usually the policy name) to its report;
    rows are emitted in label-sorted order for determinism.
    """
    rows = []
    for label in sorted(reports):
        report = reports[label]
        worst = report.worst_ttr_ms
        during = [i.during_us for i in report.impacts
                  if not math.isnan(i.during_us)]
        rows.append(
            [
                label,
                f"{report.baseline_us:.1f}",
                f"{(sum(during) / len(during)):.1f}" if during else "-",
                f"{report.total_excursion_us_s:.2f}",
                "-" if worst is None else f"{worst:.1f}",
                "yes" if report.recovered_all else "NO",
            ]
        )
    return render_table(
        ["policy", "base (us)", "faulted (us)", "area (us*s)",
         "worst ttr (ms)", "recovered"],
        rows,
        title="policy degradation under identical campaign",
    )
