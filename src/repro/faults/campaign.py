"""Fault campaigns: declarative, seed-reproducible failure schedules.

A *campaign* is a set of :class:`Fault` specs — what breaks, when, for
how long, and how badly.  Campaigns come from two generators:

* :meth:`FaultCampaign.scripted` — an explicit fault list, for
  regression tests and the CLI presets;
* :meth:`FaultCampaign.stochastic` — a seeded MTBF/MTTR renewal
  process per fault kind, for chaos sweeps.

The :class:`FaultEngine` drives a campaign as an ordinary simulation
process off the :class:`~repro.sim.core.Environment`: at each fault's
start it calls the registered injector for that kind, and at start +
duration it clears it again.  Injectors (see
:mod:`repro.faults.injectors`) flip the small explicit hooks each layer
exposes — link degradation factors, HCA stall fields, IBMon staleness
flags, controller pause — so the failure semantics live with the
component they break, and the engine stays a pure scheduler.

Everything here is deterministic for a fixed seed: fault order is a
total order (start, kind, target), stochastic draws come from named
:class:`~repro.sim.rng.RngRegistry` streams, and injections happen at
integer-nanosecond instants inside the (already total) event order.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Dict, Iterable, List, Optional, Sequence, Tuple

from repro.errors import FaultError
from repro.telemetry.bus import FAULTS
from repro.units import MS, SEC

if TYPE_CHECKING:  # pragma: no cover - typing only
    import numpy as np

    from repro.sim.core import Environment


@dataclass(frozen=True)
class Fault:
    """One scheduled failure.

    ``severity`` is a kind-specific magnitude in [0, 1]: the *lost*
    fraction of link capacity for ``link-degrade`` (1.0 = flap to
    zero), the fraction of the injector's maximum stall for HCA
    delays, and ignored by the binary kinds (dropout, outage, freeze).
    """

    kind: str
    target: str
    start_ns: int
    duration_ns: int
    severity: float = 1.0

    def __post_init__(self) -> None:
        if not self.kind:
            raise FaultError("fault kind must be non-empty")
        if self.start_ns < 0:
            raise FaultError(f"fault start must be >= 0, got {self.start_ns}")
        if self.duration_ns <= 0:
            raise FaultError(
                f"fault duration must be > 0, got {self.duration_ns}"
            )
        if not 0.0 <= self.severity <= 1.0:
            raise FaultError(
                f"fault severity must be in [0, 1], got {self.severity}"
            )

    @property
    def end_ns(self) -> int:
        return self.start_ns + self.duration_ns

    def __repr__(self) -> str:
        return (
            f"<Fault {self.kind}:{self.target} "
            f"@{self.start_ns / SEC:.3f}s +{self.duration_ns / MS:.1f}ms "
            f"sev={self.severity:.2f}>"
        )


@dataclass(frozen=True)
class FaultCampaign:
    """An ordered, validated set of faults."""

    name: str
    faults: Tuple[Fault, ...]

    @classmethod
    def scripted(cls, faults: Iterable[Fault], name: str = "scripted") -> "FaultCampaign":
        """Build a campaign from an explicit fault list.

        Faults are sorted into the canonical (start, kind, target)
        order; overlapping windows on the same (kind, target) are
        rejected because clears would then fight over the same hook.
        """
        ordered = tuple(
            sorted(faults, key=lambda f: (f.start_ns, f.kind, f.target))
        )
        last_end: Dict[Tuple[str, str], int] = {}
        for fault in ordered:
            key = (fault.kind, fault.target)
            if fault.start_ns < last_end.get(key, 0):
                raise FaultError(
                    f"overlapping faults on {fault.kind}:{fault.target} "
                    f"(second starts at {fault.start_ns} ns)"
                )
            last_end[key] = fault.end_ns
        return cls(name=name, faults=ordered)

    @classmethod
    def stochastic(
        cls,
        specs: Sequence["RenewalSpec"],
        horizon_ns: int,
        rng: "np.random.Generator",
        name: str = "stochastic",
    ) -> "FaultCampaign":
        """Generate a campaign from MTBF/MTTR renewal processes.

        Each spec alternates exponentially-distributed up-times (mean
        ``mtbf_ns``) and down-times (mean ``mttr_ns``) until the
        horizon; each down-time becomes one fault.  Draw order is the
        spec order, so the same generator state always yields the same
        campaign.
        """
        if horizon_ns <= 0:
            raise FaultError("campaign horizon must be positive")
        faults: List[Fault] = []
        for spec in specs:
            t = 0
            while True:
                t += max(int(rng.exponential(spec.mtbf_ns)), 1)
                if t >= horizon_ns:
                    break
                duration = max(int(rng.exponential(spec.mttr_ns)), 1)
                duration = min(duration, horizon_ns - t)
                faults.append(
                    Fault(
                        kind=spec.kind,
                        target=spec.target,
                        start_ns=t,
                        duration_ns=duration,
                        severity=spec.severity,
                    )
                )
                t += duration
        return cls.scripted(faults, name=name)

    def __len__(self) -> int:
        return len(self.faults)

    def kinds(self) -> List[str]:
        """Distinct fault kinds, sorted."""
        return sorted({f.kind for f in self.faults})

    def horizon_ns(self) -> int:
        """End of the last fault window (0 for an empty campaign)."""
        return max((f.end_ns for f in self.faults), default=0)

    def shifted(self, offset_ns: int) -> "FaultCampaign":
        """The same campaign with every start delayed by ``offset_ns``."""
        return FaultCampaign.scripted(
            [
                Fault(f.kind, f.target, f.start_ns + offset_ns,
                      f.duration_ns, f.severity)
                for f in self.faults
            ],
            name=self.name,
        )


@dataclass(frozen=True)
class RenewalSpec:
    """MTBF/MTTR parameters for one stochastic fault source."""

    kind: str
    target: str
    mtbf_ns: int
    mttr_ns: int
    severity: float = 1.0

    def __post_init__(self) -> None:
        if self.mtbf_ns <= 0 or self.mttr_ns <= 0:
            raise FaultError("MTBF and MTTR must be positive")


class Injector:
    """Base class for per-layer fault injectors.

    Subclasses set :attr:`kind` and implement :meth:`inject` /
    :meth:`clear`; both receive the full :class:`Fault` so severity and
    target can parameterize the effect.
    """

    kind: str = ""

    def inject(self, fault: Fault) -> None:  # pragma: no cover - interface
        raise NotImplementedError

    def clear(self, fault: Fault) -> None:  # pragma: no cover - interface
        raise NotImplementedError

    def __repr__(self) -> str:
        return f"<{type(self).__name__} kind={self.kind!r}>"


@dataclass
class FaultEngine:
    """Schedules a campaign's injections against a running simulation."""

    env: "Environment"
    campaign: FaultCampaign
    injectors: Dict[str, Injector] = field(default_factory=dict)
    #: (fault, injected_at, cleared_at) for every completed window.
    log: List[Tuple[Fault, int, Optional[int]]] = field(default_factory=list)
    injected: int = 0
    cleared: int = 0
    _started: bool = False

    def register(self, injector: Injector) -> "FaultEngine":
        """Attach an injector; returns self for chaining."""
        if not injector.kind:
            raise FaultError(f"{injector!r} declares no kind")
        if injector.kind in self.injectors:
            raise FaultError(f"duplicate injector for kind {injector.kind!r}")
        self.injectors[injector.kind] = injector
        return self

    def start(self) -> None:
        """Validate coverage and launch the campaign process."""
        if self._started:
            raise FaultError("fault engine already started")
        missing = [k for k in self.campaign.kinds() if k not in self.injectors]
        if missing:
            raise FaultError(
                f"no injector registered for fault kinds {missing} "
                f"(have {sorted(self.injectors)})"
            )
        self._started = True
        if self.campaign.faults:
            self.env.process(self._run(), name="fault-engine")

    # -- the campaign process ----------------------------------------------
    def _run(self):
        env = self.env
        for fault in self.campaign.faults:
            if fault.start_ns > env.now:
                yield env.timeout(fault.start_ns - env.now)
            self._inject(fault)
            env.process(self._clear_later(fault), name=f"fault-clear-{fault.kind}")

    def _clear_later(self, fault: Fault):
        yield self.env.timeout(fault.duration_ns)
        self._clear(fault)

    def _inject(self, fault: Fault) -> None:
        self.injectors[fault.kind].inject(fault)
        self.injected += 1
        self.log.append((fault, self.env.now, None))
        tel = self.env.telemetry
        if tel.enabled:
            tel.event(
                FAULTS,
                "inject",
                self.env.now,
                lane=f"{fault.kind}:{fault.target}",
                kind=fault.kind,
                target=fault.target,
                severity=fault.severity,
                duration_ns=fault.duration_ns,
            )

    def _clear(self, fault: Fault) -> None:
        self.injectors[fault.kind].clear(fault)
        self.cleared += 1
        for i, (logged, injected_at, cleared_at) in enumerate(self.log):
            if logged is fault and cleared_at is None:
                self.log[i] = (logged, injected_at, self.env.now)
                break
        tel = self.env.telemetry
        if tel.enabled:
            tel.event(
                FAULTS,
                "clear",
                self.env.now,
                lane=f"{fault.kind}:{fault.target}",
                kind=fault.kind,
                target=fault.target,
            )

    @property
    def active(self) -> List[Fault]:
        """Faults currently injected but not yet cleared."""
        return [f for f, _, cleared_at in self.log if cleared_at is None]

    def __repr__(self) -> str:
        return (
            f"<FaultEngine {self.campaign.name!r} faults={len(self.campaign)} "
            f"injected={self.injected} cleared={self.cleared}>"
        )
