"""Deterministic fault injection and resilience measurement.

The paper evaluates ResEx on a healthy fabric; this package asks what
happens when the platform itself misbehaves — links flap or degrade,
the HCA stalls, IBMon goes blind or stale, the controller crashes and
restarts, VCPUs freeze — and measures how each pricing policy absorbs
the damage and how fast the victim's latency heals.

Core pieces:

* :mod:`~repro.faults.campaign` — :class:`Fault` specs, scripted and
  seeded-stochastic (MTBF/MTTR) :class:`FaultCampaign` generators, and
  the :class:`FaultEngine` that drives them as a simulation process;
* :mod:`~repro.faults.injectors` — per-layer adapters onto the small
  explicit fault hooks each component exposes;
* :mod:`~repro.faults.metrics` — excursion area, time-to-recover and
  per-policy degradation tables from latency samples;
* :mod:`~repro.faults.presets` — the named campaigns behind
  ``repro chaos --campaign``.

Everything is byte-deterministic for a fixed seed: campaigns golden-
file cleanly and two identical chaos invocations render identical
resilience reports.
"""

from repro.faults.campaign import (
    Fault,
    FaultCampaign,
    FaultEngine,
    Injector,
    RenewalSpec,
)
from repro.faults.injectors import (
    CompletionDelay,
    ControllerOutage,
    DoorbellStall,
    FederationOutage,
    LinkDegradation,
    MonitorDropout,
    MonitorStale,
    VCPUFreeze,
)
from repro.faults.metrics import (
    DEFAULT_RECOVER_PCT,
    FaultImpact,
    ResilienceReport,
    degradation_table,
    fault_impacts,
)
from repro.faults.presets import campaign_presets, preset_campaign
from repro.faults.workers import WorkerKill, parse_worker_kill

__all__ = [
    "CompletionDelay",
    "ControllerOutage",
    "DEFAULT_RECOVER_PCT",
    "DoorbellStall",
    "Fault",
    "FaultCampaign",
    "FaultEngine",
    "FaultImpact",
    "FederationOutage",
    "Injector",
    "LinkDegradation",
    "MonitorDropout",
    "MonitorStale",
    "RenewalSpec",
    "ResilienceReport",
    "VCPUFreeze",
    "WorkerKill",
    "campaign_presets",
    "degradation_table",
    "fault_impacts",
    "parse_worker_kill",
    "preset_campaign",
]
