"""Host-level fault injection for the sharded runtime.

The injectors in :mod:`repro.faults.injectors` break *simulated*
components at simulated instants; the faults here break the **host
processes running the simulation** — the failure mode
:mod:`repro.sim.checkpoint`'s in-run recovery exists for.  They plug
into :func:`repro.sim.shard.run_sharded`'s ``worker_faults`` hook,
which the fork backend calls as ``fault(barriers_done, procs)`` at the
top of every barrier, and are deterministic in barrier time: the same
run with the same fault list dies (and recovers) at the same exchange
every time.
"""

from __future__ import annotations

import os
import signal
from typing import Any, Sequence

from repro.errors import FaultError

__all__ = ["WorkerKill", "parse_worker_kill"]


class WorkerKill:
    """SIGKILL one shard worker when the run reaches a given barrier.

    A process-level fault — the worker gets no chance to flush, send an
    envelope or close its pipe, exactly like an OOM kill or a cgroup
    limit on a shared machine.  Fires at most once; :attr:`fired`
    records the barrier it actually hit so differential tests can
    assert the kill landed mid-run, not after the finish line.
    """

    kind = "worker-kill"

    def __init__(
        self, shard: int, at_barrier: int, sig: int = signal.SIGKILL
    ) -> None:
        if shard < 0:
            raise FaultError(f"shard must be >= 0, got {shard}")
        if at_barrier < 0:
            raise FaultError(f"at_barrier must be >= 0, got {at_barrier}")
        self.shard = int(shard)
        self.at_barrier = int(at_barrier)
        self.sig = int(sig)
        #: Barrier index the kill fired at, or ``None`` if it never did.
        self.fired: Any = None

    def __call__(self, barriers_done: int, procs: Sequence[Any]) -> None:
        if self.fired is not None or barriers_done < self.at_barrier:
            return
        if self.shard >= len(procs):
            raise FaultError(
                f"worker-kill targets shard {self.shard}, run has "
                f"{len(procs)} shard(s)"
            )
        proc = procs[self.shard]
        if proc is not None and proc.pid is not None and proc.is_alive():
            os.kill(proc.pid, self.sig)
            # The kill is asynchronous; wait for the process to actually
            # die so the fault is deterministic in barrier time (the
            # very next exchange sees the closed pipe, not some later
            # one depending on scheduler luck).
            proc.join(timeout=10)
        self.fired = int(barriers_done)

    def __repr__(self) -> str:
        return (
            f"<WorkerKill shard={self.shard} at_barrier={self.at_barrier} "
            f"fired={self.fired}>"
        )


def parse_worker_kill(spec: str) -> WorkerKill:
    """Build a :class:`WorkerKill` from a ``SHARD@BARRIER`` string.

    The shape behind ``repro cluster --kill-worker`` (testing/CI flag).
    """
    try:
        shard_s, _, barrier_s = spec.partition("@")
        return WorkerKill(int(shard_s), int(barrier_s))
    except ValueError:
        raise FaultError(
            f"--kill-worker wants SHARD@BARRIER (e.g. 1@3), got {spec!r}"
        ) from None
