"""Per-layer fault injectors.

Each injector owns one failure mode of one component and translates a
:class:`~repro.faults.campaign.Fault` into that component's explicit
fault hook.  The hooks are deliberately tiny — a degradation factor, a
stall field, a staleness flag, a pause bit — so the injected behaviour
is implemented (and testable) inside the layer it breaks, and this
module stays a thin adapter.

Fault kinds and their targets:

=====================  ============================================
kind                   target
=====================  ============================================
``link-degrade``       fabric link name (e.g. ``server-host.tx``);
                       severity = lost capacity fraction, 1.0 = down
``hca-doorbell-stall`` informational (one HCA per injector);
                       severity scales ``max_stall_ns``
``hca-cqe-delay``      informational; severity scales ``max_delay_ns``
``ibmon-dropout``      informational (sampler skips passes)
``ibmon-stale``        informational (drains return stale estimates)
``controller-outage``  informational (management loop paused)
``vcpu-freeze``        domain *name* on the injector's hypervisor
``federation-outage``  informational (relay messages lost)
=====================  ============================================
"""

from __future__ import annotations

from typing import TYPE_CHECKING

from repro.faults.campaign import Fault, Injector
from repro.units import US

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.hw.fabric import FluidFabric
    from repro.ib.hca import HCA
    from repro.ibmon import IBMon
    from repro.resex.controller import ResExController
    from repro.resex.federation import ResExFederation
    from repro.xen.hypervisor import Hypervisor


class LinkDegradation(Injector):
    """Scale a fabric link to a fraction of nominal capacity.

    ``severity`` is the *lost* fraction: 0.5 degrades the link to half
    capacity, 1.0 flaps it to zero (in-flight transfers stall in place
    and resume on clear).
    """

    kind = "link-degrade"

    def __init__(self, fabric: "FluidFabric") -> None:
        self.fabric = fabric

    def inject(self, fault: Fault) -> None:
        self.fabric.set_link_degradation(fault.target, 1.0 - fault.severity)

    def clear(self, fault: Fault) -> None:
        self.fabric.set_link_degradation(fault.target, 1.0)


class DoorbellStall(Injector):
    """Add latency to every doorbell-to-WR-fetch step of one HCA."""

    kind = "hca-doorbell-stall"

    def __init__(self, hca: "HCA", max_stall_ns: int = 100 * US) -> None:
        self.hca = hca
        self.max_stall_ns = max_stall_ns

    def inject(self, fault: Fault) -> None:
        self.hca.fault_doorbell_stall_ns = int(fault.severity * self.max_stall_ns)

    def clear(self, fault: Fault) -> None:
        self.hca.fault_doorbell_stall_ns = 0


class CompletionDelay(Injector):
    """Delay send-side completion delivery on one HCA."""

    kind = "hca-cqe-delay"

    def __init__(self, hca: "HCA", max_delay_ns: int = 100 * US) -> None:
        self.hca = hca
        self.max_delay_ns = max_delay_ns

    def inject(self, fault: Fault) -> None:
        self.hca.fault_cqe_delay_ns = int(fault.severity * self.max_delay_ns)

    def clear(self, fault: Fault) -> None:
        self.hca.fault_cqe_delay_ns = 0


class MonitorDropout(Injector):
    """IBMon stops taking samples; CQ counts recover after the window."""

    kind = "ibmon-dropout"

    def __init__(self, ibmon: "IBMon") -> None:
        self.ibmon = ibmon

    def inject(self, fault: Fault) -> None:
        self.ibmon.fault_drop_samples = True

    def clear(self, fault: Fault) -> None:
        self.ibmon.fault_drop_samples = False


class MonitorStale(Injector):
    """IBMon drains silently return the previous estimate."""

    kind = "ibmon-stale"

    def __init__(self, ibmon: "IBMon") -> None:
        self.ibmon = ibmon

    def inject(self, fault: Fault) -> None:
        self.ibmon.fault_stale_reads = True

    def clear(self, fault: Fault) -> None:
        self.ibmon.fault_stale_reads = False


class ControllerOutage(Injector):
    """Pause/resume the ResEx management loop (controller crash+restart)."""

    kind = "controller-outage"

    def __init__(self, controller: "ResExController") -> None:
        self.controller = controller

    def inject(self, fault: Fault) -> None:
        self.controller.pause()

    def clear(self, fault: Fault) -> None:
        self.controller.resume()


class VCPUFreeze(Injector):
    """Freeze a guest's VCPUs for the fault window (``xl pause``)."""

    kind = "vcpu-freeze"

    def __init__(self, hypervisor: "Hypervisor") -> None:
        self.hypervisor = hypervisor

    def inject(self, fault: Fault) -> None:
        domid = self.hypervisor.domain_by_name(fault.target).domid
        self.hypervisor.pause_domain(domid)

    def clear(self, fault: Fault) -> None:
        domid = self.hypervisor.domain_by_name(fault.target).domid
        self.hypervisor.unpause_domain(domid)


class FederationOutage(Injector):
    """Drop the cross-host federation relay's control messages."""

    kind = "federation-outage"

    def __init__(self, federation: "ResExFederation") -> None:
        self.federation = federation

    def inject(self, fault: Fault) -> None:
        self.federation.paused = True

    def clear(self, fault: Fault) -> None:
        self.federation.paused = False
