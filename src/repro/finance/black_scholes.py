"""Black-Scholes-Merton European option pricing and Greeks.

NumPy-vectorised port of the classic routines (the paper's BenchEx uses
Ødegaard's C++ finance library for per-request processing [1]).  All
functions accept scalars or arrays and broadcast.

Notation: S spot, K strike, r continuously-compounded rate, q dividend
yield, sigma volatility, T time to expiry in years.
"""

from __future__ import annotations

from typing import Union

import numpy as np
from scipy.special import ndtr

from repro.errors import FinanceError

ArrayLike = Union[float, np.ndarray]


def _validate(S: ArrayLike, K: ArrayLike, sigma: ArrayLike, T: ArrayLike) -> None:
    try:
        # Scalar fast path: plain comparisons, no asarray/np.any round trip.
        if S > 0 and K > 0 and sigma > 0 and T > 0:
            return
    except (TypeError, ValueError):
        pass  # array operand -> ambiguous truth value; use vector checks
    if np.any(np.asarray(S) <= 0):
        raise FinanceError("spot price must be positive")
    if np.any(np.asarray(K) <= 0):
        raise FinanceError("strike must be positive")
    if np.any(np.asarray(sigma) <= 0):
        raise FinanceError("volatility must be positive")
    if np.any(np.asarray(T) <= 0):
        raise FinanceError("time to expiry must be positive")


def d1_d2(
    S: ArrayLike,
    K: ArrayLike,
    r: ArrayLike,
    sigma: ArrayLike,
    T: ArrayLike,
    q: ArrayLike = 0.0,
):
    """The standard d1/d2 terms."""
    _validate(S, K, sigma, T)
    sqrtT = np.sqrt(T)
    d1 = (np.log(np.asarray(S) / K) + (r - q + 0.5 * sigma**2) * T) / (
        sigma * sqrtT
    )
    d2 = d1 - sigma * sqrtT
    return d1, d2


def call_price(
    S: ArrayLike,
    K: ArrayLike,
    r: ArrayLike,
    sigma: ArrayLike,
    T: ArrayLike,
    q: ArrayLike = 0.0,
) -> ArrayLike:
    """European call value."""
    d1, d2 = d1_d2(S, K, r, sigma, T, q)
    return S * np.exp(-q * T) * ndtr(d1) - K * np.exp(-r * T) * ndtr(d2)


def put_price(
    S: ArrayLike,
    K: ArrayLike,
    r: ArrayLike,
    sigma: ArrayLike,
    T: ArrayLike,
    q: ArrayLike = 0.0,
) -> ArrayLike:
    """European put value."""
    d1, d2 = d1_d2(S, K, r, sigma, T, q)
    return K * np.exp(-r * T) * ndtr(-d2) - S * np.exp(-q * T) * ndtr(-d1)


def price_call_put_delta(
    S: ArrayLike,
    K: ArrayLike,
    r: ArrayLike,
    sigma: ArrayLike,
    T: ArrayLike,
    q: ArrayLike = 0.0,
):
    """Call value, put value, and call delta in one pass.

    Float-identical to calling :func:`call_price`, :func:`put_price`
    and :func:`delta` separately — every product keeps the same
    left-to-right association, only the shared ``d1``/``d2``/discount
    subexpressions are computed once instead of three times.
    """
    d1, d2 = d1_d2(S, K, r, sigma, T, q)
    nd1 = ndtr(d1)
    nd2 = ndtr(d2)
    disc_q = np.exp(-q * T)
    disc_r = np.exp(-r * T)
    S_disc = S * disc_q
    K_disc = K * disc_r
    call = S_disc * nd1 - K_disc * nd2
    put = K_disc * ndtr(-d2) - S_disc * ndtr(-d1)
    call_delta = disc_q * nd1
    return call, put, call_delta


def _pdf(x: ArrayLike) -> ArrayLike:
    return np.exp(-0.5 * np.asarray(x) ** 2) / np.sqrt(2.0 * np.pi)


def delta(
    S: ArrayLike,
    K: ArrayLike,
    r: ArrayLike,
    sigma: ArrayLike,
    T: ArrayLike,
    q: ArrayLike = 0.0,
    kind: str = "call",
) -> ArrayLike:
    """dV/dS."""
    d1, _ = d1_d2(S, K, r, sigma, T, q)
    disc = np.exp(-q * T)
    if kind == "call":
        return disc * ndtr(d1)
    if kind == "put":
        return disc * (ndtr(d1) - 1.0)
    raise FinanceError(f"unknown option kind: {kind!r}")


def gamma(
    S: ArrayLike,
    K: ArrayLike,
    r: ArrayLike,
    sigma: ArrayLike,
    T: ArrayLike,
    q: ArrayLike = 0.0,
) -> ArrayLike:
    """d2V/dS2 (same for calls and puts)."""
    d1, _ = d1_d2(S, K, r, sigma, T, q)
    return np.exp(-q * T) * _pdf(d1) / (S * sigma * np.sqrt(T))


def vega(
    S: ArrayLike,
    K: ArrayLike,
    r: ArrayLike,
    sigma: ArrayLike,
    T: ArrayLike,
    q: ArrayLike = 0.0,
) -> ArrayLike:
    """dV/dsigma (per unit of vol, not per percentage point)."""
    d1, _ = d1_d2(S, K, r, sigma, T, q)
    return S * np.exp(-q * T) * _pdf(d1) * np.sqrt(T)


def theta(
    S: ArrayLike,
    K: ArrayLike,
    r: ArrayLike,
    sigma: ArrayLike,
    T: ArrayLike,
    q: ArrayLike = 0.0,
    kind: str = "call",
) -> ArrayLike:
    """dV/dt (calendar decay, per year)."""
    d1, d2 = d1_d2(S, K, r, sigma, T, q)
    disc_r = np.exp(-r * T)
    disc_q = np.exp(-q * T)
    common = -S * disc_q * _pdf(d1) * sigma / (2.0 * np.sqrt(T))
    if kind == "call":
        return common - r * K * disc_r * ndtr(d2) + q * S * disc_q * ndtr(d1)
    if kind == "put":
        return common + r * K * disc_r * ndtr(-d2) - q * S * disc_q * ndtr(-d1)
    raise FinanceError(f"unknown option kind: {kind!r}")


def rho(
    S: ArrayLike,
    K: ArrayLike,
    r: ArrayLike,
    sigma: ArrayLike,
    T: ArrayLike,
    q: ArrayLike = 0.0,
    kind: str = "call",
) -> ArrayLike:
    """dV/dr."""
    _, d2 = d1_d2(S, K, r, sigma, T, q)
    if kind == "call":
        return K * T * np.exp(-r * T) * ndtr(d2)
    if kind == "put":
        return -K * T * np.exp(-r * T) * ndtr(-d2)
    raise FinanceError(f"unknown option kind: {kind!r}")


def put_call_parity_gap(
    S: ArrayLike,
    K: ArrayLike,
    r: ArrayLike,
    sigma: ArrayLike,
    T: ArrayLike,
    q: ArrayLike = 0.0,
) -> ArrayLike:
    """C - P - (S e^{-qT} - K e^{-rT}); zero up to rounding if the
    implementation is arbitrage-consistent."""
    c = call_price(S, K, r, sigma, T, q)
    p = put_price(S, K, r, sigma, T, q)
    return c - p - (S * np.exp(-q * T) - K * np.exp(-r * T))
