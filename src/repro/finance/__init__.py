"""Financial algorithms library (the BenchEx processing kernel)."""

from repro.finance.binomial import crr_price
from repro.finance.black_scholes import (
    call_price,
    d1_d2,
    delta,
    gamma,
    put_call_parity_gap,
    put_price,
    rho,
    theta,
    vega,
)
from repro.finance.implied_vol import implied_vol
from repro.finance.monte_carlo import MCResult, gbm_terminal, mc_european
from repro.finance.workload import (
    NS_PER_OPTION,
    PricingRequest,
    PricingResult,
    compute_cost_ns,
    process_request,
)

__all__ = [
    "MCResult",
    "NS_PER_OPTION",
    "PricingRequest",
    "PricingResult",
    "call_price",
    "compute_cost_ns",
    "crr_price",
    "d1_d2",
    "delta",
    "gamma",
    "gbm_terminal",
    "implied_vol",
    "mc_european",
    "process_request",
    "put_call_parity_gap",
    "put_price",
    "rho",
    "theta",
    "vega",
]
