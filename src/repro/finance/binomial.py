"""Cox-Ross-Rubinstein binomial trees (European and American)."""

from __future__ import annotations

import numpy as np

from repro.errors import FinanceError


def crr_price(
    S: float,
    K: float,
    r: float,
    sigma: float,
    T: float,
    steps: int = 200,
    kind: str = "call",
    american: bool = False,
    q: float = 0.0,
) -> float:
    """Binomial option value on a recombining CRR lattice.

    Vectorised backward induction: the whole layer is updated with one
    NumPy expression per step (guide: avoid per-node Python loops).
    """
    if steps < 1:
        raise FinanceError(f"steps must be >= 1, got {steps}")
    if kind not in ("call", "put"):
        raise FinanceError(f"unknown option kind: {kind!r}")
    if S <= 0 or K <= 0 or sigma <= 0 or T <= 0:
        raise FinanceError("S, K, sigma, T must all be positive")

    dt = T / steps
    u = np.exp(sigma * np.sqrt(dt))
    d = 1.0 / u
    disc = np.exp(-r * dt)
    p = (np.exp((r - q) * dt) - d) / (u - d)
    if not (0.0 < p < 1.0):
        raise FinanceError(
            f"risk-neutral probability {p:.4f} outside (0,1); "
            "increase steps or check parameters"
        )

    # Terminal layer: S * u^j * d^(n-j), j = 0..n.
    j = np.arange(steps + 1)
    prices = S * u**j * d ** (steps - j)
    if kind == "call":
        values = np.maximum(prices - K, 0.0)
    else:
        values = np.maximum(K - prices, 0.0)

    for step in range(steps - 1, -1, -1):
        values = disc * (p * values[1:] + (1.0 - p) * values[:-1])
        if american:
            jj = np.arange(step + 1)
            prices = S * u**jj * d ** (step - jj)
            if kind == "call":
                exercise = np.maximum(prices - K, 0.0)
            else:
                exercise = np.maximum(K - prices, 0.0)
            values = np.maximum(values, exercise)
    return float(values[0])
