"""Monte Carlo pricing under geometric Brownian motion."""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.errors import FinanceError


@dataclass(frozen=True)
class MCResult:
    """Estimate with its standard error."""

    price: float
    stderr: float

    def confidence_interval(self, z: float = 1.96):
        return (self.price - z * self.stderr, self.price + z * self.stderr)


def gbm_terminal(
    S: float,
    r: float,
    sigma: float,
    T: float,
    n_paths: int,
    rng: np.random.Generator,
    antithetic: bool = True,
) -> np.ndarray:
    """Terminal spot samples under risk-neutral GBM."""
    if n_paths < 1:
        raise FinanceError(f"n_paths must be >= 1, got {n_paths}")
    half = (n_paths + 1) // 2 if antithetic else n_paths
    z = rng.standard_normal(half)
    if antithetic:
        z = np.concatenate([z, -z])[:n_paths]
    drift = (r - 0.5 * sigma**2) * T
    return S * np.exp(drift + sigma * np.sqrt(T) * z)


def mc_european(
    S: float,
    K: float,
    r: float,
    sigma: float,
    T: float,
    n_paths: int = 100_000,
    kind: str = "call",
    rng: np.random.Generator | None = None,
    antithetic: bool = True,
) -> MCResult:
    """European option value by plain Monte Carlo."""
    if kind not in ("call", "put"):
        raise FinanceError(f"unknown option kind: {kind!r}")
    if rng is None:
        rng = np.random.default_rng(0)
    terminal = gbm_terminal(S, r, sigma, T, n_paths, rng, antithetic)
    if kind == "call":
        payoff = np.maximum(terminal - K, 0.0)
    else:
        payoff = np.maximum(K - terminal, 0.0)
    disc = np.exp(-r * T)
    price = disc * float(payoff.mean())
    stderr = disc * float(payoff.std(ddof=1)) / np.sqrt(n_paths)
    return MCResult(price=price, stderr=stderr)
