"""Implied volatility: Newton's method with a bisection fallback."""

from __future__ import annotations

import numpy as np

from repro.errors import FinanceError
from repro.finance.black_scholes import call_price, put_price, vega


def _intrinsic_bounds(S: float, K: float, r: float, T: float, kind: str):
    disc_k = K * np.exp(-r * T)
    if kind == "call":
        lower = max(S - disc_k, 0.0)
        upper = S
    else:
        lower = max(disc_k - S, 0.0)
        upper = disc_k
    return lower, upper


def implied_vol(
    price: float,
    S: float,
    K: float,
    r: float,
    T: float,
    kind: str = "call",
    tol: float = 1e-8,
    max_iter: int = 100,
) -> float:
    """Invert Black-Scholes for sigma.

    Newton iterations from sigma=0.2; if the derivative degenerates or
    iterates escape (0, 5], falls back to bisection.  Raises
    :class:`FinanceError` if the price violates static no-arbitrage
    bounds.
    """
    if kind not in ("call", "put"):
        raise FinanceError(f"unknown option kind: {kind!r}")
    pricer = call_price if kind == "call" else put_price
    lower, upper = _intrinsic_bounds(S, K, r, T, kind)
    if not (lower - 1e-12 <= price <= upper + 1e-12):
        raise FinanceError(
            f"price {price} outside no-arbitrage bounds [{lower}, {upper}]"
        )

    sigma = 0.2
    for _ in range(max_iter):
        model = float(pricer(S, K, r, sigma, T))
        diff = model - price
        if abs(diff) < tol:
            return sigma
        v = float(vega(S, K, r, sigma, T))
        if v < 1e-12:
            break  # flat region: bisection fallback
        step = diff / v
        nxt = sigma - step
        if not (1e-6 < nxt <= 5.0):
            break
        sigma = nxt

    # Bisection on [1e-6, 5].
    lo, hi = 1e-6, 5.0
    f_lo = float(pricer(S, K, r, lo, T)) - price
    for _ in range(200):
        mid = 0.5 * (lo + hi)
        f_mid = float(pricer(S, K, r, mid, T)) - price
        if abs(f_mid) < tol:
            return mid
        if (f_lo < 0) == (f_mid < 0):
            lo, f_lo = mid, f_mid
        else:
            hi = mid
    return 0.5 * (lo + hi)
