"""The per-request processing kernel BenchEx's server runs.

Each trading request carries a batch of option-pricing tasks; the
server prices them (really — the numbers are computed) and the
simulation charges the corresponding CPU time.  The ns-per-option
constant is a calibration knob: the paper's base configuration shows a
~209 us total request latency whose compute component (CTime) is the
stable part (Fig. 2), so CTime is sized by ``options_per_request``.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Tuple

import numpy as np

from repro.errors import FinanceError
from repro.finance.black_scholes import price_call_put_delta

#: Simulated CPU cost of pricing one option (Black-Scholes + one Greek),
#: about what a tuned C implementation needs on the testbed's 1.86 GHz
#: Xeons (a few hundred ns/option).
NS_PER_OPTION = 650


@dataclass(frozen=True)
class PricingRequest:
    """One exchange transaction: a batch of quotes to (re)price."""

    request_id: int
    n_options: int
    spot: float
    strike: float
    rate: float
    sigma: float
    expiry_years: float

    def __post_init__(self) -> None:
        if self.n_options < 1:
            raise FinanceError("a request must price at least one option")


@dataclass(frozen=True)
class PricingResult:
    """Aggregated response the server returns to the client."""

    request_id: int
    mean_call: float
    mean_put: float
    mean_delta: float


def process_request(req: PricingRequest, rng: np.random.Generator) -> Tuple[PricingResult, int]:
    """Price the request's batch; returns (result, cpu_cost_ns).

    The batch perturbs spot/strike around the request's levels the way
    an exchange reprices a book of neighbouring strikes.
    """
    n = req.n_options
    spots = req.spot * (1.0 + 0.01 * rng.standard_normal(n))
    strikes = req.strike * (1.0 + 0.05 * (rng.random(n) - 0.5))
    spots = np.clip(spots, 1e-6, None)
    strikes = np.clip(strikes, 1e-6, None)
    calls, puts, deltas = price_call_put_delta(
        spots, strikes, req.rate, req.sigma, req.expiry_years
    )
    result = PricingResult(
        request_id=req.request_id,
        mean_call=float(np.mean(calls)),
        mean_put=float(np.mean(puts)),
        mean_delta=float(np.mean(deltas)),
    )
    return result, n * NS_PER_OPTION


def compute_cost_ns(n_options: int) -> int:
    """Simulated CPU cost for a batch without executing it."""
    if n_options < 1:
        raise FinanceError("n_options must be >= 1")
    return n_options * NS_PER_OPTION
