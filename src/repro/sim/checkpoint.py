"""Barrier-aligned checkpoint/restore for the sharded runtime.

At a barrier every shard is quiescent at a window boundary: local heaps
hold only future work, and every cross-shard message in flight has been
drained into the parent's routing step.  That makes the barrier the one
instant where the whole partitioned world has a consistent cut — and,
because the runtime is deterministic, the cut does not need to capture
the worlds themselves.  A shard's trajectory is a pure function of its
build inputs and the ordered sequence of parent->worker frames it has
ingested (strides piggybacked on inbox batches — see the pipe protocol
in :mod:`repro.sim.shard`).  So the checkpoint records the *replay
journal*: every frame the parent has sent to each shard, plus a digest
of every frame each shard has sent back.  Restoring (or respawning a
crashed worker mid-run) rebuilds the shard from scratch and replays the
journal in lockstep, verifying at each exchange that the regenerated
outbox frame matches the recorded digest — any divergence means the
build is not deterministic, which is a contract violation worth
aborting on, not papering over.

This is deliberately *not* a pickle of the live worlds: a shard's event
heap holds :class:`~repro.sim.events.Event` callbacks that close over
running generators, which CPython cannot serialize.  The journal is
smaller, format-stable, and — crucially — the restored run is
byte-identical to an uninterrupted one because the workers re-execute
the exact event sequence rather than resuming from a best-effort
facsimile.

On-disk format (``ckpt/1``)::

    b"RXC1" + sha256(body) [32 bytes] + body (pickled payload dict)

Files are written atomically (temp file + fsync + ``os.replace``) and
named ``ckpt-<windows:08d>-<digest12>.rxc`` — content-addressed, so a
torn or doubled write can never alias a good checkpoint.  Every file is
self-contained (the full journal from t=0), so falling back from a
damaged newest file to the next-older one loses progress, never
consistency.  :func:`load_checkpoint` rejects corruption with a
structured :class:`~repro.errors.CheckpointError`;
:func:`load_latest` walks newest-to-oldest past damaged files.
"""

from __future__ import annotations

import hashlib
import os
import pickle
import tempfile
from dataclasses import dataclass
from pathlib import Path
from typing import Any, Callable, Dict, List, Optional, Tuple, Union

from repro.errors import CheckpointError, ConfigError

__all__ = [
    "CKPT_MAGIC",
    "CKPT_SCHEMA",
    "CheckpointConfig",
    "RecoveryPolicy",
    "ShardJournal",
    "checkpoint_payload",
    "journal_from_payload",
    "list_checkpoints",
    "load_checkpoint",
    "load_latest",
    "save_checkpoint",
    "validate_restore",
]

#: Schema identifier carried inside every checkpoint payload.
CKPT_SCHEMA = "ckpt/1"
#: Leading magic of every checkpoint file.
CKPT_MAGIC = b"RXC1"
_DIGEST_LEN = 32
_SUFFIX = ".rxc"


@dataclass(frozen=True)
class CheckpointConfig:
    """Where and how often the sharded runtime cuts barrier checkpoints.

    ``every`` is a cadence in *barriers* (actual exchanges, not logical
    windows — under elision a single barrier may cover a large stride,
    and only barriers are consistent cuts).  ``keep`` bounds the number
    of files retained; older ones are pruned after each write, always
    leaving at least one fallback behind the newest.
    """

    dir: Union[str, Path]
    every: int = 8
    keep: int = 3

    def __post_init__(self) -> None:
        if self.every < 1:
            raise ConfigError(
                f"checkpoint cadence must be >= 1 barrier, got {self.every}"
            )
        if self.keep < 1:
            raise ConfigError(
                f"checkpoint retention must be >= 1 file, got {self.keep}"
            )

    @property
    def path(self) -> Path:
        return Path(self.dir)


@dataclass(frozen=True)
class RecoveryPolicy:
    """Respawn budget and backoff for in-run worker recovery.

    ``max_respawns`` bounds attempts *per shard*; a shard that keeps
    dying exhausts its budget and the run falls back to the terminal
    :class:`~repro.errors.ShardSyncError` it would have raised without
    recovery.  The backoff is a pure function of
    ``(backoff_seed, shard, attempt)`` — the same seeded-jitter
    discipline as :meth:`repro.supervise.SupervisePolicy.backoff_s` —
    so two runs of the same campaign recover on the same schedule.
    """

    max_respawns: int = 2
    backoff_base_s: float = 0.05
    backoff_cap_s: float = 2.0
    backoff_seed: int = 0

    def __post_init__(self) -> None:
        if self.max_respawns < 0:
            raise ConfigError(
                f"max_respawns must be >= 0, got {self.max_respawns}"
            )
        if self.backoff_base_s < 0 or self.backoff_cap_s < 0:
            raise ConfigError("backoff times must be >= 0")

    def backoff_s(self, shard: int, attempt: int) -> float:
        """Deterministic jittered delay before respawn ``attempt``
        (1-based) of ``shard``."""
        base = min(
            self.backoff_base_s * (2.0 ** (attempt - 1)), self.backoff_cap_s
        )
        seed = hashlib.sha256(
            f"{self.backoff_seed}:{shard}:{attempt}".encode()
        ).digest()
        jitter = int.from_bytes(seed[:8], "big") / 2**64
        return base * (0.5 + jitter)


class ShardJournal:
    """The parent-side replay log of one sharded run.

    Per shard, in exchange order: the raw bytes of every parent->worker
    frame (everything a respawned worker needs to re-ingest), and the
    SHA-256 of every worker->parent barrier frame (what the replay
    verifies the rebuilt worker regenerates).  Appends happen *before*
    the corresponding pipe write, so a send that fails halfway is
    already journaled and the replay leaves the respawned worker in
    exactly the state the parent believes it is in.
    """

    __slots__ = ("shards", "frames", "digests")

    def __init__(self, shards: int) -> None:
        self.shards = int(shards)
        self.frames: List[List[bytes]] = [[] for _ in range(shards)]
        self.digests: List[List[str]] = [[] for _ in range(shards)]

    def record_worker_frame(self, shard: int, frame: bytes) -> None:
        self.digests[shard].append(hashlib.sha256(frame).hexdigest())

    def record_parent_frame(self, shard: int, frame: bytes) -> None:
        self.frames[shard].append(frame)

    def exchanges(self, shard: int) -> int:
        return len(self.frames[shard])

    def bytes_journaled(self) -> int:
        return sum(len(f) for per in self.frames for f in per)


def checkpoint_payload(
    *,
    world_key: str,
    k: int,
    stride: int,
    until_ns: int,
    lookahead_ns: int,
    n_domains: int,
    shards: int,
    coalesce: bool,
    stats: Dict[str, Any],
    journal: ShardJournal,
) -> Dict[str, Any]:
    """The self-contained resume state written at one barrier.

    ``k`` is the next window index and ``stride`` the stride already
    piggybacked to the workers — together with the journal they are the
    complete parent-side loop state at a barrier.
    """
    return {
        "schema": CKPT_SCHEMA,
        "world_key": world_key,
        "k": int(k),
        "stride": int(stride),
        "until_ns": int(until_ns),
        "lookahead_ns": int(lookahead_ns),
        "n_domains": int(n_domains),
        "shards": int(shards),
        "coalesce": bool(coalesce),
        "stats": dict(stats),
        "journal_frames": [list(per) for per in journal.frames],
        "journal_digests": [list(per) for per in journal.digests],
    }


def journal_from_payload(payload: Dict[str, Any]) -> ShardJournal:
    """Rebuild the replay journal a checkpoint payload carries."""
    frames = payload["journal_frames"]
    digests = payload["journal_digests"]
    shards = int(payload["shards"])
    if len(frames) != shards or len(digests) != shards:
        raise CheckpointError(
            f"checkpoint journal covers {len(frames)} shard(s), "
            f"payload says {shards}"
        )
    lengths = {len(per) for per in frames} | {len(per) for per in digests}
    if len(lengths) > 1:
        raise CheckpointError(
            f"checkpoint journal is ragged (per-shard exchange counts "
            f"{sorted(lengths)}); strides are global, so a consistent "
            "barrier cut has one count"
        )
    journal = ShardJournal(shards)
    journal.frames = [list(per) for per in frames]
    journal.digests = [list(per) for per in digests]
    return journal


def validate_restore(
    payload: Dict[str, Any],
    *,
    world_key: str,
    shards: int,
    n_domains: int,
    until_ns: int,
    lookahead_ns: int,
    coalesce: bool,
    n_windows: int,
) -> None:
    """Reject a checkpoint that does not describe *this* run.

    Geometry and horizon must match exactly: a journal recorded under a
    different lookahead or shard count replays a different message
    stream, and restoring it would silently break the determinism
    contract the checkpoint exists to preserve.
    """
    expect = {
        "world_key": world_key,
        "shards": int(shards),
        "n_domains": int(n_domains),
        "until_ns": int(until_ns),
        "lookahead_ns": int(lookahead_ns),
        "coalesce": bool(coalesce),
    }
    for key, want in expect.items():
        got = payload.get(key)
        if got != want:
            raise CheckpointError(
                f"checkpoint does not match this run: {key} is {got!r} "
                f"in the file, {want!r} here"
            )
    k = int(payload["k"])
    if not 0 <= k <= n_windows:
        raise CheckpointError(
            f"checkpoint window index {k} is outside this run's "
            f"{n_windows} windows"
        )


def save_checkpoint(
    config: CheckpointConfig, payload: Dict[str, Any]
) -> Path:
    """Atomically write ``payload`` as a ``ckpt/1`` file; prune old ones.

    The body digest is both the integrity stamp and part of the file
    name, so concurrent or repeated writes of the same barrier state
    converge on one file and a torn write can only ever produce a file
    that fails validation — never one that aliases a good checkpoint.
    """
    directory = config.path
    directory.mkdir(parents=True, exist_ok=True)
    body = pickle.dumps(payload, protocol=pickle.HIGHEST_PROTOCOL)
    digest = hashlib.sha256(body).digest()
    name = f"ckpt-{int(payload['k']):08d}-{digest.hex()[:12]}{_SUFFIX}"
    final = directory / name
    fd, tmp = tempfile.mkstemp(
        prefix=".ckpt-", suffix=".tmp", dir=str(directory)
    )
    try:
        with os.fdopen(fd, "wb") as fh:
            fh.write(CKPT_MAGIC)
            fh.write(digest)
            fh.write(body)
            fh.flush()
            os.fsync(fh.fileno())
        os.replace(tmp, final)
    except BaseException:
        try:
            os.unlink(tmp)
        except OSError:
            pass
        raise
    _prune(directory, config.keep)
    return final


def _prune(directory: Path, keep: int) -> None:
    files = list_checkpoints(directory)
    for stale in files[:-keep]:
        try:
            stale.unlink()
        except OSError:  # pragma: no cover - racing cleanup is fine
            pass


def list_checkpoints(directory: Union[str, Path]) -> List[Path]:
    """Checkpoint files in ``directory``, oldest first.

    The window index is zero-padded in the name, so lexicographic order
    is barrier order.
    """
    directory = Path(directory)
    if not directory.is_dir():
        return []
    return sorted(
        p for p in directory.iterdir()
        if p.name.startswith("ckpt-") and p.name.endswith(_SUFFIX)
    )


def load_checkpoint(path: Union[str, Path]) -> Dict[str, Any]:
    """Read + validate one checkpoint file.

    Raises :class:`CheckpointError` on a bad magic, truncated body,
    digest mismatch, undecodable payload or wrong schema — every
    corruption shape the property tests enumerate.
    """
    path = Path(path)
    try:
        blob = path.read_bytes()
    except OSError as exc:
        raise CheckpointError(f"cannot read checkpoint {path}: {exc}") from exc
    head = len(CKPT_MAGIC) + _DIGEST_LEN
    if len(blob) < head:
        raise CheckpointError(
            f"checkpoint {path.name} truncated: {len(blob)} bytes is "
            f"shorter than the {head}-byte header"
        )
    if blob[: len(CKPT_MAGIC)] != CKPT_MAGIC:
        raise CheckpointError(
            f"checkpoint {path.name} has bad magic "
            f"{blob[:len(CKPT_MAGIC)]!r} (want {CKPT_MAGIC!r})"
        )
    digest = blob[len(CKPT_MAGIC): head]
    body = blob[head:]
    actual = hashlib.sha256(body).digest()
    if actual != digest:
        raise CheckpointError(
            f"checkpoint {path.name} failed its digest check "
            f"(stamped {digest.hex()[:12]}, body {actual.hex()[:12]}); "
            "the file is corrupt or was torn mid-write"
        )
    try:
        payload = pickle.loads(body)
    except Exception as exc:
        raise CheckpointError(
            f"checkpoint {path.name} body does not decode: {exc}"
        ) from exc
    if not isinstance(payload, dict) or payload.get("schema") != CKPT_SCHEMA:
        got = payload.get("schema") if isinstance(payload, dict) else payload
        raise CheckpointError(
            f"checkpoint {path.name} carries schema {got!r} "
            f"(want {CKPT_SCHEMA!r})"
        )
    return payload


def load_latest(
    directory: Union[str, Path],
    *,
    world_key: Optional[str] = None,
    on_skip: Optional[Callable[[Path, str], None]] = None,
) -> Optional[Tuple[Dict[str, Any], Path]]:
    """The newest usable checkpoint in ``directory``, or ``None``.

    Walks newest-to-oldest, skipping files that fail validation (each
    skip is reported through ``on_skip``) — a damaged newest file costs
    the barriers since the next-older one, nothing more.  A checkpoint
    recorded for a *different* world is not damage: a ``world_key``
    mismatch raises :class:`CheckpointError` immediately, because every
    other file in that directory describes the same wrong world and
    silently restarting from zero would mask the operator error.
    Returns ``None`` when the directory is empty or absent; raises when
    files exist but none validates.
    """
    files = list_checkpoints(directory)
    if not files:
        return None
    last_error: Optional[CheckpointError] = None
    for path in reversed(files):
        try:
            payload = load_checkpoint(path)
        except CheckpointError as exc:
            last_error = exc
            if on_skip is not None:
                on_skip(path, str(exc))
            continue
        if world_key is not None and payload["world_key"] != world_key:
            raise CheckpointError(
                f"checkpoint {path.name} was recorded for world "
                f"{payload['world_key']!r}, not {world_key!r}; refusing "
                "to restore across worlds"
            )
        return payload, path
    raise CheckpointError(
        f"no usable checkpoint in {directory}: all {len(files)} file(s) "
        f"failed validation (last: {last_error})"
    )
