"""Struct-packed wire frames for cross-shard message batches.

The fork backend used to pickle every :class:`~repro.sim.shard.Message`
individually — per barrier, per message, one dataclass pickle with its
class-path header.  A barrier's worth of traffic between one shard pair
is better treated as what it is: a batch of fixed-shape records.  This
module packs such a batch into **one** contiguous frame:

``RXF1 | count:u32 | record*``

with each record::

    origin:i64 seq:i64 dest:i64 deliver_at:i64
    kind_len:u16 kind:utf8
    payload_mode:u8 payload...

``payload_mode`` 0 is the fast path — a flat tuple of tagged scalars
(``None``/bool/int64/float64/str), each element one tag byte plus its
fixed- or length-prefixed encoding; IEEE doubles round-trip bit-exactly
via ``!d``.  Anything richer (nested tuples, big ints, arbitrary
objects) falls back to ``payload_mode`` 1: a length-prefixed pickle of
that one payload, so the contract stays "any picklable payload works"
while the common all-scalar batch never touches the pickler.

Decoding restores the batch sorted by ``(origin, seq)`` — the
deterministic same-instant delivery order — regardless of encode
order, so a routed frame is ingestible as-is.
"""

from __future__ import annotations

import pickle
import struct
from typing import Any, List, Sequence, Tuple

from repro.errors import ShardSyncError
from repro.sim.shard_types import Message

MAGIC = b"RXF1"

_HEAD = struct.Struct("!I")
_RECORD = struct.Struct("!qqqq")
_U8 = struct.Struct("!B")
_U16 = struct.Struct("!H")
_U32 = struct.Struct("!I")
_I64 = struct.Struct("!q")
_F64 = struct.Struct("!d")

_I64_MIN = -(2**63)
_I64_MAX = 2**63 - 1

#: Payload modes.
_SCALARS = 0
_PICKLE = 1

#: Scalar element tags (one byte each).
_TAG_NONE = ord("N")
_TAG_TRUE = ord("T")
_TAG_FALSE = ord("F")
_TAG_INT = ord("I")
_TAG_FLOAT = ord("D")
_TAG_STR = ord("S")


def _encode_scalars(payload: Tuple[Any, ...]) -> "bytes | None":
    """The fast path: a flat tuple of tagged scalars, or ``None`` if
    any element needs the pickle fallback."""
    if len(payload) > 0xFFFF:
        return None
    parts = [_U16.pack(len(payload))]
    for item in payload:
        if item is None:
            parts.append(_U8.pack(_TAG_NONE))
        elif item is True:
            parts.append(_U8.pack(_TAG_TRUE))
        elif item is False:
            parts.append(_U8.pack(_TAG_FALSE))
        elif type(item) is int:
            if not _I64_MIN <= item <= _I64_MAX:
                return None
            parts.append(_U8.pack(_TAG_INT) + _I64.pack(item))
        elif type(item) is float:
            parts.append(_U8.pack(_TAG_FLOAT) + _F64.pack(item))
        elif type(item) is str:
            try:
                raw = item.encode("utf-8")
            except UnicodeEncodeError:
                return None  # lone surrogates etc. -> pickle
            if len(raw) > 0xFFFFFFFF:  # pragma: no cover - absurd
                return None
            parts.append(_U8.pack(_TAG_STR) + _U32.pack(len(raw)) + raw)
        else:
            return None
    return b"".join(parts)


class _Reader:
    """Bounds-checked cursor over one frame."""

    __slots__ = ("data", "pos")

    def __init__(self, data: bytes) -> None:
        self.data = data
        self.pos = 0

    def take(self, n: int) -> bytes:
        end = self.pos + n
        if end > len(self.data):
            raise ShardSyncError(
                f"truncated shard frame: wanted {n} bytes at offset "
                f"{self.pos}, frame is {len(self.data)} bytes"
            )
        chunk = self.data[self.pos:end]
        self.pos = end
        return chunk

    def unpack(self, fmt: struct.Struct):
        return fmt.unpack(self.take(fmt.size))


def _decode_scalars(reader: _Reader) -> Tuple[Any, ...]:
    (count,) = reader.unpack(_U16)
    items: List[Any] = []
    for _ in range(count):
        (tag,) = reader.unpack(_U8)
        if tag == _TAG_NONE:
            items.append(None)
        elif tag == _TAG_TRUE:
            items.append(True)
        elif tag == _TAG_FALSE:
            items.append(False)
        elif tag == _TAG_INT:
            items.append(reader.unpack(_I64)[0])
        elif tag == _TAG_FLOAT:
            items.append(reader.unpack(_F64)[0])
        elif tag == _TAG_STR:
            (nraw,) = reader.unpack(_U32)
            items.append(reader.take(nraw).decode("utf-8"))
        else:
            raise ShardSyncError(
                f"unknown scalar tag {tag:#x} in shard frame"
            )
    return tuple(items)


def encode_batch(messages: Sequence[Message]) -> bytes:
    """Pack one barrier's batch for one shard pair into a frame."""
    parts = [MAGIC, _HEAD.pack(len(messages))]
    for msg in messages:
        parts.append(
            _RECORD.pack(msg.origin, msg.seq, msg.dest, msg.deliver_at)
        )
        kind = msg.kind.encode("utf-8")
        if len(kind) > 0xFFFF:
            raise ShardSyncError(
                f"message kind of {len(kind)} bytes exceeds the frame "
                "format's u16 length"
            )
        parts.append(_U16.pack(len(kind)))
        parts.append(kind)
        scalars = _encode_scalars(msg.payload)
        if scalars is not None:
            parts.append(_U8.pack(_SCALARS))
            parts.append(scalars)
        else:
            raw = pickle.dumps(msg.payload, protocol=pickle.HIGHEST_PROTOCOL)
            parts.append(_U8.pack(_PICKLE))
            parts.append(_U32.pack(len(raw)))
            parts.append(raw)
    return b"".join(parts)


def decode_batch(data: bytes) -> List[Message]:
    """Unpack a frame; the batch comes back ``(origin, seq)``-sorted."""
    if data[:4] != MAGIC:
        raise ShardSyncError(
            f"bad shard frame magic {data[:4]!r} (want {MAGIC!r})"
        )
    reader = _Reader(data)
    reader.pos = 4
    (count,) = reader.unpack(_HEAD)
    messages: List[Message] = []
    for _ in range(count):
        origin, seq, dest, deliver_at = reader.unpack(_RECORD)
        (kind_len,) = reader.unpack(_U16)
        kind = reader.take(kind_len).decode("utf-8")
        (mode,) = reader.unpack(_U8)
        if mode == _SCALARS:
            payload = _decode_scalars(reader)
        elif mode == _PICKLE:
            (nraw,) = reader.unpack(_U32)
            payload = pickle.loads(reader.take(nraw))
        else:
            raise ShardSyncError(
                f"unknown payload mode {mode:#x} in shard frame"
            )
        messages.append(
            Message(
                origin=origin, seq=seq, dest=dest, deliver_at=deliver_at,
                kind=kind, payload=payload,
            )
        )
    if reader.pos != len(data):
        raise ShardSyncError(
            f"shard frame has {len(data) - reader.pos} trailing bytes"
        )
    messages.sort(key=lambda m: (m.origin, m.seq))
    return messages
