"""Generator-driven processes for the discrete-event kernel."""

from __future__ import annotations

from typing import TYPE_CHECKING, Any, Generator, Optional

from repro.errors import SimulationError
from repro.sim.events import PENDING, URGENT, Event, Initialize, Interrupt

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.sim.core import Environment

ProcessGenerator = Generator[Event, Any, Any]


class Process(Event):
    """A running simulation process.

    A process wraps a generator that yields :class:`Event` instances.
    The process itself is an event that triggers when the generator
    returns (value = return value) or raises (failure).
    """

    __slots__ = ("_generator", "_target", "_target_slot", "_resume_cb", "name")

    def __init__(
        self,
        env: "Environment",
        generator: ProcessGenerator,
        name: Optional[str] = None,
    ) -> None:
        if not hasattr(generator, "throw"):
            raise SimulationError(f"{generator!r} is not a generator")
        super().__init__(env)
        self._generator = generator
        #: The event this process is currently waiting on (None when active).
        self._target: Optional[Event] = None
        #: Index of our callback in the target's callback list, so an
        #: interrupt can tombstone it in O(1) instead of scanning.
        self._target_slot: int = -1
        #: The bound resume callback, created once.  Waiting on an event
        #: appends this exact object, which makes the tombstone identity
        #: check valid and avoids allocating a bound method per wait.
        self._resume_cb = self._resume
        self.name = name or getattr(generator, "__name__", "process")
        Initialize(env, self)

    @property
    def target(self) -> Optional[Event]:
        """The event this process is currently waiting for."""
        return self._target

    @property
    def is_alive(self) -> bool:
        """True while the generator has not terminated."""
        return self._value is PENDING

    def interrupt(self, cause: Any = None) -> None:
        """Throw :class:`Interrupt` into the process at the current time.

        Interrupting a dead process is an error; interrupting a process
        that is waiting on an event detaches it from that event (the
        event stays valid and may be re-awaited).
        """
        if self._value is not PENDING:
            raise SimulationError(f"{self!r} has terminated; cannot interrupt")
        if self is self.env.active_process:
            raise SimulationError("a process cannot interrupt itself")

        interrupt_event = Event(self.env)
        interrupt_event._ok = False
        interrupt_event._value = Interrupt(cause)
        interrupt_event.callbacks = [self._resume_cb]
        self.env.schedule(interrupt_event, priority=URGENT)

    def _resume(self, event: Event) -> None:
        """Advance the generator with ``event``'s outcome."""
        env = self.env
        env._active_process = self
        tel = env.telemetry
        if tel.kernel_dispatch:
            tel.kernel_resume(env._now, self.name)

        # Detach from the previous target if we were interrupted while
        # waiting on a still-pending event: tombstone our callback slot
        # (the dispatch loop skips None entries).
        target = self._target
        if target is not None and target is not event:
            cbs = target.callbacks
            if cbs is not None:
                slot = self._target_slot
                if 0 <= slot < len(cbs) and cbs[slot] is self._resume_cb:
                    cbs[slot] = None
        self._target = None

        generator = self._generator
        while True:
            try:
                if event._ok:
                    next_event = generator.send(event._value)
                else:
                    # The event's exception is thrown into the generator;
                    # mark it defused so the kernel does not re-raise it.
                    event._defused = True
                    exc = event._value
                    if isinstance(exc, BaseException):
                        next_event = generator.throw(exc)
                    else:  # pragma: no cover - defensive
                        next_event = generator.throw(
                            SimulationError(repr(exc))
                        )
            except StopIteration as stop:
                self._ok = True
                self._value = stop.value
                env.schedule(self)
                break
            except BaseException as exc:
                if isinstance(exc, (KeyboardInterrupt, SystemExit)):
                    raise
                self._ok = False
                self._value = exc
                env.schedule(self)
                break

            if not isinstance(next_event, Event):
                msg = (
                    f"process {self.name!r} yielded a non-event: {next_event!r}"
                )
                event = Event(env)
                event._ok = False
                event._value = SimulationError(msg)
                continue

            if next_event.env is not env:
                event = Event(env)
                event._ok = False
                event._value = SimulationError(
                    "yielded event belongs to a different environment"
                )
                continue

            cbs = next_event.callbacks
            if cbs is not None:
                # Pending or triggered-but-unprocessed: wait for it.
                self._target_slot = len(cbs)
                cbs.append(self._resume_cb)
                self._target = next_event
                break

            # Already processed: loop around immediately with its outcome.
            event = next_event

        env._active_process = None

    def __repr__(self) -> str:
        state = "alive" if self.is_alive else "dead"
        return f"<Process {self.name!r} {state} at {id(self):#x}>"
