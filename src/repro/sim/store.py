"""Message-passing primitives: Store and FilterStore.

A :class:`Store` is an unbounded-or-bounded buffer of Python objects
with FIFO put/get queues — the building block for request queues,
mailboxes, and the in-VM agent channels.
"""

from __future__ import annotations

from collections import deque
from typing import TYPE_CHECKING, Any, Callable, Deque, List, Optional

from repro.errors import SimulationError
from repro.sim.events import Event

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.sim.core import Environment


class StorePut(Event):
    """Pending insertion of ``item`` into a store."""

    __slots__ = ("item",)

    def __init__(self, store: "Store", item: Any) -> None:
        super().__init__(store.env)
        self.item = item
        store._put_queue.append(self)
        store._dispatch()


class StoreGet(Event):
    """Pending retrieval from a store; value is the retrieved item."""

    __slots__ = ("filter",)

    def __init__(
        self, store: "Store", filter: Optional[Callable[[Any], bool]] = None
    ) -> None:
        super().__init__(store.env)
        self.filter = filter
        store._get_queue.append(self)
        store._dispatch()


class Store:
    """FIFO object buffer with optional capacity."""

    def __init__(self, env: "Environment", capacity: Optional[int] = None) -> None:
        if capacity is not None and capacity < 1:
            raise SimulationError(f"capacity must be >= 1 or None, got {capacity}")
        self.env = env
        self.capacity = capacity
        self.items: Deque[Any] = deque()
        self._put_queue: List[StorePut] = []
        self._get_queue: List[StoreGet] = []

    def __len__(self) -> int:
        return len(self.items)

    @property
    def is_full(self) -> bool:
        return self.capacity is not None and len(self.items) >= self.capacity

    def put(self, item: Any) -> StorePut:
        """Insert ``item``; the event triggers once accepted."""
        return StorePut(self, item)

    def get(self) -> StoreGet:
        """Retrieve the oldest item; the event triggers with the item."""
        return StoreGet(self)

    def cancel_get(self, get_event: StoreGet) -> bool:
        """Withdraw a pending get; returns True if it was removed."""
        if get_event in self._get_queue:
            self._get_queue.remove(get_event)
            return True
        return False

    # -- internals ---------------------------------------------------------
    def _dispatch(self) -> None:
        progress = True
        while progress:
            progress = False
            # Admit puts while there is room.
            while self._put_queue and not self.is_full:
                put = self._put_queue.pop(0)
                self.items.append(put.item)
                put.succeed()
                progress = True
            # Satisfy gets while there are items.
            i = 0
            while i < len(self._get_queue) and self.items:
                get = self._get_queue[i]
                item = self._match(get)
                if item is not _NO_MATCH:
                    self._get_queue.pop(i)
                    get.succeed(item)
                    progress = True
                else:
                    i += 1

    def _match(self, get: StoreGet) -> Any:
        if not self.items:
            return _NO_MATCH
        return self.items.popleft()

    def __repr__(self) -> str:
        return (
            f"<{type(self).__name__} items={len(self.items)} "
            f"puts={len(self._put_queue)} gets={len(self._get_queue)}>"
        )


class FilterStore(Store):
    """Store whose gets may carry a predicate selecting which item to take."""

    def get(self, filter: Optional[Callable[[Any], bool]] = None) -> StoreGet:  # type: ignore[override]
        return StoreGet(self, filter)

    def _match(self, get: StoreGet) -> Any:
        if get.filter is None:
            if not self.items:
                return _NO_MATCH
            return self.items.popleft()
        for idx, item in enumerate(self.items):
            if get.filter(item):
                del self.items[idx]
                return item
        return _NO_MATCH


class _NoMatch:
    __slots__ = ()

    def __repr__(self) -> str:  # pragma: no cover
        return "<no-match>"


_NO_MATCH = _NoMatch()
