"""Deterministic random-number stream management.

Every stochastic component draws from its own named child stream of a
single root seed, so adding a new component never perturbs the draws of
existing ones — a standard reproducibility discipline for parallel /
multi-component simulations.
"""

from __future__ import annotations

import hashlib
from typing import Dict

import numpy as np


class RngRegistry:
    """Hands out independent, named ``numpy.random.Generator`` streams."""

    def __init__(self, root_seed: int = 0) -> None:
        self.root_seed = int(root_seed)
        self._streams: Dict[str, np.random.Generator] = {}

    def stream(self, name: str) -> np.random.Generator:
        """Return the generator for ``name``, creating it on first use.

        The child seed is derived by hashing (root_seed, name), so the
        mapping is stable across runs and insertion orders.
        """
        if name not in self._streams:
            digest = hashlib.sha256(
                f"{self.root_seed}:{name}".encode("utf-8")
            ).digest()
            child = int.from_bytes(digest[:8], "little")
            self._streams[name] = np.random.default_rng(
                np.random.SeedSequence([self.root_seed, child])
            )
        return self._streams[name]

    def spawn(self, name: str) -> "RngRegistry":
        """Derive a sub-registry (e.g. per-host) with an independent root."""
        digest = hashlib.sha256(
            f"{self.root_seed}/registry:{name}".encode("utf-8")
        ).digest()
        return RngRegistry(int.from_bytes(digest[:8], "little"))

    def __repr__(self) -> str:
        return f"<RngRegistry seed={self.root_seed} streams={len(self._streams)}>"
