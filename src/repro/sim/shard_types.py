"""The cross-domain message record shared by the shard kernel and its
wire format.

Split out of :mod:`repro.sim.shard` so :mod:`repro.sim.frames` (which
packs batches of these) and the kernel (which routes them) can both
import the type without a cycle.  Public API re-exports from
:mod:`repro.sim.shard`.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Tuple


@dataclass(frozen=True)
class Message:
    """One cross-domain event in flight.

    ``payload`` must be plain picklable data (ints, floats, strings,
    tuples) — in a forked run it crosses a pipe, and the contract that
    nothing richer crosses is what keeps workers rebuildable from
    their job spec alone.  Flat tuples of scalars ride the struct-packed
    fast path of :mod:`repro.sim.frames`; anything richer pays a
    per-payload pickle.
    """

    origin: int
    seq: int
    dest: int
    deliver_at: int
    kind: str
    payload: Tuple[Any, ...]

    @property
    def order_key(self) -> Tuple[int, int]:
        """The deterministic same-instant delivery order."""
        return (self.origin, self.seq)
