"""Core event types for the discrete-event kernel.

The kernel follows the classic generator-driven design: a
:class:`~repro.sim.process.Process` is a generator that *yields* events;
when a yielded event triggers, the kernel resumes the generator with the
event's value (or throws the event's exception into it).

Events move through three states:

``pending``  -> created, not yet triggered
``triggered``-> has a value/exception and is scheduled on the heap
``processed``-> its callbacks have run

Unlike wall-clock frameworks there is no concurrency here; callbacks run
synchronously inside ``Environment.step`` in deterministic order.

Hot-path note: triggering an event pushes directly onto the
environment's heap (the exact operation :meth:`Environment.schedule`
performs for a zero delay) instead of going through the method call —
``succeed``/``fail``/``Timeout`` together account for the majority of
heap pushes in a run, and the kernel's per-event budget is small.
Callback lists support *tombstones*: a cancelled slot is set to
``None`` in place (O(1)) rather than removed by a list scan, and the
dispatch loop skips dead slots.
"""

from __future__ import annotations

from heapq import heappush
from typing import TYPE_CHECKING, Any, Callable, Iterable, List, Optional

from repro.errors import SimulationError

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.sim.core import Environment

# Sentinel distinguishing "no value yet" from a legitimate ``None`` value.
PENDING = object()

# Scheduling priorities: URGENT events at the same timestamp run before
# NORMAL ones.  Used by the kernel for interrupts and process bootstrap.
# DELIVERY is reserved for cross-domain mailbox wake-ups
# (:mod:`repro.sim.shard`): they must run before *any* same-timestamp
# domain event regardless of heap insertion order, because in a
# partitioned run the wake-up may be armed at a barrier (between
# windows) rather than during event execution, so its sequence number
# carries no cross-mode meaning.
DELIVERY = -1
URGENT = 0
NORMAL = 1


class Event:
    """A one-shot occurrence that processes can wait on.

    Parameters
    ----------
    env:
        The environment the event belongs to.
    """

    __slots__ = ("env", "callbacks", "_value", "_ok", "_defused")

    def __init__(self, env: "Environment") -> None:
        self.env = env
        #: Callables invoked with this event once it is processed.  Set to
        #: ``None`` after processing, which doubles as the "processed" flag.
        #: A slot holding ``None`` is a tombstone: a cancelled waiter.
        self.callbacks: Optional[List[Optional[Callable[["Event"], None]]]] = []
        self._value: Any = PENDING
        self._ok: bool = True
        #: Set once a waiter has consumed this event's failure, so the
        #: kernel does not re-raise it out of the run loop.
        self._defused: bool = False

    # -- state inspection ---------------------------------------------------
    @property
    def triggered(self) -> bool:
        """True once the event has a value and is scheduled."""
        return self._value is not PENDING

    @property
    def processed(self) -> bool:
        """True once callbacks have been executed."""
        return self.callbacks is None

    @property
    def ok(self) -> bool:
        """True if the event succeeded (valid only once triggered)."""
        if self._value is PENDING:
            raise SimulationError(f"{self!r} has not yet been triggered")
        return self._ok

    @property
    def value(self) -> Any:
        """The event's value (or exception instance on failure)."""
        if self._value is PENDING:
            raise SimulationError(f"{self!r} has not yet been triggered")
        return self._value

    # -- triggering ----------------------------------------------------------
    def succeed(self, value: Any = None) -> "Event":
        """Trigger the event successfully with ``value``."""
        if self._value is not PENDING:
            raise SimulationError(f"{self!r} has already been triggered")
        self._ok = True
        self._value = value
        env = self.env
        env._seq += 1
        heappush(env._queue, (env._now, NORMAL, env._seq, self))
        return self

    def fail(self, exception: BaseException) -> "Event":
        """Trigger the event with an exception.

        Waiting processes will have ``exception`` thrown into them.
        """
        if not isinstance(exception, BaseException):
            raise TypeError(f"{exception!r} is not an exception")
        if self._value is not PENDING:
            raise SimulationError(f"{self!r} has already been triggered")
        self._ok = False
        self._value = exception
        env = self.env
        env._seq += 1
        heappush(env._queue, (env._now, NORMAL, env._seq, self))
        return self

    def trigger(self, event: "Event") -> None:
        """Mirror another event's outcome onto this one (callback helper)."""
        if event._ok:
            self.succeed(event._value)
        else:
            self.fail(event._value)

    def __repr__(self) -> str:
        state = (
            "processed"
            if self.processed
            else "triggered"
            if self.triggered
            else "pending"
        )
        return f"<{type(self).__name__} {state} at {id(self):#x}>"


class Timeout(Event):
    """An event that triggers ``delay`` nanoseconds after creation."""

    __slots__ = ("delay",)

    def __init__(self, env: "Environment", delay: int, value: Any = None) -> None:
        delay = int(delay)
        if delay < 0:
            raise SimulationError(f"negative timeout delay: {delay}")
        self.env = env
        self.callbacks = []
        self._ok = True
        self._value = value
        self._defused = False
        self.delay = delay
        env._seq += 1
        heappush(env._queue, (env._now + delay, NORMAL, env._seq, self))

    def __repr__(self) -> str:
        return f"<Timeout delay={self.delay}ns at {id(self):#x}>"


class Initialize(Event):
    """Internal event that kicks off a newly created process."""

    __slots__ = ()

    def __init__(self, env: "Environment", process: "Event") -> None:
        self.env = env
        self.callbacks = [process._resume_cb]  # type: ignore[attr-defined]
        self._ok = True
        self._value = None
        self._defused = False
        env._seq += 1
        heappush(env._queue, (env._now, URGENT, env._seq, self))


class ConditionValue:
    """Mapping-like result of a condition: the triggered sub-events in order."""

    __slots__ = ("events",)

    def __init__(self, events: List[Event]) -> None:
        self.events = events

    def __getitem__(self, key: Event) -> Any:
        if key not in self.events:
            raise KeyError(repr(key))
        return key._value

    def __contains__(self, key: Event) -> bool:
        return key in self.events

    def __len__(self) -> int:
        return len(self.events)

    def __iter__(self):
        return iter(self.events)

    def __eq__(self, other: object) -> bool:
        if isinstance(other, ConditionValue):
            return self.todict() == other.todict()
        if isinstance(other, dict):
            return self.todict() == other
        return NotImplemented

    def todict(self) -> dict:
        return {e: e._value for e in self.events}

    def __repr__(self) -> str:
        return f"<ConditionValue {self.todict()!r}>"


class Condition(Event):
    """Composite event over a set of sub-events.

    ``evaluate`` receives (events, trigger_count) and returns True when
    the condition is satisfied.  Use :class:`AllOf` / :class:`AnyOf`.
    """

    __slots__ = ("_evaluate", "_events", "_count")

    def __init__(
        self,
        env: "Environment",
        evaluate: Callable[[List[Event], int], bool],
        events: Iterable[Event],
    ) -> None:
        self.env = env
        self.callbacks = []
        self._value = PENDING
        self._ok = True
        self._defused = False
        self._evaluate = evaluate
        self._events = list(events)
        self._count = 0

        for event in self._events:
            if event.env is not env:
                raise SimulationError("cannot mix events from different environments")

        # Check already-processed events immediately; subscribe to the rest.
        check = self._check
        for event in self._events:
            if event.callbacks is None:
                check(event)
            else:
                event.callbacks.append(check)

        if self._value is PENDING and self._evaluate(self._events, self._count):
            self.succeed(ConditionValue(self._collect_triggered()))

    def _collect_triggered(self) -> List[Event]:
        # An event counts as "fired" for the condition only once it has been
        # processed by the kernel (Timeouts carry their value from creation,
        # so checking _value alone would wrongly include future timeouts).
        return [e for e in self._events if e.callbacks is None]

    def _check(self, event: Event) -> None:
        if self._value is not PENDING:
            return
        self._count += 1
        if not event._ok:
            # Propagate the first failure through the condition.
            event._defused = True
            self.fail(event._value)
        elif self._evaluate(self._events, self._count):
            self.succeed(ConditionValue(self._collect_triggered()))

    @staticmethod
    def all_events(events: List[Event], count: int) -> bool:
        return len(events) == count

    @staticmethod
    def any_events(events: List[Event], count: int) -> bool:
        return count > 0 or len(events) == 0


class AllOf(Condition):
    """Triggers when every sub-event has triggered."""

    __slots__ = ()

    def __init__(self, env: "Environment", events: Iterable[Event]) -> None:
        super().__init__(env, Condition.all_events, events)


class AnyOf(Condition):
    """Triggers when any one sub-event has triggered."""

    __slots__ = ()

    def __init__(self, env: "Environment", events: Iterable[Event]) -> None:
        super().__init__(env, Condition.any_events, events)


class Interrupt(Exception):
    """Thrown into a process when :meth:`Process.interrupt` is called."""

    @property
    def cause(self) -> Any:
        return self.args[0]

    def __str__(self) -> str:
        return f"Interrupt({self.cause!r})"
