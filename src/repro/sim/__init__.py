"""Discrete-event simulation kernel.

A small, deterministic, generator-driven DES in the style of simpy,
with integer-nanosecond time, FIFO/priority resources, stores, probes,
and named RNG streams.
"""

from repro.sim.checkpoint import (
    CheckpointConfig,
    RecoveryPolicy,
    load_checkpoint,
    load_latest,
    save_checkpoint,
)
from repro.sim.core import INFINITY, Environment
from repro.sim.events import (
    AllOf,
    AnyOf,
    Condition,
    ConditionValue,
    Event,
    Interrupt,
    Timeout,
)
from repro.sim.monitor import Counter, ProbeSet, TimeSeries, jitter, sampled_mean
from repro.sim.process import Process
from repro.sim.resources import PriorityResource, Request, Resource
from repro.sim.rng import RngRegistry
from repro.sim.shard import (
    Mailbox,
    Message,
    ShardMap,
    ShardStats,
    run_sharded,
    window_boundaries,
)
from repro.sim.store import FilterStore, Store

__all__ = [
    "AllOf",
    "AnyOf",
    "CheckpointConfig",
    "Condition",
    "ConditionValue",
    "Counter",
    "Environment",
    "Event",
    "FilterStore",
    "INFINITY",
    "Interrupt",
    "Mailbox",
    "Message",
    "PriorityResource",
    "ProbeSet",
    "Process",
    "RecoveryPolicy",
    "Request",
    "Resource",
    "RngRegistry",
    "ShardMap",
    "ShardStats",
    "Store",
    "TimeSeries",
    "Timeout",
    "jitter",
    "load_checkpoint",
    "load_latest",
    "run_sharded",
    "sampled_mean",
    "save_checkpoint",
    "window_boundaries",
]
