"""Runtime invariant guards: self-checks the simulator runs on itself.

A campaign result is only trustworthy if the model obeyed its own laws
while producing it.  This module gives every layer a cheap, uniform
way to assert those laws at runtime — and gives campaigns a uniform
way to *record* violations instead of crashing, so a sweep with a
misbehaving cell degrades to an honestly-labelled partial result.

Three modes:

``off``
    The default.  A shared :data:`NULL_MONITOR` whose ``enabled`` flag
    is always ``False``; every check site guards with
    ``if inv.enabled:`` so the disabled cost is one attribute load and
    branch (the same contract the telemetry bus makes).
``record``
    Violations are appended to the monitor (bounded), emitted onto the
    currently-installed telemetry bus as ``invariant``-category
    instants, and execution continues.  The supervised sweep runtime
    copies them into the cell envelope and marks the cell's manifest
    record *tainted*.
``strict``
    The first violation raises a structured
    :class:`~repro.errors.InvariantViolation`.

Guards are registered by name at import time (:func:`register_guard`),
so ``GUARDS`` is a discoverable registry of every invariant the stack
checks:

* ``kernel.event_time_monotonic`` — the DES never dispatches an event
  timestamped before the current simulation time;
* ``fabric.rate_nonnegative`` / ``fabric.link_capacity`` — max-min
  allocations are non-negative and never oversubscribe a link;
* ``resex.reso_accounting`` — a Reso account's balance stays within
  ``[0, allocation]`` (conservation: what was deducted plus what
  remains never exceeds what was provisioned);
* ``credit.cap_budget`` — a capped VCPU never consumes more than its
  cap budget within one accounting period.

Like the telemetry bus, the monitor is installed process-globally
(:func:`install` / :func:`activate`); environments and components read
:func:`current` at check time, so one ``activate("strict")`` block
covers an entire scenario run.
"""

from __future__ import annotations

from contextlib import contextmanager
from typing import Any, Dict, Iterator, List, NamedTuple, Optional, Tuple

from repro.errors import ConfigError, InvariantViolation

__all__ = [
    "MODES",
    "INVARIANT",
    "GUARDS",
    "Guard",
    "Violation",
    "InvariantMonitor",
    "NullInvariantMonitor",
    "NULL_MONITOR",
    "register_guard",
    "install",
    "deactivate",
    "current",
    "monitor_for_mode",
    "activate",
    "check_fabric_rates",
    "GUARD_EVENT_TIME",
    "GUARD_RATE_NONNEGATIVE",
    "GUARD_LINK_CAPACITY",
    "GUARD_RESO_ACCOUNTING",
    "GUARD_CREDIT_CAP",
]

#: Valid monitor modes.
MODES = ("off", "record", "strict")

#: Telemetry category violation records are emitted under.
INVARIANT = "invariant"

#: Bound on recorded violations per monitor: a pathological cell
#: violating an invariant every event must not exhaust memory; the
#: overflow is summarized in :attr:`InvariantMonitor.dropped`.
DEFAULT_MAX_RECORDS = 1024


class Guard(NamedTuple):
    """One registered invariant check."""

    name: str
    category: str
    description: str


#: name -> :class:`Guard`, populated at import time by the layers that
#: host the checks.
GUARDS: Dict[str, Guard] = {}


def register_guard(name: str, category: str, description: str) -> str:
    """Register an invariant guard; returns ``name`` for call sites."""
    GUARDS[name] = Guard(name, category, description)
    return name


class Violation(NamedTuple):
    """One recorded invariant violation."""

    guard: str
    category: str
    ts_ns: int
    message: str
    details: Tuple[Tuple[str, Any], ...]

    def to_dict(self) -> Dict[str, Any]:
        return {
            "guard": self.guard,
            "category": self.category,
            "ts_ns": self.ts_ns,
            "message": self.message,
            "details": dict(self.details),
        }


class InvariantMonitor:
    """An enabled invariant monitor (``record`` or ``strict`` mode)."""

    __slots__ = ("enabled", "mode", "violations", "dropped", "max_records")

    def __init__(
        self, mode: str = "record", max_records: int = DEFAULT_MAX_RECORDS
    ) -> None:
        if mode not in ("record", "strict"):
            raise ConfigError(
                f"invariant monitor mode must be 'record' or 'strict', "
                f"got {mode!r} (use NULL_MONITOR / mode 'off' to disable)"
            )
        self.enabled: bool = True
        self.mode = mode
        self.violations: List[Violation] = []
        #: Violations dropped once ``max_records`` was reached.
        self.dropped: int = 0
        self.max_records = int(max_records)

    def violation(
        self,
        guard: str,
        ts_ns: int,
        message: str,
        **details: Any,
    ) -> None:
        """Report one violation of ``guard``.

        In ``strict`` mode raises :class:`InvariantViolation`; in
        ``record`` mode appends (bounded), mirrors the record onto the
        currently-installed telemetry bus, and returns.
        """
        spec = GUARDS.get(guard)
        category = spec.category if spec is not None else ""
        if self.mode == "strict":
            raise InvariantViolation(
                guard, message, category=category, ts_ns=ts_ns, details=details
            )
        if len(self.violations) < self.max_records:
            self.violations.append(
                Violation(guard, category, int(ts_ns), message, tuple(details.items()))
            )
        else:
            self.dropped += 1
        # Violations are rare by construction, so the late import and
        # bus lookup cost nothing on the healthy path.
        from repro import telemetry

        bus = telemetry.current()
        if bus.enabled:
            bus.instant(
                INVARIANT, guard, ts_ns, lane=category or INVARIANT,
                message=message, **details,
            )

    @property
    def tainted(self) -> bool:
        """True once any violation has been recorded."""
        return bool(self.violations) or self.dropped > 0

    def to_dicts(self) -> List[Dict[str, Any]]:
        """Recorded violations as plain dicts (picklable, JSON-able)."""
        return [v.to_dict() for v in self.violations]

    def __repr__(self) -> str:
        return (
            f"<InvariantMonitor mode={self.mode} "
            f"violations={len(self.violations)}>"
        )


class NullInvariantMonitor:
    """The always-disabled monitor (mode ``off``)."""

    __slots__ = ()

    enabled = False
    mode = "off"
    dropped = 0
    tainted = False
    violations: Tuple[Violation, ...] = ()

    def violation(self, *args: Any, **kwargs: Any) -> None:
        pass

    def to_dicts(self) -> List[Dict[str, Any]]:
        return []

    def __repr__(self) -> str:
        return "<NullInvariantMonitor>"


#: The shared disabled monitor: checking is off by default.
NULL_MONITOR = NullInvariantMonitor()

_current: "InvariantMonitor | NullInvariantMonitor" = NULL_MONITOR


def install(
    monitor: "InvariantMonitor | NullInvariantMonitor",
) -> "InvariantMonitor | NullInvariantMonitor":
    """Make ``monitor`` the process-global invariant monitor."""
    global _current
    _current = monitor
    return monitor


def deactivate() -> None:
    """Restore the default (disabled) monitor."""
    install(NULL_MONITOR)


def current() -> "InvariantMonitor | NullInvariantMonitor":
    """The currently installed monitor (disabled by default)."""
    return _current


def monitor_for_mode(
    mode: str, max_records: int = DEFAULT_MAX_RECORDS
) -> "InvariantMonitor | NullInvariantMonitor":
    """A fresh monitor for ``mode`` (``"off"`` -> the shared null one)."""
    if mode not in MODES:
        raise ConfigError(
            f"unknown invariant mode {mode!r} (expected one of {MODES})"
        )
    if mode == "off":
        return NULL_MONITOR
    return InvariantMonitor(mode, max_records=max_records)


@contextmanager
def activate(
    mode: str = "record", max_records: int = DEFAULT_MAX_RECORDS
) -> Iterator["InvariantMonitor | NullInvariantMonitor"]:
    """Install a fresh monitor for the duration of a block::

        with invariants.activate("strict"):
            run_scenario(...)

    The previously installed monitor is restored on exit.
    """
    monitor = monitor_for_mode(mode, max_records=max_records)
    previous = _current
    install(monitor)
    try:
        yield monitor
    finally:
        install(previous)


# -- guard declarations -------------------------------------------------------
# Declared here (rather than scattered across the hosting modules) so
# importing this module alone yields the complete registry.

GUARD_EVENT_TIME = register_guard(
    "kernel.event_time_monotonic",
    "kernel",
    "the DES never dispatches an event timestamped before now",
)
GUARD_RATE_NONNEGATIVE = register_guard(
    "fabric.rate_nonnegative",
    "fabric",
    "max-min fair allocation assigns every transfer a rate >= 0",
)
GUARD_LINK_CAPACITY = register_guard(
    "fabric.link_capacity",
    "fabric",
    "allocated rates never oversubscribe a link's current capacity",
)
GUARD_RESO_ACCOUNTING = register_guard(
    "resex.reso_accounting",
    "resex",
    "a Reso account's balance stays within [0, allocation]",
)
GUARD_CREDIT_CAP = register_guard(
    "credit.cap_budget",
    "credit",
    "a capped VCPU never exceeds its cap budget within a period",
)

#: Relative slack for float-accumulation checks (capacity sums are
#: left-to-right float additions; exact equality is not a law).
FLOAT_SLACK = 1e-9


def check_fabric_rates(
    inv: "InvariantMonitor | NullInvariantMonitor",
    rates: Dict[Any, float],
    capacity_of,
    ts_ns: int = -1,
) -> None:
    """Check a max-min solution: rates >= 0, no link oversubscribed.

    Called by :func:`repro.hw.fabric.maxmin_rates` when a monitor is
    enabled; O(transfers x path length), never on the disabled path.
    """
    link_sums: Dict[Any, float] = {}
    for transfer, rate in rates.items():
        if rate < 0.0:
            inv.violation(
                GUARD_RATE_NONNEGATIVE,
                ts_ns,
                f"negative rate {rate!r} for {transfer!r}",
                rate=rate,
            )
        for link in transfer.path:
            link_sums[link] = link_sums.get(link, 0.0) + rate
    for link, total in link_sums.items():
        capacity = capacity_of(link)
        if total > capacity * (1.0 + FLOAT_SLACK) + FLOAT_SLACK:
            inv.violation(
                GUARD_LINK_CAPACITY,
                ts_ns,
                f"link {link.name!r} oversubscribed: "
                f"{total!r} > capacity {capacity!r}",
                link=link.name,
                allocated=total,
                capacity=capacity,
            )
