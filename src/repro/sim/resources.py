"""Shared-resource primitives: Resource and PriorityResource.

These are simpy-style counted resources: a fixed number of slots, FIFO
(or priority-ordered) wait queues, and request/release events usable
both with ``with``-style generators and manual pairing.
"""

from __future__ import annotations

import heapq
from typing import TYPE_CHECKING, List, Tuple

from repro.errors import SimulationError
from repro.sim.events import Event

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.sim.core import Environment


class Request(Event):
    """A pending or granted claim on a :class:`Resource` slot."""

    __slots__ = ("resource",)

    def __init__(self, resource: "Resource") -> None:
        super().__init__(resource.env)
        self.resource = resource
        resource._do_request(self)

    def __enter__(self) -> "Request":
        return self

    def __exit__(self, exc_type, exc, tb) -> None:
        self.cancel()

    def cancel(self) -> None:
        """Release the slot, or withdraw the request if still queued."""
        self.resource._do_release(self)


class PriorityRequest(Request):
    """A claim with an explicit priority (lower value = more urgent)."""

    __slots__ = ("priority", "_order")

    def __init__(self, resource: "PriorityResource", priority: int = 0) -> None:
        self.priority = priority
        self._order = resource._next_order()
        super().__init__(resource)


class Resource:
    """A counted resource with a FIFO wait queue."""

    def __init__(self, env: "Environment", capacity: int = 1) -> None:
        if capacity < 1:
            raise SimulationError(f"capacity must be >= 1, got {capacity}")
        self.env = env
        self.capacity = capacity
        self.users: List[Request] = []
        self.queue: List[Request] = []

    @property
    def count(self) -> int:
        """Number of slots currently in use."""
        return len(self.users)

    def request(self) -> Request:
        """Claim a slot; the returned event triggers once granted."""
        return Request(self)

    # -- internals ---------------------------------------------------------
    def _do_request(self, request: Request) -> None:
        if len(self.users) < self.capacity:
            self.users.append(request)
            request.succeed()
        else:
            self.queue.append(request)

    def _do_release(self, request: Request) -> None:
        if request in self.users:
            self.users.remove(request)
            self._grant_next()
        elif request in self.queue:
            self.queue.remove(request)
        # Releasing an unknown request is a no-op (idempotent cancel).

    def _grant_next(self) -> None:
        while self.queue and len(self.users) < self.capacity:
            nxt = self.queue.pop(0)
            self.users.append(nxt)
            nxt.succeed()

    def __repr__(self) -> str:
        return (
            f"<{type(self).__name__} capacity={self.capacity} "
            f"used={self.count} queued={len(self.queue)}>"
        )


class PriorityResource(Resource):
    """A resource whose wait queue is ordered by (priority, arrival)."""

    def __init__(self, env: "Environment", capacity: int = 1) -> None:
        super().__init__(env, capacity)
        self._heap: List[Tuple[int, int, PriorityRequest]] = []
        self._order_counter = 0

    def _next_order(self) -> int:
        self._order_counter += 1
        return self._order_counter

    def request(self, priority: int = 0) -> PriorityRequest:  # type: ignore[override]
        return PriorityRequest(self, priority)

    def _do_request(self, request: Request) -> None:
        assert isinstance(request, PriorityRequest)
        if len(self.users) < self.capacity:
            self.users.append(request)
            request.succeed()
        else:
            heapq.heappush(self._heap, (request.priority, request._order, request))
            self.queue.append(request)

    def _do_release(self, request: Request) -> None:
        if request in self.users:
            self.users.remove(request)
            self._grant_next()
        elif request in self.queue:
            self.queue.remove(request)
            self._heap = [entry for entry in self._heap if entry[2] is not request]
            heapq.heapify(self._heap)

    def _grant_next(self) -> None:
        while self._heap and len(self.users) < self.capacity:
            _prio, _order, nxt = heapq.heappop(self._heap)
            self.queue.remove(nxt)
            self.users.append(nxt)
            nxt.succeed()
