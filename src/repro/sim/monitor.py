"""Measurement probes: time-series and counters.

Every statistic reported by the benchmark harness flows through these
recorders so the analysis layer has one uniform representation.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Dict, List, Optional, Sequence, Tuple

import numpy as np

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.sim.core import Environment


class TimeSeries:
    """An append-only series of (time_ns, value) samples.

    The numpy views returned by :attr:`times` / :attr:`values` are
    cached between appends, so repeated analysis passes over a finished
    series do not re-copy it on every access.  Treat the returned
    arrays as read-only: they are shared until the next ``record``.
    """

    __slots__ = ("name", "_times", "_values", "_times_arr", "_values_arr")

    def __init__(self, name: str = "") -> None:
        self.name = name
        self._times: List[int] = []
        self._values: List[float] = []
        self._times_arr: Optional[np.ndarray] = None
        self._values_arr: Optional[np.ndarray] = None

    def record(self, time_ns: int, value: float) -> None:
        """Append one sample; times must be non-decreasing."""
        if self._times and time_ns < self._times[-1]:
            raise ValueError(
                f"non-monotonic sample at {time_ns} (last {self._times[-1]})"
            )
        self._times.append(time_ns)
        self._values.append(float(value))
        self._times_arr = None
        self._values_arr = None

    def __len__(self) -> int:
        return len(self._times)

    @property
    def times(self) -> np.ndarray:
        """Sample times as an int64 array (ns)."""
        if self._times_arr is None:
            self._times_arr = np.asarray(self._times, dtype=np.int64)
        return self._times_arr

    @property
    def values(self) -> np.ndarray:
        """Sample values as a float64 array."""
        if self._values_arr is None:
            self._values_arr = np.asarray(self._values, dtype=np.float64)
        return self._values_arr

    def last(self) -> Tuple[int, float]:
        """Most recent (time, value) sample."""
        if not self._times:
            raise IndexError(f"time series {self.name!r} is empty")
        return self._times[-1], self._values[-1]

    def window(self, start_ns: int, end_ns: int) -> np.ndarray:
        """Values with start <= time < end."""
        times = self.times
        mask = (times >= start_ns) & (times < end_ns)
        return self.values[mask]

    def mean(self) -> float:
        if not self._values:
            return float("nan")
        return float(np.mean(self._values))

    def std(self) -> float:
        if not self._values:
            return float("nan")
        return float(np.std(self._values))

    def percentile(self, q: float) -> float:
        if not self._values:
            return float("nan")
        return float(np.percentile(self._values, q))


class Counter:
    """A monotonically increasing event counter with a cumulative value."""

    __slots__ = ("name", "count", "total")

    def __init__(self, name: str = "") -> None:
        self.name = name
        self.count: int = 0
        self.total: float = 0.0

    def add(self, value: float = 1.0) -> None:
        self.count += 1
        self.total += value

    @property
    def mean(self) -> float:
        return self.total / self.count if self.count else float("nan")


class ProbeSet:
    """A named collection of series and counters owned by one component.

    Probes are the analysis-facing store; every sample is additionally
    mirrored onto the environment's telemetry bus (as a counter record
    in the ``prefix`` category) whenever tracing is enabled, so probe
    data shows up in exported traces without double bookkeeping at the
    call sites.
    """

    def __init__(self, env: "Environment", prefix: str = "") -> None:
        self.env = env
        self.prefix = prefix
        self.series: Dict[str, TimeSeries] = {}
        self.counters: Dict[str, Counter] = {}

    def _key(self, name: str) -> str:
        return f"{self.prefix}.{name}" if self.prefix else name

    def ts(self, name: str) -> TimeSeries:
        """Get-or-create the named time series."""
        key = self._key(name)
        if key not in self.series:
            self.series[key] = TimeSeries(key)
        return self.series[key]

    def counter(self, name: str) -> Counter:
        """Get-or-create the named counter."""
        key = self._key(name)
        if key not in self.counters:
            self.counters[key] = Counter(key)
        return self.counters[key]

    def record(self, name: str, value: float) -> None:
        """Record a sample at the current simulation time."""
        now = self.env.now
        self.ts(name).record(now, value)
        tel = self.env.telemetry
        if tel.enabled:
            tel.counter(self.prefix or "probe", self._key(name), now, value)


def sampled_mean(series: Sequence[float]) -> float:
    """Mean that tolerates empty sequences (returns NaN)."""
    arr = np.asarray(series, dtype=np.float64)
    return float(arr.mean()) if arr.size else float("nan")


def jitter(series: Sequence[float]) -> float:
    """Latency jitter: standard deviation of the sample set."""
    arr = np.asarray(series, dtype=np.float64)
    return float(arr.std()) if arr.size else float("nan")
