"""The discrete-event simulation environment.

Time is an integer number of nanoseconds (see :mod:`repro.units`).  The
event heap is keyed by ``(time, priority, sequence)`` so execution order
is fully deterministic for a given program.
"""

from __future__ import annotations

import heapq
from typing import Any, Iterable, List, Optional, Tuple

from repro import telemetry
from repro.errors import SimulationError, StopSimulation
from repro.sim import invariants
from repro.sim.invariants import GUARD_EVENT_TIME
from repro.sim.events import (
    NORMAL,
    PENDING,
    AllOf,
    AnyOf,
    Event,
    Timeout,
)
from repro.sim.process import Process, ProcessGenerator

#: Sentinel time returned by :meth:`Environment.peek` when the event
#: queue is empty: the largest representable int64 nanosecond instant,
#: i.e. "no event will ever fire".  Compare against this instead of
#: re-deriving ``2**63 - 1`` at call sites.
INFINITY: int = 2**63 - 1


class Environment:
    """Execution environment for a single simulation.

    Parameters
    ----------
    initial_time:
        Starting simulation time in nanoseconds.
    """

    def __init__(self, initial_time: int = 0) -> None:
        self._now: int = int(initial_time)
        self._queue: List[Tuple[int, int, int, Event]] = []
        self._seq: int = 0
        self._active_process: Optional[Process] = None
        self._events_processed: int = 0
        #: The telemetry bus every component of this simulation emits
        #: through.  Defaults to whatever bus is installed globally —
        #: the shared disabled NULL_BUS unless a trace is being
        #: captured (see :mod:`repro.telemetry`).
        self.telemetry = telemetry.current()
        #: The runtime invariant monitor every component of this
        #: simulation checks through.  Defaults to whatever monitor is
        #: installed globally — the shared disabled NULL_MONITOR unless
        #: a guard mode is active (see :mod:`repro.sim.invariants`).
        self.invariants = invariants.current()

    # -- introspection --------------------------------------------------------
    @property
    def now(self) -> int:
        """Current simulation time (ns)."""
        return self._now

    @property
    def active_process(self) -> Optional[Process]:
        """The process currently being resumed, if any."""
        return self._active_process

    @property
    def events_processed(self) -> int:
        """Total number of events executed so far (kernel statistic)."""
        return self._events_processed

    @property
    def queue_length(self) -> int:
        """Number of scheduled-but-unprocessed events."""
        return len(self._queue)

    # -- event factories -------------------------------------------------------
    def event(self) -> Event:
        """Create a new pending event."""
        return Event(self)

    def timeout(self, delay: int, value: Any = None) -> Timeout:
        """Create an event that triggers after ``delay`` ns."""
        return Timeout(self, delay, value)

    def process(self, generator: ProcessGenerator, name: Optional[str] = None) -> Process:
        """Start a new process from ``generator``."""
        return Process(self, generator, name=name)

    def all_of(self, events: Iterable[Event]) -> AllOf:
        """Event triggering once all ``events`` have triggered."""
        return AllOf(self, events)

    def any_of(self, events: Iterable[Event]) -> AnyOf:
        """Event triggering once any of ``events`` has triggered."""
        return AnyOf(self, events)

    # -- scheduling -------------------------------------------------------------
    def schedule(self, event: Event, delay: int = 0, priority: int = NORMAL) -> None:
        """Place a triggered event on the heap ``delay`` ns in the future."""
        if delay < 0:
            raise SimulationError(f"cannot schedule into the past (delay={delay})")
        self._seq += 1
        heapq.heappush(self._queue, (self._now + delay, priority, self._seq, event))

    def peek(self) -> int:
        """Time of the next scheduled event, or :data:`INFINITY` if empty."""
        if not self._queue:
            return INFINITY
        return self._queue[0][0]

    def step(self) -> None:
        """Process the next event; raises SimulationError if none is left.

        Single-step API for tests and debuggers.  :meth:`run` does not
        call this — it drives an inlined copy of the same dispatch so
        the per-event cost stays minimal — but both bodies must stay
        semantically identical.
        """
        try:
            when, _prio, _seq, event = heapq.heappop(self._queue)
        except IndexError:
            raise SimulationError("no scheduled events left") from None

        if when < self._now:  # pragma: no cover - heap invariant guard
            inv = self.invariants
            if inv.enabled:
                inv.violation(
                    GUARD_EVENT_TIME,
                    when,
                    f"event at t={when} dispatched after now={self._now}",
                    now=self._now,
                )
            else:
                raise SimulationError("event scheduled in the past")
        self._now = when

        callbacks = event.callbacks
        event.callbacks = None  # mark processed
        if callbacks:
            for callback in callbacks:
                if callback is not None:  # skip tombstoned waiters
                    callback(event)
        self._events_processed += 1
        tel = self.telemetry
        if tel.enabled:
            tel.kernel_tick(
                self._now, self._events_processed, len(self._queue), event
            )

        if not event._ok and not event._defused:
            exc = event._value
            if isinstance(exc, BaseException):
                raise exc
            raise SimulationError(repr(exc))  # pragma: no cover - defensive

    def run_window(self, limit: int) -> int:
        """Process every event with timestamp *strictly below* ``limit``.

        The shard kernel's window primitive (:mod:`repro.sim.shard`):
        a partitioned run advances each shard's heap in half-open
        windows ``[B_k, B_k+1)`` so that an event at exactly the next
        barrier time is never pulled into the current window — cross-
        shard messages delivered *at* a barrier must still order before
        it.  Events at ``limit`` (and the clock advance to ``limit``)
        belong to the caller's next window.

        Returns the number of events processed.  The dispatch body is
        the same inlined loop as :meth:`run` with the window bound
        added; both must stay semantically identical.
        """
        queue = self._queue
        heappop = heapq.heappop
        inv = self.invariants
        tel = self.telemetry
        base = self._events_processed
        processed = 0
        try:
            while queue and queue[0][0] < limit:
                when, _prio, _seq, event = heappop(queue)
                if when < self._now and inv.enabled:
                    inv.violation(
                        GUARD_EVENT_TIME,
                        when,
                        f"event at t={when} dispatched after now={self._now}",
                        now=self._now,
                    )
                self._now = when

                callbacks = event.callbacks
                event.callbacks = None  # mark processed
                if callbacks:
                    for callback in callbacks:
                        if callback is not None:  # skip tombstoned waiters
                            callback(event)
                processed += 1
                if tel.enabled:
                    tel.kernel_tick(
                        when, base + processed, len(queue), event
                    )

                if not event._ok and not event._defused:
                    exc = event._value
                    if isinstance(exc, BaseException):
                        raise exc
                    raise SimulationError(repr(exc))  # pragma: no cover
        finally:
            # The counter rides a local inside the loop (one attribute
            # write per window instead of one per event); the writeback
            # must survive a raising callback or the tally drifts.
            self._events_processed = base + processed
        return processed

    def run(self, until: "int | Event | None" = None) -> Any:
        """Run the simulation.

        Parameters
        ----------
        until:
            ``None``  -> run until the event queue empties.
            ``int``   -> run until simulation time reaches that value (ns).
            ``Event`` -> run until the event triggers; returns its value.
        """
        stop_event: Optional[Event] = None
        if until is None:
            pass
        elif isinstance(until, Event):
            stop_event = until
            if stop_event.callbacks is None:
                # Already processed: nothing to run.
                return stop_event._value
            stop_event.callbacks.append(_stop_callback)
        else:
            at = int(until)
            if at < self._now:
                raise SimulationError(
                    f"until={at} is in the past (now={self._now})"
                )
            stop_event = Event(self)
            stop_event._ok = True
            stop_event._value = None
            # Schedule directly at absolute time with lowest priority so
            # all events at `at` with normal priority run first.
            self._seq += 1
            heapq.heappush(self._queue, (at, NORMAL + 1, self._seq, stop_event))
            stop_event.callbacks = [_stop_callback]  # type: ignore[list-item]

        # The dispatch loop below is :meth:`step` inlined with local
        # bindings — the kernel's hottest lines.  Telemetry is re-read
        # per iteration (a bus may be installed on the environment at
        # any point before its first event fires), but the disabled-bus
        # path costs only the attribute load and branch, which is the
        # "null bus is free" contract the telemetry layer promises.
        queue = self._queue
        heappop = heapq.heappop
        inv = self.invariants
        try:
            while queue:
                when, _prio, _seq, event = heappop(queue)
                # Event-time monotonicity guard: the compare is one int
                # operation on the healthy path; the monitor is only
                # consulted on an actual regression (and only when a
                # guard mode is active — off-mode keeps the historical
                # silent behaviour of this loop).
                if when < self._now and inv.enabled:
                    inv.violation(
                        GUARD_EVENT_TIME,
                        when,
                        f"event at t={when} dispatched after now={self._now}",
                        now=self._now,
                    )
                self._now = when

                callbacks = event.callbacks
                event.callbacks = None  # mark processed
                if callbacks:
                    for callback in callbacks:
                        if callback is not None:  # skip tombstoned waiters
                            callback(event)
                self._events_processed += 1
                tel = self.telemetry
                if tel.enabled:
                    tel.kernel_tick(
                        when, self._events_processed, len(queue), event
                    )

                if not event._ok and not event._defused:
                    exc = event._value
                    if isinstance(exc, BaseException):
                        raise exc
                    raise SimulationError(repr(exc))  # pragma: no cover
        except StopSimulation as stop:
            return stop.value

        if isinstance(until, Event) and until._value is PENDING:
            raise SimulationError(
                "run(until=event) ended before the event triggered "
                "(event queue is empty)"
            )
        return None


def _stop_callback(event: Event) -> None:
    if event._ok:
        raise StopSimulation(event._value)
    raise event._value
