"""Sharded single-run simulation with conservative time synchronization.

The sweep engine (:mod:`repro.parallel`) parallelizes *across*
independent simulations; this module parallelizes *inside* one.  The
simulated world is partitioned into **domains** (racks of a cluster
topology — see :class:`repro.hw.topology.DomainPlan`), and the one rule
that makes partitioning sound is enforced at the model layer:

    every event touches the state of exactly one domain; all
    cross-domain influence travels as a :class:`Message` through a
    :class:`Mailbox`, and every message carries at least
    ``lookahead_ns`` of latency.

The lookahead is physical: it is the propagation latency of the
inter-rack links, so a message submitted now cannot affect another
domain sooner than ``now + lookahead``.  That bound is exactly what a
conservative parallel DES needs — shards may advance their local event
heaps through the half-open window ``[B_k, B_k + lookahead)`` without
hearing from each other, because nothing sent during the window can be
due before the next barrier ``B_k+1 = B_k + lookahead``.

Determinism contract (the reason sharded == serial bit-for-bit):

* **Delivery order is a pure function of the messages.**  Messages due
  at the same instant are delivered in ``(origin_domain, origin_seq)``
  order — submission order per origin, origin id across origins —
  never in worker-completion or pipe-arrival order (the same
  submission-order-merge trick as :mod:`repro.parallel`).
* **Deliveries outrank same-timestamp domain events.**  Mailbox
  wake-ups are scheduled at the reserved
  :data:`~repro.sim.events.DELIVERY` priority, so whether the wake-up
  was armed during event execution (serial: one environment hosts
  every domain) or at a barrier (sharded: the message crossed a pipe)
  is unobservable — heap sequence numbers never decide an ordering
  that spans modes.
* **Domain state is process-agnostic.**  A domain's trajectory depends
  only on its own event order and its incoming message sequence, both
  of which are identical however domains are grouped into shards — so
  ``shards=1``, ``shards=N`` in-process, and ``shards=N`` across
  forked workers all produce the same bytes.

Two backends share the barrier loop: ``inline`` keeps every shard in
the calling process (the reference semantics, and the backend property
tests permute), ``fork`` runs one OS process per shard with the parent
relaying message batches between barriers — the multi-core path.
"""

from __future__ import annotations

import traceback
from dataclasses import dataclass, field
from typing import (
    Any,
    Callable,
    Dict,
    List,
    Optional,
    Sequence,
    Tuple,
)

from repro.errors import ConfigError, ShardSyncError
from repro.sim import invariants as _invariants
from repro.sim.core import Environment
from repro.sim.events import DELIVERY, Event


@dataclass(frozen=True)
class Message:
    """One cross-domain event in flight.

    ``payload`` must be plain picklable data (ints, floats, strings,
    tuples) — in a forked run it crosses a pipe, and the contract that
    nothing richer crosses is what keeps workers rebuildable from
    their job spec alone.
    """

    origin: int
    seq: int
    dest: int
    deliver_at: int
    kind: str
    payload: Tuple[Any, ...]

    @property
    def order_key(self) -> Tuple[int, int]:
        """The deterministic same-instant delivery order."""
        return (self.origin, self.seq)


class Mailbox:
    """The cross-domain channel of one environment.

    One mailbox serves every domain hosted by its environment: all of
    them in a serial run, one shard's worth in a partitioned run.
    Local deliveries are armed immediately; messages to unregistered
    (remote) domains accumulate in the outbox until the shard runner
    drains them at a barrier.
    """

    def __init__(self, env: Environment, lookahead_ns: int) -> None:
        if lookahead_ns < 1:
            raise ConfigError(
                f"mailbox lookahead must be >= 1 ns, got {lookahead_ns}"
            )
        self.env = env
        self.lookahead_ns = int(lookahead_ns)
        self._handlers: Dict[int, Callable[[Message], None]] = {}
        self._origin_seq: Dict[int, int] = {}
        #: Messages due at a given instant, in arrival order (sorted at
        #: delivery time — arrival order is not part of the contract).
        self._pending: Dict[int, List[Message]] = {}
        self._armed: set = set()
        self._outbox: List[Message] = []
        self.sent = 0
        self.delivered = 0
        self.cross_shard_sent = 0

    # -- wiring -------------------------------------------------------------
    def register(self, domain: int, handler: Callable[[Message], None]) -> None:
        """Declare ``domain`` local, dispatching its deliveries to
        ``handler``."""
        if domain in self._handlers:
            raise ConfigError(f"domain {domain} already has a mailbox handler")
        self._handlers[int(domain)] = handler

    def is_local(self, domain: int) -> bool:
        return domain in self._handlers

    @property
    def local_domains(self) -> Tuple[int, ...]:
        return tuple(sorted(self._handlers))

    # -- sending ------------------------------------------------------------
    def send(
        self,
        origin: int,
        dest: int,
        latency_ns: int,
        kind: str,
        payload: Tuple[Any, ...] = (),
    ) -> Message:
        """Submit a cross-domain message ``latency_ns`` in the future.

        The latency must honor the conservative lookahead — a message
        faster than the inter-domain propagation latency could arrive
        inside a window another shard has already executed.
        """
        if dest == origin:
            raise ShardSyncError(
                f"domain {origin} may not mail itself; intra-domain "
                "influence is ordinary event scheduling"
            )
        if latency_ns < self.lookahead_ns:
            raise ShardSyncError(
                f"cross-domain latency {latency_ns} ns is below the "
                f"conservative lookahead {self.lookahead_ns} ns"
            )
        seq = self._origin_seq.get(origin, 0)
        self._origin_seq[origin] = seq + 1
        msg = Message(
            origin=int(origin),
            seq=seq,
            dest=int(dest),
            deliver_at=self.env.now + int(latency_ns),
            kind=kind,
            payload=tuple(payload),
        )
        self.sent += 1
        if msg.dest in self._handlers:
            self._enqueue(msg)
        else:
            self.cross_shard_sent += 1
            self._outbox.append(msg)
        return msg

    # -- barrier plumbing ---------------------------------------------------
    def drain_outbox(self) -> List[Message]:
        """Take every message bound for a remote shard (barrier step)."""
        out, self._outbox = self._outbox, []
        return out

    def ingest(self, messages: Sequence[Message]) -> None:
        """Accept remote messages handed over at a barrier."""
        for msg in messages:
            if msg.dest not in self._handlers:
                raise ShardSyncError(
                    f"message for domain {msg.dest} routed to a mailbox "
                    f"hosting only {self.local_domains}"
                )
            self._enqueue(msg)

    # -- delivery -----------------------------------------------------------
    def _enqueue(self, msg: Message) -> None:
        if msg.deliver_at < self.env.now:
            raise ShardSyncError(
                f"message {msg.kind!r} due at t={msg.deliver_at} arrived "
                f"behind the clock (now={self.env.now}); the conservative "
                "horizon was violated"
            )
        bucket = self._pending.get(msg.deliver_at)
        if bucket is None:
            self._pending[msg.deliver_at] = [msg]
        else:
            bucket.append(msg)
        when = msg.deliver_at
        if when not in self._armed:
            self._armed.add(when)
            wakeup = Event(self.env)
            wakeup._ok = True
            wakeup._value = when
            wakeup.callbacks = [self._deliver]
            self.env.schedule(
                wakeup, delay=when - self.env.now, priority=DELIVERY
            )

    def _deliver(self, wakeup: Event) -> None:
        when = wakeup._value
        self._armed.discard(when)
        batch = self._pending.pop(when, [])
        # (origin, seq) — never arrival order — decides same-instant
        # delivery; per destination domain this restriction is the same
        # sequence under every partitioning.
        batch.sort(key=lambda m: (m.origin, m.seq))
        for msg in batch:
            self.delivered += 1
            self._handlers[msg.dest](msg)

    def __repr__(self) -> str:
        return (
            f"<Mailbox domains={self.local_domains} sent={self.sent} "
            f"delivered={self.delivered}>"
        )


@dataclass(frozen=True)
class ShardMap:
    """Contiguous assignment of ``n_domains`` domains to ``shards``.

    Contiguity preserves locality for topology-derived domains (racks
    that share a spec prefix land together); determinism needs only
    that the map is a pure function of its inputs.
    """

    n_domains: int
    shards: int

    def __post_init__(self) -> None:
        if self.n_domains < 1:
            raise ConfigError(f"need >= 1 domain, got {self.n_domains}")
        if not 1 <= self.shards <= self.n_domains:
            raise ConfigError(
                f"shards must be in [1, {self.n_domains}] "
                f"(one per domain at most), got {self.shards}"
            )

    def domains_of(self, shard: int) -> Tuple[int, ...]:
        if not 0 <= shard < self.shards:
            raise ConfigError(f"no such shard {shard} (have {self.shards})")
        base, rem = divmod(self.n_domains, self.shards)
        start = shard * base + min(shard, rem)
        size = base + (1 if shard < rem else 0)
        return tuple(range(start, start + size))

    def shard_of(self, domain: int) -> int:
        if not 0 <= domain < self.n_domains:
            raise ConfigError(
                f"no such domain {domain} (have {self.n_domains})"
            )
        base, rem = divmod(self.n_domains, self.shards)
        split = rem * (base + 1)
        if domain < split:
            return domain // (base + 1)
        return rem + (domain - split) // base


@dataclass
class ShardStats:
    """Execution statistics of one sharded run.

    Deliberately *not* part of any deterministic digest: event counts
    differ between serial and sharded runs (one delivery wake-up per
    instant per environment), and wall times are the host's business.
    """

    shards: int = 1
    backend: str = "serial"
    windows: int = 0
    barriers: int = 0
    messages_exchanged: int = 0
    events_per_shard: List[int] = field(default_factory=list)
    sent_per_shard: List[int] = field(default_factory=list)

    def to_dict(self) -> Dict[str, Any]:
        return {
            "shards": self.shards,
            "backend": self.backend,
            "windows": self.windows,
            "barriers": self.barriers,
            "messages_exchanged": self.messages_exchanged,
            "events_per_shard": list(self.events_per_shard),
            "sent_per_shard": list(self.sent_per_shard),
        }


def window_boundaries(until_ns: int, lookahead_ns: int) -> List[int]:
    """Barrier instants for a run to ``until_ns``: ``k * lookahead``
    capped at ``until_ns``, final barrier exactly at ``until_ns``."""
    if until_ns < 0:
        raise ConfigError(f"until_ns must be >= 0, got {until_ns}")
    if lookahead_ns < 1:
        raise ConfigError(f"lookahead must be >= 1 ns, got {lookahead_ns}")
    bounds = []
    t = 0
    while t < until_ns:
        t = min(t + lookahead_ns, until_ns)
        bounds.append(t)
    return bounds


class ShardWorld:
    """Protocol of the object :func:`run_sharded`'s builder returns.

    Duck-typed — anything with these attributes works:

    ``env``
        the shard's :class:`~repro.sim.core.Environment`;
    ``mailbox``
        its :class:`Mailbox`, with every owned domain registered;
    ``finalize()``
        picklable partial result after the run (crosses a pipe under
        the fork backend).
    """

    env: Environment
    mailbox: Mailbox

    def finalize(self) -> Any:  # pragma: no cover - protocol stub
        raise NotImplementedError


def _run_shard_windows(
    world, bounds: Sequence[int], exchange: Callable[[int, List[Message]], List[Message]]
) -> None:
    """Drive one shard through every window.

    ``exchange(k, outgoing) -> incoming`` is the barrier: the inline
    backend routes directly, the fork backend talks to the parent.
    """
    for k, limit in enumerate(bounds):
        world.env.run_window(limit)
        incoming = exchange(k, world.mailbox.drain_outbox())
        world.mailbox.ingest(incoming)


def _finish_shard(world, until_ns: int) -> None:
    """The closing phase: events at exactly ``until_ns``.

    Messages submitted here are due strictly after the end of the run
    and stay undelivered in every mode, so no barrier follows.
    """
    world.env.run(until=until_ns)


def run_sharded(
    build: Callable[[Optional[Tuple[int, ...]]], Any],
    *,
    n_domains: int,
    shards: int,
    until_ns: int,
    lookahead_ns: int,
    merge: Callable[[List[Any]], Any],
    backend: str = "auto",
    inline_order: Optional[Callable[[int, List[int]], List[int]]] = None,
) -> Tuple[Any, ShardStats]:
    """Run one partitioned simulation; merge per-shard partials.

    ``build(domains)`` constructs a :class:`ShardWorld` owning exactly
    ``domains`` (``None`` means *all* — the serial fast path, which
    runs the single environment straight through with no windows).
    ``merge`` folds the per-shard ``finalize()`` results, always in
    shard order.  ``backend`` is ``"serial"`` (forced single
    environment), ``"inline"`` (N worlds, one process — the reference
    the property tests permute via ``inline_order``), ``"fork"`` (one
    process per shard), or ``"auto"`` (fork when available and
    ``shards > 1``, else inline).
    """
    shard_map = ShardMap(n_domains, shards)
    if backend not in ("auto", "serial", "inline", "fork"):
        raise ConfigError(f"unknown shard backend {backend!r}")
    if backend == "serial" and shards != 1:
        raise ConfigError("backend='serial' requires shards=1")

    if shards == 1 and backend in ("auto", "serial"):
        world = build(None)
        world.env.run(until=until_ns)
        stats = ShardStats(
            shards=1,
            backend="serial",
            events_per_shard=[world.env.events_processed],
            sent_per_shard=[world.mailbox.sent],
        )
        return merge([world.finalize()]), stats

    if backend == "auto":
        backend = "fork" if _fork_available() else "inline"
    bounds = window_boundaries(until_ns, lookahead_ns)
    if backend == "inline":
        return _run_inline(
            build, shard_map, bounds, until_ns, merge, inline_order
        )
    return _run_forked(build, shard_map, bounds, until_ns, merge)


def _fork_available() -> bool:
    import multiprocessing

    return "fork" in multiprocessing.get_all_start_methods()


# -- inline backend ----------------------------------------------------------

def _run_inline(
    build,
    shard_map: ShardMap,
    bounds: Sequence[int],
    until_ns: int,
    merge,
    inline_order,
) -> Tuple[Any, ShardStats]:
    worlds = [build(shard_map.domains_of(s)) for s in range(shard_map.shards)]
    domain_shard = {
        d: s for s in range(shard_map.shards) for d in shard_map.domains_of(s)
    }
    stats = ShardStats(
        shards=shard_map.shards, backend="inline", windows=len(bounds)
    )
    for k, limit in enumerate(bounds):
        order = list(range(shard_map.shards))
        if inline_order is not None:
            order = list(inline_order(k, order))
            if sorted(order) != list(range(shard_map.shards)):
                raise ConfigError(
                    f"inline_order returned {order}, not a permutation"
                )
        batches: List[List[Message]] = [[] for _ in range(shard_map.shards)]
        for s in order:
            worlds[s].env.run_window(limit)
            for msg in worlds[s].mailbox.drain_outbox():
                batches[domain_shard[msg.dest]].append(msg)
                stats.messages_exchanged += 1
        # Hand over after every shard ran its window: a batch's content
        # is then independent of the execution order above.
        for s in range(shard_map.shards):
            worlds[s].mailbox.ingest(batches[s])
        stats.barriers += 1
    for world in worlds:
        _finish_shard(world, until_ns)
    stats.events_per_shard = [w.env.events_processed for w in worlds]
    stats.sent_per_shard = [w.mailbox.sent for w in worlds]
    return merge([w.finalize() for w in worlds]), stats


# -- fork backend ------------------------------------------------------------

def _shard_worker(build, domains, bounds, until_ns, conn) -> None:
    """One shard's process: windows, barriers, final phase, envelope."""
    envelope: Dict[str, Any] = {}
    ambient = _invariants.current()
    monitor = _invariants.monitor_for_mode(ambient.mode)
    _invariants.install(monitor)
    try:
        world = build(tuple(domains))

        def exchange(k: int, outgoing: List[Message]) -> List[Message]:
            conn.send({"outbox": outgoing})
            reply = conn.recv()
            return reply["inbox"]

        _run_shard_windows(world, bounds, exchange)
        _finish_shard(world, until_ns)
        envelope["result"] = world.finalize()
        envelope["events"] = world.env.events_processed
        envelope["sent"] = world.mailbox.sent
    except BaseException as exc:
        envelope = {
            "error": f"{type(exc).__name__}: {exc}\n{traceback.format_exc()}"
        }
    finally:
        _invariants.install(ambient)
    if monitor.tainted:
        envelope["tainted"] = True
        envelope["violations"] = monitor.to_dicts()
    conn.send({"final": envelope})
    conn.close()


def _run_forked(
    build, shard_map: ShardMap, bounds: Sequence[int], until_ns: int, merge
) -> Tuple[Any, ShardStats]:
    import multiprocessing

    ctx = multiprocessing.get_context("fork")
    stats = ShardStats(
        shards=shard_map.shards, backend="fork", windows=len(bounds)
    )
    domain_shard = {
        d: s for s in range(shard_map.shards) for d in shard_map.domains_of(s)
    }
    pipes = []
    procs = []
    try:
        for s in range(shard_map.shards):
            parent_conn, child_conn = ctx.Pipe()
            proc = ctx.Process(
                target=_shard_worker,
                args=(
                    build, shard_map.domains_of(s), list(bounds), until_ns,
                    child_conn,
                ),
                name=f"repro-shard-{s}",
            )
            proc.start()
            child_conn.close()
            pipes.append(parent_conn)
            procs.append(proc)

        def _recv(s: int) -> Dict[str, Any]:
            try:
                return pipes[s].recv()
            except EOFError:
                raise ShardSyncError(
                    f"shard {s} worker died mid-run (pipe closed); "
                    "see its stderr for the traceback"
                ) from None

        failure: Optional[str] = None
        for _k in bounds:
            batches: List[List[Message]] = [
                [] for _ in range(shard_map.shards)
            ]
            frames = []
            for s in range(shard_map.shards):
                frame = _recv(s)
                if "final" in frame:  # worker failed and sent its envelope
                    err = frame["final"].get("error", "unknown worker error")
                    failure = f"shard {s}: {err}"
                    break
                frames.append(frame)
            if failure is not None:
                break
            for frame in frames:
                for msg in frame["outbox"]:
                    batches[domain_shard[msg.dest]].append(msg)
                    stats.messages_exchanged += 1
            for s in range(shard_map.shards):
                pipes[s].send({"inbox": batches[s]})
            stats.barriers += 1

        if failure is not None:
            raise ShardSyncError(failure)

        envelopes = []
        for s in range(shard_map.shards):
            frame = _recv(s)
            envelopes.append(frame["final"])
    finally:
        for conn in pipes:
            conn.close()
        for proc in procs:
            proc.join(timeout=30)
            if proc.is_alive():  # pragma: no cover - defensive
                proc.terminate()
                proc.join()

    errors = [
        f"shard {s}: {env['error']}"
        for s, env in enumerate(envelopes)
        if "error" in env
    ]
    if errors:
        raise ShardSyncError("; ".join(errors))
    # Re-record worker-side invariant violations into the parent's
    # ambient monitor so a sharded cell taints exactly like a serial
    # one would.
    ambient = _invariants.current()
    for s, env_ in enumerate(envelopes):
        if env_.get("tainted") and ambient.enabled:
            for v in env_.get("violations", ()):
                ambient.violation(
                    v.get("guard", "shard.worker"),
                    int(v.get("ts_ns", 0)),
                    f"[shard {s}] {v.get('message', '')}",
                    **v.get("details", {}),
                )
    stats.events_per_shard = [env_["events"] for env_ in envelopes]
    stats.sent_per_shard = [env_["sent"] for env_ in envelopes]
    return merge([env_["result"] for env_ in envelopes]), stats
