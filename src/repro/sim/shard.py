"""Sharded single-run simulation with conservative time synchronization.

The sweep engine (:mod:`repro.parallel`) parallelizes *across*
independent simulations; this module parallelizes *inside* one.  The
simulated world is partitioned into **domains** (racks of a cluster
topology — see :class:`repro.hw.topology.DomainPlan`), and the one rule
that makes partitioning sound is enforced at the model layer:

    every event touches the state of exactly one domain; all
    cross-domain influence travels as a :class:`Message` through a
    :class:`Mailbox`, and every message carries at least
    ``lookahead_ns`` of latency.

The lookahead is physical: it is the propagation latency of the
inter-rack links, so a message submitted now cannot affect another
domain sooner than ``now + lookahead``.  That bound is exactly what a
conservative parallel DES needs — shards may advance their local event
heaps through the half-open window ``[B_k, B_k + lookahead)`` without
hearing from each other, because nothing sent during the window can be
due before the next barrier ``B_k+1 = B_k + lookahead``.

**Barrier elision.**  A barrier per window is only necessary when every
window might send.  At each barrier every shard reports a *send
horizon* — a lower bound on the earliest instant it could next submit a
cross-domain message: the model's own :attr:`Mailbox.horizon_fn` when
one is registered (the only bound that also covers sends triggered by
deliveries ingested at the barrier), else its kernel's next-event
time.  With ``H`` the minimum over shards (folded, for shards whose
bound cannot cover deliveries, with the earliest delivery handed over
at this barrier — a delivery may itself trigger a send at its
instant), all shards may advance
``(H − B) // lookahead + 1`` windows in one stride with no intermediate
exchange: a message sent at ``t >= H`` is due at ``t + lookahead >=
B_m`` for every window boundary ``B_m <= H + lookahead``, so it is
routable at the stride-end barrier like any other.  The stride is a
pure function of the reported tuple, so ``inline`` and ``fork``
coalesce identically and :attr:`ShardStats.barriers` can be far below
:attr:`ShardStats.windows`.

Determinism contract (the reason sharded == serial bit-for-bit):

* **Delivery order is a pure function of the messages.**  Messages due
  at the same instant are delivered in ``(origin_domain, origin_seq)``
  order — submission order per origin, origin id across origins —
  never in worker-completion or pipe-arrival order (the same
  submission-order-merge trick as :mod:`repro.parallel`).
* **Deliveries outrank same-timestamp domain events.**  Mailbox
  wake-ups are scheduled at the reserved
  :data:`~repro.sim.events.DELIVERY` priority, so whether the wake-up
  was armed during event execution (serial: one environment hosts
  every domain) or at a barrier (sharded: the message crossed a pipe)
  is unobservable — heap sequence numbers never decide an ordering
  that spans modes.
* **Domain state is process-agnostic.**  A domain's trajectory depends
  only on its own event order and its incoming message sequence, both
  of which are identical however domains are grouped into shards — so
  ``shards=1``, ``shards=N`` in-process, and ``shards=N`` across
  forked workers all produce the same bytes.
* **Coalescing is unobservable.**  A stride merges consecutive
  ``run_window`` calls into one; the events executed, and their order,
  are exactly those of the per-window schedule, so ``coalesce=False``
  (the escape hatch) produces the same bytes barrier by barrier.

Two backends share the barrier loop: ``inline`` keeps every shard in
the calling process (the reference semantics, and the backend property
tests permute), ``fork`` runs one OS process per shard with the parent
relaying struct-packed message frames (:mod:`repro.sim.frames`)
between barriers — the multi-core path.

**Crash tolerance.**  Because delivery order and stride decisions are
pure functions of the frames exchanged, a shard's whole trajectory is
replayable from the ordered parent->worker frame stream — which is
exactly what :mod:`repro.sim.checkpoint` journals.  With a
:class:`~repro.sim.checkpoint.RecoveryPolicy`, the fork backend
survives a worker death mid-run: the dead shard is respawned (seeded
backoff, bounded budget) and the journal replayed in lockstep, each
regenerated outbox frame digest-checked against the recorded one, so
the recovered run is byte-identical to an uninterrupted one.  With a
:class:`~repro.sim.checkpoint.CheckpointConfig`, the journal is also
flushed to disk at a barrier cadence, and ``restore=True`` resumes an
interrupted run from the newest usable checkpoint file.
"""

from __future__ import annotations

import hashlib
import pickle
import struct
import traceback
from dataclasses import dataclass, field
from typing import (
    Any,
    Callable,
    Dict,
    List,
    Optional,
    Sequence,
    Tuple,
)

from repro.errors import CheckpointError, ConfigError, ShardSyncError
from repro.sim import invariants as _invariants
from repro.sim.checkpoint import (
    CheckpointConfig,
    RecoveryPolicy,
    ShardJournal,
    checkpoint_payload,
    journal_from_payload,
    load_latest,
    save_checkpoint,
    validate_restore,
)
from repro.sim.core import Environment, INFINITY
from repro.sim.events import DELIVERY, Event
from repro.sim.frames import decode_batch, encode_batch
from repro.sim.shard_types import Message

__all__ = [
    "Mailbox",
    "Message",
    "ShardMap",
    "ShardStats",
    "ShardWorld",
    "coalesce_stride",
    "run_sharded",
    "window_boundaries",
]


class Mailbox:
    """The cross-domain channel of one environment.

    One mailbox serves every domain hosted by its environment: all of
    them in a serial run, one shard's worth in a partitioned run.
    Local deliveries are armed immediately; messages to unregistered
    (remote) domains accumulate in the outbox until the shard runner
    drains them at a barrier.
    """

    def __init__(self, env: Environment, lookahead_ns: int) -> None:
        if lookahead_ns < 1:
            raise ConfigError(
                f"mailbox lookahead must be >= 1 ns, got {lookahead_ns}"
            )
        self.env = env
        self.lookahead_ns = int(lookahead_ns)
        self._handlers: Dict[int, Callable[[Message], None]] = {}
        self._origin_seq: Dict[int, int] = {}
        #: Messages due at a given instant, in arrival order (sorted at
        #: delivery time — arrival order is not part of the contract).
        self._pending: Dict[int, List[Message]] = {}
        self._armed: set = set()
        self._outbox: List[Message] = []
        self.sent = 0
        self.delivered = 0
        self.cross_shard_sent = 0
        #: Optional model-side send horizon: a callable returning a
        #: lower bound on the earliest *future* instant this world
        #: could call :meth:`send` — from **any** cause, including a
        #: delivery ingested at a later barrier (a model that funnels
        #: every send through a scheduled egress stage satisfies this
        #: for free).  ``None`` falls back to the kernel's next-event
        #: time, which cannot speak for future deliveries — the barrier
        #: loop then folds in the ``deliver_at`` of whatever it routes
        #: here.  A model that knows its egress schedule (e.g.
        #: epoch-batched relays) can promise far larger horizons and
        #: unlock barrier elision.
        self.horizon_fn: Optional[Callable[[], int]] = None

    # -- wiring -------------------------------------------------------------
    def register(self, domain: int, handler: Callable[[Message], None]) -> None:
        """Declare ``domain`` local, dispatching its deliveries to
        ``handler``."""
        if domain in self._handlers:
            raise ConfigError(f"domain {domain} already has a mailbox handler")
        self._handlers[int(domain)] = handler

    def is_local(self, domain: int) -> bool:
        return domain in self._handlers

    @property
    def local_domains(self) -> Tuple[int, ...]:
        return tuple(sorted(self._handlers))

    # -- sending ------------------------------------------------------------
    def send(
        self,
        origin: int,
        dest: int,
        latency_ns: int,
        kind: str,
        payload: Tuple[Any, ...] = (),
    ) -> Message:
        """Submit a cross-domain message ``latency_ns`` in the future.

        The latency must honor the conservative lookahead — a message
        faster than the inter-domain propagation latency could arrive
        inside a window another shard has already executed.
        """
        if dest == origin:
            raise ShardSyncError(
                f"domain {origin} may not mail itself; intra-domain "
                "influence is ordinary event scheduling"
            )
        if latency_ns < self.lookahead_ns:
            raise ShardSyncError(
                f"cross-domain latency {latency_ns} ns is below the "
                f"conservative lookahead {self.lookahead_ns} ns"
            )
        seq = self._origin_seq.get(origin, 0)
        self._origin_seq[origin] = seq + 1
        msg = Message(
            origin=int(origin),
            seq=seq,
            dest=int(dest),
            deliver_at=self.env.now + int(latency_ns),
            kind=kind,
            payload=tuple(payload),
        )
        self.sent += 1
        if msg.dest in self._handlers:
            self._enqueue(msg)
        else:
            self.cross_shard_sent += 1
            self._outbox.append(msg)
        return msg

    # -- barrier plumbing ---------------------------------------------------
    def drain_outbox(self) -> List[Message]:
        """Take every message bound for a remote shard (barrier step)."""
        out, self._outbox = self._outbox, []
        return out

    def ingest(self, messages: Sequence[Message]) -> None:
        """Accept remote messages handed over at a barrier."""
        for msg in messages:
            if msg.dest not in self._handlers:
                raise ShardSyncError(
                    f"message for domain {msg.dest} routed to a mailbox "
                    f"hosting only {self.local_domains}"
                )
            self._enqueue(msg)

    def send_horizon(self) -> Tuple[int, bool]:
        """``(bound, covers_deliveries)`` for this shard's next send.

        Sends happen inside events, so the kernel's next-event time
        bounds every send from *already-scheduled* work — but it cannot
        speak for sends triggered by deliveries ingested at this very
        barrier (ingest happens after this report), so it travels with
        ``covers_deliveries=False`` and the barrier loop caps the
        global horizon at the earliest delivery it routes here.  A
        model-registered :attr:`horizon_fn` promises a bound on the
        next send from **any** cause, deliveries included, and is
        reported alone with ``covers_deliveries=True``.  The two must
        not be max-folded: on a heap-idle shard ``peek`` can exceed the
        model's bound, and taking the max while keeping the covers flag
        would let a delivery-triggered send depart before the reported
        horizon — exactly the overshoot the flag exists to prevent.
        """
        fn = self.horizon_fn
        if fn is None:
            return self.env.peek(), False
        return fn(), True

    # -- delivery -----------------------------------------------------------
    def _enqueue(self, msg: Message) -> None:
        if msg.deliver_at < self.env.now:
            raise ShardSyncError(
                f"message {msg.kind!r} due at t={msg.deliver_at} arrived "
                f"behind the clock (now={self.env.now}); the conservative "
                "horizon was violated"
            )
        bucket = self._pending.get(msg.deliver_at)
        if bucket is None:
            self._pending[msg.deliver_at] = [msg]
        else:
            bucket.append(msg)
        when = msg.deliver_at
        if when not in self._armed:
            self._armed.add(when)
            wakeup = Event(self.env)
            wakeup._ok = True
            wakeup._value = when
            wakeup.callbacks = [self._deliver]
            self.env.schedule(
                wakeup, delay=when - self.env.now, priority=DELIVERY
            )

    def _deliver(self, wakeup: Event) -> None:
        when = wakeup._value
        self._armed.discard(when)
        batch = self._pending.pop(when, [])
        # (origin, seq) — never arrival order — decides same-instant
        # delivery; per destination domain this restriction is the same
        # sequence under every partitioning.
        batch.sort(key=lambda m: (m.origin, m.seq))
        for msg in batch:
            self.delivered += 1
            self._handlers[msg.dest](msg)

    def __repr__(self) -> str:
        return (
            f"<Mailbox domains={self.local_domains} sent={self.sent} "
            f"delivered={self.delivered}>"
        )


@dataclass(frozen=True)
class ShardMap:
    """Contiguous assignment of ``n_domains`` domains to ``shards``.

    Contiguity preserves locality for topology-derived domains (racks
    that share a spec prefix land together); determinism needs only
    that the map is a pure function of its inputs.
    """

    n_domains: int
    shards: int

    def __post_init__(self) -> None:
        if self.n_domains < 1:
            raise ConfigError(f"need >= 1 domain, got {self.n_domains}")
        if not 1 <= self.shards <= self.n_domains:
            raise ConfigError(
                f"shards must be in [1, {self.n_domains}] "
                f"(one per domain at most), got {self.shards}"
            )

    def domains_of(self, shard: int) -> Tuple[int, ...]:
        if not 0 <= shard < self.shards:
            raise ConfigError(f"no such shard {shard} (have {self.shards})")
        base, rem = divmod(self.n_domains, self.shards)
        start = shard * base + min(shard, rem)
        size = base + (1 if shard < rem else 0)
        return tuple(range(start, start + size))

    def shard_of(self, domain: int) -> int:
        if not 0 <= domain < self.n_domains:
            raise ConfigError(
                f"no such domain {domain} (have {self.n_domains})"
            )
        base, rem = divmod(self.n_domains, self.shards)
        split = rem * (base + 1)
        if domain < split:
            return domain // (base + 1)
        return rem + (domain - split) // base

    def domain_to_shard(self) -> List[int]:
        """Dense ``domain -> shard`` lookup table (the barrier loop's
        routing hot path — no per-message dict hashing)."""
        return [self.shard_of(d) for d in range(self.n_domains)]


@dataclass
class ShardStats:
    """Execution statistics of one sharded run.

    Deliberately *not* part of any deterministic digest: event counts
    differ between serial and sharded runs (one delivery wake-up per
    instant per environment), and wall times are the host's business.
    ``windows`` counts logical lookahead windows; ``barriers`` counts
    actual exchanges — elision makes the latter (much) smaller.
    """

    shards: int = 1
    backend: str = "serial"
    windows: int = 0
    barriers: int = 0
    messages_exchanged: int = 0
    max_stride: int = 1
    #: Workers respawned by in-run recovery (fork backend; 0 when the
    #: run was uninterrupted or recovery was off).
    respawns: int = 0
    events_per_shard: List[int] = field(default_factory=list)
    sent_per_shard: List[int] = field(default_factory=list)

    def to_dict(self) -> Dict[str, Any]:
        return {
            "shards": self.shards,
            "backend": self.backend,
            "windows": self.windows,
            "barriers": self.barriers,
            "messages_exchanged": self.messages_exchanged,
            "max_stride": self.max_stride,
            "respawns": self.respawns,
            "events_per_shard": list(self.events_per_shard),
            "sent_per_shard": list(self.sent_per_shard),
        }


def window_boundaries(until_ns: int, lookahead_ns: int) -> List[int]:
    """Barrier instants for a run to ``until_ns``: ``k * lookahead``
    capped at ``until_ns``, final barrier exactly at ``until_ns``.

    Closed form: every full window boundary, plus the horizon itself
    when it falls inside a window.  A round horizon (``until_ns`` an
    exact multiple of ``lookahead_ns``) contributes no extra terminal
    boundary — the last full window already ends there, and a
    zero-length trailing window would overcount ``windows`` by one.
    """
    if until_ns < 0:
        raise ConfigError(f"until_ns must be >= 0, got {until_ns}")
    if lookahead_ns < 1:
        raise ConfigError(f"lookahead must be >= 1 ns, got {lookahead_ns}")
    n_full, rem = divmod(until_ns, lookahead_ns)
    bounds = [k * lookahead_ns for k in range(1, n_full + 1)]
    if rem:
        bounds.append(until_ns)
    return bounds


def coalesce_stride(
    barrier_ns: int,
    horizon_ns: int,
    lookahead_ns: int,
    windows_left: int,
) -> int:
    """Windows all shards may advance past barrier ``barrier_ns``
    without an intermediate exchange.

    ``horizon_ns`` is the folded send horizon: the minimum over shards
    of :meth:`Mailbox.send_horizon`, further min-folded with the
    earliest ``deliver_at`` handed over at this barrier (an ingested
    delivery may trigger a send at its own instant).  No shard sends
    before ``horizon_ns``, so a message submitted during the stride is
    due at ``>= horizon_ns + lookahead_ns >= B + stride * lookahead``
    — at or after the stride-end barrier, where it is exchanged like
    any other.  A pure function of its arguments: ``inline`` and
    ``fork`` compute identical strides from identical reports.
    """
    if horizon_ns <= barrier_ns:
        stride = 1
    else:
        stride = (horizon_ns - barrier_ns) // lookahead_ns + 1
    if stride > windows_left:
        stride = windows_left
    return stride if stride > 1 else 1


class ShardWorld:
    """Protocol of the object :func:`run_sharded`'s builder returns.

    Duck-typed — anything with these attributes works:

    ``env``
        the shard's :class:`~repro.sim.core.Environment`;
    ``mailbox``
        its :class:`Mailbox`, with every owned domain registered;
    ``finalize()``
        picklable partial result after the run (crosses a pipe under
        the fork backend).
    """

    env: Environment
    mailbox: Mailbox

    def finalize(self) -> Any:  # pragma: no cover - protocol stub
        raise NotImplementedError


def _finish_shard(world, until_ns: int) -> None:
    """The closing phase: events at exactly ``until_ns``.

    Messages submitted here are due strictly after the end of the run
    and stay undelivered in every mode, so no barrier follows.
    """
    world.env.run(until=until_ns)


def run_sharded(
    build: Callable[[Optional[Tuple[int, ...]]], Any],
    *,
    n_domains: int,
    shards: int,
    until_ns: int,
    lookahead_ns: int,
    merge: Callable[[List[Any]], Any],
    backend: str = "auto",
    inline_order: Optional[Callable[[int, List[int]], List[int]]] = None,
    coalesce: bool = True,
    checkpoint: Optional[CheckpointConfig] = None,
    recovery: Optional[RecoveryPolicy] = None,
    restore: bool = False,
    world_key: str = "",
    worker_faults: Sequence[Callable[[int, Sequence[Any]], None]] = (),
) -> Tuple[Any, ShardStats]:
    """Run one partitioned simulation; merge per-shard partials.

    ``build(domains)`` constructs a :class:`ShardWorld` owning exactly
    ``domains`` (``None`` means *all* — the serial fast path, which
    runs the single environment straight through with no windows).
    ``merge`` folds the per-shard ``finalize()`` results, always in
    shard order.  ``backend`` is ``"serial"`` (forced single
    environment), ``"inline"`` (N worlds, one process — the reference
    the property tests permute via ``inline_order``), ``"fork"`` (one
    process per shard), or ``"auto"`` (fork when available and
    ``shards > 1``, else inline).  ``coalesce=False`` disables barrier
    elision — one exchange per window, the pre-elision execution shape
    — and is byte-identical to the default (CI holds it there).

    ``checkpoint`` journals the run to disk at a barrier cadence
    (:mod:`repro.sim.checkpoint`); ``restore=True`` resumes from the
    newest usable file in its directory (an empty directory starts
    fresh).  ``recovery`` arms in-run worker respawn on the fork
    backend.  ``world_key`` names the world the checkpoint belongs to
    (restore refuses a mismatch).  ``worker_faults`` are host-level
    fault hooks — ``fault(barriers_done, procs)`` called at the top of
    every fork-backend barrier (e.g.
    :class:`repro.faults.WorkerKill`).
    """
    shard_map = ShardMap(n_domains, shards)
    if backend not in ("auto", "serial", "inline", "fork"):
        raise ConfigError(f"unknown shard backend {backend!r}")
    if backend == "serial" and shards != 1:
        raise ConfigError("backend='serial' requires shards=1")
    if restore and checkpoint is None:
        raise ConfigError("restore=True requires a checkpoint config")

    if shards == 1 and backend in ("auto", "serial"):
        if checkpoint is not None or restore:
            raise ConfigError(
                "checkpoints are barrier-aligned and a serial run has no "
                "barriers; use shards >= 2 or drop the checkpoint config"
            )
        if worker_faults:
            raise ConfigError(
                "worker_faults need worker processes (fork backend)"
            )
        world = build(None)
        world.env.run(until=until_ns)
        stats = ShardStats(
            shards=1,
            backend="serial",
            events_per_shard=[world.env.events_processed],
            sent_per_shard=[world.mailbox.sent],
        )
        return merge([world.finalize()]), stats

    if backend == "auto":
        backend = "fork" if _fork_available() else "inline"
    if worker_faults and backend != "fork":
        raise ConfigError(
            "worker_faults need worker processes (fork backend), "
            f"got backend={backend!r}"
        )
    if inline_order is not None and (checkpoint is not None or restore):
        raise ConfigError(
            "checkpointing with a permuted inline_order is unsupported "
            "(the journal records the canonical shard order)"
        )
    bounds = window_boundaries(until_ns, lookahead_ns)
    restore_payload = None
    if restore:
        loaded = load_latest(checkpoint.path, world_key=world_key)
        if loaded is not None:
            restore_payload, _ = loaded
            validate_restore(
                restore_payload,
                world_key=world_key,
                shards=shards,
                n_domains=n_domains,
                until_ns=until_ns,
                lookahead_ns=lookahead_ns,
                coalesce=coalesce,
                n_windows=len(bounds),
            )
    if backend == "inline":
        return _run_inline(
            build, shard_map, bounds, until_ns, lookahead_ns, merge,
            inline_order, coalesce, checkpoint=checkpoint,
            restore_payload=restore_payload, world_key=world_key,
        )
    return _run_forked(
        build, shard_map, bounds, until_ns, lookahead_ns, merge, coalesce,
        checkpoint=checkpoint, recovery=recovery,
        restore_payload=restore_payload, world_key=world_key,
        worker_faults=worker_faults,
    )


def _fork_available() -> bool:
    import multiprocessing

    return "fork" in multiprocessing.get_all_start_methods()


# -- inline backend ----------------------------------------------------------

def _run_inline(
    build,
    shard_map: ShardMap,
    bounds: Sequence[int],
    until_ns: int,
    lookahead_ns: int,
    merge,
    inline_order,
    coalesce: bool,
    checkpoint: Optional[CheckpointConfig] = None,
    restore_payload: Optional[Dict[str, Any]] = None,
    world_key: str = "",
) -> Tuple[Any, ShardStats]:
    worlds = [build(shard_map.domains_of(s)) for s in range(shard_map.shards)]
    domain_shard = shard_map.domain_to_shard()
    shards = shard_map.shards
    stats = ShardStats(shards=shards, backend="inline", windows=len(bounds))
    n = len(bounds)
    k = 0
    stride = 1
    journal: Optional[ShardJournal] = None
    if checkpoint is not None or restore_payload is not None:
        journal = ShardJournal(shards)
    if restore_payload is not None:
        journal = journal_from_payload(restore_payload)
        k, stride = _restore_stats(stats, restore_payload)
        _replay_inline(worlds, journal, bounds, coalesce, k, stride)
    while k < n:
        j = k + stride - 1  # this stride's barrier window index
        limit = bounds[j]
        order = list(range(shards))
        if inline_order is not None:
            order = list(inline_order(j, order))
            if sorted(order) != list(range(shards)):
                raise ConfigError(
                    f"inline_order returned {order}, not a permutation"
                )
        batches: List[List[Message]] = [[] for _ in range(shards)]
        earliest_in = [INFINITY] * shards
        covered = [False] * shards
        horizon = INFINITY
        for s in order:
            world = worlds[s]
            world.env.run_window(limit)
            outbox = world.mailbox.drain_outbox()
            reported, covers = world.mailbox.send_horizon()
            if journal is not None:
                journal.record_worker_frame(
                    s, _pack_barrier(reported, covers, outbox)
                )
            for msg in outbox:
                dest = domain_shard[msg.dest]
                batches[dest].append(msg)
                stats.messages_exchanged += 1
                if msg.deliver_at < earliest_in[dest]:
                    earliest_in[dest] = msg.deliver_at
            if reported < horizon:
                horizon = reported
            covered[s] = covers
        # A delivery may trigger a send at its own instant — but only
        # on a shard whose bound doesn't already speak for deliveries.
        for s in range(shards):
            if not covered[s] and earliest_in[s] < horizon:
                horizon = earliest_in[s]
        # Hand over after every shard ran its window: a batch's content
        # is then independent of the execution order above.
        for s in range(shards):
            worlds[s].mailbox.ingest(batches[s])
        stats.barriers += 1
        k = j + 1
        if coalesce and k < n:
            stride = coalesce_stride(limit, horizon, lookahead_ns, n - k)
            if stride > stats.max_stride:
                stats.max_stride = stride
        else:
            stride = 1
        if journal is not None:
            # The same frame the fork parent would pipe: stride
            # piggybacked on the inbox batch — journals (and therefore
            # checkpoints) are backend-portable.
            for s in range(shards):
                journal.record_parent_frame(
                    s, _pack_barrier(stride, False, batches[s])
                )
        if (
            checkpoint is not None
            and stats.barriers % checkpoint.every == 0
        ):
            save_checkpoint(
                checkpoint,
                checkpoint_payload(
                    world_key=world_key, k=k, stride=stride,
                    until_ns=until_ns, lookahead_ns=lookahead_ns,
                    n_domains=shard_map.n_domains, shards=shards,
                    coalesce=coalesce, stats=stats.to_dict(),
                    journal=journal,
                ),
            )
    for world in worlds:
        _finish_shard(world, until_ns)
    stats.events_per_shard = [w.env.events_processed for w in worlds]
    stats.sent_per_shard = [w.mailbox.sent for w in worlds]
    return merge([w.finalize() for w in worlds]), stats


def _restore_stats(
    stats: ShardStats, payload: Dict[str, Any]
) -> Tuple[int, int]:
    """Resume ``stats`` from a checkpoint payload; return (k, stride)."""
    recorded = payload.get("stats", {})
    stats.barriers = int(recorded.get("barriers", 0))
    stats.messages_exchanged = int(recorded.get("messages_exchanged", 0))
    stats.max_stride = int(recorded.get("max_stride", 1))
    return int(payload["k"]), int(payload["stride"])


def _replay_inline(
    worlds, journal: ShardJournal, bounds, coalesce: bool,
    resume_k: int, resume_stride: int,
) -> None:
    """Re-execute the journaled exchanges against freshly built worlds.

    The inline twin of the fork backend's respawn replay: run each
    window, digest-check the regenerated outbox frame against the
    journal, then ingest the recorded inbox frame.  Ends with every
    world at the checkpointed barrier, or raises
    :class:`~repro.errors.ShardSyncError` if the rebuild diverges.
    """
    shards = len(worlds)
    exchanges = journal.exchanges(0) if shards else 0
    k = 0
    stride = 1
    for i in range(exchanges):
        j = k + stride - 1
        limit = bounds[j]
        next_stride = 1
        for s in range(shards):
            world = worlds[s]
            world.env.run_window(limit)
            outbox = world.mailbox.drain_outbox()
            reported, covers = world.mailbox.send_horizon()
            regenerated = _pack_barrier(reported, covers, outbox)
            got = hashlib.sha256(regenerated).hexdigest()
            want = journal.digests[s][i]
            if got != want:
                raise ShardSyncError(
                    f"shard {s} diverged during checkpoint replay at "
                    f"exchange {i}: regenerated frame digest {got[:12]} "
                    f"!= recorded {want[:12]}; the build is not "
                    "deterministic, so the checkpoint cannot restore "
                    "this run"
                )
            next_stride, _, incoming = _unpack_barrier(journal.frames[s][i])
            world.mailbox.ingest(incoming)
        k = j + 1
        stride = next_stride if coalesce and next_stride > 1 else 1
    if k != resume_k or stride != resume_stride:
        raise CheckpointError(
            f"checkpoint loop state (k={resume_k}, stride={resume_stride}) "
            f"does not match its own journal (k={k}, stride={stride})"
        )


# -- fork backend ------------------------------------------------------------
#
# Pipe protocol, one frame per direction per barrier (``send_bytes``,
# so a batch is one write, not one pickle per message):
#
#   worker -> parent   b"F" + horizon:i64 + covers:u8 + batch (outbox)
#   parent -> worker   b"F" + stride:i64  + 0:u8      + batch (inbox)
#   worker -> parent   b"E" + pickled envelope (final, or on error)

_BARRIER_HEAD = struct.Struct("!qB")
_FRAME_ENVELOPE = 0x45  # b"E"


def _pack_barrier(
    value: int, flag: bool, messages: Sequence[Message]
) -> bytes:
    return b"F" + _BARRIER_HEAD.pack(value, flag) + encode_batch(messages)


def _unpack_barrier(frame: bytes) -> Tuple[int, bool, List[Message]]:
    value, flag = _BARRIER_HEAD.unpack_from(frame, 1)
    return value, bool(flag), decode_batch(frame[1 + _BARRIER_HEAD.size:])


def _shard_worker(
    build, domains, bounds, until_ns, lookahead_ns, coalesce, conn
) -> None:
    """One shard's process: windows, barriers, final phase, envelope.

    The world stays resident for the whole run; the loop binds its
    window/drain/ingest entry points once (no per-window attribute or
    shard-map lookups) and exchanges struct-packed frames with the
    parent, whose stride decision arrives piggybacked on the inbox.
    """
    envelope: Dict[str, Any] = {}
    ambient = _invariants.current()
    monitor = _invariants.monitor_for_mode(ambient.mode)
    _invariants.install(monitor)
    try:
        world = build(tuple(domains))
        run_window = world.env.run_window
        drain = world.mailbox.drain_outbox
        ingest = world.mailbox.ingest
        send_horizon = world.mailbox.send_horizon

        n = len(bounds)
        k = 0
        stride = 1
        while k < n:
            j = k + stride - 1
            run_window(bounds[j])
            bound, covers = send_horizon()
            conn.send_bytes(_pack_barrier(bound, covers, drain()))
            next_stride, _, incoming = _unpack_barrier(conn.recv_bytes())
            ingest(incoming)
            k = j + 1
            # The parent's decision is authoritative (and identical to
            # what the inline loop would compute from the same reports).
            stride = next_stride if coalesce and next_stride > 1 else 1
        _finish_shard(world, until_ns)
        envelope["result"] = world.finalize()
        envelope["events"] = world.env.events_processed
        envelope["sent"] = world.mailbox.sent
    except BaseException as exc:
        envelope = {
            "error": f"{type(exc).__name__}: {exc}\n{traceback.format_exc()}"
        }
    finally:
        _invariants.install(ambient)
    if monitor.tainted:
        envelope["tainted"] = True
        envelope["violations"] = monitor.to_dicts()
    conn.send_bytes(
        b"E" + pickle.dumps(envelope, protocol=pickle.HIGHEST_PROTOCOL)
    )
    conn.close()


def _run_forked(
    build,
    shard_map: ShardMap,
    bounds: Sequence[int],
    until_ns: int,
    lookahead_ns: int,
    merge,
    coalesce: bool,
    checkpoint: Optional[CheckpointConfig] = None,
    recovery: Optional[RecoveryPolicy] = None,
    restore_payload: Optional[Dict[str, Any]] = None,
    world_key: str = "",
    worker_faults: Sequence[Callable[[int, Sequence[Any]], None]] = (),
) -> Tuple[Any, ShardStats]:
    import gc
    import multiprocessing
    import signal as _signal
    import time as _time

    ctx = multiprocessing.get_context("fork")
    shards = shard_map.shards
    stats = ShardStats(shards=shards, backend="fork", windows=len(bounds))
    domain_shard = shard_map.domain_to_shard()
    n = len(bounds)
    k = 0
    stride = 1
    journal: Optional[ShardJournal] = None
    if (
        checkpoint is not None
        or recovery is not None
        or restore_payload is not None
    ):
        journal = ShardJournal(shards)
    if restore_payload is not None:
        journal = journal_from_payload(restore_payload)
        k, stride = _restore_stats(stats, restore_payload)
    respawns = [0] * shards
    pipes: List[Any] = [None] * shards
    procs: List[Any] = [None] * shards

    def _spawn(s: int) -> None:
        parent_conn, child_conn = ctx.Pipe()
        proc = ctx.Process(
            target=_shard_worker,
            args=(
                build, shard_map.domains_of(s), list(bounds), until_ns,
                lookahead_ns, coalesce, child_conn,
            ),
            name=f"repro-shard-{s}",
        )
        proc.start()
        child_conn.close()
        pipes[s] = parent_conn
        procs[s] = proc

    def _reap(s: int) -> None:
        try:
            pipes[s].close()
        except OSError:  # pragma: no cover - already torn down
            pass
        proc = procs[s]
        if proc is not None:
            proc.join(timeout=5)
            if proc.is_alive():  # pragma: no cover - defensive
                proc.terminate()
                proc.join()

    def _death_detail(s: int) -> str:
        proc = procs[s]
        if proc is None:  # pragma: no cover - defensive
            return "worker never started"
        code = proc.exitcode
        if code is None:
            # A just-killed child may not be reaped yet.
            proc.join(timeout=1)
            code = proc.exitcode
        if code is None:  # pragma: no cover - still running
            return "worker still running"
        if code < 0:
            try:
                name = _signal.Signals(-code).name
            except ValueError:  # pragma: no cover - unknown signal
                name = "unknown"
            return f"killed by signal {-code} ({name})"
        return f"exited with code {code}"

    def _position(window: int) -> str:
        if window < n:
            return f"barrier {stats.barriers} (window {window}, t<={bounds[window]} ns)"
        return f"barrier {stats.barriers} (final phase, t<={until_ns} ns)"

    def _replay(s: int) -> None:
        """Lockstep-replay the journal into a freshly spawned worker.

        The worker re-executes every window from t=0; each regenerated
        outbox frame must digest-match what the original worker sent
        (divergence means the build is not deterministic — a contract
        violation, not a recoverable fault), and in exchange it is fed
        the recorded inbox frame.  On return the worker sits exactly
        where the parent's loop state says it should.
        """
        recv = pipes[s].recv_bytes
        send = pipes[s].send_bytes
        for i, frame in enumerate(journal.frames[s]):
            regenerated = recv()
            if regenerated[0] == _FRAME_ENVELOPE:
                err = pickle.loads(regenerated[1:]).get(
                    "error", "unknown worker error"
                )
                raise ShardSyncError(
                    f"shard {s} failed deterministically during replay "
                    f"at exchange {i}: {err}"
                )
            got = hashlib.sha256(regenerated).hexdigest()
            want = journal.digests[s][i]
            if got != want:
                raise ShardSyncError(
                    f"shard {s} diverged during replay at exchange {i}: "
                    f"regenerated frame digest {got[:12]} != recorded "
                    f"{want[:12]}; the build is not deterministic, so "
                    "the journal cannot restore this run"
                )
            send(frame)

    def _recover(s: int, window: int, reason: str) -> None:
        """Respawn shard ``s``'s worker and replay it back to position.

        Seeded backoff, bounded budget; exhausting the budget (or
        running without a :class:`RecoveryPolicy`) raises the terminal
        :class:`ShardSyncError`, now carrying the barrier/window
        position and the worker's exitcode or signal.
        """
        while True:
            context = (
                f"shard {s} worker died at {_position(window)}: "
                f"{reason}; {_death_detail(s)}"
            )
            if recovery is None or journal is None:
                raise ShardSyncError(
                    context + "; in-run recovery is off — see the "
                    "worker's stderr for any traceback"
                ) from None
            if respawns[s] >= recovery.max_respawns:
                raise ShardSyncError(
                    context + f"; respawn budget exhausted "
                    f"({respawns[s]}/{recovery.max_respawns})"
                ) from None
            respawns[s] += 1
            stats.respawns += 1
            _reap(s)
            delay = recovery.backoff_s(s, respawns[s])
            if delay > 0:
                _time.sleep(delay)
            _spawn(s)
            try:
                _replay(s)
                return
            except (EOFError, OSError) as exc:
                reason = (
                    f"worker died again during replay "
                    f"({type(exc).__name__})"
                )

    def _recv(s: int, window: int) -> bytes:
        while True:
            try:
                frame = pipes[s].recv_bytes()
            except (EOFError, OSError) as exc:
                _recover(
                    s, window, f"pipe closed ({type(exc).__name__})"
                )
                continue
            if journal is not None and frame[0] != _FRAME_ENVELOPE:
                journal.record_worker_frame(s, frame)
            return frame

    def _send(s: int, frame: bytes, window: int) -> None:
        # Journal before the write: if the write fails halfway, the
        # respawned worker consumes this very frame during replay, so a
        # successful recovery *is* the completed send.
        if journal is not None:
            journal.record_parent_frame(s, frame)
        try:
            pipes[s].send_bytes(frame)
        except (BrokenPipeError, OSError):
            _recover(s, window, "pipe broke on send")

    # Freeze the parent heap across the spawns.  A forked child shares
    # the parent's pages copy-on-write, but CPython's cyclic collector
    # scans every tracked object — which writes to every inherited
    # page's refcount fields and faults the whole heap into the child.
    # Collecting then moving survivors to the permanent generation
    # keeps the children's collector off the shared pages entirely;
    # measured on cluster_scale this roughly quarters child minor
    # faults and brings total fork-run CPU back to parity with serial.
    gc.collect()
    gc.freeze()
    try:
        for s in range(shards):
            _spawn(s)
        if journal is not None and any(journal.frames):
            # Restore: march every worker through the journal before
            # entering the live loop.
            for s in range(shards):
                try:
                    _replay(s)
                except (EOFError, OSError) as exc:
                    _recover(
                        s, k,
                        f"worker died during restore replay "
                        f"({type(exc).__name__})",
                    )

        failure: Optional[str] = None
        while k < n:
            j = k + stride - 1
            for fault in worker_faults:
                fault(stats.barriers, procs)
            batches: List[List[Message]] = [[] for _ in range(shards)]
            earliest_in = [INFINITY] * shards
            covered = [False] * shards
            horizon = INFINITY
            for s in range(shards):
                frame = _recv(s, j)
                if frame[0] == _FRAME_ENVELOPE:
                    # Worker failed before this barrier and sent its
                    # envelope early — a deterministic model error that
                    # a respawn would only reproduce, so it stays
                    # terminal even with recovery armed.
                    err = pickle.loads(frame[1:]).get(
                        "error", "unknown worker error"
                    )
                    failure = f"shard {s}: {err}"
                    break
                reported, covers, outbox = _unpack_barrier(frame)
                covered[s] = covers
                if reported < horizon:
                    horizon = reported
                for msg in outbox:
                    dest = domain_shard[msg.dest]
                    batches[dest].append(msg)
                    stats.messages_exchanged += 1
                    if msg.deliver_at < earliest_in[dest]:
                        earliest_in[dest] = msg.deliver_at
            if failure is not None:
                break
            # Same fold as the inline loop: a routed delivery caps the
            # horizon only on shards whose bound can't cover deliveries.
            for s in range(shards):
                if not covered[s] and earliest_in[s] < horizon:
                    horizon = earliest_in[s]
            k = j + 1
            if coalesce and k < n:
                stride = coalesce_stride(
                    bounds[j], horizon, lookahead_ns, n - k
                )
                if stride > stats.max_stride:
                    stats.max_stride = stride
            else:
                stride = 1
            for s in range(shards):
                _send(s, _pack_barrier(stride, False, batches[s]), j)
            stats.barriers += 1
            if (
                checkpoint is not None
                and stats.barriers % checkpoint.every == 0
            ):
                save_checkpoint(
                    checkpoint,
                    checkpoint_payload(
                        world_key=world_key, k=k, stride=stride,
                        until_ns=until_ns, lookahead_ns=lookahead_ns,
                        n_domains=shard_map.n_domains, shards=shards,
                        coalesce=coalesce, stats=stats.to_dict(),
                        journal=journal,
                    ),
                )

        if failure is not None:
            raise ShardSyncError(failure)

        envelopes = []
        for s in range(shards):
            frame = _recv(s, n)
            if frame[0] != _FRAME_ENVELOPE:  # pragma: no cover - defensive
                raise ShardSyncError(
                    f"shard {s} sent a barrier frame where its final "
                    "envelope was due (protocol desync)"
                )
            envelopes.append(pickle.loads(frame[1:]))
    finally:
        gc.unfreeze()
        for conn in pipes:
            if conn is not None:
                try:
                    conn.close()
                except OSError:  # pragma: no cover - already closed
                    pass
        for proc in procs:
            if proc is not None:
                proc.join(timeout=30)
                if proc.is_alive():  # pragma: no cover - defensive
                    proc.terminate()
                    proc.join()

    errors = [
        f"shard {s}: {env['error']}"
        for s, env in enumerate(envelopes)
        if "error" in env
    ]
    if errors:
        raise ShardSyncError("; ".join(errors))
    # Re-record worker-side invariant violations into the parent's
    # ambient monitor so a sharded cell taints exactly like a serial
    # one would.
    ambient = _invariants.current()
    for s, env_ in enumerate(envelopes):
        if env_.get("tainted") and ambient.enabled:
            for v in env_.get("violations", ()):
                ambient.violation(
                    v.get("guard", "shard.worker"),
                    int(v.get("ts_ns", 0)),
                    f"[shard {s}] {v.get('message', '')}",
                    **v.get("details", {}),
                )
    stats.events_per_shard = [env_["events"] for env_ in envelopes]
    stats.sent_per_shard = [env_["sent"] for env_ in envelopes]
    return merge([env_["result"] for env_ in envelopes]), stats
