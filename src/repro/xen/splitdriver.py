"""Para-virtualized InfiniBand split driver (frontend/backend).

Control-path operations — opening a device context, registering memory,
creating CQs and QPs — travel from the guest frontend through a shared
ring to the backend driver in dom0, which performs the privileged HCA
operations (paper §III, split device driver model of [7], adapted for
IB as in [12]).  Data-path operations bypass this entirely.

The latency split matters for fidelity: control ops cost tens of
microseconds and burn both guest and dom0 CPU, but happen only at
setup; steady-state traffic never touches dom0 — which is precisely
why the hypervisor cannot see it and IBMon must introspect.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Optional

from repro.errors import HypervisorError
from repro.hw.memory import Buffer
from repro.ib.cq import CompletionQueue
from repro.ib.hca import HCA
from repro.ib.mr import Access, MemoryRegion
from repro.ib.verbs import IBContext

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.xen.domain import Domain


class IBBackend:
    """dom0 half: executes privileged HCA operations for guests."""

    def __init__(self, hca: HCA, dom0: "Domain") -> None:
        if not dom0.is_privileged:
            raise HypervisorError("IB backend must run in dom0")
        self.hca = hca
        self.dom0 = dom0
        #: Registered frontends by domid (the backend tracks its guests).
        self.frontends = {}
        #: Count of control operations served (sanity statistic).
        self.ops_served = 0

    def _charge(self):
        """Backend CPU work for one control operation."""
        yield self.dom0.vcpu.compute(self.hca.params.backend_op_ns)
        self.ops_served += 1


class IBFrontend:
    """Guest half: forwards control ops to the backend."""

    def __init__(self, domain: "Domain", backend: IBBackend) -> None:
        if domain.is_privileged:
            raise HypervisorError(
                "the frontend runs in guest domains, not dom0"
            )
        self.domain = domain
        self.backend = backend
        backend.frontends[domain.domid] = self

    @property
    def params(self):
        return self.backend.hca.params

    def _roundtrip(self):
        """Guest->backend->guest control message."""
        yield self.domain.vcpu.compute(self.params.hypercall_ns)
        yield from self.backend._charge()

    # -- control-path verbs -------------------------------------------------
    def open_context(self):
        """Open the device: allocates the UAR doorbell page."""
        yield from self._roundtrip()
        uar = self.backend.hca.create_uar(self.domain)
        return IBContext(self.domain, self.backend.hca, uar)

    def reg_mr(self, ctx: IBContext, nbytes: int, access: Access, label: str = ""):
        """Allocate and register a buffer of ``nbytes``.

        Registration pins the pages and installs the TPT entry — the
        slow, backend-mediated step that real IB applications amortize
        by registering once and reusing buffers (BenchEx does the same).
        """
        yield from self._roundtrip()
        buffer = Buffer(self.domain.address_space, nbytes, label=label)
        mr = self.backend.hca.register_mr(buffer, access, self.domain.domid)
        ctx.mrs.append(mr)
        return mr

    def dereg_mr(self, ctx: IBContext, mr: MemoryRegion):
        yield from self._roundtrip()
        self.backend.hca.tpt.deregister(mr)
        ctx.mrs.remove(mr)

    def create_cq(self, ctx: IBContext, depth: int = 1024):
        yield from self._roundtrip()
        cq = self.backend.hca.create_cq(self.domain, depth)
        ctx.cqs.append(cq)
        return cq

    def create_qp(
        self,
        ctx: IBContext,
        send_cq: CompletionQueue,
        recv_cq: Optional[CompletionQueue] = None,
        max_send_wr: int = 128,
        max_recv_wr: int = 128,
        srq=None,
    ):
        yield from self._roundtrip()
        qp = self.backend.hca.create_qp(
            self.domain,
            send_cq,
            recv_cq if recv_cq is not None else send_cq,
            max_send_wr,
            max_recv_wr,
            srq=srq,
        )
        ctx.qps.append(qp)
        return qp

    def create_srq(self, ctx: IBContext, max_wr: int = 1024):
        """Create a shared receive queue for fan-in servers."""
        yield from self._roundtrip()
        srq = self.backend.hca.create_srq(self.domain, max_wr)
        ctx.srqs.append(srq)
        return srq
