"""Virtual CPUs and the work items applications run on them.

Guest code never advances simulation time directly; it submits work to
its VCPU and waits.  The credit scheduler decides when the VCPU
actually runs, which is how CPU caps throttle a VM's I/O issue rate —
the causal link at the heart of ResEx (paper §V-B).

Two kinds of work exist:

* :class:`Compute` — a fixed amount of CPU time (request processing,
  posting a work request, ...).
* :class:`PollUntil` — busy-polling a completion queue: consumes CPU
  for as long as the VCPU is scheduled, finishing only once the awaited
  event has fired *and* the VCPU is running to observe it.  This models
  the fact that a descheduled (capped) VM cannot notice completions.
"""

from __future__ import annotations

from collections import deque
from typing import TYPE_CHECKING, Deque, Optional

from repro.errors import SchedulerError
from repro.sim.events import Event

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.sim.core import Environment
    from repro.xen.credit import PCPUScheduler


class WorkItem:
    """Base class for schedulable guest work."""

    __slots__ = ("done", "submitted_at", "started_at")

    def __init__(self, env: "Environment") -> None:
        self.done = Event(env)
        self.submitted_at = env.now
        self.started_at: Optional[int] = None


class Compute(WorkItem):
    """A fixed quantity of CPU time."""

    __slots__ = ("remaining",)

    def __init__(self, env: "Environment", duration_ns: int) -> None:
        if duration_ns < 0:
            raise SchedulerError(f"negative compute duration: {duration_ns}")
        super().__init__(env)
        self.remaining = int(duration_ns)


class PollUntil(WorkItem):
    """Busy-poll until ``event`` fires (observed while scheduled)."""

    __slots__ = ("event", "check_cost_ns", "polled_ns")

    def __init__(
        self, env: "Environment", event: Event, check_cost_ns: int
    ) -> None:
        if check_cost_ns <= 0:
            raise SchedulerError(f"check cost must be > 0: {check_cost_ns}")
        super().__init__(env)
        self.event = event
        self.check_cost_ns = int(check_cost_ns)
        #: Total CPU time burned polling (the PTime ingredient).
        self.polled_ns = 0


class VCPU:
    """One virtual CPU, bound to a physical CPU's credit scheduler."""

    def __init__(
        self,
        env: "Environment",
        vcpu_id: int,
        weight: int = 256,
        cap_percent: int = 100,
    ) -> None:
        if weight < 1:
            raise SchedulerError(f"weight must be >= 1, got {weight}")
        self.env = env
        self.vcpu_id = vcpu_id
        self.weight = weight
        self._cap_percent = 0
        #: Memoized (period_ns -> budget_ns) pair; the scheduler asks for
        #: the budget several times per scheduling decision with the same
        #: period, so the division is done once per cap change instead.
        self._budget_period_ns = -1
        self._budget_ns = 0
        self.cap_percent = cap_percent  # validated by the setter
        self._cumulative_ns: int = 0
        #: Set while the scheduler is actively running this VCPU, so the
        #: cumulative counter ticks continuously (as real XenStat's does).
        self._running_since: Optional[int] = None
        #: CPU time consumed in the scheduler's current accounting period.
        self.used_in_period: int = 0
        #: Weighted virtual time for fair scheduling: advances by
        #: (time run)/weight and never resets, so shares converge to the
        #: weight ratio regardless of period boundaries or quantum size.
        self.vtime: float = 0.0
        #: Set when the work queue goes empty->nonempty; the scheduler
        #: clamps vtime on wake so an idle VCPU cannot hoard credit.
        self._needs_vtime_clamp: bool = False
        #: Fault-injection hook (:mod:`repro.faults`): a frozen VCPU is
        #: never eligible to run, regardless of queued work — the
        #: behavioural analog of ``xl pause``.  Work keeps queueing and
        #: resumes when the freeze lifts.
        self.frozen: bool = False
        self._work: Deque[WorkItem] = deque()
        self.scheduler: Optional["PCPUScheduler"] = None

    # -- cap ------------------------------------------------------------------
    @property
    def cap_percent(self) -> int:
        return self._cap_percent

    @cap_percent.setter
    def cap_percent(self, value: int) -> None:
        value = int(value)
        if not 0 < value <= 100:
            raise SchedulerError(
                f"cap must be in (0, 100], got {value} "
                "(a 0 cap would permanently stall the VCPU)"
            )
        self._cap_percent = value
        self._budget_period_ns = -1  # invalidate the budget memo

    def cap_budget_ns(self, period_ns: int) -> int:
        """CPU time this VCPU may use per accounting period."""
        if period_ns != self._budget_period_ns:
            self._budget_period_ns = period_ns
            self._budget_ns = period_ns * self._cap_percent // 100
        return self._budget_ns

    # -- accounting --------------------------------------------------------
    @property
    def cumulative_ns(self) -> int:
        """Total CPU time consumed since creation (XenStat counter).

        Includes the in-progress quantum, so samplers reading between
        scheduling events see a continuously advancing counter.
        """
        total = self._cumulative_ns
        if self._running_since is not None:
            total += self.env.now - self._running_since
        return total

    # -- work submission --------------------------------------------------------
    def has_work(self) -> bool:
        return bool(self._work)

    def current_item(self) -> Optional[WorkItem]:
        return self._work[0] if self._work else None

    def compute(self, duration_ns: int) -> Event:
        """Submit a compute burst; returns its completion event."""
        item = Compute(self.env, duration_ns)
        self._submit(item)
        return item.done

    def poll_until(self, event: Event, check_cost_ns: int = 200) -> Event:
        """Submit a busy-poll; completion value is the polled CPU time (ns)."""
        item = PollUntil(self.env, event, check_cost_ns)
        self._submit(item)
        return item.done

    def _submit(self, item: WorkItem) -> None:
        if self.scheduler is None:
            raise SchedulerError(
                f"VCPU {self.vcpu_id} is not attached to a scheduler"
            )
        if not self._work:
            self._needs_vtime_clamp = True
        self._work.append(item)
        self.scheduler.notify_work()

    def _finish_current(self, value: object = None) -> None:
        item = self._work.popleft()
        item.done.succeed(value)

    def __repr__(self) -> str:
        return (
            f"<VCPU {self.vcpu_id} weight={self.weight} "
            f"cap={self._cap_percent}% queued={len(self._work)}>"
        )
