"""Virtual memory introspection utilities (xc_map_foreign_range).

Thin convenience layer over
:meth:`repro.xen.hypervisor.Hypervisor.map_foreign_pages` mirroring the
XenControl call IBMon is built on: map a gpfn range of a target VM into
the monitoring application's address space, read-only.
"""

from __future__ import annotations

from typing import List, Sequence

from repro.hw.memory import ReadOnlyView
from repro.xen.domain import Domain
from repro.xen.hypervisor import Hypervisor


def xc_map_foreign_range(
    hypervisor: Hypervisor,
    requester: Domain,
    target_domid: int,
    start_gpfn: int,
    nframes: int,
) -> List[ReadOnlyView]:
    """Map ``nframes`` pages of ``target_domid`` starting at ``start_gpfn``.

    Returns read-only views of the target's page frames.  The views stay
    live: content updates made by the "hardware" (HCA DMA writes) are
    visible to the requester on its next read — which is what makes
    IBMon's asynchronous sampling possible.
    """
    gpfns: Sequence[int] = range(start_gpfn, start_gpfn + nframes)
    return hypervisor.map_foreign_pages(requester, target_domid, gpfns)
