"""Domains (VMs) hosted by the hypervisor."""

from __future__ import annotations

from typing import TYPE_CHECKING, List

from repro.errors import HypervisorError
from repro.hw.memory import AddressSpace
from repro.xen.vcpu import VCPU

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.xen.hypervisor import Hypervisor

DOM0_ID = 0


class Domain:
    """One VM: identity, memory, and its VCPUs.

    dom0 (domid 0) is the privileged control domain; it hosts the IB
    backend driver, IBMon, and the ResEx controller.
    """

    def __init__(
        self,
        hypervisor: "Hypervisor",
        domid: int,
        name: str,
        address_space: AddressSpace,
        vcpus: List[VCPU],
    ) -> None:
        if not vcpus:
            raise HypervisorError(f"domain {name!r} needs at least one VCPU")
        self.hypervisor = hypervisor
        self.env = hypervisor.env
        self.domid = domid
        self.name = name
        self.address_space = address_space
        self.vcpus = vcpus
        self.alive = True

    @property
    def is_privileged(self) -> bool:
        return self.domid == DOM0_ID

    @property
    def vcpu(self) -> VCPU:
        """The first (often only) VCPU — the paper pins one per domain."""
        return self.vcpus[0]

    @property
    def cpu_time_ns(self) -> int:
        """Total CPU consumed by all VCPUs (the XenStat counter)."""
        return sum(v.cumulative_ns for v in self.vcpus)

    def __repr__(self) -> str:
        return f"<Domain {self.domid} {self.name!r} vcpus={len(self.vcpus)}>"
