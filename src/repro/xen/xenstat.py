"""XenStat-like accounting interface.

ResEx uses the XenStat library to (a) read the CPU time consumed by a
VM and (b) set its CPU cap (paper §III).  This module exposes exactly
that contract: cumulative counters that the caller differences per
interval, plus the cap setter, so the ResEx controller code reads like
the original.
"""

from __future__ import annotations

from typing import Dict

from repro.xen.hypervisor import Hypervisor


class XenStat:
    """Per-hypervisor accounting facade."""

    def __init__(self, hypervisor: Hypervisor) -> None:
        self.hypervisor = hypervisor
        self._last_cpu_ns: Dict[int, int] = {}
        self._last_read_at: Dict[int, int] = {}

    # -- reading ---------------------------------------------------------------
    def cpu_time_ns(self, domid: int) -> int:
        """Cumulative CPU time consumed by the domain (all VCPUs)."""
        return self.hypervisor.domain(domid).cpu_time_ns

    def cpu_percent_since_last(self, domid: int) -> float:
        """CPU utilization (0-100, per VCPU-equivalent) since the last call.

        First call for a domain establishes the baseline and returns 0.
        This is how the ResEx interval loop samples "CPU percent in the
        interval" (Algorithm 1, line 5).
        """
        now = self.hypervisor.env.now
        current = self.cpu_time_ns(domid)
        last = self._last_cpu_ns.get(domid)
        last_at = self._last_read_at.get(domid)
        self._last_cpu_ns[domid] = current
        self._last_read_at[domid] = now
        if last is None or last_at is None or now <= last_at:
            return 0.0
        nvcpus = len(self.hypervisor.domain(domid).vcpus)
        return 100.0 * (current - last) / ((now - last_at) * nvcpus)

    # -- control ------------------------------------------------------------------
    def set_cap(self, domid: int, cap_percent: int) -> None:
        """Set the domain's scheduler cap (the 'CPU cap' of the paper)."""
        self.hypervisor.set_cap(domid, cap_percent)

    def get_cap(self, domid: int) -> int:
        return self.hypervisor.get_cap(domid)

    def __repr__(self) -> str:
        return f"<XenStat over {self.hypervisor!r}>"
