"""Credit scheduler with CPU caps.

Behavioural model of Xen's credit scheduler as ResEx uses it
(paper §III, §V-B): time is divided into accounting periods (10 ms —
the "time slice" the paper refers to); within a period a VCPU may
consume at most ``cap%`` of the period, and otherwise shares the PCPU
with other runnable VCPUs in proportion to its weight.  The scheduler
is work-conserving except for caps: a capped-out VCPU is parked until
the next period even if the PCPU is idle — exactly the semantics that
let ResEx translate "charge this VM more" into "give it less CPU".

Differences from Xen's credit1 internals (documented simplification):
credits/UNDER/OVER bookkeeping is replaced by deficit-round-robin over
``used/weight`` within each period, which yields the same long-run
weighted shares and identical cap behaviour, with far fewer events.
"""

from __future__ import annotations

from typing import List, Optional

from repro.errors import SchedulerError
from repro.sim.core import Environment
from repro.sim.events import Event
from repro.sim.invariants import GUARD_CREDIT_CAP
from repro.units import MS
from repro.xen.vcpu import VCPU, Compute, PollUntil

#: Default accounting period: the 10 ms slice from the paper.
DEFAULT_PERIOD_NS = 10 * MS
#: Preemption quantum when several VCPUs compete for one PCPU.
DEFAULT_QUANTUM_NS = 1 * MS


class PCPUScheduler:
    """Schedules the VCPUs pinned to one physical CPU."""

    def __init__(
        self,
        env: Environment,
        pcpu_id: int,
        period_ns: int = DEFAULT_PERIOD_NS,
        quantum_ns: int = DEFAULT_QUANTUM_NS,
    ) -> None:
        if period_ns <= 0 or quantum_ns <= 0:
            raise SchedulerError("period and quantum must be positive")
        if quantum_ns > period_ns:
            raise SchedulerError("quantum cannot exceed the period")
        self.env = env
        self.pcpu_id = pcpu_id
        self.period_ns = period_ns
        self.quantum_ns = quantum_ns
        self.vcpus: List[VCPU] = []
        self._work_signal: Optional[Event] = None
        #: Total time the PCPU spent running guest work (utilization stat).
        self.busy_ns: int = 0
        self._proc = env.process(self._run(), name=f"sched-pcpu{pcpu_id}")

    # -- attachment ---------------------------------------------------------
    def attach(self, vcpu: VCPU) -> None:
        """Pin ``vcpu`` to this PCPU."""
        if vcpu.scheduler is not None:
            raise SchedulerError(f"{vcpu!r} is already attached")
        vcpu.scheduler = self
        self.vcpus.append(vcpu)
        self.notify_work()

    def notify_work(self) -> None:
        """Wake the scheduler loop if it is idling."""
        if self._work_signal is not None and not self._work_signal.triggered:
            self._work_signal.succeed()

    # -- main loop -------------------------------------------------------------
    def _eligible(self) -> List[VCPU]:
        return [
            v
            for v in self.vcpus
            if not v.frozen
            and v.has_work()
            and v.used_in_period < v.cap_budget_ns(self.period_ns)
        ]

    def _pick(self, eligible: List[VCPU]) -> VCPU:
        # Virtual-time fairness: clamp waking VCPUs so idleness earns no
        # credit, then run the smallest virtual time (stable tie-break).
        # Manual scans instead of min(..., key=lambda ...): this runs
        # once per scheduling decision and the lambda/tuple allocations
        # showed up in scenario profiles.
        running_floor: Optional[float] = None
        for v in eligible:
            if not v._needs_vtime_clamp and (
                running_floor is None or v.vtime < running_floor
            ):
                running_floor = v.vtime
        for v in eligible:
            if v._needs_vtime_clamp:
                if running_floor is not None and v.vtime < running_floor:
                    v.vtime = running_floor
                v._needs_vtime_clamp = False
        best = eligible[0]
        for v in eligible:
            if v.vtime < best.vtime or (
                v.vtime == best.vtime and v.vcpu_id < best.vcpu_id
            ):
                best = v
        return best

    def _run(self):
        env = self.env
        lane = f"pcpu{self.pcpu_id}"
        # self.vcpus is mutated in place by attach(), so the local alias
        # sees late attachments; period/quantum are construction-fixed.
        vcpus = self.vcpus
        period_ns = self.period_ns
        quantum_ns = self.quantum_ns
        while True:
            # --- new accounting period -------------------------------------
            tel = env.telemetry
            if tel.enabled:
                tel.instant(
                    "credit",
                    "accounting_period",
                    env.now,
                    lane=lane,
                    runnable=sum(1 for v in vcpus if v.has_work()),
                )
            for v in vcpus:
                v.used_in_period = 0
            period_end = env.now + period_ns

            while env._now < period_end:
                eligible = [
                    v
                    for v in vcpus
                    if not v.frozen
                    and v._work
                    and v.used_in_period < v.cap_budget_ns(period_ns)
                ]
                if not eligible:
                    if not any(v._work for v in vcpus) and all(
                        v.used_in_period == 0 for v in vcpus
                    ):
                        # Idle with a completely untouched period: sleep
                        # with no timer.  Re-phasing the period on wake is
                        # harmless because no budget has been consumed —
                        # never re-phase otherwise, or caps would reset
                        # whenever a work queue momentarily empties.
                        self._work_signal = Event(env)
                        yield self._work_signal
                        self._work_signal = None
                        period_end = env.now + period_ns
                        continue
                    # Capped out, or idle mid-period: wait for work or the
                    # period boundary (budgets replenish only there).
                    self._work_signal = Event(env)
                    yield env.any_of(
                        [self._work_signal, env.timeout(period_end - env.now)]
                    )
                    self._work_signal = None
                    continue

                vcpu = self._pick(eligible)
                budget_left = vcpu.cap_budget_ns(period_ns) - vcpu.used_in_period
                horizon = min(budget_left, period_end - env._now)
                if horizon <= 0:
                    # Cap boundary rounding: skip to the next period edge.
                    yield env.timeout(period_end - env.now)
                    continue
                # Preempt at quantum granularity only when there is actual
                # competition; a lone VCPU runs to its budget/period edge.
                if len(eligible) > 1:
                    horizon = min(horizon, quantum_ns)
                slice_start = env.now
                inv = env.invariants
                slice_slack = 0
                if inv.enabled:
                    # A PollUntil slice may legitimately overshoot the
                    # horizon by the final poll check that observes the
                    # completion; anything beyond that is a cap-
                    # accounting violation.
                    head = vcpu.current_item()
                    if isinstance(head, PollUntil):
                        slice_slack = head.check_cost_ns
                vcpu._running_since = slice_start
                ran = yield from self._run_vcpu(vcpu, horizon)
                vcpu._running_since = None
                if inv.enabled and not (0 <= ran <= horizon + slice_slack):
                    inv.violation(
                        GUARD_CREDIT_CAP,
                        env.now,
                        f"vcpu{vcpu.vcpu_id} slice ran {ran}ns against a "
                        f"{horizon}ns cap-budget horizon",
                        vcpu=vcpu.vcpu_id,
                        ran_ns=ran,
                        horizon_ns=horizon,
                        slack_ns=slice_slack,
                        cap_pct=vcpu.cap_percent,
                    )
                vcpu.used_in_period += ran
                vcpu._cumulative_ns += ran
                vcpu.vtime += ran / vcpu.weight
                self.busy_ns += ran
                tel = env.telemetry
                if tel.enabled and ran > 0:
                    tel.span(
                        "credit",
                        f"vcpu{vcpu.vcpu_id}",
                        slice_start,
                        env.now,
                        lane=lane,
                        ran_ns=ran,
                        used_in_period_ns=vcpu.used_in_period,
                        cap_pct=vcpu.cap_percent,
                    )

    def _run_vcpu(self, vcpu: VCPU, horizon_ns: int):
        """Run the VCPU's head work item for at most ``horizon_ns``.

        Returns the CPU time actually consumed.
        """
        env = self.env
        item = vcpu.current_item()
        assert item is not None
        if item.started_at is None:
            item.started_at = env.now

        if isinstance(item, Compute):
            d = min(horizon_ns, item.remaining)
            if d > 0:
                yield env.timeout(d)
            item.remaining -= d
            if item.remaining <= 0:
                vcpu._finish_current()
            return d

        if isinstance(item, PollUntil):
            if item.event.callbacks is None or item.event.triggered:
                # Completion already there: one poll check sees it.
                d = min(item.check_cost_ns, horizon_ns)
                d = max(d, 1)
                yield env.timeout(d)
                item.polled_ns += d
                vcpu._finish_current(item.polled_ns)
                return d
            start = env.now
            quantum = env.timeout(horizon_ns)
            yield env.any_of([quantum, item.event])
            ran = env.now - start
            item.polled_ns += ran
            if item.event.triggered:
                # Charge the final poll check that observes the CQE.
                d = item.check_cost_ns
                yield env.timeout(d)
                item.polled_ns += d
                ran += d
                vcpu._finish_current(item.polled_ns)
            return ran

        raise SchedulerError(f"unknown work item type: {item!r}")  # pragma: no cover

    def utilization(self, elapsed_ns: int) -> float:
        """Fraction of ``elapsed_ns`` spent running guest work."""
        if elapsed_ns <= 0:
            return 0.0
        return self.busy_ns / elapsed_ns

    def __repr__(self) -> str:
        return f"<PCPUScheduler pcpu={self.pcpu_id} vcpus={len(self.vcpus)}>"
