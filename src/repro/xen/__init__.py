"""Xen-like hypervisor substrate: domains, credit scheduler, introspection."""

from repro.xen.credit import DEFAULT_PERIOD_NS, DEFAULT_QUANTUM_NS, PCPUScheduler
from repro.xen.domain import DOM0_ID, Domain
from repro.xen.hypervisor import Hypervisor
from repro.xen.introspect import xc_map_foreign_range
from repro.xen.splitdriver import IBBackend, IBFrontend
from repro.xen.vcpu import VCPU, Compute, PollUntil, WorkItem
from repro.xen.xenstat import XenStat

__all__ = [
    "DEFAULT_PERIOD_NS",
    "DEFAULT_QUANTUM_NS",
    "DOM0_ID",
    "Compute",
    "Domain",
    "Hypervisor",
    "IBBackend",
    "IBFrontend",
    "PCPUScheduler",
    "PollUntil",
    "VCPU",
    "WorkItem",
    "XenStat",
    "xc_map_foreign_range",
]
