"""The hypervisor: domain lifecycle, scheduling, introspection privilege.

One :class:`Hypervisor` instance manages one :class:`~repro.hw.host.Host`.
It creates domains, pins their VCPUs to physical CPUs (the paper assigns
a whole core per VM to isolate CPU effects), exposes the XenStat-like
accounting interface, and implements ``xc_map_foreign_range`` semantics
for dom0 introspection (the channel IBMon uses).
"""

from __future__ import annotations

from typing import Dict, List, Sequence

from repro.errors import HypervisorError, IntrospectionError
from repro.hw.host import Host
from repro.hw.memory import AddressSpace, PageFrame, ReadOnlyView
from repro.sim.core import Environment
from repro.units import MS
from repro.xen.credit import DEFAULT_PERIOD_NS, PCPUScheduler
from repro.xen.domain import DOM0_ID, Domain
from repro.xen.vcpu import VCPU


class Hypervisor:
    """Xen-like VMM for a single host."""

    def __init__(
        self,
        env: Environment,
        host: Host,
        period_ns: int = DEFAULT_PERIOD_NS,
        quantum_ns: int = 1 * MS,
    ) -> None:
        self.env = env
        self.host = host
        self.schedulers: List[PCPUScheduler] = [
            PCPUScheduler(env, cpu.cpu_id, period_ns, quantum_ns)
            for cpu in host.cpus
        ]
        self.domains: Dict[int, Domain] = {}
        self._next_domid = DOM0_ID
        # dom0 always exists: the control domain running on pcpu 0.
        self.dom0 = self.create_domain("dom0", pcpus=[0])

    # -- domain lifecycle -----------------------------------------------------
    def create_domain(
        self,
        name: str,
        pcpus: Sequence[int],
        weight: int = 256,
        cap_percent: int = 100,
    ) -> Domain:
        """Create a domain with one VCPU pinned to each listed PCPU."""
        if not pcpus:
            raise HypervisorError("a domain needs at least one pinned PCPU")
        for pcpu in pcpus:
            if not 0 <= pcpu < len(self.schedulers):
                raise HypervisorError(f"no such PCPU: {pcpu}")
        domid = self._next_domid
        self._next_domid += 1
        aspace = AddressSpace(domid, self.host.memory)
        vcpus = []
        for idx, pcpu in enumerate(pcpus):
            vcpu = VCPU(self.env, idx, weight=weight, cap_percent=cap_percent)
            self.schedulers[pcpu].attach(vcpu)
            vcpus.append(vcpu)
        domain = Domain(self, domid, name, aspace, vcpus)
        self.domains[domid] = domain
        return domain

    def domain(self, domid: int) -> Domain:
        try:
            return self.domains[domid]
        except KeyError:
            raise HypervisorError(f"no such domain: {domid}") from None

    def domain_by_name(self, name: str) -> Domain:
        for dom in self.domains.values():
            if dom.name == name:
                return dom
        raise HypervisorError(f"no domain named {name!r}")

    def guest_domains(self) -> List[Domain]:
        """All domains except dom0, in domid order."""
        return [d for i, d in sorted(self.domains.items()) if i != DOM0_ID]

    def destroy_domain(self, domid: int) -> None:
        """Tear a guest down: error its QPs, flush pending sends with
        error completions, deregister (unpin) its memory regions, detach
        its VCPUs, and fail any queued guest work with
        :class:`HypervisorError` (delivered to waiting processes).
        """
        domain = self.domain(domid)
        if domain.is_privileged:
            raise HypervisorError("cannot destroy dom0")
        domain.alive = False

        hca = self.host.hca
        if hca is not None:
            from repro.ib.qp import QPState  # late import avoids a cycle

            for qp in hca.qps.values():
                if qp.domid == domid and qp.state is not QPState.ERROR:
                    qp.to_error()
                    hca._flush_send_queue(qp)
            for mr in [m for m in hca.tpt if m.domid == domid]:
                if mr.valid:
                    hca.tpt.deregister(mr)

        for vcpu in domain.vcpus:
            scheduler = vcpu.scheduler
            if scheduler is not None and vcpu in scheduler.vcpus:
                scheduler.vcpus.remove(vcpu)
            while vcpu._work:
                item = vcpu._work.popleft()
                if not item.done.triggered:
                    item.done.fail(
                        HypervisorError(f"domain {domid} destroyed")
                    )
        del self.domains[domid]

    # -- scheduling controls -------------------------------------------------
    def pause_domain(self, domid: int) -> None:
        """Freeze every VCPU of a domain (the ``xl pause`` analog).

        A frozen VCPU is never scheduled; queued and newly-submitted
        work waits.  I/O already pushed to the HCA still completes —
        the guest just cannot observe the completions — exactly the
        VMM-bypass property ResEx's CPU-cap actuator relies on.
        """
        domain = self.domain(domid)
        if domain.is_privileged:
            raise HypervisorError("cannot pause dom0")
        for vcpu in domain.vcpus:
            vcpu.frozen = True
        tel = self.env.telemetry
        if tel.enabled:
            tel.event(
                "credit", "domain_paused", self.env.now,
                lane=f"dom{domid}", domid=domid,
            )

    def unpause_domain(self, domid: int) -> None:
        """Thaw a paused domain and reschedule its pending work."""
        domain = self.domain(domid)
        for vcpu in domain.vcpus:
            vcpu.frozen = False
            if vcpu.scheduler is not None and vcpu.has_work():
                vcpu._needs_vtime_clamp = True
                vcpu.scheduler.notify_work()
        tel = self.env.telemetry
        if tel.enabled:
            tel.event(
                "credit", "domain_unpaused", self.env.now,
                lane=f"dom{domid}", domid=domid,
            )

    def set_cap(self, domid: int, cap_percent: int) -> None:
        """Set the CPU cap for every VCPU of a domain (ResEx's actuator)."""
        domain = self.domain(domid)
        old_cap = domain.vcpu.cap_percent
        for vcpu in domain.vcpus:
            vcpu.cap_percent = cap_percent
        tel = self.env.telemetry
        if tel.enabled and cap_percent != old_cap:
            tel.event(
                "credit",
                "cap_change",
                self.env.now,
                lane=f"dom{domid}",
                domid=domid,
                old_pct=old_cap,
                new_pct=int(cap_percent),
            )

    def get_cap(self, domid: int) -> int:
        return self.domain(domid).vcpu.cap_percent

    def set_weight(self, domid: int, weight: int) -> None:
        for vcpu in self.domain(domid).vcpus:
            if weight < 1:
                raise HypervisorError(f"weight must be >= 1, got {weight}")
            vcpu.weight = weight

    # -- introspection (xc_map_foreign_range) -----------------------------------
    def map_foreign_pages(
        self, requester: Domain, target_domid: int, gpfns: Sequence[int]
    ) -> List[ReadOnlyView]:
        """Map another domain's pages read-only into ``requester``.

        Only the privileged domain may do this — the mechanism IBMon
        uses to observe guest CQ rings without guest cooperation.
        """
        if not requester.is_privileged:
            raise IntrospectionError(
                f"{requester.name!r} is not privileged to map foreign pages"
            )
        target = self.domain(target_domid)
        views = []
        for gpfn in gpfns:
            try:
                frame: PageFrame = target.address_space.translate(gpfn)
            except HypervisorError as exc:
                raise IntrospectionError(str(exc)) from None
            views.append(ReadOnlyView(frame))
        return views

    def __repr__(self) -> str:
        return f"<Hypervisor host={self.host.name} domains={len(self.domains)}>"
