"""Latency statistics helpers shared by experiments and benches."""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Sequence

import numpy as np


@dataclass(frozen=True)
class LatencySummary:
    """Summary of a latency sample set (all values in microseconds)."""

    n: int
    mean: float
    std: float
    p50: float
    p95: float
    p99: float
    minimum: float
    maximum: float

    @classmethod
    def from_samples(cls, samples: Sequence[float]) -> "LatencySummary":
        arr = np.asarray(samples, dtype=np.float64)
        if arr.size == 0:
            nan = float("nan")
            return cls(0, nan, nan, nan, nan, nan, nan, nan)
        return cls(
            n=int(arr.size),
            mean=float(arr.mean()),
            std=float(arr.std()),
            p50=float(np.percentile(arr, 50)),
            p95=float(np.percentile(arr, 95)),
            p99=float(np.percentile(arr, 99)),
            minimum=float(arr.min()),
            maximum=float(arr.max()),
        )

    def as_dict(self) -> Dict[str, float]:
        return {
            "n": self.n,
            "mean_us": self.mean,
            "std_us": self.std,
            "p50_us": self.p50,
            "p95_us": self.p95,
            "p99_us": self.p99,
            "min_us": self.minimum,
            "max_us": self.maximum,
        }


def interference_reduction_pct(
    interfered_mean: float, managed_mean: float
) -> float:
    """The paper's headline metric: how much of the interfered latency a
    policy removes, as a percentage of the interfered latency."""
    if interfered_mean <= 0:
        return float("nan")
    return 100.0 * (interfered_mean - managed_mean) / interfered_mean


def downsample(values: np.ndarray, max_points: int) -> np.ndarray:
    """Thin a long series to at most ``max_points`` by striding."""
    arr = np.asarray(values)
    if arr.size <= max_points or max_points <= 0:
        return arr
    stride = -(-arr.size // max_points)
    return arr[::stride]
