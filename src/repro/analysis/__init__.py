"""Result analysis: summaries, reductions, and text rendering."""

from repro.analysis.export import (
    figure_to_json,
    write_figure_json,
    write_latency_records_csv,
    write_series_csv,
)
from repro.analysis.stats import (
    LatencySummary,
    downsample,
    interference_reduction_pct,
)
from repro.analysis.tables import render_histogram, render_series, render_table

__all__ = [
    "LatencySummary",
    "downsample",
    "figure_to_json",
    "interference_reduction_pct",
    "render_histogram",
    "render_series",
    "render_table",
    "write_figure_json",
    "write_latency_records_csv",
    "write_series_csv",
]
