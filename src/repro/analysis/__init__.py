"""Result analysis: summaries, reductions, exports and text rendering."""

from repro.analysis.profiling import (
    ProfileReport,
    bucket_of,
    profile_call,
    write_collapsed,
)
from repro.analysis.export import (
    figure_to_json,
    write_figure_json,
    write_latency_records_csv,
    write_series_csv,
)
from repro.analysis.stats import (
    LatencySummary,
    downsample,
    interference_reduction_pct,
)
from repro.analysis.tables import render_histogram, render_series, render_table
from repro.analysis.trace import (
    chrome_trace_events,
    to_chrome_trace_json,
    write_chrome_trace,
    write_telemetry_csv,
)

__all__ = [
    "LatencySummary",
    "ProfileReport",
    "bucket_of",
    "profile_call",
    "write_collapsed",
    "chrome_trace_events",
    "downsample",
    "figure_to_json",
    "interference_reduction_pct",
    "render_histogram",
    "render_series",
    "render_table",
    "to_chrome_trace_json",
    "write_chrome_trace",
    "write_figure_json",
    "write_latency_records_csv",
    "write_series_csv",
    "write_telemetry_csv",
]
