"""Profiling harness for scenario, cluster and shard runs.

Answers "where does the wall clock go?" for any run the repo can
launch, without external dependencies: :func:`profile_call` wraps a
callable in :mod:`cProfile` (and optionally :mod:`tracemalloc`) and
reduces the raw stats three ways:

* **Buckets** — every profiled function is attributed to one runtime
  layer by its source location: ``kernel`` (the DES engine in
  :mod:`repro.sim.core` / ``events`` / ``process``), ``mailbox`` (the
  cross-shard :class:`~repro.sim.shard.Mailbox`), ``barrier`` (the
  rest of the shard kernel plus the wire format in
  :mod:`repro.sim.frames`), ``fabric`` (the IB/fabric hardware model),
  ``model`` (everything else under ``repro``) and ``other`` (stdlib
  and third-party frames).  Bucket seconds are *self* time, so the
  buckets partition the profiled total exactly.
* **Hot spots** — a JSON-ready table of the top functions by
  cumulative time, with self time and call counts.
* **Collapsed stacks** — ``caller;...;leaf self_microseconds`` lines
  in the flamegraph.pl / speedscope "collapsed" format, rebuilt from
  the profiler's call graph (one line per observed caller->callee
  chain, heaviest chains first).

The deterministic profiler only sees the calling process: a forked
shard run profiles the parent's barrier loop, not the workers.
Profile ``backend="inline"`` (or serial) runs to see worker-side
costs — the execution is bit-identical, so the hot spots transfer.
"""

from __future__ import annotations

import cProfile
import inspect
import io
import pstats
import time
import tracemalloc
from dataclasses import dataclass, field
from typing import Any, Callable, Dict, List, Optional, Tuple

__all__ = [
    "BUCKETS",
    "ProfileReport",
    "bucket_of",
    "profile_call",
    "write_collapsed",
]

#: The runtime layers, in reporting order.
BUCKETS = ("kernel", "mailbox", "barrier", "fabric", "model", "other")

_KERNEL_FILES = ("/repro/sim/core.py", "/repro/sim/events.py",
                 "/repro/sim/process.py")
_BARRIER_FILES = ("/repro/sim/shard.py", "/repro/sim/frames.py",
                  "/repro/sim/shard_types.py")
_FABRIC_PARTS = ("/repro/hw/fabric.py", "/repro/ib/")


def _mailbox_line_range() -> Tuple[int, int]:
    """Source line span of the Mailbox class, resolved lazily so the
    classifier tracks the code instead of a hand-maintained list."""
    from repro.sim.shard import Mailbox

    lines, start = inspect.getsourcelines(Mailbox)
    return start, start + len(lines)


class _Classifier:
    """Maps one profiled ``(filename, lineno, funcname)`` to a bucket."""

    def __init__(self) -> None:
        self._mailbox_span: Optional[Tuple[int, int]] = None

    def bucket(self, filename: str, lineno: int) -> str:
        path = filename.replace("\\", "/")
        if any(path.endswith(p) for p in _KERNEL_FILES):
            return "kernel"
        if path.endswith("/repro/sim/shard.py"):
            if self._mailbox_span is None:
                self._mailbox_span = _mailbox_line_range()
            lo, hi = self._mailbox_span
            return "mailbox" if lo <= lineno < hi else "barrier"
        if any(path.endswith(p) for p in _BARRIER_FILES):
            return "barrier"
        if any(p in path for p in _FABRIC_PARTS):
            return "fabric"
        if "/repro/" in path:
            return "model"
        return "other"


_classifier = _Classifier()


def bucket_of(filename: str, lineno: int = 0) -> str:
    """The runtime-layer bucket for a source location."""
    return _classifier.bucket(filename, lineno)


def _label(func: Tuple[str, int, str]) -> str:
    filename, lineno, name = func
    if filename == "~":  # C-level frames in pstats
        return name.strip("<>")
    path = filename.replace("\\", "/")
    if "/repro/" in path:
        path = "repro/" + path.split("/repro/", 1)[1]
    else:
        path = path.rsplit("/", 1)[-1]
    return f"{path}:{lineno}:{name}"


@dataclass
class ProfileReport:
    """One profiled run, reduced for reporting."""

    wall_s: float
    profiled_s: float
    buckets: Dict[str, float]
    hotspots: List[Dict[str, Any]]
    collapsed: List[str] = field(default_factory=list)
    memory_peak_kb: Optional[float] = None
    memory_top: List[Dict[str, Any]] = field(default_factory=list)

    def bucket_fractions(self) -> Dict[str, float]:
        total = sum(self.buckets.values()) or 1.0
        return {k: v / total for k, v in self.buckets.items()}

    def to_dict(self) -> Dict[str, Any]:
        doc: Dict[str, Any] = {
            "wall_s": round(self.wall_s, 4),
            "profiled_s": round(self.profiled_s, 4),
            "buckets_s": {k: round(v, 4) for k, v in self.buckets.items()},
            "buckets_frac": {
                k: round(v, 4) for k, v in self.bucket_fractions().items()
            },
            "hotspots": self.hotspots,
        }
        if self.memory_peak_kb is not None:
            doc["memory_peak_kb"] = round(self.memory_peak_kb, 1)
            doc["memory_top"] = self.memory_top
        return doc

    def render(self) -> str:
        out = io.StringIO()
        out.write(
            f"wall {self.wall_s:.3f}s, profiled self-time "
            f"{self.profiled_s:.3f}s\n\nby layer:\n"
        )
        fracs = self.bucket_fractions()
        for name in BUCKETS:
            if name in self.buckets:
                out.write(
                    f"  {name:8s} {self.buckets[name]:8.3f}s "
                    f"{100 * fracs[name]:5.1f}%\n"
                )
        out.write("\nhot spots (by cumulative time):\n")
        for h in self.hotspots[:15]:
            out.write(
                f"  {h['cum_s']:7.3f}s cum {h['self_s']:7.3f}s self "
                f"{h['calls']:>9d}x  [{h['bucket']}] {h['func']}\n"
            )
        if self.memory_peak_kb is not None:
            out.write(f"\npeak traced memory: {self.memory_peak_kb:.0f} kB\n")
            for m in self.memory_top[:10]:
                out.write(f"  {m['kb']:8.1f} kB  {m['site']}\n")
        return out.getvalue()


def _collapsed_lines(stats: pstats.Stats, limit: int = 2000) -> List[str]:
    """Two-frame collapsed stacks from the profiler's caller table.

    cProfile records (caller -> callee, self time) pairs, not full
    stacks, so each line is a two-deep chain: enough for flamegraph
    tools to show which callers a hot leaf's time splits across.
    Roots (no recorded caller) emit a single-frame line.
    """
    lines: List[Tuple[float, str]] = []
    for func, (_cc, _nc, tt, _ct, callers) in stats.stats.items():
        leaf = _label(func)
        if not callers:
            if tt > 0:
                lines.append((tt, leaf))
            continue
        total_caller_time = sum(c[3] for c in callers.values()) or 1.0
        for caller, (_ccc, _cnc, _ctt, cct) in callers.items():
            share = tt * (cct / total_caller_time)
            if share <= 0:
                continue
            lines.append((share, f"{_label(caller)};{leaf}"))
    lines.sort(key=lambda pair: -pair[0])
    return [
        f"{stack} {max(1, int(seconds * 1e6))}"
        for seconds, stack in lines[:limit]
    ]


def profile_call(
    fn: Callable[[], Any],
    *,
    top: int = 25,
    memory: bool = False,
) -> Tuple[Any, ProfileReport]:
    """Run ``fn()`` under the profiler and reduce the result.

    Returns ``(fn's return value, ProfileReport)``.  With
    ``memory=True`` the run also executes under :mod:`tracemalloc`
    (noticeably slower) and the report carries the peak traced size
    plus the top allocation sites.
    """
    profiler = cProfile.Profile()
    if memory:
        tracemalloc.start(10)
    wall0 = time.perf_counter()
    try:
        result = profiler.runcall(fn)
    finally:
        wall = time.perf_counter() - wall0
        if memory:
            snapshot = tracemalloc.take_snapshot()
            _, peak = tracemalloc.get_traced_memory()
            tracemalloc.stop()

    stats = pstats.Stats(profiler)
    buckets: Dict[str, float] = {name: 0.0 for name in BUCKETS}
    rows: List[Tuple[float, float, int, str, str]] = []
    for func, (_cc, nc, tt, ct, _callers) in stats.stats.items():
        filename, lineno, _name = func
        bucket = (
            "other" if filename == "~" else bucket_of(filename, lineno)
        )
        buckets[bucket] += tt
        rows.append((ct, tt, nc, bucket, _label(func)))
    rows.sort(key=lambda row: -row[0])

    report = ProfileReport(
        wall_s=wall,
        profiled_s=sum(buckets.values()),
        buckets=buckets,
        hotspots=[
            {
                "func": label,
                "bucket": bucket,
                "cum_s": round(ct, 4),
                "self_s": round(tt, 4),
                "calls": nc,
            }
            for ct, tt, nc, bucket, label in rows[:top]
        ],
        collapsed=_collapsed_lines(stats),
    )
    if memory:
        report.memory_peak_kb = peak / 1024.0
        report.memory_top = [
            {
                "kb": round(stat.size / 1024.0, 1),
                "site": str(stat.traceback[0]),
            }
            for stat in snapshot.statistics("lineno")[:top]
        ]
    return result, report


def write_collapsed(report: ProfileReport, path: str) -> None:
    """Write the collapsed-stack lines for flamegraph.pl/speedscope."""
    with open(path, "w", encoding="utf-8") as fh:
        fh.write("\n".join(report.collapsed) + "\n")
