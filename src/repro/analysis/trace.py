"""Trace exporters: Chrome ``trace_event`` JSON and flat CSV.

The Chrome format (the ``chrome://tracing`` / Perfetto "JSON trace
event" schema) renders each telemetry category as a process and each
lane as a thread, so a run's layers stack visually: kernel counters on
top, credit-scheduler slices per PCPU, HCA work requests per QP,
fabric flows per link path, IBMon samples, ResEx intervals, BenchEx
request breakdowns.

Determinism matters here: two runs of the same seeded scenario must
produce **byte-identical** files.  Everything emitted derives from
simulation state only — pid/tid assignment is by sorted name, never by
insertion order of an intermediate set, and no wall-clock timestamps
appear anywhere.
"""

from __future__ import annotations

import csv
import json
import pathlib
from typing import TYPE_CHECKING, Dict, List, Tuple

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.telemetry import TelemetryBus

#: Chrome trace timestamps are microseconds; ours are integer ns.
_NS_PER_US = 1000.0


def _lane_ids(bus: "TelemetryBus") -> Tuple[Dict[str, int], Dict[Tuple[str, str], int]]:
    """Stable pid per category and tid per (category, lane)."""
    cats = sorted({rec.cat for rec in bus.records})
    pids = {cat: index + 1 for index, cat in enumerate(cats)}
    lanes = sorted({(rec.cat, rec.lane) for rec in bus.records})
    tids: Dict[Tuple[str, str], int] = {}
    per_cat: Dict[str, int] = {}
    for cat, lane in lanes:
        per_cat[cat] = per_cat.get(cat, 0) + 1
        tids[(cat, lane)] = per_cat[cat]
    return pids, tids


def chrome_trace_events(bus: "TelemetryBus") -> List[dict]:
    """The ``traceEvents`` list for a bus: metadata + data events."""
    pids, tids = _lane_ids(bus)
    events: List[dict] = []
    for cat, pid in sorted(pids.items()):
        events.append(
            {
                "name": "process_name",
                "ph": "M",
                "pid": pid,
                "args": {"name": cat},
            }
        )
    for (cat, lane), tid in sorted(tids.items()):
        events.append(
            {
                "name": "thread_name",
                "ph": "M",
                "pid": pids[cat],
                "tid": tid,
                "args": {"name": lane},
            }
        )
    for rec in bus.records:
        base = {
            "name": rec.name,
            "cat": rec.cat,
            "ts": rec.ts_ns / _NS_PER_US,
            "pid": pids[rec.cat],
            "tid": tids[(rec.cat, rec.lane)],
        }
        if rec.kind == "span":
            base["ph"] = "X"
            base["dur"] = rec.dur_ns / _NS_PER_US
            if rec.args:
                base["args"] = rec.args_dict()
        elif rec.kind == "counter":
            base["ph"] = "C"
            base["args"] = {rec.name: rec.value}
        else:  # instant
            base["ph"] = "i"
            base["s"] = "t"  # thread-scoped instant
            if rec.args:
                base["args"] = rec.args_dict()
        events.append(base)
    return events


def to_chrome_trace_json(bus: "TelemetryBus") -> str:
    """Serialize the bus to a chrome://tracing-loadable JSON document."""
    document = {
        "traceEvents": chrome_trace_events(bus),
        "displayTimeUnit": "ms",
        "otherData": {"clock": "simulation-ns", "source": "repro.telemetry"},
    }
    return json.dumps(document, separators=(",", ":"), default=_json_default)


def _json_default(obj):
    # Telemetry args may carry numpy scalars from analysis code.
    import numpy as np

    if isinstance(obj, np.integer):
        return int(obj)
    if isinstance(obj, np.floating):
        return float(obj)
    raise TypeError(f"not JSON serializable: {type(obj)!r}")


def write_chrome_trace(path: "str | pathlib.Path", bus: "TelemetryBus") -> int:
    """Write the Chrome trace file; returns the number of data records."""
    pathlib.Path(path).write_text(to_chrome_trace_json(bus) + "\n")
    return len(bus.records)


def write_telemetry_csv(path: "str | pathlib.Path", bus: "TelemetryBus") -> int:
    """Flat long-format CSV of every record; returns the row count.

    Columns: kind, cat, lane, name, ts_ns, dur_ns, value, args (JSON).
    """
    path = pathlib.Path(path)
    with path.open("w", newline="") as fh:
        writer = csv.writer(fh)
        writer.writerow(
            ["kind", "cat", "lane", "name", "ts_ns", "dur_ns", "value", "args"]
        )
        for rec in bus.records:
            writer.writerow(
                [
                    rec.kind,
                    rec.cat,
                    rec.lane,
                    rec.name,
                    rec.ts_ns,
                    rec.dur_ns,
                    rec.value,
                    json.dumps(rec.args_dict(), sort_keys=True, default=_json_default)
                    if rec.args
                    else "",
                ]
            )
    return len(bus.records)
