"""Exporting results to CSV/JSON for external analysis or plotting.

Everything the harness produces — latency records, probe time series,
figure tables — can be written to plain files, so the simulation can
feed whatever plotting or statistics stack a user prefers.
"""

from __future__ import annotations

import csv
import json
import pathlib
from typing import TYPE_CHECKING, Dict, Sequence, Tuple

import numpy as np

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.benchex.latency import LatencyRecord
    from repro.experiments.figures import FigureResult


def write_latency_records_csv(
    path: "str | pathlib.Path", records: Sequence["LatencyRecord"]
) -> int:
    """One row per served request; returns the row count."""
    path = pathlib.Path(path)
    with path.open("w", newline="") as fh:
        writer = csv.writer(fh)
        writer.writerow(
            ["request_id", "t_cycle_start_ns", "ptime_ns", "ctime_ns",
             "wtime_ns", "total_ns"]
        )
        for r in records:
            writer.writerow(
                [r.request_id, r.t_cycle_start, r.ptime_ns, r.ctime_ns,
                 r.wtime_ns, r.total_ns]
            )
    return len(records)


def write_series_csv(
    path: "str | pathlib.Path",
    series: Dict[str, Tuple[np.ndarray, np.ndarray]],
) -> int:
    """Long-format (series, t_ns, value) rows for probe time series."""
    path = pathlib.Path(path)
    total = 0
    with path.open("w", newline="") as fh:
        writer = csv.writer(fh)
        writer.writerow(["series", "t_ns", "value"])
        for name in sorted(series):
            times, values = series[name]
            for t, v in zip(np.asarray(times), np.asarray(values)):
                writer.writerow([name, int(t), float(v)])
                total += 1
    return total


def figure_to_json(result: "FigureResult") -> str:
    """Serialize a FigureResult (rows + extra) to a JSON document."""

    def _default(obj):
        if isinstance(obj, (np.integer,)):
            return int(obj)
        if isinstance(obj, (np.floating,)):
            return float(obj)
        if isinstance(obj, np.ndarray):
            return obj.tolist()
        if isinstance(obj, set):
            return sorted(obj)
        raise TypeError(f"not JSON serializable: {type(obj)!r}")

    return json.dumps(
        {
            "figure": result.figure,
            "title": result.title,
            "headers": result.headers,
            "rows": result.rows,
            "notes": result.notes,
            "extra": result.extra,
        },
        indent=2,
        default=_default,
    )


def write_figure_json(path: "str | pathlib.Path", result: "FigureResult") -> None:
    pathlib.Path(path).write_text(figure_to_json(result) + "\n")
