"""Plain-text rendering of bench results (tables, series, histograms).

The benchmark harness regenerates the paper's figures as text: each
bench prints the same rows/series the figure plots, so shapes can be
compared without a plotting stack.
"""

from __future__ import annotations

from typing import List, Sequence, Tuple


def render_table(
    headers: Sequence[str],
    rows: Sequence[Sequence[object]],
    title: str = "",
) -> str:
    """Fixed-width ASCII table.  Floats are shown with one decimal."""

    def fmt(cell: object) -> str:
        if isinstance(cell, float):
            return f"{cell:.1f}"
        return str(cell)

    str_rows = [[fmt(c) for c in row] for row in rows]
    widths = [len(h) for h in headers]
    for row in str_rows:
        for i, cell in enumerate(row):
            widths[i] = max(widths[i], len(cell))

    def line(cells: Sequence[str]) -> str:
        return "  ".join(c.rjust(w) for c, w in zip(cells, widths))

    out: List[str] = []
    if title:
        out.append(title)
    out.append(line(list(headers)))
    out.append(line(["-" * w for w in widths]))
    for row in str_rows:
        out.append(line(row))
    return "\n".join(out)


def render_histogram(
    bins: Sequence[Tuple[float, int]],
    title: str = "",
    width: int = 50,
    unit: str = "us",
) -> str:
    """Text histogram: one bar per bin (the Fig. 1 distribution view)."""
    out: List[str] = []
    if title:
        out.append(title)
    if not bins:
        out.append("(no samples)")
        return "\n".join(out)
    peak = max(count for _, count in bins)
    for edge, count in bins:
        bar = "#" * max(1, round(width * count / peak)) if count else ""
        out.append(f"{edge:9.1f}{unit}  {count:6d}  {bar}")
    return "\n".join(out)


def render_series(
    times_s: Sequence[float],
    values: Sequence[float],
    title: str = "",
    max_rows: int = 25,
    value_label: str = "value",
) -> str:
    """Down-sampled (time, value) listing for timeline figures."""
    out: List[str] = []
    if title:
        out.append(title)
    n = len(times_s)
    if n == 0:
        out.append("(empty series)")
        return "\n".join(out)
    stride = max(1, -(-n // max_rows))
    out.append(f"{'t(s)':>10}  {value_label:>12}")
    for i in range(0, n, stride):
        out.append(f"{times_s[i]:10.3f}  {values[i]:12.2f}")
    return "\n".join(out)
