"""Unit constants and conversion helpers.

Simulation time is expressed in **integer nanoseconds** throughout the
code base.  Using integers keeps the event heap deterministic (no
floating-point tie-break jitter) and gives sub-microsecond resolution,
which is required because InfiniBand wire times are ~1 us per MTU.

Data sizes are expressed in **bytes** (plain ints).
"""

from __future__ import annotations

# --- time ------------------------------------------------------------------
NS: int = 1
US: int = 1_000
MS: int = 1_000_000
SEC: int = 1_000_000_000

# --- data ------------------------------------------------------------------
BYTE: int = 1
KiB: int = 1_024
MiB: int = 1_024 * 1_024
GiB: int = 1_024 * 1_024 * 1_024


def ns_to_us(t_ns: int) -> float:
    """Convert integer nanoseconds to floating-point microseconds."""
    return t_ns / US


def ns_to_ms(t_ns: int) -> float:
    """Convert integer nanoseconds to floating-point milliseconds."""
    return t_ns / MS


def ns_to_s(t_ns: int) -> float:
    """Convert integer nanoseconds to floating-point seconds."""
    return t_ns / SEC


def us(value: float) -> int:
    """Microseconds -> integer nanoseconds (rounded)."""
    return round(value * US)


def ms(value: float) -> int:
    """Milliseconds -> integer nanoseconds (rounded)."""
    return round(value * MS)


def seconds(value: float) -> int:
    """Seconds -> integer nanoseconds (rounded)."""
    return round(value * SEC)


def gbps_to_bytes_per_sec(gbps: float) -> float:
    """Link signalling rate in Gbit/s -> payload bytes per second.

    Uses decimal giga for the bit rate (10 Gbps = 1e10 bit/s), matching
    how fabric vendors quote rates.
    """
    return gbps * 1e9 / 8.0


def wire_time_ns(nbytes: int, bytes_per_sec: float) -> int:
    """Time to serialise ``nbytes`` onto a link of ``bytes_per_sec``.

    Rounds up to a whole nanosecond so a transfer never completes in
    zero time.
    """
    if nbytes <= 0:
        return 0
    t = nbytes * SEC / bytes_per_sec
    it = int(t)
    return it + 1 if t > it else max(it, 1)


def format_duration(t_ns: int) -> str:
    """Human-readable duration for logs and bench tables."""
    if t_ns >= SEC:
        return f"{t_ns / SEC:.3f}s"
    if t_ns >= MS:
        return f"{t_ns / MS:.3f}ms"
    if t_ns >= US:
        return f"{t_ns / US:.3f}us"
    return f"{t_ns}ns"


def format_bytes(nbytes: int) -> str:
    """Human-readable size (power-of-two units, as the paper uses)."""
    if nbytes >= GiB and nbytes % GiB == 0:
        return f"{nbytes // GiB}GB"
    if nbytes >= MiB and nbytes % MiB == 0:
        return f"{nbytes // MiB}MB"
    if nbytes >= KiB and nbytes % KiB == 0:
        return f"{nbytes // KiB}KB"
    return f"{nbytes}B"
