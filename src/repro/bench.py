"""Performance benchmarks for the simulator fast path (``repro bench``).

The headline scenarios and the microbenchmarks below are the workloads
the DES fast-path work is measured against.  Two consumers share them:

* ``repro bench`` — a dependency-free CLI runner that reports
  best-of-N ``time.process_time()`` per workload (the noise-resistant
  statistic: wall clock on a shared host varies by tens of percent
  run-to-run, the best-of process time is stable to a few percent) and
  writes ``BENCH_perf.json``;
* ``benchmarks/perf/`` — the pytest-benchmark suite CI runs as a
  regression smoke against ``benchmarks/perf/baseline.json``.

Every workload is a deterministic fixed-seed simulation, so the only
run-to-run variance is the host's, never the program's — which is also
why optimizing them is safe to verify against the byte-identical
golden fixtures (``tests/golden/``).
"""

from __future__ import annotations

import json
import platform
import sys
import time
from typing import Any, Callable, Dict, List, Optional, Tuple

#: Pre-optimization reference times (seconds of process time, best of
#: three interleaved A/B rounds against the pre-fast-path tree on the
#: capture host).  ``repro bench`` reports current numbers next to
#: these so the recorded speedup is honest: both sides were measured
#: with the same statistic in the same session, alternating versions
#: to cancel host drift.  Regenerate only with that methodology (see
#: docs/benchmarking.md).
PRE_OPTIMIZATION_PROCESS_S: Dict[str, float] = {}  # populated below


# -- workloads ---------------------------------------------------------------

def headline_managed(sim_s: float = 0.3) -> Dict[str, Any]:
    """The paper's managed configuration: 2 MB interferer + IOShares.

    Same axes as the golden trace fixture (scaled to 0.3 sim-seconds),
    run untraced — the production fast path.
    """
    from repro.benchex import BenchExConfig
    from repro.experiments import run_scenario
    from repro.units import MiB

    result = run_scenario(
        "bench-headline",
        interferer=BenchExConfig(name="interferer", buffer_bytes=2 * MiB),
        policy="ioshares",
        sim_s=sim_s,
        seed=7,
    )
    return {"sim_s": sim_s, "requests": result.breakdown.n}


def chaos_linkflap(sim_s: float = 1.0) -> Dict[str, Any]:
    """The fig9 link-flap resilience run (same axes as its golden)."""
    from repro.experiments import run_chaos_scenario

    chaos = run_chaos_scenario(
        "fig9", campaign="link-flap", sim_s=sim_s, seed=11
    )
    return {"sim_s": sim_s, "faults": len(chaos.report.impacts)}


def kernel_timeout_ping(n: int = 200_000) -> Dict[str, Any]:
    """Pure DES kernel dispatch: ``n`` timeout events, no payload.

    Isolates heap push/pop, event dispatch and process resume — the
    floor every simulated nanosecond pays.
    """
    from repro.sim import Environment

    def ping(env):
        timeout = env.timeout
        for _ in range(n):
            yield timeout(1)

    env = Environment()
    env.process(ping(env))
    env.run()
    return {"events": env._events_processed}


def fabric_churn(n: int = 4000) -> Dict[str, Any]:
    """Max-min reconvergence under continuous join/leave churn.

    Overlapping transfers across a 3-link topology keep the solver's
    incremental path and memo hot, the way scenario traffic does.
    """
    from repro.hw import FluidFabric
    from repro.sim import Environment
    from repro.units import GiB, KiB

    env = Environment()
    fabric = FluidFabric(env)
    links = [fabric.add_link(f"l{i}", float(GiB)) for i in range(3)]
    paths = [
        (links[0],),
        (links[1],),
        (links[2],),
        (links[0], links[1]),
        (links[1], links[2]),
        (links[0], links[2]),
    ]

    def submitter(env):
        for i in range(n):
            fabric.submit(
                list(paths[i % len(paths)]),
                16 * KiB + (i % 7) * KiB,
                f"t{i}",
            )
            yield env.timeout(5_000)

    env.process(submitter(env))
    env.run()
    return {"transfers": len(fabric.completions), "events": env._events_processed}


def telemetry_emit(n: int = 150_000) -> Dict[str, Any]:
    """Telemetry record construction + append, list and ring mode."""
    from repro.telemetry import TelemetryBus
    flat = TelemetryBus()
    for i in range(n):
        flat.instant("kernel", "e", i, lane="bench", seq=i)
    ring = TelemetryBus(ring_capacity=4096)
    for i in range(n):
        ring.counter("kernel", "queue_depth", i, float(i))
    return {"records": len(flat) + n, "retained_ring": len(ring)}


def sweep_replication(
    seeds: int = 16, jobs: int = 4, sim_s: float = 0.1
) -> Dict[str, Any]:
    """16-seed replication sweep: serial vs pooled vs warm cache.

    Measures the parallel experiment engine itself: the same
    ``replicate_scenario`` fan-out run serially, through a ``jobs``-wide
    process pool (cold cache), and again warm.  The parent's
    ``process_time`` cannot see child CPU, so the honest statistics for
    this workload are the wall-clock ratios in ``meta`` —
    ``parallel_speedup_wall`` (bounded by the host's core count, also
    recorded) and ``warm_over_cold`` (cache hits are file reads).
    The three runs must agree bit for bit (``identical``).
    """
    import os
    import tempfile

    from repro.experiments.multiseed import sweep_scenario

    seed_list = list(range(seeds))
    with tempfile.TemporaryDirectory(prefix="repro-bench-sweep-") as cache_dir:
        wall0 = time.perf_counter()
        serial, _ = sweep_scenario(
            "bench-sweep", seed_list, jobs=1, sim_s=sim_s
        )
        serial_wall = time.perf_counter() - wall0

        wall0 = time.perf_counter()
        cold, cold_report = sweep_scenario(
            "bench-sweep", seed_list, jobs=jobs, cache=cache_dir, sim_s=sim_s
        )
        cold_wall = time.perf_counter() - wall0

        wall0 = time.perf_counter()
        warm, warm_report = sweep_scenario(
            "bench-sweep", seed_list, jobs=jobs, cache=cache_dir, sim_s=sim_s
        )
        warm_wall = time.perf_counter() - wall0

    return {
        "seeds": seeds,
        "jobs": jobs,
        "cpus": os.cpu_count(),
        "serial_wall_s": round(serial_wall, 4),
        "parallel_wall_s": round(cold_wall, 4),
        "parallel_speedup_wall": round(serial_wall / cold_wall, 3),
        "pool_utilization": round(cold_report.utilization, 3),
        "warm_wall_s": round(warm_wall, 4),
        "warm_over_cold": round(warm_wall / cold_wall, 4),
        "warm_cache_hits": warm_report.cached,
        "identical": serial.values == cold.values == warm.values,
    }


def invariants_record(sim_s: float = 0.2, rounds: int = 5) -> Dict[str, Any]:
    """Runtime invariant guards: record-mode overhead vs guards off.

    Runs the managed headline scenario with the invariant monitor off
    and again in ``record`` mode, interleaved A/B over ``rounds``
    rounds so host drift cancels.  The statistic that matters is
    ``record_overhead`` (best-of process-time ratio): the acceptance
    bar for the supervised runtime is <= 5% overhead with guards
    recording.  ``tainted`` must be False — a healthy run never trips
    a guard.
    """
    from repro.benchex import BenchExConfig
    from repro.experiments import run_scenario
    from repro.sim import invariants
    from repro.units import MiB

    def one(mode: Optional[str]) -> float:
        cpu0 = time.process_time()
        if mode is None:
            run_scenario(
                "bench-inv",
                interferer=BenchExConfig(name="interferer", buffer_bytes=2 * MiB),
                policy="ioshares",
                sim_s=sim_s,
                seed=7,
            )
        else:
            with invariants.activate(mode) as mon:
                run_scenario(
                    "bench-inv",
                    interferer=BenchExConfig(name="interferer", buffer_bytes=2 * MiB),
                    policy="ioshares",
                    sim_s=sim_s,
                    seed=7,
                )
            one.tainted = one.tainted or mon.tainted
        return time.process_time() - cpu0

    one.tainted = False
    off_runs, rec_runs = [], []
    for _ in range(max(rounds, 1)):
        off_runs.append(one(None))
        rec_runs.append(one("record"))
    best_off, best_rec = min(off_runs), min(rec_runs)
    return {
        "sim_s": sim_s,
        "off_process_s": round(best_off, 4),
        "record_process_s": round(best_rec, 4),
        "record_overhead": round(best_rec / best_off - 1.0, 4),
        "tainted": one.tainted,
    }


def cluster_scale(sim_s: float = 0.25) -> Dict[str, Any]:
    """The 256-host leaf-spine cluster scenario (ROADMAP item 1).

    16 racks x 16 hosts x 8 VMs (2048 VMs) with 2000 background flows,
    per-rack ResEx controllers and fabric-borne price federation.  The
    ``meta`` carries the tentpole's evidence: ``component_frac`` is the
    fraction of max-min reallocation solves that stayed inside their
    connected component (strictly local work), and ``max_component``
    bounds how much of the 2000-flow population any single solve ever
    touched.
    """
    from repro.experiments.cluster import run_cluster

    m = run_cluster("cluster_scale", seed=7, sim_s=sim_s).metrics()
    return {
        "sim_s": sim_s,
        "hosts": int(m["hosts"]),
        "vms": int(m["vms"]),
        "flows_completed": int(m["flows_completed"]),
        "flow_p99_us": round(m["flow_p99_us"], 1),
        "federation_syncs": int(m["federation_syncs"]),
        "component_frac": round(m["solver_component_frac"], 4),
        "max_component": int(m["solver_max_component"]),
    }


def cluster_scale_sharded(
    sim_s: float = 0.1, shards: int = 4, rounds: int = 5
) -> Dict[str, Any]:
    """Serial vs sharded A/B of the 256-host cluster (shard tentpole).

    Runs ``cluster_scale`` serially and partitioned across ``shards``
    forked workers along the rack plan (:mod:`repro.sim.shard`), and
    reports the honest statistics in ``meta``:

    * ``shard_speedup_wall`` — serial wall / sharded wall, best-of-
      ``rounds`` per arm after a short warmup, arms interleaved with
      alternating order so neither is systematically the "cold" run.
      On a host with fewer CPUs than shards this number is physically
      meaningless as a *speedup* (the workers time-slice one core), so
      it is reported as ``None`` with ``skipped_reason`` set; the raw
      walls are still recorded.
    * ``identical`` — the serial and sharded metric dicts compare
      equal, bit for bit (the differential suite's contract; a bench
      run that ever saw ``identical: false`` is reporting a kernel
      bug, not noise).
    * ``barriers`` vs ``windows`` — how much of the barrier schedule
      elision coalesced away (``max_stride`` is the largest single
      stride taken).
    """
    import os

    from repro.experiments.cluster import run_cluster

    def serial_arm():
        return run_cluster("cluster_scale", seed=7, sim_s=sim_s)

    def sharded_arm():
        return run_cluster(
            "cluster_scale", seed=7, sim_s=sim_s, shards=shards,
            backend="fork",
        )

    # Warm both arms (imports, allocator growth, fork machinery) so
    # neither measured round pays first-run costs.
    warm = min(sim_s / 5.0, 0.02)
    run_cluster("cluster_scale", seed=7, sim_s=warm)
    run_cluster(
        "cluster_scale", seed=7, sim_s=warm, shards=shards, backend="fork"
    )

    serial_walls: List[float] = []
    sharded_walls: List[float] = []
    serial_metrics: Dict[str, Any] = {}
    sharded_metrics: Dict[str, Any] = {}
    stats = None
    for r in range(max(1, rounds)):
        order = (
            [("serial", serial_arm), ("sharded", sharded_arm)]
            if r % 2 == 0
            else [("sharded", sharded_arm), ("serial", serial_arm)]
        )
        for name, arm in order:
            wall0 = time.perf_counter()
            result = arm()
            wall = time.perf_counter() - wall0
            if name == "serial":
                serial_walls.append(wall)
                serial_metrics = result.metrics()
            else:
                sharded_walls.append(wall)
                sharded_metrics = result.metrics()
                stats = result.shard_stats

    serial_wall = min(serial_walls)
    sharded_wall = min(sharded_walls)
    cpus = os.cpu_count() or 1
    if cpus >= shards:
        speedup: "float | None" = round(serial_wall / sharded_wall, 3)
        skipped_reason: "str | None" = None
    else:
        speedup = None
        skipped_reason = (
            f"host has {cpus} CPU(s) < {shards} shards; wall-clock "
            "speedup is not measurable (workers time-slice one core)"
        )

    meta: Dict[str, Any] = {
        "sim_s": sim_s,
        "shards": shards,
        "cpus": cpus,
        "rounds": max(1, rounds),
        "serial_wall_s": round(serial_wall, 4),
        "sharded_wall_s": round(sharded_wall, 4),
        "shard_speedup_wall": speedup,
        "barriers": stats.barriers if stats is not None else 0,
        "windows": stats.windows if stats is not None else 0,
        "max_stride": stats.max_stride if stats is not None else 1,
        "coalesce": True,
        "messages_exchanged": (
            stats.messages_exchanged if stats is not None else 0
        ),
        "identical": serial_metrics == sharded_metrics,
    }
    if skipped_reason is not None:
        meta["skipped_reason"] = skipped_reason
    return meta


def checkpoint_overhead(
    sim_s: float = 0.1, shards: int = 4, rounds: int = 5
) -> Dict[str, Any]:
    """Checkpointing cost A/B on the sharded 256-host cluster.

    Runs ``cluster_scale`` across ``shards`` forked workers twice per
    round — once bare, once journaling barrier checkpoints to disk at
    the default cadence (:class:`repro.sim.checkpoint.CheckpointConfig`)
    — arms interleaved with alternating order, best-of-``rounds`` per
    arm.  ``meta.overhead`` is ``checkpointed wall / bare wall - 1``
    (the number the perf gate bounds below 5%); ``identical`` asserts
    the journaled run's metrics stayed bit-identical; the checkpoint
    count and on-disk bytes quantify what the cadence actually wrote.
    """
    import os
    import shutil
    import tempfile

    from repro.experiments.cluster import run_cluster
    from repro.sim.checkpoint import list_checkpoints

    tmp = tempfile.mkdtemp(prefix="repro-ckpt-bench-")

    def bare_arm():
        return run_cluster(
            "cluster_scale", seed=7, sim_s=sim_s, shards=shards,
            backend="fork",
        )

    def checkpointed_arm():
        ckpt = os.path.join(tmp, "ckpt")
        shutil.rmtree(ckpt, ignore_errors=True)
        return run_cluster(
            "cluster_scale", seed=7, sim_s=sim_s, shards=shards,
            backend="fork", checkpoint_dir=ckpt,
        ), ckpt

    # Warm both arms so neither measured round pays first-run costs.
    warm = min(sim_s / 5.0, 0.02)
    run_cluster(
        "cluster_scale", seed=7, sim_s=warm, shards=shards, backend="fork"
    )
    run_cluster(
        "cluster_scale", seed=7, sim_s=warm, shards=shards, backend="fork",
        checkpoint_dir=os.path.join(tmp, "warm"),
    )

    bare_walls: List[float] = []
    ckpt_walls: List[float] = []
    bare_metrics: Dict[str, Any] = {}
    ckpt_metrics: Dict[str, Any] = {}
    files = 0
    bytes_on_disk = 0
    try:
        for r in range(max(1, rounds)):
            arms = ["bare", "ckpt"] if r % 2 == 0 else ["ckpt", "bare"]
            for name in arms:
                wall0 = time.perf_counter()
                if name == "bare":
                    result = bare_arm()
                    bare_walls.append(time.perf_counter() - wall0)
                    bare_metrics = result.metrics()
                else:
                    result, ckpt_dir = checkpointed_arm()
                    ckpt_walls.append(time.perf_counter() - wall0)
                    ckpt_metrics = result.metrics()
                    paths = list_checkpoints(ckpt_dir)
                    files = len(paths)
                    bytes_on_disk = sum(p.stat().st_size for p in paths)
    finally:
        shutil.rmtree(tmp, ignore_errors=True)

    bare_wall = min(bare_walls)
    ckpt_wall = min(ckpt_walls)
    return {
        "sim_s": sim_s,
        "shards": shards,
        "rounds": max(1, rounds),
        "bare_wall_s": round(bare_wall, 4),
        "checkpointed_wall_s": round(ckpt_wall, 4),
        "overhead": round(ckpt_wall / bare_wall - 1.0, 4),
        "checkpoint_files": files,
        "checkpoint_bytes": bytes_on_disk,
        "identical": bare_metrics == ckpt_metrics,
    }


def service_throughput(requests: int = 2000) -> Dict[str, Any]:
    """The ResEx service gateway under seeded open-loop load.

    One sim-mode gateway and one load-generator client share an asyncio
    loop over a real localhost socket — the full wire path (framing,
    handshake, per-client queue, orchestrator lock, DES world) with no
    network variance.  ``meta`` carries the service-level numbers the
    ISSUE acceptance pins: achieved requests/s and the gateway's
    p50/p99 per-request overhead (enqueue to response written).
    """
    import asyncio

    from repro.service import (
        Orchestrator,
        ServiceConfig,
        ServiceGateway,
        SimBackend,
        run_loadgen,
    )

    async def _run():
        gateway = ServiceGateway(
            Orchestrator(SimBackend(ServiceConfig(), seed=7))
        )
        await gateway.start()
        try:
            report = await run_loadgen(
                "127.0.0.1", gateway.port, requests=requests, seed=7
            )
        finally:
            await gateway.stop()
        return report, gateway.stats()

    report, stats = asyncio.run(_run())
    d = report.to_dict()
    return {
        "requests": d["requests"],
        "rps": d["rps"],
        "ok": d["ok"],
        "rejected": d["rejected"],
        "p50_overhead_us": stats["p50_overhead_us"],
        "p99_overhead_us": stats["p99_overhead_us"],
        "digest12": report.digest[:12],
    }


#: name -> (workload, one-line description).
WORKLOADS: Dict[str, Tuple[Callable[[], Dict[str, Any]], str]] = {
    "headline_managed": (
        headline_managed, "managed scenario, 2MB interferer + IOShares, 0.3 sim-s"
    ),
    "chaos_linkflap": (
        chaos_linkflap, "fig9 link-flap chaos campaign, 1.0 sim-s"
    ),
    "kernel_timeout_ping": (
        kernel_timeout_ping, "200k bare timeout events through the DES kernel"
    ),
    "fabric_churn": (
        fabric_churn, "4k overlapping transfers across a 3-link fabric"
    ),
    "telemetry_emit": (
        telemetry_emit, "300k telemetry records, list + ring mode"
    ),
    "sweep_replication": (
        sweep_replication,
        "16-seed replication sweep: serial vs 4-worker pool vs warm cache",
    ),
    "invariants_record": (
        invariants_record,
        "managed scenario A/B: invariant guards off vs record mode",
    ),
    "cluster_scale": (
        cluster_scale,
        "256-host leaf-spine cluster: 2048 VMs, 2000 flows, price federation",
    ),
    "cluster_scale_sharded": (
        cluster_scale_sharded,
        "cluster_scale serial vs 4-shard fork A/B (must be bit-identical)",
    ),
    "checkpoint_overhead": (
        checkpoint_overhead,
        "4-shard cluster_scale with vs without barrier checkpointing",
    ),
    "service_throughput": (
        service_throughput,
        "sim-mode service gateway + loadgen over localhost, 2000 requests",
    ),
}

# Best-of-3 process_time, interleaved pre/post A/B on the capture host
# (see module docstring); pre = commit before the fast-path PR.
PRE_OPTIMIZATION_PROCESS_S.update(
    {
        "headline_managed": 1.232,
        "chaos_linkflap": 3.079,
        "kernel_timeout_ping": 0.255,
        "fabric_churn": 16.724,
        "telemetry_emit": 0.519,
    }
)


# -- runner ------------------------------------------------------------------

def run_workload(name: str, rounds: int = 3) -> Dict[str, Any]:
    """Run one workload ``rounds`` times; report best process/wall time."""
    fn, description = WORKLOADS[name]
    process_runs: List[float] = []
    wall_runs: List[float] = []
    meta: Dict[str, Any] = {}
    for _ in range(max(rounds, 1)):
        wall0 = time.perf_counter()
        cpu0 = time.process_time()
        meta = fn()
        process_runs.append(time.process_time() - cpu0)
        wall_runs.append(time.perf_counter() - wall0)
    entry: Dict[str, Any] = {
        "description": description,
        "process_s_best": min(process_runs),
        "process_s_runs": [round(t, 4) for t in process_runs],
        "wall_s_best": min(wall_runs),
        "meta": meta,
    }
    pre = PRE_OPTIMIZATION_PROCESS_S.get(name)
    if pre:
        entry["pre_optimization_process_s"] = pre
        entry["speedup_vs_pre"] = round(pre / entry["process_s_best"], 3)
    return entry


def run_benchmarks(
    names: Optional[List[str]] = None,
    rounds: int = 3,
    progress: Optional[Callable[[str], None]] = None,
) -> Dict[str, Any]:
    """Run the suite; returns the ``BENCH_perf.json`` document."""
    from repro._version import __version__

    selected = names or list(WORKLOADS)
    unknown = [n for n in selected if n not in WORKLOADS]
    if unknown:
        raise KeyError(f"unknown benchmarks: {unknown} (have {list(WORKLOADS)})")
    results: Dict[str, Any] = {}
    for name in selected:
        if progress is not None:
            progress(f"bench {name} ({rounds} rounds)...")
        results[name] = run_workload(name, rounds=rounds)
    return {
        "schema": "repro-bench/1",
        "version": __version__,
        "host": {
            "python": sys.version.split()[0],
            "platform": platform.platform(),
            "machine": platform.machine(),
        },
        "rounds": rounds,
        "statistic": "best-of-rounds time.process_time() per workload",
        "methodology": (
            "pre_optimization_process_s values were captured with the same "
            "statistic in interleaved pre/post A/B rounds on one host, so "
            "speedup_vs_pre compares like with like; single absolute times "
            "are host-dependent and NOT comparable across machines"
        ),
        "benchmarks": results,
    }


def render_benchmarks(doc: Dict[str, Any]) -> str:
    """Human-readable table of a :func:`run_benchmarks` document."""
    from repro.analysis import render_table

    rows = []
    for name, entry in doc["benchmarks"].items():
        rows.append(
            [
                name,
                f"{entry['process_s_best']:.3f}",
                f"{entry['wall_s_best']:.3f}",
                f"{entry.get('pre_optimization_process_s', float('nan')):.3f}",
                f"{entry.get('speedup_vs_pre', float('nan')):.2f}x",
            ]
        )
    return render_table(
        ["benchmark", "proc s (best)", "wall s (best)", "pre proc s", "speedup"],
        rows,
        title=f"repro bench ({doc['rounds']} rounds, {doc['host']['python']})",
    )


#: How many superseded runs ``write_bench_json`` keeps in ``history``.
BENCH_HISTORY_LIMIT = 20


def write_bench_json(path, doc: Dict[str, Any]) -> None:
    """Write ``doc`` to ``path``, preserving prior runs as history.

    An existing well-formed document is demoted (minus its own
    ``history``) into the new document's ``history`` list, newest
    first and capped at :data:`BENCH_HISTORY_LIMIT` — so the top-level
    document is always the latest run, but a regression's "before"
    numbers survive the rerun that found it.  An unreadable or
    foreign-schema file is overwritten without history rather than
    failing the bench run.
    """
    import pathlib

    target = pathlib.Path(path)
    history: List[Dict[str, Any]] = []
    try:
        prior = json.loads(target.read_text())
    except (OSError, ValueError):
        prior = None
    if isinstance(prior, dict) and str(
        prior.get("schema", "")
    ).startswith("repro-bench/"):
        history = list(prior.pop("history", []))
        history.insert(0, prior)
    out = dict(doc)
    out["history"] = history[:BENCH_HISTORY_LIMIT]
    target.write_text(json.dumps(out, indent=2, sort_keys=True) + "\n")
