"""Network fabric models: fluid max-min sharing and exact packet mode.

InfiniBand arbitrates a link between competing flows at packet (MTU)
granularity, round-robin across virtual lanes / QPs.  Over timescales
of many packets that converges to *max-min fair* bandwidth sharing, so
the default model is a fluid one: each in-flight transfer progresses at
its max-min fair rate over its path, and the simulator only generates
events when the set of active transfers changes.  This keeps the event
count per transfer O(1) instead of O(bytes / MTU) — essential when a
2 MB interferer is streaming (2048 packets per message).

:class:`PacketLink` is the exact per-MTU round-robin model for a single
link.  Tests cross-validate the fluid model against it: completion
times agree to within one MTU service time per competing flow.
"""

from __future__ import annotations

import math
from typing import Callable, Dict, List, Optional, Sequence, Tuple

import numpy as np

from repro.errors import FabricError
from repro.sim import invariants
from repro.sim.core import Environment
from repro.sim.events import Event
from repro.sim.invariants import check_fabric_rates
from repro.units import SEC, KiB

#: Residual byte count below which a fluid transfer counts as finished.
_COMPLETION_EPS = 1e-6

#: Active-set size above which the solver memo is bypassed.  The memo
#: key is an O(transfers) tuple; for the small recurring subproblems of
#: scenario traffic hits dominate and the key is cheap, but a huge
#: active set almost never recurs exactly, so memoizing it would pay
#: O(n) key construction and hashing per event for a ~0% hit rate.
_MEMO_MAX_TRANSFERS = 24

#: Adaptive memo probation: after this many memoized lookups the hit
#: rate is inspected once, and if it is below ``_MEMO_MIN_HIT_RATE``
#: the memo is disabled for the rest of the fabric's life.  High-churn
#: workloads whose small active sets never recur (every composition is
#: new) would otherwise pay key construction forever for ~0% hits.
_MEMO_PROBATION_LOOKUPS = 1024
_MEMO_MIN_HIT_RATE = 0.05

#: Active-set size at which ``maxmin_rates`` switches to the vectorized
#: numpy fixed point.  Below it the pure-Python loop wins (array setup
#: costs more than the solve); above it each round is a handful of
#: O(membership) numpy kernels instead of a Python rescan of every
#: link's member list.  Both paths are bit-identical by construction
#: (see ``_maxmin_rates_numpy``), so the gate is a pure performance
#: knob — the published two-host goldens always take the pure path.
_VECTOR_MIN_TRANSFERS = 48

#: Involved-link count below which the pure loop is kept even for large
#: active sets.  The loop does at most one freezing round per involved
#: link, so with a handful of links its total cost is a few cheap
#: membership scans and the numpy path's O(transfers) array setup can
#: never amortize (a 4k-transfer/3-link churn is ~3x slower
#: vectorized).  Many links means many rounds — that is where each
#: round collapsing to C-speed kernels wins.
_VECTOR_MIN_LINKS = 8


class NetLink:
    """One unidirectional link (or link direction) with fixed capacity."""

    __slots__ = (
        "name",
        "capacity_bps",
        "nominal_bps",
        "degraded_factor",
        "bytes_accepted",
        "_util_integral",
    )

    def __init__(self, name: str, capacity_bytes_per_sec: float) -> None:
        if capacity_bytes_per_sec <= 0:
            raise FabricError(
                f"link {name!r}: capacity must be > 0, got {capacity_bytes_per_sec}"
            )
        self.name = name
        self.capacity_bps = float(capacity_bytes_per_sec)
        #: Healthy capacity; ``capacity_bps`` is this scaled by the
        #: current degradation factor (fault injection, see
        #: :mod:`repro.faults`).
        self.nominal_bps = float(capacity_bytes_per_sec)
        #: Fraction of nominal capacity currently available in [0, 1].
        #: 0 means the link is down (flap): transfers stall in place.
        self.degraded_factor = 1.0
        #: Total bytes of transfers routed through this link.
        self.bytes_accepted: int = 0
        #: Integral of (allocated rate / capacity) d(t) in ns units.
        self._util_integral: float = 0.0

    @property
    def capacity_bytes_per_ns(self) -> float:
        return self.capacity_bps / SEC

    def utilization(self, elapsed_ns: int) -> float:
        """Mean utilization over ``elapsed_ns`` of simulated time."""
        if elapsed_ns <= 0:
            return 0.0
        return self._util_integral / elapsed_ns

    def __repr__(self) -> str:
        return f"<NetLink {self.name} {self.capacity_bps / 1e9:.2f}GB/s>"


class Transfer:
    """One in-flight message moving across a path of links."""

    __slots__ = (
        "transfer_id",
        "path",
        "path_names",
        "nbytes",
        "remaining",
        "rate",
        "done",
        "submitted_at",
        "completed_at",
        "flow_label",
        "weight",
    )

    def __init__(
        self,
        transfer_id: int,
        path: Tuple[NetLink, ...],
        nbytes: int,
        done: Event,
        submitted_at: int,
        flow_label: str,
        weight: float = 1.0,
    ) -> None:
        self.transfer_id = transfer_id
        self.path = path
        #: Path as link names, precomputed for the solver memo key.
        self.path_names = tuple(link.name for link in path)
        self.nbytes = nbytes
        self.remaining = float(nbytes)
        self.rate = 0.0  # bytes per ns, set by reallocation
        self.done = done
        self.submitted_at = submitted_at
        self.completed_at: Optional[int] = None
        self.flow_label = flow_label
        #: Arbitration weight (IB VL priority analog): shares on a
        #: contended link are proportional to weight.
        self.weight = weight

    def __repr__(self) -> str:
        return (
            f"<Transfer #{self.transfer_id} {self.flow_label!r} "
            f"{self.remaining:.0f}/{self.nbytes}B>"
        )


def maxmin_rates(
    transfers: Sequence[Transfer],
    capacity_of: Callable[[NetLink], float],
    ts_ns: int = -1,
    n_links: Optional[int] = None,
) -> Dict[Transfer, float]:
    """Progressive-filling *weighted* max-min fair allocation.

    Every transfer gets the largest rate proportional to its weight such
    that no link is oversubscribed and no transfer can gain rate without
    another losing an already-smaller normalized (rate/weight) share.
    With unit weights this is classic max-min.  Fully deterministic:
    all iteration follows submission order (no set-ordered float sums),
    and ties are broken by link name.

    Two implementations share this entry point: the pure-Python loop
    (small active sets, and the reference semantics) and a vectorized
    numpy fixed point used from ``_VECTOR_MIN_TRANSFERS`` transfers up.
    They are bit-identical — the numpy path reproduces the exact
    left-to-right float arithmetic of the loop (see
    ``_maxmin_rates_numpy``) and falls back to the loop for degenerate
    inputs it cannot, so which one ran is unobservable in the results.

    ``n_links``, when the caller already knows it (the fabric maintains
    per-link membership), is the number of distinct links the transfers
    touch; vectorizing only pays off when both the active set and the
    link set are large (see ``_VECTOR_MIN_LINKS``).  Without the hint a
    bounded scan counts distinct links, stopping as soon as enough are
    seen.
    """
    active = list(transfers)
    if not active:
        return {}
    for t in active:
        if t.weight <= 0:
            raise FabricError(f"transfer weight must be > 0, got {t.weight}")
    rates: Optional[Dict[Transfer, float]] = None
    if len(active) >= _VECTOR_MIN_TRANSFERS:
        if n_links is None:
            seen = set()
            for t in active:
                for link in t.path:
                    seen.add(id(link))
                if len(seen) >= _VECTOR_MIN_LINKS:
                    break
            n_links = len(seen)
        if n_links >= _VECTOR_MIN_LINKS:
            rates = _maxmin_rates_numpy(active, capacity_of)
    if rates is None:
        rates = _maxmin_rates_python(active, capacity_of)
    # Runtime invariant guards (fabric.rate_nonnegative /
    # fabric.link_capacity): off-mode costs one attribute load and
    # branch; an enabled monitor re-walks the solution once.
    inv = invariants.current()
    if inv.enabled:
        check_fabric_rates(inv, rates, capacity_of, ts_ns=ts_ns)
    return rates


def _maxmin_rates_python(
    active: List[Transfer],
    capacity_of: Callable[[NetLink], float],
) -> Dict[Transfer, float]:
    """The reference progressive-filling loop (pure Python)."""
    rates: Dict[Transfer, float] = {}
    # Per-link membership lists in submission order: turns the inner
    # weight-sum from an O(links x transfers) path-membership scan into
    # a walk of exactly the transfers on that link.
    link_order: List[NetLink] = []
    members: Dict[NetLink, List[Transfer]] = {}
    cap_left: Dict[NetLink, float] = {}
    for t in active:
        for link in t.path:
            lst = members.get(link)
            if lst is None:
                members[link] = lst = []
                cap_left[link] = capacity_of(link)
                link_order.append(link)
            lst.append(t)

    unfrozen = dict.fromkeys(active)  # insertion-ordered set
    while unfrozen:
        # Normalized share (rate per weight unit) each link could still
        # give its unfrozen transfers.  While summing, each member list
        # is compacted in place to its unfrozen entries — relative
        # order is preserved, so the left-to-right float sum is
        # identical to a scan that merely skipped frozen entries, and
        # later iterations touch only still-live members.
        best_link: Optional[NetLink] = None
        best_share = math.inf
        for link in link_order:
            lst = members[link]
            weight_sum = 0.0
            k = 0
            for t in lst:
                if t in unfrozen:
                    lst[k] = t
                    k += 1
                    weight_sum += t.weight
            if k != len(lst):
                del lst[k:]
            if weight_sum == 0:
                continue
            share = max(cap_left[link], 0.0) / weight_sum
            if share < best_share or (
                share == best_share
                and best_link is not None
                and link.name < best_link.name
            ):
                best_share = share
                best_link = link
        if best_link is None:
            # No links constrain the remaining transfers (cannot happen
            # for non-empty paths, but guard against it).
            raise FabricError("max-min: transfers with no constraining link")
        for t in members[best_link]:
            # Compacted above, so members are unfrozen — the guard only
            # protects against a transfer listed twice (degenerate path
            # visiting one link twice).
            if t in unfrozen:
                rate = best_share * t.weight
                rates[t] = rate
                del unfrozen[t]
                for link in t.path:
                    cap_left[link] = cap_left[link] - rate
    return rates


def _maxmin_rates_numpy(
    active: List[Transfer],
    capacity_of: Callable[[NetLink], float],
) -> Optional[Dict[Transfer, float]]:
    """Vectorized progressive filling over per-link membership arrays.

    Returns ``None`` for inputs it cannot reproduce exactly (an empty
    path, or a degenerate path visiting one link twice) — the caller
    then takes the pure loop.  For everything else the result is
    **bit-identical** to ``_maxmin_rates_python``, by construction:

    * Per-link weight sums use ``np.bincount``, whose C kernel is one
      sequential pass accumulating ``out[link[i]] += w[i]`` in array
      order.  Membership is laid out link-major with each link's
      entries in submission order, so every bin's partial sums are the
      same left-to-right float additions the loop performs.  Frozen
      members contribute ``+0.0``, the floating-point identity for the
      non-negative partial sums involved (weights are > 0), exactly
      like the loop's compaction that merely skips them.
    * The bottleneck link minimizes ``(share, name)`` with shares
      computed from the very same floats (``max(cap_left, 0.0) /
      weight_sum``); exact float equality selects the tie set and a
      precomputed name rank breaks ties, matching the loop's scan.
    * Frozen transfers are processed in membership (= submission)
      order and their path capacities decremented per transfer with
      the same ``cap -= rate`` operation, in the same sequence.
    """
    link_order: List[NetLink] = []
    link_index: Dict[NetLink, int] = {}
    members_tid: List[List[int]] = []
    path_rows: List[List[int]] = []
    for ti, t in enumerate(active):
        path = t.path
        if not path:
            return None
        row = []
        for link in path:
            li = link_index.get(link)
            if li is None:
                li = link_index[link] = len(link_order)
                link_order.append(link)
                members_tid.append([])
            members_tid[li].append(ti)
            row.append(li)
        if len(row) > 1 and len(set(row)) != len(row):
            return None
        path_rows.append(row)

    n_links = len(link_order)
    n_active = len(active)
    mem_link = np.concatenate(
        [np.full(len(lst), li, dtype=np.intp)
         for li, lst in enumerate(members_tid)]
    )
    mem_tid = np.array(
        [ti for lst in members_tid for ti in lst], dtype=np.intp
    )
    weights = np.array([t.weight for t in active], dtype=np.float64)
    mem_w = weights[mem_tid]
    cap_left = np.array(
        [capacity_of(link) for link in link_order], dtype=np.float64
    )
    # Rank of each link's name in sorted order: the loop's tie-break.
    name_rank = np.empty(n_links, dtype=np.intp)
    name_rank[
        sorted(range(n_links), key=lambda li: link_order[li].name)
    ] = np.arange(n_links)

    t_alive = np.ones(n_active, dtype=bool)
    rates: Dict[Transfer, float] = {}
    n_left = n_active
    while n_left:
        wsum = np.bincount(
            mem_link, weights=mem_w * t_alive[mem_tid], minlength=n_links
        )
        with np.errstate(divide="ignore", invalid="ignore"):
            shares = np.maximum(cap_left, 0.0) / wsum
        shares[wsum == 0.0] = np.inf
        best_share_f = shares.min()
        if not best_share_f < math.inf:
            # No links constrain the remaining transfers (cannot happen
            # for non-empty paths, but guard against it).
            raise FabricError("max-min: transfers with no constraining link")
        tie = np.flatnonzero(shares == best_share_f)
        best = int(tie[np.argmin(name_rank[tie])]) if len(tie) > 1 else int(tie[0])
        best_share = float(best_share_f)
        frozen_tids = mem_tid[(mem_link == best) & t_alive[mem_tid]]
        for ti in frozen_tids.tolist():
            t = active[ti]
            rate = best_share * t.weight
            rates[t] = rate
            for li in path_rows[ti]:
                cap_left[li] -= rate
        t_alive[frozen_tids] = False
        n_left -= len(frozen_tids)
    return rates


class FluidFabric:
    """Event-efficient fluid-flow network with max-min fair sharing."""

    def __init__(self, env: Environment) -> None:
        self.env = env
        self.links: Dict[str, NetLink] = {}
        self._active: List[Transfer] = []
        self._next_id = 0
        self._last_advance = env.now
        self._timer_generation = 0
        #: Completed-transfer log (id, nbytes, duration_ns, flow_label).
        self.completions: List[Tuple[int, int, int, str]] = []
        #: Memoized solver results: normalized subproblem -> rate tuple.
        #: Scenario traffic revisits a handful of active-set shapes
        #: thousands of times, so hits dominate after warmup.
        self._solve_cache: Dict[tuple, Tuple[float, ...]] = {}
        self._memo_lookups = 0
        self._memo_hits = 0
        self._memo_enabled = True
        #: Per-link active-transfer membership, maintained incrementally
        #: on submit/complete (dicts double as insertion-ordered sets,
        #: so each link's members stay in submission order).  Links with
        #: no active transfers are absent, so ``len(self._members)`` is
        #: the number of involved links.
        self._members: Dict[NetLink, Dict[Transfer, None]] = {}
        #: Solver-locality accounting: how often ``_reallocate`` solved
        #: a restricted connected component vs the whole active set,
        #: and how many transfers each kind of solve covered.  At
        #: cluster scale this is the evidence that perturbing one rack
        #: does not re-solve the cluster (``component_transfers`` per
        #: solve stays near the rack's flow count, not the fabric's).
        self.solver_stats: Dict[str, int] = {
            "global_solves": 0,
            "global_transfers": 0,
            "component_solves": 0,
            "component_transfers": 0,
            "max_component": 0,
        }

    # -- topology -----------------------------------------------------------
    def add_link(self, name: str, capacity_bytes_per_sec: float) -> NetLink:
        if name in self.links:
            raise FabricError(f"duplicate link name {name!r}")
        link = NetLink(name, capacity_bytes_per_sec)
        self.links[name] = link
        return link

    def link(self, name: str) -> NetLink:
        try:
            return self.links[name]
        except KeyError:
            raise FabricError(f"no such link: {name!r}") from None

    # -- transfers ------------------------------------------------------------
    @property
    def active_transfers(self) -> Tuple[Transfer, ...]:
        return tuple(self._active)

    def set_link_capacity(self, name: str, capacity_bytes_per_sec: float) -> None:
        """Change a link's *nominal* capacity at runtime (HW rate-limit
        updates).

        Active transfers are advanced at their old rates first, then
        rates are recomputed under the new capacity (scaled by any
        degradation currently injected on the link).
        """
        if capacity_bytes_per_sec <= 0:
            raise FabricError("capacity must be > 0")
        link = self.link(name)
        self._advance()
        link.nominal_bps = float(capacity_bytes_per_sec)
        link.capacity_bps = link.nominal_bps * link.degraded_factor
        self._reallocate((link,))
        self._schedule_next()

    def set_link_degradation(self, name: str, available_factor: float) -> None:
        """Degrade (or restore) a link to a fraction of nominal capacity.

        ``available_factor`` is the fraction of healthy capacity still
        usable: 1.0 restores the link, 0.5 halves it, 0.0 takes it down
        entirely.  In-flight transfers are re-rated immediately: they
        advance at their old rates up to *now*, then share whatever
        capacity remains (stalling in place when the link is down, and
        resuming when it comes back).  This is the :mod:`repro.faults`
        hook for link-degradation and link-flap fault injection.
        """
        if not 0.0 <= available_factor <= 1.0:
            raise FabricError(
                f"degradation factor must be in [0, 1], got {available_factor}"
            )
        link = self.link(name)
        self._advance()
        link.degraded_factor = float(available_factor)
        link.capacity_bps = link.nominal_bps * link.degraded_factor
        self._reallocate((link,))
        self._schedule_next()

    def submit(
        self,
        path: Sequence[NetLink],
        nbytes: int,
        flow_label: str = "",
        weight: float = 1.0,
    ) -> Transfer:
        """Start a transfer over ``path``; ``transfer.done`` fires on finish.

        Zero-byte transfers complete immediately (control messages).
        ``weight`` sets the arbitration priority (default: equal share).
        """
        if not path:
            raise FabricError("transfer path must contain at least one link")
        for link in path:
            if self.links.get(link.name) is not link:
                raise FabricError(f"link {link.name!r} not part of this fabric")
        if nbytes < 0:
            raise FabricError(f"negative transfer size: {nbytes}")

        done = Event(self.env)
        self._next_id += 1
        transfer = Transfer(
            self._next_id, tuple(path), nbytes, done, self.env.now,
            flow_label, weight=weight,
        )
        for link in transfer.path:
            link.bytes_accepted += nbytes

        if nbytes == 0:
            transfer.completed_at = self.env.now
            self.completions.append((transfer.transfer_id, 0, 0, flow_label))
            self._emit_flow(transfer)
            done.succeed(transfer)
            return transfer

        self._advance()
        self._active.append(transfer)
        members = self._members
        for link in transfer.path:
            lst = members.get(link)
            if lst is None:
                members[link] = lst = {}
            lst[transfer] = None
        self._reallocate(transfer.path)
        self._schedule_next()
        return transfer

    # -- internals ------------------------------------------------------------
    def _emit_flow(self, transfer: Transfer) -> None:
        """Per-packet-flow telemetry: one span per completed transfer."""
        tel = self.env.telemetry
        if tel.enabled:
            tel.span(
                "fabric",
                transfer.flow_label or f"transfer{transfer.transfer_id}",
                transfer.submitted_at,
                transfer.completed_at,
                lane="+".join(link.name for link in transfer.path),
                bytes=transfer.nbytes,
                weight=transfer.weight,
            )

    def _advance(self) -> None:
        """Progress all active transfers up to the current time."""
        now = self.env.now
        dt = now - self._last_advance
        if dt > 0 and self._active:
            # Per-link utilization bookkeeping.
            link_rate: Dict[NetLink, float] = {}
            for t in self._active:
                t.remaining = max(t.remaining - t.rate * dt, 0.0)
                for link in t.path:
                    link_rate[link] = link_rate.get(link, 0.0) + t.rate
            for link, rate in link_rate.items():
                # A fully-degraded (down) link carries no traffic and
                # counts as unutilized for the duration of the outage.
                if link.capacity_bytes_per_ns > 0:
                    link._util_integral += (rate / link.capacity_bytes_per_ns) * dt
        self._last_advance = now

    def _solve(
        self, transfers: List[Transfer], n_links: Optional[int] = None
    ) -> Tuple[float, ...]:
        """Max-min rates for ``transfers``, memoized.

        The key is the exact normalized subproblem — ordered
        ``(path_names, weight)`` per transfer plus the current capacity
        of every involved link — so a cache hit returns the very floats
        a fresh solve would produce and byte-identity is preserved.
        ``n_links`` is the caller's involved-link count (the fabric
        maintains it), forwarded so the solver's vectorization gate
        never has to rescan paths.
        """
        if not transfers:
            return ()
        if len(transfers) > _MEMO_MAX_TRANSFERS or not self._memo_enabled:
            # Too big (or proven not to recur): solve directly.
            rates = maxmin_rates(
                transfers,
                lambda link: link.capacity_bytes_per_ns,
                ts_ns=self.env.now,
                n_links=n_links,
            )
            return tuple(rates[t] for t in transfers)
        lookups = self._memo_lookups + 1
        self._memo_lookups = lookups
        if lookups == _MEMO_PROBATION_LOOKUPS and (
            self._memo_hits < lookups * _MEMO_MIN_HIT_RATE
        ):
            # High churn: compositions never recur, so key construction
            # is pure overhead.  Same floats either way (the memo only
            # ever returns what a fresh solve would), so disabling it
            # mid-run cannot change results.
            self._memo_enabled = False
            self._solve_cache.clear()
            rates = maxmin_rates(
                transfers,
                lambda link: link.capacity_bytes_per_ns,
                ts_ns=self.env.now,
                n_links=n_links,
            )
            return tuple(rates[t] for t in transfers)
        tkey = []
        seen = set()
        lkey = []
        for t in transfers:
            tkey.append((t.path_names, t.weight))
            for link in t.path:
                name = link.name
                if name not in seen:
                    seen.add(name)
                    lkey.append((name, link.capacity_bps))
        key = (tuple(tkey), tuple(lkey))
        cached = self._solve_cache.get(key)
        if cached is not None:
            self._memo_hits += 1
        else:
            rates = maxmin_rates(
                transfers,
                lambda link: link.capacity_bytes_per_ns,
                ts_ns=self.env.now,
                n_links=n_links,
            )
            cached = tuple(rates[t] for t in transfers)
            if len(self._solve_cache) >= 4096:
                self._solve_cache.clear()  # unbounded topologies: stay small
            self._solve_cache[key] = cached
        return cached

    def _reallocate(
        self, touched_links: Optional[Sequence[NetLink]] = None
    ) -> None:
        """Recompute fair rates after a change.

        With ``touched_links`` given (a flow joined/left or a capacity
        changed there), only the connected component of transfers
        reachable from those links through shared links is re-solved.
        Progressive filling decomposes exactly over components — their
        capacity and weight arithmetic never interacts — so the
        restricted solve yields bit-identical rates to a global one,
        and untouched components keep their current rates.
        """
        active = self._active
        if not active:
            return
        if touched_links is not None and len(active) > 1:
            # BFS over the maintained per-link membership (no per-event
            # adjacency rebuild).  The walk bails out to the global
            # solve as soon as the growing linkset provably covers
            # every involved link — the common case for hot shared
            # topologies, usually after inspecting only a handful of
            # members rather than the whole active set.
            members = self._members
            involved = len(members)
            linkset = {
                link for link in touched_links if link in members
            }
            if len(linkset) < involved:
                frontier = list(linkset)
                affected: Dict[Transfer, None] = {}
                while frontier and len(linkset) < involved:
                    link = frontier.pop()
                    for t in members[link]:
                        if t not in affected:
                            affected[t] = None
                            for l2 in t.path:
                                if l2 not in linkset:
                                    linkset.add(l2)
                                    frontier.append(l2)
                        if len(linkset) == involved:
                            break
                if len(linkset) < involved:
                    # Genuinely smaller component: transfer ids ascend
                    # in submission order, matching the global
                    # iteration order, so the restricted solve is
                    # bit-identical.
                    aff = sorted(affected, key=lambda t: t.transfer_id)
                    stats = self.solver_stats
                    stats["component_solves"] += 1
                    stats["component_transfers"] += len(aff)
                    if len(aff) > stats["max_component"]:
                        stats["max_component"] = len(aff)
                    for t, rate in zip(aff, self._solve(aff, len(linkset))):
                        t.rate = rate
                    return
        stats = self.solver_stats
        stats["global_solves"] += 1
        stats["global_transfers"] += len(active)
        for t, rate in zip(active, self._solve(active, len(self._members))):
            t.rate = rate

    def _schedule_next(self) -> None:
        self._timer_generation += 1
        if not self._active:
            return
        generation = self._timer_generation
        dt_min = math.inf
        for t in self._active:
            # Rate 0 happens only when a link on the path is fully
            # degraded (down): the transfer is stalled and finishes no
            # sooner than the next capacity change, which reallocates
            # and reschedules.
            if t.rate <= 0:
                continue
            dt_min = min(dt_min, t.remaining / t.rate)
        if not math.isfinite(dt_min):
            # Every active transfer is stalled on a downed link; there
            # is nothing to time until capacity is restored.
            return
        delay = max(int(math.ceil(dt_min)), 1)
        timer = self.env.timeout(delay)
        timer.callbacks.append(lambda _ev: self._on_timer(generation))

    def _on_timer(self, generation: int) -> None:
        if generation != self._timer_generation:
            return  # superseded by a newer allocation
        self._advance()
        finished = [t for t in self._active if t.remaining <= _COMPLETION_EPS]
        if finished:
            touched: List[NetLink] = []
            members = self._members
            for t in finished:
                self._active.remove(t)
                for link in t.path:
                    lst = members.get(link)
                    if lst is not None:
                        lst.pop(t, None)
                        if not lst:
                            del members[link]
                t.completed_at = self.env.now
                self.completions.append(
                    (
                        t.transfer_id,
                        t.nbytes,
                        t.completed_at - t.submitted_at,
                        t.flow_label,
                    )
                )
                touched.extend(t.path)
                self._emit_flow(t)
            self._reallocate(touched)
            for t in finished:
                t.done.succeed(t)
        self._schedule_next()


class PacketLink:
    """Exact per-MTU round-robin service of a single link.

    Used to validate the fluid model; event cost is O(packets).
    """

    def __init__(
        self,
        env: Environment,
        capacity_bytes_per_sec: float,
        mtu_bytes: int = 1 * KiB,
    ) -> None:
        if capacity_bytes_per_sec <= 0:
            raise FabricError("capacity must be > 0")
        if mtu_bytes <= 0:
            raise FabricError("MTU must be > 0")
        self.env = env
        self.capacity_bps = float(capacity_bytes_per_sec)
        self.mtu = mtu_bytes
        self._queue: List[_PacketTransfer] = []
        self._busy = False
        self.packets_sent = 0

    def submit(self, nbytes: int, flow_label: str = "") -> Event:
        """Start a transfer; the returned event fires when it finishes."""
        if nbytes < 0:
            raise FabricError(f"negative transfer size: {nbytes}")
        done = Event(self.env)
        if nbytes == 0:
            done.succeed(None)
            return done
        npackets = -(-nbytes // self.mtu)
        self._queue.append(_PacketTransfer(nbytes, npackets, done, flow_label))
        if not self._busy:
            self._busy = True
            self.env.process(self._serve(), name="packet-link")
        return done

    def _packet_time(self, nbytes: int) -> int:
        t = nbytes * SEC / self.capacity_bps
        return max(int(math.ceil(t)), 1)

    def _serve(self):
        # Round-robin: send one packet from the head transfer of each flow
        # in rotation.  A "flow" here is each submitted transfer.
        while self._queue:
            t = self._queue.pop(0)
            nbytes = min(self.mtu, t.bytes_left)
            yield self.env.timeout(self._packet_time(nbytes))
            self.packets_sent += 1
            t.bytes_left -= nbytes
            t.packets_left -= 1
            if t.packets_left > 0:
                self._queue.append(t)  # rotate to the back: round-robin
            else:
                t.done.succeed(None)
        self._busy = False


class _PacketTransfer:
    __slots__ = ("nbytes", "bytes_left", "packets_left", "done", "flow_label")

    def __init__(
        self, nbytes: int, npackets: int, done: Event, flow_label: str
    ) -> None:
        self.nbytes = nbytes
        self.bytes_left = nbytes
        self.packets_left = npackets
        self.done = done
        self.flow_label = flow_label
