"""Physical CPU model.

A PCPU is a passive description (identity + frequency); time-sharing
behaviour lives in the credit scheduler (:mod:`repro.xen.credit`).
Frequency matters because ResEx charges CPU Resos per *percent of an
interval*, and converts percents to cycle counts for reporting.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.errors import ConfigError


@dataclass(frozen=True)
class PCPU:
    """One physical core.

    Attributes
    ----------
    cpu_id:
        Index of the core within its host.
    freq_hz:
        Core frequency; the testbed's hosts are 1.86 GHz and 2.66 GHz
        Xeons (paper §VII).
    """

    cpu_id: int
    freq_hz: float = 1.86e9

    def __post_init__(self) -> None:
        if self.cpu_id < 0:
            raise ConfigError(f"cpu_id must be >= 0, got {self.cpu_id}")
        if self.freq_hz <= 0:
            raise ConfigError(f"freq_hz must be > 0, got {self.freq_hz}")

    def cycles_to_ns(self, cycles: float) -> int:
        """Convert a cycle count to integer nanoseconds (rounded up)."""
        if cycles < 0:
            raise ConfigError(f"negative cycle count: {cycles}")
        t = cycles * 1e9 / self.freq_hz
        it = int(t)
        return it + 1 if t > it else it

    def ns_to_cycles(self, t_ns: int) -> float:
        """Convert nanoseconds of busy time to a cycle count."""
        if t_ns < 0:
            raise ConfigError(f"negative duration: {t_ns}")
        return t_ns * self.freq_hz / 1e9

    def __repr__(self) -> str:
        return f"<PCPU {self.cpu_id} @ {self.freq_hz / 1e9:.2f}GHz>"
