"""Fabric topologies: first-class cluster wiring and static routing.

The paper's testbed is two hosts on one non-blocking switch, and the
original ``path_between`` hardwired that shape: the only contention
points were the source's egress and the destination's ingress port.
Growing the simulated world to hundreds of hosts (ROADMAP item 1)
needs what a real fabric has — racks, leaf/spine switches,
oversubscribed uplinks — as first-class objects:

* :class:`Topology` owns host attachment and static routing.  A route
  is a list of contended :class:`~repro.hw.fabric.NetLink` directions:
  the host ports plus every switch hop the transfer crosses.
* :class:`Crossbar` is the paper's switch (Xsigo VP780): one
  non-blocking backplane.  It creates exactly the legacy link names
  and two-link paths, so the published two-host goldens are untouched.
* :class:`LeafSpine` wires ``racks`` leaf switches to ``spines`` spine
  switches; cross-rack traffic contends on leaf uplinks/downlinks.
* :class:`FatTree` is the classic k-ary fat-tree (k pods, k^3/4
  hosts) with three-stage edge/aggregation/core routing.

Routing is deterministic and static: the spine (or core) carrying a
(src, dst) pair is a pure function of the two host indices, so a
transfer's path — and therefore every max-min solve — is reproducible
run to run and identical under serial and parallel sweeps.  Routes are
cached per (src, dst) index pair after first use; switch links are all
created at topology construction time, so link creation order never
depends on traffic or attach order.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import TYPE_CHECKING, Dict, List, Optional, Tuple

from repro.errors import ConfigError
from repro.hw.fabric import FluidFabric, NetLink

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.hw.host import Host


class Topology:
    """Base class: host registry, route cache, and the crossbar route.

    Subclasses override :meth:`_switch_links` to insert the switch
    hops between the source's tx port and the destination's rx port,
    and :attr:`max_hosts` to bound attachment.
    """

    kind = "abstract"

    def __init__(self, fabric: FluidFabric, link_bytes_per_sec: float) -> None:
        if link_bytes_per_sec <= 0:
            raise ConfigError(
                f"topology link rate must be > 0, got {link_bytes_per_sec}"
            )
        self.fabric = fabric
        self.link_bytes_per_sec = float(link_bytes_per_sec)
        self.hosts: List["Host"] = []
        self._host_index: Dict[str, int] = {}
        self._route_cache: Dict[Tuple[int, int], Tuple[NetLink, ...]] = {}

    # -- attachment ---------------------------------------------------------
    @property
    def max_hosts(self) -> Optional[int]:
        """Attachment capacity; ``None`` means unbounded (crossbar)."""
        return None

    def attach(self, host: "Host") -> "Host":
        """Attach ``host``: create its port links and register it.

        Must run before the host's HCA is constructed (the HCA only
        attaches hosts that are not already attached).
        """
        if host.name in self._host_index:
            raise ConfigError(
                f"host {host.name!r} is already attached to this topology"
            )
        cap = self.max_hosts
        if cap is not None and len(self.hosts) >= cap:
            raise ConfigError(
                f"{self.kind} topology is full ({cap} hosts); "
                f"cannot attach {host.name!r}"
            )
        host.attach_fabric(self.fabric, self.link_bytes_per_sec)
        self._host_index[host.name] = len(self.hosts)
        self.hosts.append(host)
        host.topology = self
        return host

    def index_of(self, host: "Host") -> int:
        try:
            return self._host_index[host.name]
        except KeyError:
            raise ConfigError(
                f"host {host.name!r} is not attached to this topology"
            ) from None

    def rack_of(self, host: "Host") -> int:
        """Failure/locality domain of ``host`` (0 for a single switch)."""
        self.index_of(host)  # membership check
        return 0

    # -- routing ------------------------------------------------------------
    def path(self, src: "Host", dst: "Host") -> List[NetLink]:
        """Static route from ``src`` to ``dst`` as contended links.

        Always ``[src.tx, <switch hops>, dst.rx]``; loopback (same
        host) crosses no switch, consuming both port directions —
        identical to the legacy two-host behavior.
        """
        si, di = self.index_of(src), self.index_of(dst)
        route = self._route_cache.get((si, di))
        if route is None:
            if src.tx_link is None or dst.rx_link is None:
                raise ConfigError(
                    f"hosts {src.name!r}/{dst.name!r} have no fabric ports"
                )
            hops = self._switch_links(si, di) if si != di else ()
            route = (src.tx_link, *hops, dst.rx_link)
            self._route_cache[(si, di)] = route
        return list(route)

    def _switch_links(self, si: int, di: int) -> Tuple[NetLink, ...]:
        """Switch hops between distinct hosts ``si`` -> ``di``."""
        return ()

    def __repr__(self) -> str:
        return f"<{type(self).__name__} hosts={len(self.hosts)}>"


class Crossbar(Topology):
    """One non-blocking switch: contention only at host ports.

    The default topology, byte-identical to the legacy wiring: it
    creates no switch links and every path is ``[src.tx, dst.rx]``.
    """

    kind = "crossbar"


class LeafSpine(Topology):
    """A two-stage Clos fabric: ``racks`` leaves, ``spines`` spines.

    Each leaf is non-blocking for its own rack, so intra-rack paths
    are the two host ports.  Cross-rack traffic additionally crosses
    one leaf uplink (``leaf<R>.up<S>``) and one downlink
    (``leaf<R>.down<S>``); the spine ``S`` for a pair is the
    deterministic hash ``(src_index + dst_index) % spines``.
    ``uplink_bytes_per_sec`` models oversubscription (default: same
    rate as host ports, i.e. ``spines``-way non-blocking per rack).
    """

    kind = "leaf-spine"

    def __init__(
        self,
        fabric: FluidFabric,
        link_bytes_per_sec: float,
        racks: int,
        hosts_per_rack: int,
        spines: int,
        uplink_bytes_per_sec: Optional[float] = None,
    ) -> None:
        super().__init__(fabric, link_bytes_per_sec)
        if racks < 1 or hosts_per_rack < 1 or spines < 1:
            raise ConfigError(
                f"leaf-spine needs racks/hosts_per_rack/spines >= 1, got "
                f"{racks}/{hosts_per_rack}/{spines}"
            )
        self.racks = racks
        self.hosts_per_rack = hosts_per_rack
        self.spines = spines
        up_bps = float(uplink_bytes_per_sec or link_bytes_per_sec)
        self._up = [
            [fabric.add_link(f"leaf{r}.up{s}", up_bps) for s in range(spines)]
            for r in range(racks)
        ]
        self._down = [
            [fabric.add_link(f"leaf{r}.down{s}", up_bps) for s in range(spines)]
            for r in range(racks)
        ]

    @property
    def max_hosts(self) -> Optional[int]:
        return self.racks * self.hosts_per_rack

    def rack_of(self, host: "Host") -> int:
        return self.index_of(host) // self.hosts_per_rack

    def _switch_links(self, si: int, di: int) -> Tuple[NetLink, ...]:
        ra, rb = si // self.hosts_per_rack, di // self.hosts_per_rack
        if ra == rb:
            return ()
        s = (si + di) % self.spines
        return (self._up[ra][s], self._down[rb][s])


class FatTree(Topology):
    """The classic k-ary fat-tree: k pods, k^3/4 hosts.

    Each pod has ``k/2`` edge and ``k/2`` aggregation switches; each
    edge switch serves ``k/2`` hosts; ``(k/2)^2`` core switches join
    the pods.  Routing is the standard three-stage static scheme with
    the core chosen as ``(src_index + dst_index) % (k/2)^2`` (the
    aggregation switch follows from the core: core ``c`` homes on
    aggregation ``c // (k/2)`` in every pod).
    """

    kind = "fat-tree"

    def __init__(
        self, fabric: FluidFabric, link_bytes_per_sec: float, k: int
    ) -> None:
        super().__init__(fabric, link_bytes_per_sec)
        if k < 2 or k % 2:
            raise ConfigError(f"fat-tree arity k must be even and >= 2, got {k}")
        self.k = k
        half = self._half = k // 2
        bps = self.link_bytes_per_sec
        # Edge<->aggregation, per pod: edge e talks to every agg a.
        self._edge_up = [
            [
                [
                    fabric.add_link(f"pod{p}.edge{e}.up{a}", bps)
                    for a in range(half)
                ]
                for e in range(half)
            ]
            for p in range(k)
        ]
        self._agg_down = [
            [
                [
                    fabric.add_link(f"pod{p}.agg{a}.down{e}", bps)
                    for e in range(half)
                ]
                for a in range(half)
            ]
            for p in range(k)
        ]
        # Aggregation<->core: agg a homes cores [a*half, (a+1)*half).
        self._agg_up = [
            [
                [
                    fabric.add_link(f"pod{p}.agg{a}.up{a * half + j}", bps)
                    for j in range(half)
                ]
                for a in range(half)
            ]
            for p in range(k)
        ]
        self._core_down = [
            [fabric.add_link(f"core{c}.down{p}", bps) for p in range(k)]
            for c in range(half * half)
        ]

    @property
    def max_hosts(self) -> Optional[int]:
        return self.k * self._half * self._half

    def rack_of(self, host: "Host") -> int:
        """The edge switch is the rack: ``k/2`` hosts per edge."""
        return self.index_of(host) // self._half

    def _switch_links(self, si: int, di: int) -> Tuple[NetLink, ...]:
        half = self._half
        if si // half == di // half:
            return ()  # same edge switch: non-blocking
        p, q = si // (half * half), di // (half * half)
        e, f = (si // half) % half, (di // half) % half
        if p == q:
            a = (si + di) % half
            return (self._edge_up[p][e][a], self._agg_down[p][a][f])
        c = (si + di) % (half * half)
        a = c // half
        return (
            self._edge_up[p][e][a],
            self._agg_up[p][a][c - a * half],
            self._core_down[c][q],
            self._agg_down[q][a][f],
        )


# -- domain plans: the shardable projection of a topology --------------------
#
# A :class:`DomainPlan` is the pure-index-math view of a topology that
# the sharded cluster model (:mod:`repro.experiments.cluster`,
# :mod:`repro.sim.shard`) partitions on.  It answers three questions
# without ever touching a fabric or a host object, so it is picklable
# and identical in every worker process:
#
# * which **domain** (isolation unit) a host index belongs to;
# * which switch links each domain *owns* (created in its own fabric,
#   in a deterministic order);
# * how a route decomposes: intra-domain hops, or a (source-side,
#   destination-side) split for cross-domain traffic — the two relay
#   segments, with the propagation between them carried as latency on
#   the cross-domain channel (the conservative lookahead).
#
# The domain is the unit within which the fluid max-min solver may
# couple flows; *no link is owned by two domains*, which is what makes
# per-domain fabrics byte-identical regardless of how domains are
# grouped into shards.  For a leaf-spine fabric the domain is the rack
# (each leaf's uplinks/downlinks are dedicated); for a fat-tree it is
# the pod (aggregation uplinks are shared by every edge in the pod, so
# a rack-grained split would couple fabrics through them).


@dataclass(frozen=True)
class DomainPlan:
    """Base class: a partition of host indices into link-disjoint
    domains, plus the per-domain link inventory and route split."""

    kind = "abstract"

    @property
    def n_domains(self) -> int:  # pragma: no cover - interface
        raise NotImplementedError

    @property
    def n_hosts(self) -> int:  # pragma: no cover - interface
        raise NotImplementedError

    def domain_of(self, host_index: int) -> int:
        """Domain owning host ``host_index``."""
        raise NotImplementedError  # pragma: no cover - interface

    def hosts_of(self, domain: int) -> range:
        """Host indices living in ``domain`` (always contiguous)."""
        raise NotImplementedError  # pragma: no cover - interface

    def domain_links(self, domain: int) -> Tuple[Tuple[str, float], ...]:
        """``(name, bytes_per_sec)`` switch links ``domain`` owns, in
        creation order."""
        raise NotImplementedError  # pragma: no cover - interface

    def intra_hops(self, si: int, di: int) -> Tuple[str, ...]:
        """Switch hop names for a same-domain route ``si -> di``."""
        raise NotImplementedError  # pragma: no cover - interface

    def cross_hops(
        self, si: int, di: int
    ) -> Tuple[Tuple[str, ...], Tuple[str, ...]]:
        """Cross-domain route split: (source-side, destination-side)
        switch hop names.  The source side is owned by ``si``'s domain,
        the destination side by ``di``'s — the two store-and-forward
        relay segments."""
        raise NotImplementedError  # pragma: no cover - interface

    def _check_pair(self, si: int, di: int) -> None:
        n = self.n_hosts
        if not (0 <= si < n and 0 <= di < n):
            raise ConfigError(
                f"host pair ({si}, {di}) out of range for {n} hosts"
            )


@dataclass(frozen=True)
class LeafSpinePlan(DomainPlan):
    """Rack-grained plan of a :class:`LeafSpine` fabric.

    Each rack owns its leaf's uplinks and downlinks (they are dedicated
    per rack), so racks are link-disjoint and the domain is the rack.
    Link names match :class:`LeafSpine` exactly.
    """

    racks: int
    hosts_per_rack: int
    spines: int
    link_bytes_per_sec: float
    uplink_bytes_per_sec: Optional[float] = None

    kind = "leaf-spine"

    def __post_init__(self) -> None:
        if self.racks < 1 or self.hosts_per_rack < 1 or self.spines < 1:
            raise ConfigError(
                f"leaf-spine plan needs racks/hosts_per_rack/spines >= 1, "
                f"got {self.racks}/{self.hosts_per_rack}/{self.spines}"
            )

    @property
    def n_domains(self) -> int:
        return self.racks

    @property
    def n_hosts(self) -> int:
        return self.racks * self.hosts_per_rack

    def domain_of(self, host_index: int) -> int:
        return host_index // self.hosts_per_rack

    def hosts_of(self, domain: int) -> range:
        start = domain * self.hosts_per_rack
        return range(start, start + self.hosts_per_rack)

    def domain_links(self, domain: int) -> Tuple[Tuple[str, float], ...]:
        up_bps = float(self.uplink_bytes_per_sec or self.link_bytes_per_sec)
        ups = tuple(
            (f"leaf{domain}.up{s}", up_bps) for s in range(self.spines)
        )
        downs = tuple(
            (f"leaf{domain}.down{s}", up_bps) for s in range(self.spines)
        )
        return ups + downs

    def intra_hops(self, si: int, di: int) -> Tuple[str, ...]:
        self._check_pair(si, di)
        return ()  # each leaf is non-blocking for its own rack

    def cross_hops(
        self, si: int, di: int
    ) -> Tuple[Tuple[str, ...], Tuple[str, ...]]:
        self._check_pair(si, di)
        ra, rb = self.domain_of(si), self.domain_of(di)
        if ra == rb:
            raise ConfigError(
                f"hosts {si}/{di} share rack {ra}; use intra_hops"
            )
        s = (si + di) % self.spines
        return ((f"leaf{ra}.up{s}",), (f"leaf{rb}.down{s}",))


@dataclass(frozen=True)
class FatTreePlan(DomainPlan):
    """Pod-grained plan of a :class:`FatTree` fabric.

    Aggregation uplinks are shared by every edge switch of a pod, so
    the pod — not the edge/rack — is the smallest link-disjoint unit.
    A pod owns its edge and aggregation links; each core switch's
    per-pod downlink ``core<C>.down<P>`` is owned by the *destination*
    pod ``P`` (it is dedicated to traffic entering that pod).  Link
    names match :class:`FatTree` exactly.
    """

    k: int
    link_bytes_per_sec: float

    kind = "fat-tree"

    def __post_init__(self) -> None:
        if self.k < 2 or self.k % 2:
            raise ConfigError(
                f"fat-tree arity k must be even and >= 2, got {self.k}"
            )

    @property
    def _half(self) -> int:
        return self.k // 2

    @property
    def n_domains(self) -> int:
        return self.k  # one domain per pod

    @property
    def n_hosts(self) -> int:
        return self.k ** 3 // 4

    def domain_of(self, host_index: int) -> int:
        return host_index // (self._half * self._half)

    def hosts_of(self, domain: int) -> range:
        per_pod = self._half * self._half
        start = domain * per_pod
        return range(start, start + per_pod)

    def domain_links(self, domain: int) -> Tuple[Tuple[str, float], ...]:
        half, bps, p = self._half, self.link_bytes_per_sec, domain
        out: List[Tuple[str, float]] = []
        for e in range(half):
            for a in range(half):
                out.append((f"pod{p}.edge{e}.up{a}", bps))
        for a in range(half):
            for e in range(half):
                out.append((f"pod{p}.agg{a}.down{e}", bps))
        for a in range(half):
            for j in range(half):
                out.append((f"pod{p}.agg{a}.up{a * half + j}", bps))
        for c in range(half * half):
            out.append((f"core{c}.down{p}", bps))
        return tuple(out)

    def intra_hops(self, si: int, di: int) -> Tuple[str, ...]:
        self._check_pair(si, di)
        half = self._half
        p = self.domain_of(si)
        if p != self.domain_of(di):
            raise ConfigError(
                f"hosts {si}/{di} are in different pods; use cross_hops"
            )
        if si // half == di // half:
            return ()  # same edge switch: non-blocking
        e, f = (si // half) % half, (di // half) % half
        a = (si + di) % half
        return (f"pod{p}.edge{e}.up{a}", f"pod{p}.agg{a}.down{f}")

    def cross_hops(
        self, si: int, di: int
    ) -> Tuple[Tuple[str, ...], Tuple[str, ...]]:
        self._check_pair(si, di)
        half = self._half
        p, q = self.domain_of(si), self.domain_of(di)
        if p == q:
            raise ConfigError(
                f"hosts {si}/{di} share pod {p}; use intra_hops"
            )
        e, f = (si // half) % half, (di // half) % half
        c = (si + di) % (half * half)
        a = c // half
        return (
            (f"pod{p}.edge{e}.up{a}", f"pod{p}.agg{a}.up{c}"),
            (f"core{c}.down{q}", f"pod{q}.agg{a}.down{f}"),
        )
