"""Fabric topologies: first-class cluster wiring and static routing.

The paper's testbed is two hosts on one non-blocking switch, and the
original ``path_between`` hardwired that shape: the only contention
points were the source's egress and the destination's ingress port.
Growing the simulated world to hundreds of hosts (ROADMAP item 1)
needs what a real fabric has — racks, leaf/spine switches,
oversubscribed uplinks — as first-class objects:

* :class:`Topology` owns host attachment and static routing.  A route
  is a list of contended :class:`~repro.hw.fabric.NetLink` directions:
  the host ports plus every switch hop the transfer crosses.
* :class:`Crossbar` is the paper's switch (Xsigo VP780): one
  non-blocking backplane.  It creates exactly the legacy link names
  and two-link paths, so the published two-host goldens are untouched.
* :class:`LeafSpine` wires ``racks`` leaf switches to ``spines`` spine
  switches; cross-rack traffic contends on leaf uplinks/downlinks.
* :class:`FatTree` is the classic k-ary fat-tree (k pods, k^3/4
  hosts) with three-stage edge/aggregation/core routing.

Routing is deterministic and static: the spine (or core) carrying a
(src, dst) pair is a pure function of the two host indices, so a
transfer's path — and therefore every max-min solve — is reproducible
run to run and identical under serial and parallel sweeps.  Routes are
cached per (src, dst) index pair after first use; switch links are all
created at topology construction time, so link creation order never
depends on traffic or attach order.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Dict, List, Optional, Tuple

from repro.errors import ConfigError
from repro.hw.fabric import FluidFabric, NetLink

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.hw.host import Host


class Topology:
    """Base class: host registry, route cache, and the crossbar route.

    Subclasses override :meth:`_switch_links` to insert the switch
    hops between the source's tx port and the destination's rx port,
    and :attr:`max_hosts` to bound attachment.
    """

    kind = "abstract"

    def __init__(self, fabric: FluidFabric, link_bytes_per_sec: float) -> None:
        if link_bytes_per_sec <= 0:
            raise ConfigError(
                f"topology link rate must be > 0, got {link_bytes_per_sec}"
            )
        self.fabric = fabric
        self.link_bytes_per_sec = float(link_bytes_per_sec)
        self.hosts: List["Host"] = []
        self._host_index: Dict[str, int] = {}
        self._route_cache: Dict[Tuple[int, int], Tuple[NetLink, ...]] = {}

    # -- attachment ---------------------------------------------------------
    @property
    def max_hosts(self) -> Optional[int]:
        """Attachment capacity; ``None`` means unbounded (crossbar)."""
        return None

    def attach(self, host: "Host") -> "Host":
        """Attach ``host``: create its port links and register it.

        Must run before the host's HCA is constructed (the HCA only
        attaches hosts that are not already attached).
        """
        if host.name in self._host_index:
            raise ConfigError(
                f"host {host.name!r} is already attached to this topology"
            )
        cap = self.max_hosts
        if cap is not None and len(self.hosts) >= cap:
            raise ConfigError(
                f"{self.kind} topology is full ({cap} hosts); "
                f"cannot attach {host.name!r}"
            )
        host.attach_fabric(self.fabric, self.link_bytes_per_sec)
        self._host_index[host.name] = len(self.hosts)
        self.hosts.append(host)
        host.topology = self
        return host

    def index_of(self, host: "Host") -> int:
        try:
            return self._host_index[host.name]
        except KeyError:
            raise ConfigError(
                f"host {host.name!r} is not attached to this topology"
            ) from None

    def rack_of(self, host: "Host") -> int:
        """Failure/locality domain of ``host`` (0 for a single switch)."""
        self.index_of(host)  # membership check
        return 0

    # -- routing ------------------------------------------------------------
    def path(self, src: "Host", dst: "Host") -> List[NetLink]:
        """Static route from ``src`` to ``dst`` as contended links.

        Always ``[src.tx, <switch hops>, dst.rx]``; loopback (same
        host) crosses no switch, consuming both port directions —
        identical to the legacy two-host behavior.
        """
        si, di = self.index_of(src), self.index_of(dst)
        route = self._route_cache.get((si, di))
        if route is None:
            if src.tx_link is None or dst.rx_link is None:
                raise ConfigError(
                    f"hosts {src.name!r}/{dst.name!r} have no fabric ports"
                )
            hops = self._switch_links(si, di) if si != di else ()
            route = (src.tx_link, *hops, dst.rx_link)
            self._route_cache[(si, di)] = route
        return list(route)

    def _switch_links(self, si: int, di: int) -> Tuple[NetLink, ...]:
        """Switch hops between distinct hosts ``si`` -> ``di``."""
        return ()

    def __repr__(self) -> str:
        return f"<{type(self).__name__} hosts={len(self.hosts)}>"


class Crossbar(Topology):
    """One non-blocking switch: contention only at host ports.

    The default topology, byte-identical to the legacy wiring: it
    creates no switch links and every path is ``[src.tx, dst.rx]``.
    """

    kind = "crossbar"


class LeafSpine(Topology):
    """A two-stage Clos fabric: ``racks`` leaves, ``spines`` spines.

    Each leaf is non-blocking for its own rack, so intra-rack paths
    are the two host ports.  Cross-rack traffic additionally crosses
    one leaf uplink (``leaf<R>.up<S>``) and one downlink
    (``leaf<R>.down<S>``); the spine ``S`` for a pair is the
    deterministic hash ``(src_index + dst_index) % spines``.
    ``uplink_bytes_per_sec`` models oversubscription (default: same
    rate as host ports, i.e. ``spines``-way non-blocking per rack).
    """

    kind = "leaf-spine"

    def __init__(
        self,
        fabric: FluidFabric,
        link_bytes_per_sec: float,
        racks: int,
        hosts_per_rack: int,
        spines: int,
        uplink_bytes_per_sec: Optional[float] = None,
    ) -> None:
        super().__init__(fabric, link_bytes_per_sec)
        if racks < 1 or hosts_per_rack < 1 or spines < 1:
            raise ConfigError(
                f"leaf-spine needs racks/hosts_per_rack/spines >= 1, got "
                f"{racks}/{hosts_per_rack}/{spines}"
            )
        self.racks = racks
        self.hosts_per_rack = hosts_per_rack
        self.spines = spines
        up_bps = float(uplink_bytes_per_sec or link_bytes_per_sec)
        self._up = [
            [fabric.add_link(f"leaf{r}.up{s}", up_bps) for s in range(spines)]
            for r in range(racks)
        ]
        self._down = [
            [fabric.add_link(f"leaf{r}.down{s}", up_bps) for s in range(spines)]
            for r in range(racks)
        ]

    @property
    def max_hosts(self) -> Optional[int]:
        return self.racks * self.hosts_per_rack

    def rack_of(self, host: "Host") -> int:
        return self.index_of(host) // self.hosts_per_rack

    def _switch_links(self, si: int, di: int) -> Tuple[NetLink, ...]:
        ra, rb = si // self.hosts_per_rack, di // self.hosts_per_rack
        if ra == rb:
            return ()
        s = (si + di) % self.spines
        return (self._up[ra][s], self._down[rb][s])


class FatTree(Topology):
    """The classic k-ary fat-tree: k pods, k^3/4 hosts.

    Each pod has ``k/2`` edge and ``k/2`` aggregation switches; each
    edge switch serves ``k/2`` hosts; ``(k/2)^2`` core switches join
    the pods.  Routing is the standard three-stage static scheme with
    the core chosen as ``(src_index + dst_index) % (k/2)^2`` (the
    aggregation switch follows from the core: core ``c`` homes on
    aggregation ``c // (k/2)`` in every pod).
    """

    kind = "fat-tree"

    def __init__(
        self, fabric: FluidFabric, link_bytes_per_sec: float, k: int
    ) -> None:
        super().__init__(fabric, link_bytes_per_sec)
        if k < 2 or k % 2:
            raise ConfigError(f"fat-tree arity k must be even and >= 2, got {k}")
        self.k = k
        half = self._half = k // 2
        bps = self.link_bytes_per_sec
        # Edge<->aggregation, per pod: edge e talks to every agg a.
        self._edge_up = [
            [
                [
                    fabric.add_link(f"pod{p}.edge{e}.up{a}", bps)
                    for a in range(half)
                ]
                for e in range(half)
            ]
            for p in range(k)
        ]
        self._agg_down = [
            [
                [
                    fabric.add_link(f"pod{p}.agg{a}.down{e}", bps)
                    for e in range(half)
                ]
                for a in range(half)
            ]
            for p in range(k)
        ]
        # Aggregation<->core: agg a homes cores [a*half, (a+1)*half).
        self._agg_up = [
            [
                [
                    fabric.add_link(f"pod{p}.agg{a}.up{a * half + j}", bps)
                    for j in range(half)
                ]
                for a in range(half)
            ]
            for p in range(k)
        ]
        self._core_down = [
            [fabric.add_link(f"core{c}.down{p}", bps) for p in range(k)]
            for c in range(half * half)
        ]

    @property
    def max_hosts(self) -> Optional[int]:
        return self.k * self._half * self._half

    def rack_of(self, host: "Host") -> int:
        """The edge switch is the rack: ``k/2`` hosts per edge."""
        return self.index_of(host) // self._half

    def _switch_links(self, si: int, di: int) -> Tuple[NetLink, ...]:
        half = self._half
        if si // half == di // half:
            return ()  # same edge switch: non-blocking
        p, q = si // (half * half), di // (half * half)
        e, f = (si // half) % half, (di // half) % half
        if p == q:
            a = (si + di) % half
            return (self._edge_up[p][e][a], self._agg_down[p][a][f])
        c = (si + di) % (half * half)
        a = c // half
        return (
            self._edge_up[p][e][a],
            self._agg_up[p][a][c - a * half],
            self._core_down[c][q],
            self._agg_down[q][a][f],
        )
