"""Host machine model: cores, memory, and fabric ports."""

from __future__ import annotations

from typing import TYPE_CHECKING, List, Optional

from repro.errors import ConfigError
from repro.hw.cpu import PCPU
from repro.hw.fabric import FluidFabric, NetLink
from repro.hw.memory import MachineMemory
from repro.units import GiB

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.hw.topology import Topology


class Host:
    """One physical server attached to the fabric.

    The testbed (paper §VII) is two Dell PowerEdge 1950s: one with
    8 x 1.86 GHz cores, one with 4 x 2.66 GHz cores, 4 GB RAM each,
    connected through a Xsigo VP780 10 Gbps switch.
    """

    def __init__(
        self,
        name: str,
        ncpus: int = 8,
        cpu_freq_hz: float = 1.86e9,
        memory_bytes: int = 4 * GiB,
    ) -> None:
        if ncpus < 1:
            raise ConfigError(f"host needs at least 1 CPU, got {ncpus}")
        self.name = name
        self.cpus: List[PCPU] = [PCPU(i, cpu_freq_hz) for i in range(ncpus)]
        self.memory = MachineMemory(memory_bytes)
        #: Egress / ingress fabric port directions; set by attach_fabric.
        self.tx_link: Optional[NetLink] = None
        self.rx_link: Optional[NetLink] = None
        #: The topology this host is wired into (set by Topology.attach);
        #: ``None`` means legacy direct attachment (crossbar semantics).
        self.topology: Optional["Topology"] = None
        #: The HCA attached to this host (set by repro.ib.hca.HCA).
        self.hca = None

    def attach_fabric(
        self, fabric: FluidFabric, link_bytes_per_sec: float
    ) -> None:
        """Create this host's port links inside ``fabric``.

        A port is full duplex: separate tx and rx capacity, as on real
        IB links.  Contention is per direction.
        """
        if self.tx_link is not None or self.rx_link is not None:
            raise ConfigError(
                f"host {self.name!r} is already attached to a fabric "
                "(double attachment would create duplicate port links)"
            )
        self.tx_link = fabric.add_link(f"{self.name}.tx", link_bytes_per_sec)
        self.rx_link = fabric.add_link(f"{self.name}.rx", link_bytes_per_sec)

    @property
    def is_attached(self) -> bool:
        return self.tx_link is not None and self.rx_link is not None

    def __repr__(self) -> str:
        return f"<Host {self.name} cpus={len(self.cpus)}>"


def path_between(src: Host, dst: Host) -> List[NetLink]:
    """Fabric path for a transfer from ``src`` to ``dst``.

    Hosts wired into a :class:`~repro.hw.topology.Topology` route
    through it: the path is the host ports plus every switch hop the
    topology's static routing crosses.  Directly-attached hosts keep
    the legacy crossbar semantics — a non-blocking backplane whose only
    contention points are the source's egress and the destination's
    ingress port.  Loopback (same host) still crosses the HCA,
    consuming both directions of the port.
    """
    if not src.is_attached or not dst.is_attached:
        raise ConfigError("both hosts must be attached to the fabric")
    if src.topology is not dst.topology:
        raise ConfigError(
            f"hosts {src.name!r} and {dst.name!r} are wired into "
            "different topologies; no route exists between them"
        )
    if src.topology is not None:
        return src.topology.path(src, dst)
    if src.tx_link is None or dst.rx_link is None:
        raise ConfigError(
            f"hosts {src.name!r}/{dst.name!r} are half-attached: "
            "missing a tx or rx port link"
        )
    return [src.tx_link, dst.rx_link]
