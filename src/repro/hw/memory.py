"""Machine memory, page frames, and per-domain address spaces.

The simulation does not move real bytes around; what matters for ResEx
is the *structure* of InfiniBand memory: registered buffers are pinned
page ranges, and hardware-updated structures (completion-queue rings,
doorbell records) live inside pages that dom0 can map read-only for
introspection — exactly the channel IBMon relies on.

A :class:`PageFrame` may carry a ``content`` object: the Python object
standing in for whatever structure the page holds (e.g. a CQ ring).
Foreign mappings hand out the same object wrapped read-only, so an
introspecting observer sees updates exactly when the "hardware" makes
them — including the sampling raciness the paper's IBMon has.
"""

from __future__ import annotations

from typing import Any, Dict, List

from repro.errors import HypervisorError
from repro.units import KiB

PAGE_SIZE = 4 * KiB


class PageFrame:
    """One 4 KiB machine page frame."""

    __slots__ = ("mfn", "owner_domid", "content", "pinned")

    def __init__(self, mfn: int, owner_domid: int) -> None:
        self.mfn = mfn
        self.owner_domid = owner_domid
        #: Object standing in for the page's contents (CQ ring, buffer, ...).
        self.content: Any = None
        #: Pinned pages may be DMA targets and cannot be reclaimed.
        self.pinned: bool = False

    def __repr__(self) -> str:
        flags = "P" if self.pinned else "-"
        return f"<PageFrame mfn={self.mfn} dom={self.owner_domid} {flags}>"


class MachineMemory:
    """Allocator for a host's physical page frames."""

    def __init__(self, total_bytes: int) -> None:
        if total_bytes < PAGE_SIZE:
            raise HypervisorError(f"host memory too small: {total_bytes}")
        self.total_frames = total_bytes // PAGE_SIZE
        self._next_mfn = 0
        self._frames: Dict[int, PageFrame] = {}

    @property
    def allocated_frames(self) -> int:
        return len(self._frames)

    @property
    def free_frames(self) -> int:
        return self.total_frames - len(self._frames)

    def allocate(self, owner_domid: int, nframes: int) -> List[PageFrame]:
        """Allocate ``nframes`` frames for the given domain."""
        if nframes <= 0:
            raise HypervisorError(f"nframes must be > 0, got {nframes}")
        if nframes > self.free_frames:
            raise HypervisorError(
                f"out of memory: requested {nframes}, free {self.free_frames}"
            )
        frames = []
        for _ in range(nframes):
            frame = PageFrame(self._next_mfn, owner_domid)
            self._frames[self._next_mfn] = frame
            self._next_mfn += 1
            frames.append(frame)
        return frames

    def free(self, frames: List[PageFrame]) -> None:
        """Return frames to the allocator; pinned frames cannot be freed."""
        for frame in frames:
            if frame.pinned:
                raise HypervisorError(f"cannot free pinned frame {frame!r}")
            self._frames.pop(frame.mfn, None)

    def lookup(self, mfn: int) -> PageFrame:
        """Find a frame by machine frame number."""
        try:
            return self._frames[mfn]
        except KeyError:
            raise HypervisorError(f"no such machine frame: {mfn}") from None


class AddressSpace:
    """Guest-pseudo-physical to machine mapping for one domain."""

    def __init__(self, domid: int, memory: MachineMemory) -> None:
        self.domid = domid
        self.memory = memory
        self._p2m: Dict[int, PageFrame] = {}
        self._next_gpfn = 0

    @property
    def nr_pages(self) -> int:
        return len(self._p2m)

    def extend(self, nframes: int) -> range:
        """Allocate frames and map them at the next free gpfn range."""
        frames = self.memory.allocate(self.domid, nframes)
        start = self._next_gpfn
        for frame in frames:
            self._p2m[self._next_gpfn] = frame
            self._next_gpfn += 1
        return range(start, self._next_gpfn)

    def translate(self, gpfn: int) -> PageFrame:
        """Guest pseudo-physical frame number -> machine frame."""
        try:
            return self._p2m[gpfn]
        except KeyError:
            raise HypervisorError(
                f"dom{self.domid}: gpfn {gpfn} not mapped"
            ) from None

    def pin_range(self, start_gpfn: int, nframes: int) -> List[PageFrame]:
        """Pin a contiguous gpfn range for DMA (IB memory registration)."""
        frames = [self.translate(start_gpfn + i) for i in range(nframes)]
        for frame in frames:
            frame.pinned = True
        return frames

    def unpin_range(self, start_gpfn: int, nframes: int) -> None:
        for i in range(nframes):
            self.translate(start_gpfn + i).pinned = False


class Buffer:
    """A contiguous guest buffer: the unit BenchEx applications send.

    ``gpfn_start`` addresses the first page; ``nbytes`` is the logical
    length (the application "buffer size" the paper parameterises on).
    """

    __slots__ = ("address_space", "gpfn_start", "nbytes", "label")

    def __init__(
        self,
        address_space: AddressSpace,
        nbytes: int,
        label: str = "",
    ) -> None:
        if nbytes <= 0:
            raise HypervisorError(f"buffer size must be > 0, got {nbytes}")
        self.address_space = address_space
        self.nbytes = nbytes
        nframes = -(-nbytes // PAGE_SIZE)  # ceil division
        self.gpfn_start = address_space.extend(nframes).start
        self.label = label

    @property
    def nframes(self) -> int:
        return -(-self.nbytes // PAGE_SIZE)

    def frames(self) -> List[PageFrame]:
        return [
            self.address_space.translate(self.gpfn_start + i)
            for i in range(self.nframes)
        ]

    def __repr__(self) -> str:
        return (
            f"<Buffer dom{self.address_space.domid} gpfn={self.gpfn_start} "
            f"len={self.nbytes} {self.label!r}>"
        )


class ReadOnlyView:
    """Read-only proxy over a page's content object (foreign mapping)."""

    __slots__ = ("_target",)

    def __init__(self, target: Any) -> None:
        object.__setattr__(self, "_target", target)

    def __getattr__(self, name: str) -> Any:
        if name.startswith("_set") or name.startswith("set_"):
            raise HypervisorError(
                f"read-only foreign mapping: cannot call {name!r}"
            )
        return getattr(object.__getattribute__(self, "_target"), name)

    def __setattr__(self, name: str, value: Any) -> None:
        raise HypervisorError("read-only foreign mapping: cannot write")

    def __repr__(self) -> str:
        return f"<ReadOnlyView of {object.__getattribute__(self, '_target')!r}>"
