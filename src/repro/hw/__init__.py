"""Hardware substrate: CPUs, memory, hosts, and the network fabric."""

from repro.hw.cpu import PCPU
from repro.hw.fabric import (
    FluidFabric,
    NetLink,
    PacketLink,
    Transfer,
    maxmin_rates,
)
from repro.hw.host import Host, path_between
from repro.hw.memory import (
    PAGE_SIZE,
    AddressSpace,
    Buffer,
    MachineMemory,
    PageFrame,
    ReadOnlyView,
)

__all__ = [
    "PAGE_SIZE",
    "AddressSpace",
    "Buffer",
    "FluidFabric",
    "Host",
    "MachineMemory",
    "NetLink",
    "PCPU",
    "PacketLink",
    "PageFrame",
    "ReadOnlyView",
    "Transfer",
    "maxmin_rates",
    "path_between",
]
