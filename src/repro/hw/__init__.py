"""Hardware substrate: CPUs, memory, hosts, and the network fabric."""

from repro.hw.cpu import PCPU
from repro.hw.fabric import (
    FluidFabric,
    NetLink,
    PacketLink,
    Transfer,
    maxmin_rates,
)
from repro.hw.host import Host, path_between
from repro.hw.memory import (
    PAGE_SIZE,
    AddressSpace,
    Buffer,
    MachineMemory,
    PageFrame,
    ReadOnlyView,
)
from repro.hw.topology import Crossbar, FatTree, LeafSpine, Topology

__all__ = [
    "PAGE_SIZE",
    "AddressSpace",
    "Buffer",
    "Crossbar",
    "FatTree",
    "FluidFabric",
    "Host",
    "LeafSpine",
    "MachineMemory",
    "NetLink",
    "PCPU",
    "PacketLink",
    "PageFrame",
    "ReadOnlyView",
    "Topology",
    "Transfer",
    "maxmin_rates",
    "path_between",
]
