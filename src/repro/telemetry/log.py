"""CLI status logging with uniform verbosity control.

Subcommands used to thread ad-hoc ``progress=lambda msg: print(...)``
callables around; they now share one :class:`TelemetryLogger` so
``--quiet`` and ``--verbose`` behave identically everywhere.  Status
messages go to stderr — stdout stays reserved for experiment output
(tables, reports) so pipelines keep working.
"""

from __future__ import annotations

import sys
from typing import Optional, TextIO

#: Verbosity levels, in increasing chattiness.
QUIET = 0
NORMAL = 1
VERBOSE = 2


class TelemetryLogger:
    """Leveled status logger for the CLI and long-running harness code."""

    def __init__(self, level: int = NORMAL, stream: Optional[TextIO] = None) -> None:
        self.level = level
        self._stream = stream

    @property
    def stream(self) -> TextIO:
        # Resolved lazily so pytest's capsys/stderr redirection works.
        return self._stream if self._stream is not None else sys.stderr

    def _emit(self, msg: str) -> None:
        print(msg, file=self.stream)

    def info(self, msg: str) -> None:
        """Normal progress/status message (suppressed by --quiet)."""
        if self.level >= NORMAL:
            self._emit(msg)

    def debug(self, msg: str) -> None:
        """Detail message (shown only with --verbose)."""
        if self.level >= VERBOSE:
            self._emit(msg)

    def warning(self, msg: str) -> None:
        """Always shown, even under --quiet."""
        self._emit(f"warning: {msg}")


_logger = TelemetryLogger()


def get_logger() -> TelemetryLogger:
    """The process-wide CLI logger."""
    return _logger


def configure(
    quiet: bool = False, verbose: bool = False, stream: Optional[TextIO] = None
) -> TelemetryLogger:
    """Set the global logger's level from CLI flags; returns it."""
    if quiet and verbose:
        raise ValueError("--quiet and --verbose are mutually exclusive")
    _logger.level = QUIET if quiet else (VERBOSE if verbose else NORMAL)
    _logger._stream = stream
    return _logger
