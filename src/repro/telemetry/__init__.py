"""Unified telemetry: the tracing/metrics bus and the CLI logger.

The bus (:class:`TelemetryBus`) is the single structured channel every
layer emits through — kernel dispatch statistics, credit-scheduler
slices, HCA work requests, fabric transfers, IBMon samples, ResEx
pricing decisions and BenchEx request breakdowns.  It is disabled by
default (:data:`NULL_BUS`) and costs one attribute check per guarded
emit site when off.

Typical use::

    from repro import telemetry
    from repro.analysis import write_chrome_trace

    with telemetry.capture() as bus:
        result = run_scenario("traced", ...)
    write_chrome_trace("trace.json", bus)

or from the command line: ``python -m repro trace fig1``.
"""

from repro.telemetry.bus import (
    BENCHEX,
    COUNTER,
    CREDIT,
    FABRIC,
    FAULTS,
    HCA,
    IBMON,
    INSTANT,
    KERNEL,
    NULL_BUS,
    RESEX,
    SPAN,
    SWEEP,
    NullTelemetryBus,
    TelemetryBus,
    TraceRecord,
    capture,
    current,
    deactivate,
    install,
)
from repro.telemetry.log import (
    NORMAL,
    QUIET,
    VERBOSE,
    TelemetryLogger,
    configure,
    get_logger,
)

__all__ = [
    "BENCHEX",
    "COUNTER",
    "CREDIT",
    "FABRIC",
    "FAULTS",
    "HCA",
    "IBMON",
    "INSTANT",
    "KERNEL",
    "NORMAL",
    "NULL_BUS",
    "QUIET",
    "RESEX",
    "SPAN",
    "SWEEP",
    "VERBOSE",
    "NullTelemetryBus",
    "TelemetryBus",
    "TelemetryLogger",
    "TraceRecord",
    "capture",
    "configure",
    "current",
    "deactivate",
    "get_logger",
    "install",
]
