"""The telemetry bus: trace spans, typed counters and structured events.

Every layer of the stack — the DES kernel, the credit scheduler, the
HCA/fabric, IBMon, the ResEx controller and BenchEx — reports through
one :class:`TelemetryBus` instead of ad-hoc prints and private
counters.  Design constraints, in priority order:

1. **Zero overhead when disabled.**  The default bus is a shared
   :data:`NULL_BUS` whose ``enabled`` flag is always ``False``; every
   emit site guards with ``if tel.enabled:`` so the disabled cost is a
   single attribute load and branch.
2. **Deterministic.**  Records are keyed to simulation time (integer
   nanoseconds) and appended in event-callback order, which the kernel
   already makes total.  Two runs of the same seeded program produce
   identical record sequences, and therefore byte-identical exports.
3. **Structured.**  Records are typed (``span``/``instant``/
   ``counter``) and carry a category (the emitting layer), a lane (the
   hardware or software component, rendered as a thread in trace
   viewers) and a small args mapping.

Emitters pass timestamps explicitly (``env.now``) so the bus has no
clock coupling and can be unit-tested without a simulation.
"""

from __future__ import annotations

from contextlib import contextmanager
from typing import Any, Dict, Iterator, List, Mapping, NamedTuple, Optional, Tuple

#: Record kinds (the ``kind`` field of :class:`TraceRecord`).
SPAN = "span"
INSTANT = "instant"
COUNTER = "counter"

#: Layer categories used across the stack (exporters render one
#: trace "process" per category).
KERNEL = "kernel"
CREDIT = "credit"
HCA = "hca"
FABRIC = "fabric"
IBMON = "ibmon"
RESEX = "resex"
BENCHEX = "benchex"
FAULTS = "faults"
#: Sweep-orchestration records (repro.parallel).  Unlike the layers
#: above, these are stamped with wall-clock nanoseconds since sweep
#: start — experiment orchestration happens in real time, not in any
#: one simulation's clock.
SWEEP = "sweep"
#: Live-serving records (repro.service): per-request gateway latency
#: accounting and orchestrator routing events.  Like ``sweep``, these
#: are stamped with wall-clock nanoseconds since gateway start — the
#: service handles real traffic even when its backend steps a
#: simulation's virtual clock.
SERVICE = "service"

#: How often (in processed events) the kernel emits queue-depth
#: counters when tracing is on.  Keeps the kernel layer visible in
#: traces without a per-event firehose.
DEFAULT_KERNEL_SAMPLE_EVERY = 256


class TraceRecord(NamedTuple):
    """One telemetry record.

    ``dur_ns`` is 0 for instants and counters; ``value`` is only
    meaningful for counters.  ``args`` is an immutable tuple of
    ``(key, value)`` pairs so records are hashable and cannot be
    mutated after emission.
    """

    kind: str
    cat: str
    name: str
    lane: str
    ts_ns: int
    dur_ns: int
    value: float
    args: Tuple[Tuple[str, Any], ...]

    def args_dict(self) -> Dict[str, Any]:
        return dict(self.args)


def _freeze_args(args: Mapping[str, Any]) -> Tuple[Tuple[str, Any], ...]:
    return tuple(args.items())


class TelemetryBus:
    """An enabled, recording telemetry bus.

    Parameters
    ----------
    kernel_sample_every:
        Emit a kernel queue-depth/events-processed counter pair every
        this many processed events (0 disables kernel sampling).
    kernel_dispatch:
        Also emit one instant per kernel event dispatch and per process
        resume — the full firehose.  Off by default: it multiplies the
        record count by the event count and is only useful for
        microscopic kernel debugging.
    ring_capacity:
        ``None`` (default) keeps every record in an append-only list.
        A positive value switches to a preallocated ring of that many
        slots holding only the most recent records: bounded memory and
        no list growth for arbitrarily long traced runs (flight-recorder
        mode).  The emit path is selected once at construction so the
        per-record cost is a single bound-callable invocation either way.
    """

    __slots__ = (
        "enabled",
        "_records",
        "_emit",
        "_ring_capacity",
        "_ring_cursor",
        "_ring_full",
        "kernel_sample_every",
        "kernel_dispatch",
    )

    def __init__(
        self,
        kernel_sample_every: int = DEFAULT_KERNEL_SAMPLE_EVERY,
        kernel_dispatch: bool = False,
        ring_capacity: Optional[int] = None,
    ) -> None:
        self.enabled: bool = True
        self.kernel_sample_every = int(kernel_sample_every)
        self.kernel_dispatch = bool(kernel_dispatch)
        self._ring_cursor = 0
        self._ring_full = False
        if ring_capacity is None:
            self._ring_capacity = 0
            self._records: List[Optional[TraceRecord]] = []
            self._emit = self._records.append
        else:
            if ring_capacity <= 0:
                raise ValueError(
                    f"ring_capacity must be positive, got {ring_capacity}"
                )
            self._ring_capacity = int(ring_capacity)
            self._records = [None] * self._ring_capacity
            self._emit = self._ring_append

    def _ring_append(self, record: TraceRecord) -> None:
        cursor = self._ring_cursor
        self._records[cursor] = record
        cursor += 1
        if cursor == self._ring_capacity:
            cursor = 0
            self._ring_full = True
        self._ring_cursor = cursor

    @property
    def records(self) -> List[TraceRecord]:
        """Recorded telemetry in emission order.

        In ring mode this materializes the (up to ``ring_capacity``)
        retained records, oldest first.
        """
        if not self._ring_capacity:
            return self._records  # type: ignore[return-value]
        if not self._ring_full:
            return self._records[: self._ring_cursor]
        cursor = self._ring_cursor
        return self._records[cursor:] + self._records[:cursor]

    # -- emission -----------------------------------------------------------
    def span(
        self,
        cat: str,
        name: str,
        t_start_ns: int,
        t_end_ns: int,
        lane: Optional[str] = None,
        **args: Any,
    ) -> None:
        """Record a completed span ``[t_start_ns, t_end_ns]``.

        Emitters call this once the span has finished (generator code
        cannot hold a context manager open across a scheduler yield),
        so nesting falls out of timestamp containment.
        """
        self._emit(
            TraceRecord(
                SPAN,
                cat,
                name,
                lane if lane is not None else cat,
                int(t_start_ns),
                int(t_end_ns) - int(t_start_ns),
                0.0,
                _freeze_args(args),
            )
        )

    def instant(
        self,
        cat: str,
        name: str,
        ts_ns: int,
        lane: Optional[str] = None,
        **args: Any,
    ) -> None:
        """Record a point event at ``ts_ns``."""
        self._emit(
            TraceRecord(
                INSTANT,
                cat,
                name,
                lane if lane is not None else cat,
                int(ts_ns),
                0,
                0.0,
                _freeze_args(args),
            )
        )

    #: Structured event records are instants with args; alias for call
    #: sites where "event" reads better than "instant".
    event = instant

    def counter(
        self,
        cat: str,
        name: str,
        ts_ns: int,
        value: float,
        lane: Optional[str] = None,
    ) -> None:
        """Record a typed counter sample (rendered as a track)."""
        self._emit(
            TraceRecord(
                COUNTER,
                cat,
                name,
                lane if lane is not None else cat,
                int(ts_ns),
                0,
                float(value),
                (),
            )
        )

    # -- kernel hook --------------------------------------------------------
    def kernel_tick(
        self, ts_ns: int, events_processed: int, queue_depth: int, event: object
    ) -> None:
        """Called by :meth:`Environment.step` after each dispatch."""
        if self.kernel_dispatch:
            self.instant(
                KERNEL,
                type(event).__name__,
                ts_ns,
                lane="dispatch",
                seq=events_processed,
            )
        every = self.kernel_sample_every
        if every > 0 and events_processed % every == 0:
            self.counter(KERNEL, "queue_depth", ts_ns, queue_depth)
            self.counter(KERNEL, "events_processed", ts_ns, events_processed)

    def kernel_resume(self, ts_ns: int, process_name: str) -> None:
        """Called by :meth:`Process._resume` (firehose mode only)."""
        if self.kernel_dispatch:
            self.instant(KERNEL, "resume", ts_ns, lane="resume", process=process_name)

    # -- introspection ------------------------------------------------------
    def __len__(self) -> int:
        if not self._ring_capacity:
            return len(self._records)
        return self._ring_capacity if self._ring_full else self._ring_cursor

    def categories(self) -> List[str]:
        """Distinct categories, in first-emission order."""
        seen: Dict[str, None] = {}
        for rec in self.records:
            seen.setdefault(rec.cat, None)
        return list(seen)

    def select(self, kind: Optional[str] = None, cat: Optional[str] = None):
        """Filter records by kind and/or category."""
        return [
            r
            for r in self.records
            if (kind is None or r.kind == kind)
            and (cat is None or r.cat == cat)
        ]

    def clear(self) -> None:
        if not self._ring_capacity:
            self._records.clear()
        else:
            self._records = [None] * self._ring_capacity
            self._emit = self._ring_append
            self._ring_cursor = 0
            self._ring_full = False

    def __repr__(self) -> str:
        return f"<TelemetryBus records={len(self.records)} enabled={self.enabled}>"


class NullTelemetryBus:
    """The always-disabled bus installed by default.

    Its ``enabled`` flag is permanently ``False`` and its emit methods
    are no-ops, so an unguarded call site still costs nothing visible.
    A single shared instance (:data:`NULL_BUS`) backs every untraced
    :class:`~repro.sim.core.Environment`.
    """

    __slots__ = ()

    enabled = False
    kernel_dispatch = False
    kernel_sample_every = 0
    records: Tuple[TraceRecord, ...] = ()

    def span(self, *args: Any, **kwargs: Any) -> None:
        pass

    def instant(self, *args: Any, **kwargs: Any) -> None:
        pass

    event = instant

    def counter(self, *args: Any, **kwargs: Any) -> None:
        pass

    def kernel_tick(self, *args: Any, **kwargs: Any) -> None:
        pass

    def kernel_resume(self, *args: Any, **kwargs: Any) -> None:
        pass

    def categories(self) -> List[str]:
        return []

    def select(self, kind: Optional[str] = None, cat: Optional[str] = None):
        return []

    def __len__(self) -> int:
        return 0

    def __repr__(self) -> str:
        return "<NullTelemetryBus>"


#: The shared disabled bus.  ``Environment`` instances created while no
#: bus is installed point here.
NULL_BUS = NullTelemetryBus()

_current: "TelemetryBus | NullTelemetryBus" = NULL_BUS


def install(bus: "TelemetryBus | NullTelemetryBus") -> "TelemetryBus | NullTelemetryBus":
    """Make ``bus`` the bus newly created environments attach to."""
    global _current
    _current = bus
    return bus


def deactivate() -> None:
    """Restore the default (disabled) bus."""
    install(NULL_BUS)


def current() -> "TelemetryBus | NullTelemetryBus":
    """The currently installed bus (the disabled one by default)."""
    return _current


@contextmanager
def capture(**kwargs: Any) -> Iterator[TelemetryBus]:
    """Install a fresh recording bus for the duration of a block::

        with telemetry.capture() as bus:
            result = run_scenario(...)
        write_chrome_trace("trace.json", bus)

    The previously installed bus is restored on exit.
    """
    bus = TelemetryBus(**kwargs)
    previous = _current
    install(bus)
    try:
        yield bus
    finally:
        install(previous)
