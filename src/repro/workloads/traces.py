"""Synthetic exchange workload traces.

The paper's BenchEx "includes traces which model the I/O and processing
workloads present in an exchange like ICE" (§IV).  Those traces are
proprietary, so this module generates the closest synthetic equivalent:
a trading-day intensity profile — an opening burst, a quieter midday
Poisson regime, and a closing burst — driving per-request think times
for the BenchEx client.  The substitution preserves what matters to
ResEx: time-varying offered load with bursty extremes.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List

import numpy as np

from repro.errors import ConfigError
from repro.units import SEC


@dataclass(frozen=True)
class TradingDayConfig:
    """Shape of the compressed trading day.

    The simulated 'day' lasts ``day_s`` seconds of simulation time; the
    opening/closing fractions run at ``burst_factor`` times the midday
    request rate.
    """

    day_s: float = 10.0
    open_fraction: float = 0.15
    close_fraction: float = 0.15
    midday_rate_hz: float = 1000.0
    burst_factor: float = 4.0

    def __post_init__(self) -> None:
        if self.day_s <= 0:
            raise ConfigError("day_s must be positive")
        if not 0 <= self.open_fraction < 1 or not 0 <= self.close_fraction < 1:
            raise ConfigError("open/close fractions must be in [0, 1)")
        if self.open_fraction + self.close_fraction >= 1:
            raise ConfigError("open + close fractions must leave a midday")
        if self.midday_rate_hz <= 0:
            raise ConfigError("midday_rate_hz must be positive")
        if self.burst_factor < 1:
            raise ConfigError("burst_factor must be >= 1")


class TradingDayTrace:
    """Time-varying Poisson arrival process over the trading day."""

    def __init__(self, config: TradingDayConfig, rng: np.random.Generator) -> None:
        self.config = config
        self.rng = rng

    def rate_at(self, t_ns: int) -> float:
        """Instantaneous request rate (Hz) at simulation time ``t_ns``."""
        cfg = self.config
        day_ns = cfg.day_s * SEC
        phase = (t_ns % day_ns) / day_ns
        if phase < cfg.open_fraction or phase >= 1.0 - cfg.close_fraction:
            return cfg.midday_rate_hz * cfg.burst_factor
        return cfg.midday_rate_hz

    def next_gap_ns(self, t_ns: int) -> int:
        """Exponential inter-arrival gap at the current intensity."""
        rate = self.rate_at(t_ns)
        gap_s = self.rng.exponential(1.0 / rate)
        return max(int(gap_s * SEC), 0)

    def arrivals(self, duration_ns: int) -> np.ndarray:
        """All arrival times in [0, duration) as an int64 array."""
        times: List[int] = []
        t = 0
        while True:
            t += self.next_gap_ns(t)
            if t >= duration_ns:
                break
            times.append(t)
        return np.asarray(times, dtype=np.int64)


def poisson_think_times(
    rate_hz: float, n: int, rng: np.random.Generator
) -> np.ndarray:
    """Plain Poisson pacing: n exponential gaps (ns) at ``rate_hz``."""
    if rate_hz <= 0:
        raise ConfigError("rate_hz must be positive")
    if n < 0:
        raise ConfigError("n must be >= 0")
    return (rng.exponential(1.0 / rate_hz, size=n) * SEC).astype(np.int64)
