"""Synthetic workload generation (exchange traces, pacing processes)."""

from repro.workloads.traces import (
    TradingDayConfig,
    TradingDayTrace,
    poisson_think_times,
)

__all__ = ["TradingDayConfig", "TradingDayTrace", "poisson_think_times"]
