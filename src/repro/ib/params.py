"""Fabric and HCA timing/geometry parameters.

Defaults follow the paper's testbed (§VII): Mellanox MT25208 HCAs on a
10 Gbps Xsigo VP780 switch.  10 Gbps signalling with 8b/10b encoding
gives 8 Gbps = 1 GiB/s of payload; with the paper's assumed 1 KiB MTU
the link moves exactly 1 048 576 MTUs per second — the number ResEx
uses to size the I/O Reso pool (§VI-A2).

Fixed latencies are small constants chosen to land verbs-level small-
message latency in the few-microsecond range typical of DDR InfiniBand
through one switch hop; the BenchEx calibration (§ EXPERIMENTS.md)
builds the 209 us base case on top of these.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.errors import ConfigError
from repro.units import US, GiB, KiB


@dataclass(frozen=True)
class FabricParams:
    """Everything the IB substrate needs to know about the wire."""

    #: Payload bandwidth per link direction (bytes/second).
    link_bytes_per_sec: float = float(GiB)
    #: Maximum transmission unit; the paper charges I/O "by the MTU".
    mtu_bytes: int = 1 * KiB
    #: Doorbell ring -> HCA begins WR fetch (PCIe posted write + arb).
    doorbell_ns: int = 300
    #: WR descriptor fetch + DMA setup per work request.
    wr_fetch_ns: int = 500
    #: One-way propagation + switch crossing (cut-through).
    oneway_ns: int = 1_000
    #: Responder ACK generation time (RC transport).
    ack_turnaround_ns: int = 500
    #: DMA write of a CQE into host memory.
    cqe_write_ns: int = 200
    #: Guest->dom0 control-path hypercall round trip (split driver).
    hypercall_ns: int = 10 * US
    #: Backend (dom0) work per control-path operation.
    backend_op_ns: int = 20 * US
    #: Guest CPU cost of building + posting a send WR (incl. doorbell).
    post_send_cpu_ns: int = 400
    #: Guest CPU cost of posting a receive WR.
    post_recv_cpu_ns: int = 300
    #: Guest CPU cost of one CQ poll check.
    poll_check_cpu_ns: int = 200
    #: Guest CPU cost of taking a completion interrupt (event-driven
    #: completion channel: vector injection + handler + context switch).
    interrupt_cost_ns: int = 5_000

    def __post_init__(self) -> None:
        if self.link_bytes_per_sec <= 0:
            raise ConfigError("link_bytes_per_sec must be > 0")
        if self.mtu_bytes <= 0:
            raise ConfigError("mtu_bytes must be > 0")
        for field in (
            "doorbell_ns",
            "wr_fetch_ns",
            "oneway_ns",
            "ack_turnaround_ns",
            "cqe_write_ns",
            "hypercall_ns",
            "backend_op_ns",
            "post_send_cpu_ns",
            "post_recv_cpu_ns",
        ):
            if getattr(self, field) < 0:
                raise ConfigError(f"{field} must be >= 0")

    @property
    def mtus_per_second(self) -> float:
        """Link capacity expressed in MTUs/s (the Reso supply number)."""
        return self.link_bytes_per_sec / self.mtu_bytes

    def n_mtus(self, nbytes: int) -> int:
        """Number of MTU packets needed for an ``nbytes`` message."""
        if nbytes <= 0:
            return 0
        return -(-nbytes // self.mtu_bytes)


DEFAULT_FABRIC_PARAMS = FabricParams()
