"""Translation and Protection Table (TPT).

The HCA-resident table mapping registration keys to buffer address
ranges and access rights (paper §III).  Every data-path operation is
validated against it; key or range mismatches surface as protection
faults, exactly the checks that make user-level (VMM-bypass) I/O safe.
"""

from __future__ import annotations

from typing import Dict, Iterator

from repro.errors import ProtectionFault
from repro.hw.memory import Buffer
from repro.ib.mr import Access, MemoryRegion


class TPT:
    """Key-indexed registry of memory regions for one HCA."""

    #: Keys are drawn from a counter mixed with this stride so that lkey
    #: and rkey values of different MRs never collide.
    _KEY_STRIDE = 0x100

    def __init__(self) -> None:
        self._entries: Dict[int, MemoryRegion] = {}
        self._next_key = 0x1000

    def __len__(self) -> int:
        return len(self._entries)

    def __iter__(self) -> Iterator[MemoryRegion]:
        # Each MR is indexed twice (lkey and rkey); deduplicate.
        seen = set()
        for mr in self._entries.values():
            if id(mr) not in seen:
                seen.add(id(mr))
                yield mr

    def register(self, buffer: Buffer, access: Access, domid: int) -> MemoryRegion:
        """Create a TPT entry for ``buffer`` and pin its pages."""
        lkey = self._next_key
        rkey = self._next_key + 1
        self._next_key += self._KEY_STRIDE
        mr = MemoryRegion(buffer, lkey, rkey, access, domid)
        self._entries[lkey] = mr
        self._entries[rkey] = mr
        buffer.address_space.pin_range(buffer.gpfn_start, buffer.nframes)
        return mr

    def deregister(self, mr: MemoryRegion) -> None:
        """Remove the entry and unpin the pages."""
        if not mr.valid:
            raise ProtectionFault("memory region already deregistered")
        mr.valid = False
        self._entries.pop(mr.lkey, None)
        self._entries.pop(mr.rkey, None)
        mr.buffer.address_space.unpin_range(
            mr.buffer.gpfn_start, mr.buffer.nframes
        )

    def lookup_local(self, lkey: int) -> MemoryRegion:
        mr = self._entries.get(lkey)
        if mr is None or mr.lkey != lkey:
            raise ProtectionFault(f"bad lkey {lkey:#x}")
        return mr

    def lookup_remote(self, rkey: int, need: Access) -> MemoryRegion:
        """Validate a remote key carries the needed remote permission."""
        mr = self._entries.get(rkey)
        if mr is None or mr.rkey != rkey:
            raise ProtectionFault(f"bad rkey {rkey:#x}")
        if need not in mr.access:
            raise ProtectionFault(
                f"rkey {rkey:#x} lacks {need!r} permission"
            )
        return mr

    def __repr__(self) -> str:
        return f"<TPT entries={len(self)}>"
