"""Shared receive queues (SRQ).

A fan-in server posts one pool of receive WRs serving all of its QPs
instead of provisioning each connection for its worst case — the verbs
feature real exchanges rely on to serve hundreds of clients.  Delivery
consumes from the SRQ; completions still arrive on the *QP's* recv CQ,
so the server learns which client a request came from via the CQE's
``qp_num``.
"""

from __future__ import annotations

from collections import deque
from typing import TYPE_CHECKING, Deque

from repro.errors import QPError
from repro.ib.qp import RecvWR

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.ib.hca import HCA


class SharedReceiveQueue:
    """A receive-WR pool shared by any number of QPs."""

    def __init__(self, hca: "HCA", srqn: int, max_wr: int = 1024) -> None:
        if max_wr < 1:
            raise QPError(f"SRQ max_wr must be >= 1, got {max_wr}")
        self.hca = hca
        self.srqn = srqn
        self.max_wr = max_wr
        #: Same structural interface as a QP's receive side, so the HCA
        #: delivery path treats either uniformly (a "recv sink").
        self.recv_queue: Deque[RecvWR] = deque()
        self.rnr_backlog: Deque[tuple] = deque()
        #: Owning domain (set by the verbs layer).
        self.domid = None
        #: Lifetime counter.
        self.recvs_posted = 0

    def post_recv(self, wr: RecvWR) -> None:
        if len(self.recv_queue) >= self.max_wr:
            raise QPError(f"SRQ {self.srqn}: receive queue full")
        wr.mr.check_range(wr.offset, wr.length)
        wr.posted_at = self.hca.env.now
        self.recv_queue.append(wr)
        self.recvs_posted += 1
        self.hca.drain_rnr_backlog(self)

    def __repr__(self) -> str:
        return f"<SRQ {self.srqn} posted={len(self.recv_queue)}>"
