"""Verbs-level API: what guest applications program against.

An :class:`IBContext` belongs to one domain.  Fast-path operations
(post/poll) charge the domain's VCPU and talk to the HCA directly —
VMM-bypass — so a CPU-capped VM posts and polls slower, which is the
throttle ResEx exploits.  Control-path operations (region registration,
QP/CQ creation, connection) go through the dom0 backend driver and are
created by the split driver (:mod:`repro.xen.splitdriver`).

All time-consuming methods are generators: call them from a process as
``result = yield from ctx.post_send(...)``.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, List, Optional

from repro.errors import QPError
from repro.ib.cq import CQE, CompletionQueue
from repro.ib.mr import MemoryRegion
from repro.ib.qp import Opcode, QueuePair, RecvWR, SendWR
from repro.ib.uar import UARPage

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.ib.hca import HCA
    from repro.xen.domain import Domain


class IBContext:
    """Per-domain verbs context (device context + protection domain)."""

    def __init__(self, domain: "Domain", hca: "HCA", uar: UARPage) -> None:
        self.domain = domain
        self.hca = hca
        self.uar = uar
        self._next_wr_id = 1
        #: Objects owned by this context (for enumeration / teardown).
        self.mrs: List[MemoryRegion] = []
        self.cqs: List[CompletionQueue] = []
        self.qps: List[QueuePair] = []
        self.srqs: List[object] = []

    @property
    def params(self):
        return self.hca.params

    def next_wr_id(self) -> int:
        wr_id = self._next_wr_id
        self._next_wr_id += 1
        return wr_id

    # -- fast path (VMM-bypass) -----------------------------------------------
    def post_send(
        self,
        qp: QueuePair,
        mr: MemoryRegion,
        length: Optional[int] = None,
        opcode: Opcode = Opcode.SEND,
        remote_rkey: Optional[int] = None,
        remote_offset: int = 0,
        imm_data: Optional[int] = None,
        signaled: bool = True,
        wr_id: Optional[int] = None,
        payload: object = None,
    ):
        """Post a send WR and ring the doorbell.  Returns the wr_id."""
        if qp not in self.qps:
            raise QPError("QP does not belong to this context")
        yield self.domain.vcpu.compute(self.params.post_send_cpu_ns)
        wr = SendWR(
            wr_id=self.next_wr_id() if wr_id is None else wr_id,
            opcode=opcode,
            mr=mr,
            length=length,
            remote_rkey=remote_rkey,
            remote_offset=remote_offset,
            imm_data=imm_data,
            signaled=signaled,
            payload=payload,
        )
        qp.post_send(wr)
        self.uar.ring(qp.qp_num)
        return wr.wr_id

    def post_recv(
        self,
        qp: QueuePair,
        mr: MemoryRegion,
        length: Optional[int] = None,
        wr_id: Optional[int] = None,
    ):
        """Post a receive WR.  Returns the wr_id."""
        if qp not in self.qps:
            raise QPError("QP does not belong to this context")
        yield self.domain.vcpu.compute(self.params.post_recv_cpu_ns)
        wr = RecvWR(
            wr_id=self.next_wr_id() if wr_id is None else wr_id,
            mr=mr,
            length=length,
        )
        qp.post_recv(wr)
        return wr.wr_id

    def post_srq_recv(
        self,
        srq,
        mr: MemoryRegion,
        length: Optional[int] = None,
        wr_id: Optional[int] = None,
    ):
        """Post a receive WR to a shared receive queue.  Returns wr_id."""
        if srq not in self.srqs:
            raise QPError("SRQ does not belong to this context")
        yield self.domain.vcpu.compute(self.params.post_recv_cpu_ns)
        wr = RecvWR(
            wr_id=self.next_wr_id() if wr_id is None else wr_id,
            mr=mr,
            length=length,
        )
        srq.post_recv(wr)
        return wr.wr_id

    def poll_cq(self, cq: CompletionQueue, max_entries: int = 16):
        """One non-blocking poll: costs one check, returns (possibly
        empty) list of CQEs."""
        yield self.domain.vcpu.compute(self.params.poll_check_cpu_ns)
        return cq.poll(max_entries)

    def poll_cq_blocking(
        self, cq: CompletionQueue, max_entries: int = 16
    ):
        """Busy-poll until at least one CQE is available.

        Returns ``(cqes, polled_ns)`` where ``polled_ns`` is the CPU
        time burned polling — the raw ingredient of BenchEx's PTime.
        """
        polled_ns = yield self.domain.vcpu.poll_until(
            cq.arrival_event(), check_cost_ns=self.params.poll_check_cpu_ns
        )
        cqes = cq.poll(max_entries)
        return cqes, polled_ns

    def wait_cq(self, cq: CompletionQueue, max_entries: int = 16):
        """Event-driven completion wait (completion channel).

        The caller sleeps — burning no CPU — until a CQE lands, then
        pays the interrupt/wakeup cost (which, like any guest work, only
        runs when the VCPU is scheduled).  Lower CPU use than busy
        polling at the price of interrupt latency — and, crucially for
        ResEx, it decouples the VM's CPU consumption from its I/O rate
        (see the completion-mode ablation bench).

        Returns ``(cqes, cpu_burned_ns)`` like :meth:`poll_cq_blocking`.
        """
        ev = cq.arrival_event()
        if not ev.triggered:
            yield ev
        cost = self.params.interrupt_cost_ns
        yield self.domain.vcpu.compute(cost)
        return cq.poll(max_entries), cost


def connect(ctx_a: IBContext, qp_a: QueuePair, ctx_b: IBContext, qp_b: QueuePair):
    """Out-of-band RC connection setup between two contexts' QPs.

    Charges both sides' control-path costs (exchange of QP numbers and
    the INIT->RTR->RTS transitions go through each side's backend).
    """
    p = ctx_a.params
    yield ctx_a.domain.vcpu.compute(p.hypercall_ns)
    yield ctx_b.domain.vcpu.compute(p.hypercall_ns)
    from repro.ib.hca import HCA  # local import to avoid a cycle

    HCA.connect(qp_a, qp_b)
    return qp_a, qp_b
