"""Completion queues: HCA-written rings living in guest memory.

A CQ is the one structure both the guest *and* the hardware touch: the
HCA DMA-writes CQEs and advances the producer index; the application
polls, consuming entries and advancing the consumer index.  Because the
ring physically lives in a guest page (whose frame ``content`` points
back at this object), dom0 can map it read-only and watch the producer
index move — that observation channel is all IBMon gets (paper §III).
"""

from __future__ import annotations

import enum
from dataclasses import dataclass
from typing import TYPE_CHECKING, List, Optional

from repro.errors import CQOverflowError
from repro.hw.memory import Buffer
from repro.sim.events import Event

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.sim.core import Environment


class WCStatus(enum.Enum):
    """Work-completion status codes (subset)."""

    SUCCESS = "success"
    LOC_PROT_ERR = "local-protection-error"
    REM_ACCESS_ERR = "remote-access-error"
    RNR_RETRY_EXC = "rnr-retry-exceeded"


class WCOpcode(enum.Enum):
    """Completed-operation type as reported in the CQE."""

    SEND = "send"
    RECV = "recv"
    RDMA_WRITE = "rdma-write"
    RECV_RDMA_WITH_IMM = "recv-rdma-with-imm"
    RDMA_READ = "rdma-read"


@dataclass(frozen=True)
class CQE:
    """One completion queue entry."""

    wr_id: int
    qp_num: int
    opcode: WCOpcode
    status: WCStatus
    byte_len: int
    imm_data: Optional[int]
    timestamp_ns: int
    #: Stand-in for the delivered data (see SendWR.payload).
    payload: object = None


class CompletionQueue:
    """Fixed-depth CQE ring with HCA producer / guest consumer indices."""

    def __init__(self, env: "Environment", cqn: int, depth: int, page: Buffer) -> None:
        if depth < 1:
            raise CQOverflowError(f"CQ depth must be >= 1, got {depth}")
        self.env = env
        self.cqn = cqn
        self.depth = depth
        #: The guest page backing this ring (content points back here).
        self.page = page
        self._ring: List[Optional[CQE]] = [None] * depth
        #: Monotonic indices; slot = index % depth.
        self.producer_index = 0
        self.consumer_index = 0
        self._arrival_event: Optional[Event] = None
        #: Lifetime counters (monitoring convenience).
        self.total_completions = 0
        self.total_bytes_completed = 0
        # Make the ring introspectable through the page frame.
        frame = page.address_space.translate(page.gpfn_start)
        frame.content = self

    # -- hardware side -------------------------------------------------------
    def hw_push(self, cqe: CQE) -> None:
        """HCA writes a CQE and advances the producer index."""
        if self.producer_index - self.consumer_index >= self.depth:
            raise CQOverflowError(
                f"CQ {self.cqn}: overflow at depth {self.depth}"
            )
        self._ring[self.producer_index % self.depth] = cqe
        self.producer_index += 1
        self.total_completions += 1
        self.total_bytes_completed += cqe.byte_len
        if self._arrival_event is not None and not self._arrival_event.triggered:
            self._arrival_event.succeed()
            self._arrival_event = None

    # -- guest side -----------------------------------------------------------
    @property
    def pending(self) -> int:
        """Entries produced but not yet consumed."""
        return self.producer_index - self.consumer_index

    def poll(self, max_entries: int = 16) -> List[CQE]:
        """Consume up to ``max_entries`` CQEs (non-blocking).

        Consuming only advances the consumer index — entry contents stay
        in the ring until the producer overwrites the slot, as on real
        hardware.  IBMon depends on this: it reads CQE contents *after*
        the guest has polled them.
        """
        out: List[CQE] = []
        while self.pending > 0 and len(out) < max_entries:
            cqe = self._ring[self.consumer_index % self.depth]
            assert cqe is not None
            out.append(cqe)
            self.consumer_index += 1
        return out

    def arrival_event(self) -> Event:
        """Event that fires when the next CQE lands.

        If entries are already pending the event is pre-triggered, so a
        ``poll_until`` on it costs only one poll check.
        """
        ev = Event(self.env)
        if self.pending > 0:
            ev.succeed()
            return ev
        if self._arrival_event is None or self._arrival_event.triggered:
            self._arrival_event = Event(self.env)
        # Chain: multiple waiters share the single hardware-facing event.
        self._arrival_event.callbacks.append(lambda _e: ev.succeed())
        return ev

    def __repr__(self) -> str:
        return (
            f"<CQ {self.cqn} depth={self.depth} "
            f"prod={self.producer_index} cons={self.consumer_index}>"
        )
