"""Memory regions: registered, pinned, key-protected buffers."""

from __future__ import annotations

import enum
from typing import TYPE_CHECKING

from repro.errors import ProtectionFault
from repro.hw.memory import Buffer

if TYPE_CHECKING:  # pragma: no cover - typing only
    pass


class Access(enum.Flag):
    """IB access flags (subset relevant to the benchmark)."""

    LOCAL_READ = enum.auto()
    LOCAL_WRITE = enum.auto()
    REMOTE_READ = enum.auto()
    REMOTE_WRITE = enum.auto()

    @classmethod
    def local_only(cls) -> "Access":
        return cls.LOCAL_READ | cls.LOCAL_WRITE

    @classmethod
    def full(cls) -> "Access":
        return (
            cls.LOCAL_READ | cls.LOCAL_WRITE | cls.REMOTE_READ | cls.REMOTE_WRITE
        )


class MemoryRegion:
    """A registered buffer with its protection keys.

    Registration pins the underlying pages (the HCA DMAs directly into
    them — paper §III) and installs a TPT entry indexed by the keys.
    """

    __slots__ = ("buffer", "lkey", "rkey", "access", "domid", "valid")

    def __init__(
        self, buffer: Buffer, lkey: int, rkey: int, access: Access, domid: int
    ) -> None:
        self.buffer = buffer
        self.lkey = lkey
        self.rkey = rkey
        self.access = access
        self.domid = domid
        self.valid = True

    @property
    def nbytes(self) -> int:
        return self.buffer.nbytes

    def check_range(self, offset: int, length: int) -> None:
        """Validate an access window against the region bounds."""
        if not self.valid:
            raise ProtectionFault("access to deregistered memory region")
        if offset < 0 or length < 0 or offset + length > self.nbytes:
            raise ProtectionFault(
                f"range [{offset}, {offset + length}) outside MR of {self.nbytes}B"
            )

    def __repr__(self) -> str:
        return (
            f"<MR dom{self.domid} lkey={self.lkey:#x} rkey={self.rkey:#x} "
            f"len={self.nbytes}>"
        )
