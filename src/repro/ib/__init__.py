"""InfiniBand substrate: verbs, QPs, CQs, TPT, UAR doorbells, HCA engine."""

from repro.ib.cq import CQE, CompletionQueue, WCOpcode, WCStatus
from repro.ib.hca import HCA
from repro.ib.mr import Access, MemoryRegion
from repro.ib.params import DEFAULT_FABRIC_PARAMS, FabricParams
from repro.ib.qp import Opcode, QPState, QueuePair, RecvWR, SendWR
from repro.ib.tpt import TPT
from repro.ib.uar import UARPage
from repro.ib.verbs import IBContext, connect

__all__ = [
    "Access",
    "CQE",
    "CompletionQueue",
    "DEFAULT_FABRIC_PARAMS",
    "FabricParams",
    "HCA",
    "IBContext",
    "MemoryRegion",
    "Opcode",
    "QPState",
    "QueuePair",
    "RecvWR",
    "SendWR",
    "TPT",
    "UARPage",
    "WCOpcode",
    "WCStatus",
    "connect",
]
