"""Queue pairs and work requests."""

from __future__ import annotations

import enum
from collections import deque
from typing import TYPE_CHECKING, Deque, Optional

from repro.errors import QPError
from repro.ib.cq import CompletionQueue
from repro.ib.mr import MemoryRegion

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.ib.hca import HCA


class QPState(enum.Enum):
    """RC queue-pair state machine (simplified: no SQD/SQE states)."""

    RESET = "reset"
    INIT = "init"
    RTR = "rtr"  # ready to receive
    RTS = "rts"  # ready to send
    ERROR = "error"


class Opcode(enum.Enum):
    """Posted work-request opcodes."""

    SEND = "send"
    RDMA_WRITE = "rdma-write"
    RDMA_WRITE_WITH_IMM = "rdma-write-with-imm"
    RDMA_READ = "rdma-read"


class SendWR:
    """A send-side work request."""

    __slots__ = (
        "wr_id",
        "opcode",
        "mr",
        "offset",
        "length",
        "remote_rkey",
        "remote_offset",
        "imm_data",
        "signaled",
        "posted_at",
        "payload",
    )

    def __init__(
        self,
        wr_id: int,
        opcode: Opcode,
        mr: MemoryRegion,
        offset: int = 0,
        length: Optional[int] = None,
        remote_rkey: Optional[int] = None,
        remote_offset: int = 0,
        imm_data: Optional[int] = None,
        signaled: bool = True,
        payload: object = None,
    ) -> None:
        self.wr_id = wr_id
        self.opcode = opcode
        self.mr = mr
        self.offset = offset
        self.length = mr.nbytes - offset if length is None else length
        self.remote_rkey = remote_rkey
        self.remote_offset = remote_offset
        self.imm_data = imm_data
        self.signaled = signaled
        #: Out-of-band stand-in for the transmitted bytes: delivered to
        #: the receiver's CQE (the simulation does not move real data).
        self.payload = payload
        self.posted_at: Optional[int] = None

    def __repr__(self) -> str:
        return f"<SendWR id={self.wr_id} {self.opcode.value} len={self.length}>"


class RecvWR:
    """A receive-side work request (a landing buffer for SENDs)."""

    __slots__ = ("wr_id", "mr", "offset", "length", "posted_at")

    def __init__(
        self,
        wr_id: int,
        mr: MemoryRegion,
        offset: int = 0,
        length: Optional[int] = None,
    ) -> None:
        self.wr_id = wr_id
        self.mr = mr
        self.offset = offset
        self.length = mr.nbytes - offset if length is None else length
        self.posted_at: Optional[int] = None

    def __repr__(self) -> str:
        return f"<RecvWR id={self.wr_id} len={self.length}>"


class QueuePair:
    """One RC queue pair.

    The send queue is drained serially by the HCA (RC transport
    guarantees ordering), so each QP has at most one message on the
    wire — which also makes the QP the fairness unit of the link's
    round-robin arbitration, as on real hardware.
    """

    def __init__(
        self,
        hca: "HCA",
        qp_num: int,
        send_cq: CompletionQueue,
        recv_cq: CompletionQueue,
        max_send_wr: int = 128,
        max_recv_wr: int = 128,
        srq=None,
    ) -> None:
        self.hca = hca
        self.qp_num = qp_num
        self.send_cq = send_cq
        self.recv_cq = recv_cq
        #: Shared receive queue; when set, inbound SENDs consume from it
        #: instead of this QP's own receive queue.
        self.srq = srq
        self.max_send_wr = max_send_wr
        self.max_recv_wr = max_recv_wr
        self.state = QPState.RESET
        #: Peer QP once connected (RC).
        self.peer: Optional["QueuePair"] = None
        self.send_queue: Deque[SendWR] = deque()
        self.recv_queue: Deque[RecvWR] = deque()
        #: Inbound SENDs that arrived before a recv WR was posted (RNR).
        self.rnr_backlog: Deque[tuple] = deque()
        #: Owning domain id (set by the verbs layer).
        self.domid: Optional[int] = None
        #: Arbitration priority weight (HW flow priority, paper SI).
        self.flow_weight: float = 1.0
        #: Lifetime counters.
        self.sends_posted = 0
        self.sends_completed = 0
        self.bytes_sent = 0

    # -- state machine ---------------------------------------------------------
    def to_init(self) -> None:
        self._require(QPState.RESET)
        self.state = QPState.INIT

    def to_rtr(self, peer: "QueuePair") -> None:
        self._require(QPState.INIT)
        self.peer = peer
        self.state = QPState.RTR

    def to_rts(self) -> None:
        self._require(QPState.RTR)
        self.state = QPState.RTS

    def to_error(self) -> None:
        self.state = QPState.ERROR

    def _require(self, expected: QPState) -> None:
        if self.state is not expected:
            raise QPError(
                f"QP {self.qp_num}: invalid transition from {self.state.value} "
                f"(expected {expected.value})"
            )

    # -- posting ------------------------------------------------------------------
    def post_send(self, wr: SendWR) -> None:
        """Queue a send WR (the doorbell ring happens in the verbs layer)."""
        if self.state is not QPState.RTS:
            raise QPError(
                f"QP {self.qp_num}: cannot post send in state {self.state.value}"
            )
        if len(self.send_queue) >= self.max_send_wr:
            raise QPError(f"QP {self.qp_num}: send queue full")
        wr.mr.check_range(wr.offset, wr.length)
        wr.posted_at = self.hca.env.now
        self.send_queue.append(wr)
        self.sends_posted += 1

    def post_recv(self, wr: RecvWR) -> None:
        if self.srq is not None:
            raise QPError(
                f"QP {self.qp_num}: attached to an SRQ; post receives there"
            )
        if self.state in (QPState.RESET, QPState.ERROR):
            raise QPError(
                f"QP {self.qp_num}: cannot post recv in state {self.state.value}"
            )
        if len(self.recv_queue) >= self.max_recv_wr:
            raise QPError(f"QP {self.qp_num}: receive queue full")
        wr.mr.check_range(wr.offset, wr.length)
        wr.posted_at = self.hca.env.now
        self.recv_queue.append(wr)
        # Satisfy any sender that hit receiver-not-ready.
        self.hca.drain_rnr_backlog(self)

    def __repr__(self) -> str:
        return (
            f"<QP {self.qp_num} {self.state.value} sq={len(self.send_queue)} "
            f"rq={len(self.recv_queue)}>"
        )
