"""User Access Region (UAR) doorbell pages.

Each process gets a 4 KiB I/O page mapped into its address space; to
issue a work request it "rings a doorbell" by writing to that page
(paper §III).  The write reaches the HCA directly — no hypervisor
involvement — which is the essence of VMM-bypass.  The doorbell record
counts per QP are visible through the page's frame content, so an
introspecting observer could also watch posting activity.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Dict

from repro.hw.memory import Buffer

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.ib.hca import HCA


class UARPage:
    """Doorbell page for one context (one guest process/VM)."""

    def __init__(self, hca: "HCA", uar_index: int, page: Buffer) -> None:
        self.hca = hca
        self.uar_index = uar_index
        self.page = page
        #: qp_num -> number of doorbells rung (monotonic).
        self.doorbell_counts: Dict[int, int] = {}
        frame = page.address_space.translate(page.gpfn_start)
        frame.content = self

    def ring(self, qp_num: int) -> None:
        """Write a doorbell record; the HCA picks the QP up for service."""
        self.doorbell_counts[qp_num] = self.doorbell_counts.get(qp_num, 0) + 1
        self.hca.on_doorbell(qp_num)

    def total_doorbells(self) -> int:
        return sum(self.doorbell_counts.values())

    def __repr__(self) -> str:
        return f"<UAR {self.uar_index} doorbells={self.total_doorbells()}>"
