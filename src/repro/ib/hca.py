"""The HCA engine: doorbells in, packets out, CQEs back.

Each HCA owns its TPT, QPs, CQs and UAR pages, and drives one service
loop per active QP: fetch the head send WR, validate it, stream it onto
the fabric (max-min shared with every other active QP — the arbitration
that creates the paper's interference), deliver it at the responder,
and write completion entries after the RC ack returns.

Crucially, these loops run independently of guest CPU scheduling: once
a doorbell is rung the I/O proceeds even if the VM is descheduled.
What a capped VM *cannot* do is poll its CQ or post the next request —
which is exactly how CPU caps throttle I/O rate (paper §V-B).
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Dict, Optional, Set

from repro.errors import FabricError, ProtectionFault, QPError
from repro.hw.fabric import FluidFabric
from repro.hw.host import Host, path_between
from repro.hw.memory import Buffer
from repro.ib.cq import CQE, CompletionQueue, WCOpcode, WCStatus
from repro.ib.mr import Access
from repro.ib.params import DEFAULT_FABRIC_PARAMS, FabricParams
from repro.ib.qp import Opcode, QPState, QueuePair, SendWR
from repro.ib.tpt import TPT
from repro.ib.uar import UARPage
from repro.sim.core import Environment
from repro.sim.events import Event

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.xen.domain import Domain


class HCA:
    """One host channel adapter."""

    def __init__(
        self,
        env: Environment,
        host: Host,
        fabric: FluidFabric,
        params: FabricParams = DEFAULT_FABRIC_PARAMS,
        name: Optional[str] = None,
    ) -> None:
        if not host.is_attached:
            host.attach_fabric(fabric, params.link_bytes_per_sec)
        self.env = env
        self.host = host
        self.fabric = fabric
        self.params = params
        self.name = name or f"hca-{host.name}"
        self.tpt = TPT()
        self.qps: Dict[int, QueuePair] = {}
        self.cqs: Dict[int, CompletionQueue] = {}
        self.uars: Dict[int, UARPage] = {}
        self._next_qpn = 0x10
        self._next_cqn = 1
        self._next_uar = 1
        self._next_srqn = 1
        self.srqs: Dict[int, object] = {}
        self._busy_qps: Set[int] = set()
        #: Per-domain HW rate limiters ("newer generation InfiniBand
        #: cards allow setting a limit on bandwidth for different
        #: traffic flows", paper §I).  Each is a private fabric link all
        #: of the domain's sends traverse, capping aggregate bandwidth.
        self._domain_limiters: Dict[int, "NetLink"] = {}
        self._domain_limit_active: Dict[int, bool] = {}
        #: Ground-truth per-domain I/O counters (tests validate IBMon
        #: estimates against these; ResEx itself must not read them).
        self.bytes_sent_by_domain: Dict[int, int] = {}
        self.mtus_sent_by_domain: Dict[int, int] = {}
        #: Fault-injection hooks (:mod:`repro.faults`): extra latency
        #: added to every doorbell-to-WR-fetch step, and extra delay
        #: before each send-side completion is written.  Both 0 when
        #: the adapter is healthy.
        self.fault_doorbell_stall_ns: int = 0
        self.fault_cqe_delay_ns: int = 0
        host.hca = self

    # -- object creation (control path; costs charged by the split driver) ----
    def create_cq(self, domain: "Domain", depth: int = 1024) -> CompletionQueue:
        page = Buffer(domain.address_space, 4096, label="cq-ring")
        cq = CompletionQueue(self.env, self._next_cqn, depth, page)
        self.cqs[cq.cqn] = cq
        self._next_cqn += 1
        return cq

    def create_uar(self, domain: "Domain") -> UARPage:
        page = Buffer(domain.address_space, 4096, label="uar")
        uar = UARPage(self, self._next_uar, page)
        self.uars[uar.uar_index] = uar
        self._next_uar += 1
        return uar

    def create_qp(
        self,
        domain: "Domain",
        send_cq: CompletionQueue,
        recv_cq: CompletionQueue,
        max_send_wr: int = 128,
        max_recv_wr: int = 128,
        srq=None,
    ) -> QueuePair:
        qp = QueuePair(
            self, self._next_qpn, send_cq, recv_cq, max_send_wr,
            max_recv_wr, srq=srq,
        )
        qp.domid = domain.domid
        self.qps[qp.qp_num] = qp
        self._next_qpn += 1
        return qp

    def create_srq(self, domain: "Domain", max_wr: int = 1024):
        from repro.ib.srq import SharedReceiveQueue

        srq = SharedReceiveQueue(self, self._next_srqn, max_wr)
        srq.domid = domain.domid
        self.srqs[srq.srqn] = srq
        self._next_srqn += 1
        return srq

    def register_mr(self, buffer: Buffer, access: Access, domid: int):
        return self.tpt.register(buffer, access, domid)

    # -- HW flow controls (paper §I: per-flow bandwidth limits/priority) ----
    def set_domain_rate_limit(
        self, domid: int, bytes_per_sec: Optional[float]
    ) -> None:
        """Cap the aggregate send bandwidth of one domain's QPs.

        ``None`` clears the limit.  Modeled as a private fabric link of
        the given capacity that every send from the domain traverses.
        """
        if bytes_per_sec is None:
            self._domain_limit_active[domid] = False
            return
        if bytes_per_sec <= 0:
            raise FabricError("rate limit must be > 0 (or None to clear)")
        name = f"{self.name}.dom{domid}-limit"
        if domid in self._domain_limiters:
            self.fabric.set_link_capacity(name, bytes_per_sec)
        else:
            self._domain_limiters[domid] = self.fabric.add_link(
                name, bytes_per_sec
            )
        self._domain_limit_active[domid] = True

    def domain_rate_limit(self, domid: int) -> Optional[float]:
        if not self._domain_limit_active.get(domid, False):
            return None
        return self._domain_limiters[domid].capacity_bps

    def set_qp_priority(self, qp: QueuePair, weight: float) -> None:
        """Arbitration priority: link shares scale with this weight."""
        if weight <= 0:
            raise FabricError(f"priority weight must be > 0, got {weight}")
        qp.flow_weight = weight

    def _send_path(self, qp: QueuePair, remote_hca: "HCA"):
        path = path_between(self.host, remote_hca.host)
        domid = qp.domid if qp.domid is not None else -1
        if self._domain_limit_active.get(domid, False):
            path = [self._domain_limiters[domid]] + path
        return path

    @staticmethod
    def connect(qp_a: QueuePair, qp_b: QueuePair) -> None:
        """RC connection establishment between two QPs (possibly on
        different HCAs)."""
        qp_a.to_init()
        qp_b.to_init()
        qp_a.to_rtr(qp_b)
        qp_b.to_rtr(qp_a)
        qp_a.to_rts()
        qp_b.to_rts()

    # -- data path ----------------------------------------------------------------
    def on_doorbell(self, qp_num: int) -> None:
        """A doorbell was rung: ensure the QP's service loop is running."""
        qp = self.qps.get(qp_num)
        if qp is None:
            raise QPError(f"doorbell for unknown QP {qp_num}")
        if qp_num in self._busy_qps or not qp.send_queue:
            return
        self._busy_qps.add(qp_num)
        self.env.process(self._service_qp(qp), name=f"{self.name}-qp{qp_num}")

    def drain_rnr_backlog(self, sink) -> None:
        """Wake senders blocked on receiver-not-ready, FIFO.

        ``sink`` is any object with recv_queue/rnr_backlog (a QP or an
        SRQ).  Each woken sender consumes exactly one recv WR when it
        resumes, so only (posted recvs - already-woken waiters) more may
        wake.
        """
        claimed = sum(1 for _, gate in sink.rnr_backlog if gate.triggered)
        budget = len(sink.recv_queue) - claimed
        for _, gate in sink.rnr_backlog:
            if budget <= 0:
                break
            if not gate.triggered:
                gate.succeed()
                budget -= 1

    def _service_qp(self, qp: QueuePair):
        p = self.params
        env = self.env
        while qp.send_queue:
            if qp.state is QPState.ERROR:
                self._flush_send_queue(qp)
                break
            wr = qp.send_queue[0]
            wr_start = env.now
            # Doorbell propagation + WR descriptor fetch (plus any
            # injected doorbell stall while a fault is active).
            yield env.timeout(
                p.doorbell_ns + p.wr_fetch_ns + self.fault_doorbell_stall_ns
            )
            try:
                yield from self._execute_wr(qp, wr)
            except ProtectionFault:
                qp.to_error()
                self._complete_send(
                    qp, wr, WCStatus.LOC_PROT_ERR, force_signal=True
                )
                qp.send_queue.popleft()
                self._flush_send_queue(qp)
                tel = env.telemetry
                if tel.enabled:
                    tel.span(
                        "hca",
                        wr.opcode.name,
                        wr_start,
                        env.now,
                        lane=f"{self.name}.qp{qp.qp_num}",
                        qp_num=qp.qp_num,
                        domid=qp.domid,
                        bytes=wr.length,
                        status="LOC_PROT_ERR",
                    )
                break
            qp.send_queue.popleft()
            tel = env.telemetry
            if tel.enabled:
                tel.span(
                    "hca",
                    wr.opcode.name,
                    wr_start,
                    env.now,
                    lane=f"{self.name}.qp{qp.qp_num}",
                    qp_num=qp.qp_num,
                    domid=qp.domid,
                    bytes=wr.length,
                    status="SUCCESS",
                )
        self._busy_qps.discard(qp.qp_num)
        # A post may have raced with loop exit.
        if qp.send_queue and qp.state is QPState.RTS:
            self.on_doorbell(qp.qp_num)

    def _execute_wr(self, qp: QueuePair, wr: SendWR):
        p = self.params
        env = self.env
        peer = qp.peer
        if peer is None:
            raise QPError(f"QP {qp.qp_num} has no connected peer")
        remote_hca: HCA = peer.hca

        if peer.state is QPState.ERROR:
            # The peer was torn down (e.g. its domain destroyed): the RC
            # retry protocol gives up and errors the work request.
            raise ProtectionFault("peer QP is in the error state")

        if wr.opcode is Opcode.RDMA_READ:
            yield from self._execute_rdma_read(qp, wr)
            return

        # Remote-side validation happens before any data moves for RDMA
        # writes (the responder TPT rejects bad keys at the first packet).
        if wr.opcode in (Opcode.RDMA_WRITE, Opcode.RDMA_WRITE_WITH_IMM):
            if wr.remote_rkey is None:
                raise ProtectionFault("RDMA write without rkey")
            remote_mr = remote_hca.tpt.lookup_remote(
                wr.remote_rkey, Access.REMOTE_WRITE
            )
            remote_mr.check_range(wr.remote_offset, wr.length)

        # Stream the payload: serialization shared (weighted) max-min on
        # the path, through the domain's HW rate limiter when one is set.
        transfer = self.fabric.submit(
            self._send_path(qp, remote_hca),
            wr.length,
            flow_label=f"qp{qp.qp_num}",
            weight=qp.flow_weight,
        )
        yield transfer.done
        self._account(qp, wr.length)
        # Last packet propagates to the responder.
        yield env.timeout(p.oneway_ns)

        if wr.opcode is Opcode.SEND:
            yield from self._deliver_send(qp, peer, wr)
        elif wr.opcode is Opcode.RDMA_WRITE_WITH_IMM:
            yield env.timeout(p.cqe_write_ns)
            peer.recv_cq.hw_push(
                CQE(
                    wr_id=wr.wr_id,
                    qp_num=peer.qp_num,
                    opcode=WCOpcode.RECV_RDMA_WITH_IMM,
                    status=WCStatus.SUCCESS,
                    byte_len=wr.length,
                    imm_data=wr.imm_data,
                    timestamp_ns=env.now,
                    payload=wr.payload,
                )
            )
        # Plain RDMA_WRITE: silent at the responder.

        # RC ack returns to the requester.
        yield env.timeout(p.ack_turnaround_ns + p.oneway_ns)
        if self.fault_cqe_delay_ns:
            yield env.timeout(self.fault_cqe_delay_ns)
        self._complete_send(qp, wr, WCStatus.SUCCESS)

    def _deliver_send(self, qp: QueuePair, peer: QueuePair, wr: SendWR):
        p = self.params
        env = self.env
        # Receive WRs come from the peer's SRQ when it has one.
        sink = peer.srq if peer.srq is not None else peer
        if not sink.recv_queue or sink.rnr_backlog:
            # Receiver not ready: block until a recv WR is posted (models
            # RNR NAK + retry without bounding the retry count).
            gate = Event(env)
            sink.rnr_backlog.append((wr, gate))
            yield gate
            sink.rnr_backlog.remove((wr, gate))
        recv_wr = sink.recv_queue.popleft()
        if recv_wr.length < wr.length:
            # Message longer than the landing buffer: responder error.
            raise ProtectionFault(
                f"SEND of {wr.length}B exceeds recv buffer {recv_wr.length}B"
            )
        yield env.timeout(p.cqe_write_ns)
        peer.recv_cq.hw_push(
            CQE(
                wr_id=recv_wr.wr_id,
                qp_num=peer.qp_num,
                opcode=WCOpcode.RECV,
                status=WCStatus.SUCCESS,
                byte_len=wr.length,
                imm_data=wr.imm_data,
                timestamp_ns=env.now,
                payload=wr.payload,
            )
        )

    def _execute_rdma_read(self, qp: QueuePair, wr: SendWR):
        p = self.params
        env = self.env
        peer = qp.peer
        remote_hca: HCA = peer.hca
        if wr.remote_rkey is None:
            raise ProtectionFault("RDMA read without rkey")
        remote_mr = remote_hca.tpt.lookup_remote(wr.remote_rkey, Access.REMOTE_READ)
        remote_mr.check_range(wr.remote_offset, wr.length)
        # Read request travels to the responder...
        yield env.timeout(p.oneway_ns)
        # ...which streams the data back on the reverse path.
        transfer = self.fabric.submit(
            path_between(remote_hca.host, self.host),
            wr.length,
            flow_label=f"qp{qp.qp_num}-rdrsp",
        )
        yield transfer.done
        yield env.timeout(p.oneway_ns)
        if self.fault_cqe_delay_ns:
            yield env.timeout(self.fault_cqe_delay_ns)
        self._complete_send(qp, wr, WCStatus.SUCCESS, opcode=WCOpcode.RDMA_READ)
        # Reads consume the *responder's* egress; account to the requester
        # domain anyway: it caused the traffic.
        self._account(qp, wr.length)

    def _complete_send(
        self,
        qp: QueuePair,
        wr: SendWR,
        status: WCStatus,
        force_signal: bool = False,
        opcode: Optional[WCOpcode] = None,
    ) -> None:
        qp.sends_completed += 1
        if not (wr.signaled or force_signal):
            return
        if opcode is None:
            opcode = {
                Opcode.SEND: WCOpcode.SEND,
                Opcode.RDMA_WRITE: WCOpcode.RDMA_WRITE,
                Opcode.RDMA_WRITE_WITH_IMM: WCOpcode.RDMA_WRITE,
                Opcode.RDMA_READ: WCOpcode.RDMA_READ,
            }[wr.opcode]
        qp.send_cq.hw_push(
            CQE(
                wr_id=wr.wr_id,
                qp_num=qp.qp_num,
                opcode=opcode,
                status=status,
                byte_len=wr.length,
                imm_data=wr.imm_data,
                timestamp_ns=self.env.now,
            )
        )

    def _flush_send_queue(self, qp: QueuePair) -> None:
        """Error state: flush pending WRs with error completions."""
        while qp.send_queue:
            wr = qp.send_queue.popleft()
            self._complete_send(qp, wr, WCStatus.LOC_PROT_ERR, force_signal=True)

    def _account(self, qp: QueuePair, nbytes: int) -> None:
        qp.bytes_sent += nbytes
        domid = qp.domid if qp.domid is not None else -1
        self.bytes_sent_by_domain[domid] = (
            self.bytes_sent_by_domain.get(domid, 0) + nbytes
        )
        self.mtus_sent_by_domain[domid] = self.mtus_sent_by_domain.get(
            domid, 0
        ) + self.params.n_mtus(nbytes)

    def __repr__(self) -> str:
        return f"<HCA {self.name} qps={len(self.qps)} cqs={len(self.cqs)}>"
