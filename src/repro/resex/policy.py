"""The pricing-policy plugin interface (paper §V-D).

A policy sees the controller once per interval and once per epoch, and
actuates exclusively through ``controller.set_cap`` — mirroring the
real system, where adjusting CPU allocations is the hypervisor's only
lever over VMM-bypass I/O.
"""

from __future__ import annotations

import abc
from typing import TYPE_CHECKING, Dict, Type

from repro.errors import PricingError

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.resex.controller import MonitoredVM, ResExController


class PricingPolicy(abc.ABC):
    """Base class for Reso pricing schemes."""

    #: Registry name; subclasses set this.
    name: str = "abstract"

    def on_attach(self, controller: "ResExController", vm: "MonitoredVM") -> None:
        """Called when a VM comes under management (optional hook)."""

    @abc.abstractmethod
    def on_interval(self, controller: "ResExController") -> None:
        """The per-interval loop body (Algorithms 1 and 2)."""

    def on_epoch(self, controller: "ResExController") -> None:
        """Called after accounts replenish at each epoch boundary."""

    def __repr__(self) -> str:
        return f"<{type(self).__name__}>"


class NoOpPolicy(PricingPolicy):
    """Monitors and charges nothing — the uncontrolled baseline.

    Useful as the 'Intf' configuration of the paper's figures: ResEx
    machinery present, no resource management.
    """

    name = "noop"

    def on_interval(self, controller: "ResExController") -> None:
        # Still drain the monitoring channels so probes are recorded.
        for vm in controller.vms:
            controller.get_mtus(vm)
            controller.get_cpu_percent(vm)
            if vm.agent is not None:
                vm.agent.drain()


_POLICIES: Dict[str, Type[PricingPolicy]] = {}


def register_policy(cls: Type[PricingPolicy]) -> Type[PricingPolicy]:
    """Class decorator adding a policy to the name registry."""
    if not issubclass(cls, PricingPolicy):
        raise PricingError(f"{cls!r} is not a PricingPolicy")
    if cls.name in _POLICIES:
        raise PricingError(f"duplicate policy name {cls.name!r}")
    _POLICIES[cls.name] = cls
    return cls


def policy_by_name(name: str) -> Type[PricingPolicy]:
    try:
        return _POLICIES[name]
    except KeyError:
        raise PricingError(
            f"unknown policy {name!r}; known: {sorted(_POLICIES)}"
        ) from None


def registered_policies() -> Dict[str, Type[PricingPolicy]]:
    return dict(_POLICIES)


register_policy(NoOpPolicy)
