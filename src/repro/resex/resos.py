"""Resos: the resource-trading currency (paper §V-C, §VI-A).

One Reso buys one indivisible unit of a physical resource:

* **CPU**: one percent of one interval's CPU time.  With a 1 s epoch of
  1000 x 1 ms intervals a fully-used CPU costs 100 x 1000 = 100 000
  Resos per epoch (§VI-A1).
* **I/O**: one MTU on the wire.  The 8 Gbps effective link moves
  1 GiB/s = 1 048 576 x 1 KiB MTUs per second, so the link supplies
  1 048 576 I/O Resos per epoch, shared among the collocated VMs
  (§VI-A2) — equally by default, or weighted by priority.

Accounts replenish at every epoch; leftovers are discarded.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional

from repro.errors import PricingError
from repro.ib.params import FabricParams
from repro.sim import invariants
from repro.sim.invariants import GUARD_RESO_ACCOUNTING
from repro.units import MS, SEC


@dataclass(frozen=True)
class ResoParams:
    """Epoch/interval geometry and unit prices."""

    epoch_ns: int = 1 * SEC
    interval_ns: int = 1 * MS
    #: Resos charged per percent of CPU consumed per interval (base rate).
    cpu_resos_per_percent: float = 1.0
    #: Resos charged per MTU sent (base rate).
    io_resos_per_mtu: float = 1.0

    #: Derived: epoch_ns // interval_ns, precomputed because controllers
    #: and monitors read it on every accounting tick.
    intervals_per_epoch: int = field(init=False, repr=False, compare=False, default=0)

    def __post_init__(self) -> None:
        if self.interval_ns <= 0:
            raise PricingError("interval must be positive")
        if self.epoch_ns < self.interval_ns:
            raise PricingError("epoch must be at least one interval")
        if self.epoch_ns % self.interval_ns != 0:
            raise PricingError("epoch must be a whole number of intervals")
        # Frozen dataclass: derived fields are installed via object.__setattr__.
        object.__setattr__(
            self, "intervals_per_epoch", self.epoch_ns // self.interval_ns
        )

    def cpu_resos_per_epoch(self, ncpus: int = 1) -> float:
        """Supply side: Resos representing full use of ``ncpus`` CPUs."""
        return 100.0 * self.intervals_per_epoch * ncpus

    def io_resos_per_epoch(self, fabric: FabricParams) -> float:
        """Supply side: Resos representing the whole link for an epoch."""
        return fabric.mtus_per_second * (self.epoch_ns / SEC)


class ResoAccount:
    """One VM's Reso balance."""

    def __init__(self, domid: int, allocation: float) -> None:
        if allocation <= 0:
            raise PricingError(f"allocation must be positive, got {allocation}")
        self.domid = domid
        self.allocation = float(allocation)
        self.balance = float(allocation)
        #: Lifetime counters for analysis.
        self.total_deducted = 0.0
        self.epochs_replenished = 0
        #: Demand the VM could not pay for (balance floor at zero).
        self.unmet_demand = 0.0

    @property
    def fraction_remaining(self) -> float:
        return self.balance / self.allocation

    @property
    def exhausted(self) -> bool:
        return self.balance <= 0.0

    def deduct(self, resos: float) -> float:
        """Charge the account; the balance floors at zero and the unmet
        remainder is tracked (the VM is throttled rather than indebted)."""
        if resos < 0:
            raise PricingError(f"cannot deduct a negative amount: {resos}")
        paid = min(resos, self.balance)
        self.balance -= paid
        self.total_deducted += paid
        self.unmet_demand += resos - paid
        inv = invariants.current()
        if inv.enabled:
            self._check_accounting(inv)
        return self.balance

    def replenish(self) -> None:
        """Epoch boundary: restore the allocation, discard leftovers."""
        inv = invariants.current()
        if inv.enabled:
            # Conservation at the epoch seam: whatever is left plus
            # whatever was ever paid out must be non-negative and the
            # balance must still sit inside the provisioned envelope.
            self._check_accounting(inv)
        self.balance = self.allocation
        self.epochs_replenished += 1

    def _check_accounting(self, inv) -> None:
        """Resos conservation guard: balance within [0, allocation]."""
        slack = 1e-9 * self.allocation
        if not (-slack <= self.balance <= self.allocation + slack):
            inv.violation(
                GUARD_RESO_ACCOUNTING,
                -1,
                f"dom{self.domid} balance {self.balance!r} outside "
                f"[0, {self.allocation!r}]",
                domid=self.domid,
                balance=self.balance,
                allocation=self.allocation,
                total_deducted=self.total_deducted,
            )

    def set_allocation(self, allocation: float) -> None:
        """Re-provision (e.g. priority change); takes effect immediately
        for the fraction computation and fully at the next replenish.
        Shrinking below the current balance claws back the excess at
        once, so ``fraction_remaining`` stays within [0, 1]."""
        if allocation <= 0:
            raise PricingError(f"allocation must be positive, got {allocation}")
        self.allocation = float(allocation)
        if self.balance > self.allocation:
            self.balance = self.allocation

    def __repr__(self) -> str:
        return (
            f"<ResoAccount dom{self.domid} {self.balance:.0f}/"
            f"{self.allocation:.0f}>"
        )


def provision_accounts(
    domids: List[int],
    params: ResoParams,
    fabric: FabricParams,
    ncpus_per_vm: int = 1,
    weights: Optional[Dict[int, float]] = None,
) -> Dict[int, ResoAccount]:
    """Distribute the epoch supply across VMs (paper §V-C).

    Each VM gets its own CPU's worth of CPU Resos (the paper dedicates a
    core per VM) plus a share of the link's I/O Resos — equal shares by
    default, or proportional to ``weights`` (the priority hook the paper
    mentions).
    """
    if not domids:
        raise PricingError("no domains to provision")
    io_pool = params.io_resos_per_epoch(fabric)
    if weights is None:
        shares = {d: 1.0 / len(domids) for d in domids}
    else:
        missing = [d for d in domids if d not in weights]
        if missing:
            raise PricingError(f"weights missing for domains {missing}")
        total = sum(weights[d] for d in domids)
        if total <= 0:
            raise PricingError("weights must sum to a positive value")
        shares = {d: weights[d] / total for d in domids}
    return {
        d: ResoAccount(
            d,
            params.cpu_resos_per_epoch(ncpus_per_vm) + io_pool * shares[d],
        )
        for d in domids
    }
