"""The ResEx controller: the dom0 management loop (paper §VI).

Every interval (1 ms) the controller lets the active pricing policy
observe each monitored VM — MTUsSent via IBMon, CPU percent via
XenStat, latency reports via the in-VM agent — charge Resos, and set
CPU caps.  Every epoch (1 s) accounts replenish.

Everything the figures need is recorded into probe time series:
per-VM cap, Reso balance, charge rate and interference percentage.
"""

from __future__ import annotations

from collections import deque
from typing import TYPE_CHECKING, Deque, Dict, List, Optional

from repro.benchex.reporting import LatencyAgent
from repro.errors import PricingError
from repro.ibmon import IBMon
from repro.resex.interference import InterferenceDetector, LatencySLA
from repro.resex.policy import PricingPolicy
from repro.resex.resos import ResoAccount, ResoParams, provision_accounts
from repro.sim.monitor import ProbeSet
from repro.units import US
from repro.xen.domain import Domain

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.experiments.platform import Node


class MonitoredVM:
    """Controller-side state for one managed VM."""

    def __init__(
        self,
        domain: Domain,
        agent: Optional[LatencyAgent],
        detector: Optional[InterferenceDetector],
        mtu_window: int,
    ) -> None:
        self.domain = domain
        self.agent = agent
        self.detector = detector
        self.account: Optional[ResoAccount] = None
        #: Per-VM charge rate (Resos per unit); IOShares raises it for
        #: congestion-causing VMs.  1.0 is the uniform FreeMarket rate.
        self.charge_rate = 1.0
        #: Recent per-interval MTU counts (completions are bursty for
        #: large buffers, so interferer attribution uses a window).
        self.mtus_window: Deque[int] = deque(maxlen=mtu_window)
        #: Most recent interval's readings (for policies and probes).
        self.last_mtus = 0
        self.last_cpu_pct = 0.0

    @property
    def domid(self) -> int:
        return self.domain.domid

    def windowed_mtus(self) -> int:
        return sum(self.mtus_window)

    def __repr__(self) -> str:
        return f"<MonitoredVM dom{self.domid} rate={self.charge_rate:.2f}>"


class ResExController:
    """One ResEx instance, managing the guests of one host."""

    #: dom0 CPU cost of one management interval, per monitored VM.
    INTERVAL_CPU_NS = 3 * US

    def __init__(
        self,
        node: "Node",
        policy: PricingPolicy,
        reso_params: ResoParams = ResoParams(),
        ibmon: Optional[IBMon] = None,
        mtu_window: int = 20,
        weights: Optional[Dict[int, float]] = None,
    ) -> None:
        self.node = node
        self.env = node.hypervisor.env
        self.policy = policy
        self.reso_params = reso_params
        self.ibmon = ibmon if ibmon is not None else IBMon(node)
        self.mtu_window = mtu_window
        self.weights = weights
        self.vms: List[MonitoredVM] = []
        #: Cluster-wide congestion price imposed by a
        #: :class:`~repro.resex.federation.ClusterFederation` (1.0 =
        #: calm).  Cluster-following policies (rack-follower) read it
        #: every interval; purely local deployments never touch it.
        self.cluster_price = 1.0
        self.probes = ProbeSet(self.env, prefix="resex")
        self.intervals_run = 0
        self.epochs_run = 0
        self.intervals_skipped = 0
        #: Fault-injection hook (:mod:`repro.faults`): while paused the
        #: management loop keeps its phase lock but does no work — no
        #: sensor reads, no pricing, no cap changes, no replenishment.
        #: Prices and caps stay frozen at their pre-outage values.
        self.paused = False
        self._proc = None

    # -- registration -------------------------------------------------------
    def monitor(
        self,
        domain: Domain,
        agent: Optional[LatencyAgent] = None,
        sla: Optional[LatencySLA] = None,
        detector_window: int = 50,
    ) -> MonitoredVM:
        """Bring a VM under management.

        ``agent`` is the in-VM latency reporting channel; ``sla`` the
        latency target used to judge interference.  Both are optional —
        a VM without them is charged but never treated as a victim.
        """
        if self._proc is not None:
            raise PricingError("cannot add VMs after the controller started")
        if any(vm.domid == domain.domid for vm in self.vms):
            raise PricingError(f"domain {domain.domid} is already monitored")
        detector = None
        if sla is not None:
            detector = InterferenceDetector(sla, window=detector_window)
        elif agent is not None:
            raise PricingError("an agent without an SLA cannot be evaluated")
        vm = MonitoredVM(domain, agent, detector, self.mtu_window)
        self.vms.append(vm)
        self.ibmon.watch_domain(domain.domid)
        self.policy.on_attach(self, vm)
        return vm

    def vm_by_domid(self, domid: int) -> MonitoredVM:
        for vm in self.vms:
            if vm.domid == domid:
                return vm
        raise PricingError(f"domain {domid} is not monitored")

    def local_price(self) -> float:
        """The highest charge rate currently imposed on any managed VM
        — what this rack reports to a :class:`ClusterFederation`."""
        price = 1.0
        for vm in self.vms:
            if vm.charge_rate > price:
                price = vm.charge_rate
        return price

    # -- start ------------------------------------------------------------------
    def start(self) -> None:
        """Provision accounts and launch the management loop."""
        if not self.vms:
            raise PricingError("no VMs to manage")
        if self._proc is not None:
            raise PricingError("controller already started")
        accounts = provision_accounts(
            [vm.domid for vm in self.vms],
            self.reso_params,
            self.node.hca.params,
            weights=self.weights,
        )
        for vm in self.vms:
            vm.account = accounts[vm.domid]
        self.ibmon.start()
        self._proc = self.env.process(self._run(), name="resex-controller")

    def pause(self) -> None:
        """Simulate a controller outage: freeze all management state.

        Caps and charge rates stay at their last-actuated values and
        Reso accounts are not replenished until :meth:`resume`.
        """
        self.paused = True
        tel = self.env.telemetry
        if tel.enabled:
            tel.event(
                "resex", "outage", self.env.now, lane="controller",
                policy=self.policy.name,
            )

    def resume(self) -> None:
        """Restart after an outage.

        The sensor backlog accumulated during the outage (IBMon
        completions, agent latency reports, XenStat CPU time) drains on
        the first interval back, so interference is re-detected within
        one detector window of recovery.
        """
        self.paused = False
        tel = self.env.telemetry
        if tel.enabled:
            tel.event(
                "resex", "restart", self.env.now, lane="controller",
                intervals_missed=self.intervals_skipped,
            )

    def _run(self):
        dom0 = self.node.hypervisor.dom0
        p = self.reso_params
        interval_index = 0
        start = self.env.now
        while True:
            # Phase-locked: the k-th interval fires at start + k*interval
            # regardless of how long the management work itself takes.
            next_tick = start + (interval_index + 1) * p.interval_ns
            yield self.env.timeout(max(next_tick - self.env.now, 0))
            if self.paused:
                # Controller outage: the interval (and any epoch
                # boundary inside it) passes without management work.
                interval_index += 1
                self.intervals_skipped += 1
                continue
            tick_start = self.env.now
            yield dom0.vcpu.compute(self.INTERVAL_CPU_NS * len(self.vms))
            interval_index += 1
            self._read_sensors()
            self.policy.on_interval(self)
            self._record_probes()
            self.intervals_run += 1
            tel = self.env.telemetry
            if tel.enabled:
                tel.span(
                    "resex",
                    "interval",
                    tick_start,
                    self.env.now,
                    lane="controller",
                    interval=interval_index,
                    policy=self.policy.name,
                )
            if interval_index % p.intervals_per_epoch == 0:
                for vm in self.vms:
                    assert vm.account is not None
                    balance_before = vm.account.balance
                    vm.account.replenish()
                    if tel.enabled:
                        tel.event(
                            "resex",
                            "replenish",
                            self.env.now,
                            lane=f"dom{vm.domid}",
                            domid=vm.domid,
                            balance_before=balance_before,
                            balance_after=vm.account.balance,
                        )
                self.policy.on_epoch(self)
                self.epochs_run += 1

    def _read_sensors(self) -> None:
        for vm in self.vms:
            vm.last_mtus = self.ibmon.get_mtus(vm.domid)
            vm.mtus_window.append(vm.last_mtus)
            vm.last_cpu_pct = self.node.xenstat.cpu_percent_since_last(vm.domid)
            if vm.agent is not None and vm.detector is not None:
                vm.detector.add_samples(vm.agent.drain())

    def _record_probes(self) -> None:
        for vm in self.vms:
            tag = f"dom{vm.domid}"
            self.probes.record(f"{tag}.cap", self.get_cap(vm))
            if vm.account is not None:
                self.probes.record(f"{tag}.resos", vm.account.balance)
            self.probes.record(f"{tag}.rate", vm.charge_rate)
            if vm.detector is not None:
                self.probes.record(f"{tag}.intf_pct", vm.detector.last_pct)

    # -- policy-facing helpers ----------------------------------------------------
    def get_mtus(self, vm: MonitoredVM) -> int:
        """MTUsSent in the last interval (Algorithm 1/2: GetMTUs)."""
        return vm.last_mtus

    def get_cpu_percent(self, vm: MonitoredVM) -> float:
        """CPU percent in the last interval (GetCPUPercent)."""
        return vm.last_cpu_pct

    def get_io_intf(self, vm: MonitoredVM) -> float:
        """Interference percentage for this VM (GetIOIntf)."""
        if vm.detector is None:
            return 0.0
        return vm.detector.interference_pct()

    #: A VM only qualifies as "the interferer" if it sent at least this
    #: multiple of the victim's own MTUs over the window.  This encodes
    #: the paper's Fig. 8 property — VMs doing the same amount of I/O
    #: are not penalized — and prevents two victims from blaming (and
    #: throttling) each other in a death spiral.
    INTERFERER_MARGIN = 1.25

    def get_io_intf_vm(self, victim: MonitoredVM) -> Optional[MonitoredVM]:
        """Identify the interfering VM (GetIOIntfVMId): the other
        managed VM with the most MTUs sent over the recent window,
        provided it is a meaningfully heavier sender than the victim
        and is not itself a suffering victim.

        The second condition matters with several latency-sensitive VMs
        under bursty load: a VM currently violating its own SLA is a
        casualty of the congestion, not its cause, and pricing it would
        let two victims throttle each other into a death spiral.
        """
        threshold = max(victim.windowed_mtus() * self.INTERFERER_MARGIN, 1.0)
        candidates = [
            vm
            for vm in self.vms
            if vm is not victim
            and vm.windowed_mtus() >= threshold
            and not (vm.detector is not None and vm.detector.last_pct > 0)
        ]
        if not candidates:
            return None
        return max(candidates, key=lambda vm: (vm.windowed_mtus(), -vm.domid))

    def get_io_share(
        self, victim: MonitoredVM, interferer: MonitoredVM
    ) -> float:
        """IOShare = interferer's MTUs / all monitored VMs' MTUs (§VI-C),
        over the attribution window."""
        total = sum(vm.windowed_mtus() for vm in self.vms)
        if total <= 0:
            return 0.0
        return interferer.windowed_mtus() / total

    def set_cap(self, vm: MonitoredVM, cap_percent: int) -> None:
        """SetVMCap: actuate through the hypervisor."""
        cap = int(round(cap_percent))
        cap = max(1, min(100, cap))
        tel = self.env.telemetry
        if tel.enabled and cap != self.get_cap(vm):
            tel.event(
                "resex",
                "pricing_decision",
                self.env.now,
                lane=f"dom{vm.domid}",
                domid=vm.domid,
                cap_pct=cap,
                charge_rate=vm.charge_rate,
                balance=vm.account.balance if vm.account else None,
                policy=self.policy.name,
            )
        self.node.xenstat.set_cap(vm.domid, cap)

    def get_cap(self, vm: MonitoredVM) -> int:
        return self.node.xenstat.get_cap(vm.domid)

    @property
    def epoch_fraction_remaining(self) -> float:
        """Fraction of the current epoch still ahead."""
        p = self.reso_params
        into = self.env.now % p.epoch_ns
        return 1.0 - into / p.epoch_ns

    def __repr__(self) -> str:
        return (
            f"<ResExController {self.policy.name} vms={len(self.vms)} "
            f"intervals={self.intervals_run}>"
        )
