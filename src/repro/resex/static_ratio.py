"""StaticRatio: the manual buffer-ratio rule as a policy (ablation).

Figures 3-4 establish empirically that setting the interferer's cap to
``100 / buffer_ratio`` equalizes interference.  This policy applies
that rule automatically using IBMon's buffer-size inference: every VM
whose inferred message size exceeds the reference size gets capped at
``100 x reference / inferred``.  It is the static, feedback-free
strawman against which the adaptive IOShares is worth comparing —
ResEx's design space (§V-B) made executable.
"""

from __future__ import annotations

from typing import TYPE_CHECKING

from repro.errors import PricingError
from repro.resex.policy import PricingPolicy, register_policy
from repro.units import KiB

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.resex.controller import ResExController


@register_policy
class StaticRatio(PricingPolicy):
    """Cap each VM by the ratio of its buffer size to the reference."""

    name = "static-ratio"

    def __init__(self, reference_bytes: int = 64 * KiB, cap_floor: int = 2) -> None:
        if reference_bytes < 1:
            raise PricingError("reference_bytes must be >= 1")
        if not 1 <= cap_floor <= 100:
            raise PricingError("cap_floor must be in [1, 100]")
        self.reference_bytes = reference_bytes
        self.cap_floor = cap_floor

    def on_interval(self, controller: "ResExController") -> None:
        for vm in controller.vms:
            # Keep sensors draining and accounts charged at base rate.
            mtus = controller.get_mtus(vm)
            cpu_pct = controller.get_cpu_percent(vm)
            assert vm.account is not None
            p = controller.reso_params
            vm.account.deduct(
                mtus * p.io_resos_per_mtu + cpu_pct * p.cpu_resos_per_percent
            )
            stats_size = self._inferred_size(controller, vm)
            if stats_size is None or stats_size <= self.reference_bytes:
                continue
            ratio = stats_size / self.reference_bytes
            cap = max(round(100.0 / ratio), self.cap_floor)
            controller.set_cap(vm, cap)

    def _inferred_size(self, controller: "ResExController", vm) -> "int | None":
        # IBMon's drain resets counters, so size inference is cached on
        # the VM state by peeking at the monitor's sticky estimate.
        monitored = controller.ibmon._vms.get(vm.domid)
        if monitored is None:
            return None
        sizes = [
            mcq.inferred_bytes
            for mcq in monitored.cqs
            if mcq.classification == "send" and mcq.inferred_bytes
        ]
        return max(sizes) if sizes else None
