"""ResEx: congestion-pricing resource management (the paper's core)."""

from repro.resex.controller import MonitoredVM, ResExController
from repro.resex.federation import (
    ClusterFederation,
    Follower,
    PriceAgent,
    PriceCoordinator,
    RackFollower,
    ResExFederation,
)
from repro.resex.freemarket import FreeMarket
from repro.resex.hwshares import HwShares
from repro.resex.interference import InterferenceDetector, LatencySLA
from repro.resex.ioshares import IOShares
from repro.resex.policy import (
    NoOpPolicy,
    PricingPolicy,
    policy_by_name,
    register_policy,
    registered_policies,
)
from repro.resex.resos import ResoAccount, ResoParams, provision_accounts
from repro.resex.static_ratio import StaticRatio

__all__ = [
    "ClusterFederation",
    "Follower",
    "FreeMarket",
    "HwShares",
    "IOShares",
    "RackFollower",
    "ResExFederation",
    "InterferenceDetector",
    "LatencySLA",
    "MonitoredVM",
    "NoOpPolicy",
    "PriceAgent",
    "PriceCoordinator",
    "PricingPolicy",
    "ResExController",
    "ResoAccount",
    "ResoParams",
    "StaticRatio",
    "policy_by_name",
    "provision_accounts",
    "register_policy",
    "registered_policies",
]
