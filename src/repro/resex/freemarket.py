"""FreeMarket: fixed prices, maximum resource utilization (Algorithm 1).

Every VM pays the same rate for what it uses; a VM with Resos left may
always buy.  When a VM's balance falls below the low-water fraction
while a meaningful part of the epoch remains, its CPU allocation is
reduced; the epoch replenish restores it.  This scheme is
work-conserving — it never looks at latency, so it bounds aggregate
usage without eliminating congestion (§VII-D).

The paper notes "there are multiple ways in order to reduce the CPU
when the VM runs out of Resos but those are beyond the scope of this
paper" (§VI-B).  This implementation makes that choice pluggable via
``depletion_mode``:

* ``"gradual"`` — the paper's rated capping: walk the cap down by
  ``cap_decrement`` points per interval (Fig. 6).
* ``"hard"`` — drop straight to the floor on first violation (the
  "abruptly stop" strawman the paper avoids).
* ``"proportional"`` — cap proportional to the remaining balance
  fraction relative to the low-water mark (smooth analog control).
"""

from __future__ import annotations

from typing import TYPE_CHECKING

from repro.errors import PricingError
from repro.resex.policy import PricingPolicy, register_policy

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.resex.controller import MonitoredVM, ResExController

DEPLETION_MODES = ("gradual", "hard", "proportional")


@register_policy
class FreeMarket(PricingPolicy):
    """The maximize-resource-utilization pricing scheme."""

    name = "freemarket"

    def __init__(
        self,
        low_water_fraction: float = 0.10,
        min_epoch_fraction: float = 0.10,
        cap_decrement: int = 10,
        cap_floor: int = 10,
        depletion_mode: str = "gradual",
    ) -> None:
        if not 0 < low_water_fraction < 1:
            raise PricingError("low_water_fraction must be in (0, 1)")
        if not 0 <= min_epoch_fraction < 1:
            raise PricingError("min_epoch_fraction must be in [0, 1)")
        if cap_decrement < 1:
            raise PricingError("cap_decrement must be >= 1")
        if not 1 <= cap_floor <= 100:
            raise PricingError("cap_floor must be in [1, 100]")
        if depletion_mode not in DEPLETION_MODES:
            raise PricingError(
                f"depletion_mode must be one of {DEPLETION_MODES}, "
                f"got {depletion_mode!r}"
            )
        self.low_water_fraction = low_water_fraction
        self.min_epoch_fraction = min_epoch_fraction
        self.cap_decrement = cap_decrement
        self.cap_floor = cap_floor
        self.depletion_mode = depletion_mode

    # Algorithm 1 body.
    def on_interval(self, controller: "ResExController") -> None:
        p = controller.reso_params
        for vm in controller.vms:
            ib_mtus = controller.get_mtus(vm)
            cpu_pct = controller.get_cpu_percent(vm)
            ib_resos = ib_mtus * p.io_resos_per_mtu
            cpu_resos = cpu_pct * p.cpu_resos_per_percent
            cap = self._get_cpu_cap(controller, vm)
            assert vm.account is not None
            vm.account.deduct(ib_resos + cpu_resos)
            controller.set_cap(vm, cap)

    def _get_cpu_cap(self, controller: "ResExController", vm: "MonitoredVM") -> int:
        """GetCPUCap: reduce the cap while the balance is low and the
        epoch is young enough for throttling to matter."""
        assert vm.account is not None
        cap = controller.get_cap(vm)
        depleted = (
            vm.account.fraction_remaining < self.low_water_fraction
            and controller.epoch_fraction_remaining > self.min_epoch_fraction
        )
        if not depleted:
            return cap
        if self.depletion_mode == "gradual":
            return max(cap - self.cap_decrement, self.cap_floor)
        if self.depletion_mode == "hard":
            return self.cap_floor
        # proportional: 100% at the low-water mark, floor at zero balance.
        fraction = vm.account.fraction_remaining / self.low_water_fraction
        return max(round(100 * fraction), self.cap_floor)

    def on_epoch(self, controller: "ResExController") -> None:
        """Replenished accounts buy back full speed."""
        for vm in controller.vms:
            controller.set_cap(vm, 100)
