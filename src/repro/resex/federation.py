"""Federated ResEx: coordinating controllers across hosts.

The paper's experiments run ResEx on the server host only, but an
interfering application has two halves: its server VM (big responses,
server-host egress) and its client VM (big requests, server-host
*ingress*) — the latter on a machine the server-side controller cannot
touch.  The authors' companion work (ACT [9]) coordinates managers
across machines; this module implements that deployment:

* :class:`Follower` — a pricing policy that charges and actuates from
  externally-imposed charge rates (no local interference detection).
* :class:`ResExFederation` — a relay that periodically copies the
  congestion price of each *primary* (detected interferer) VM to its
  *linked* VM under another controller, modelling the cross-host
  control message with a small propagation delay.

With the interferer priced on both hosts, its inbound request stream
throttles along with its responses, removing the residual ingress
interference a single-sided deployment leaves behind.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, List, Tuple

from repro.errors import PricingError
from repro.resex.ioshares import IOShares
from repro.resex.policy import register_policy
from repro.units import US

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.resex.controller import ResExController


@register_policy
class Follower(IOShares):
    """Applies congestion prices imposed by a federation, detecting
    nothing locally.  Charging, depletion capping and the congestion
    cap (100 / rate) are identical to IOShares."""

    name = "follower"

    def on_interval(self, controller: "ResExController") -> None:
        for vm in controller.vms:
            self._charge_and_actuate(controller, vm)


class ResExFederation:
    """Relays charge rates between controllers on different hosts."""

    def __init__(
        self,
        env,
        sync_interval_ns: int = 1_000_000,
        propagation_ns: int = 50 * US,
    ) -> None:
        if sync_interval_ns <= 0:
            raise PricingError("sync interval must be positive")
        self.env = env
        self.sync_interval_ns = sync_interval_ns
        self.propagation_ns = propagation_ns
        self._links: List[Tuple] = []
        self.syncs = 0
        self.syncs_lost = 0
        #: Fault-injection hook (:mod:`repro.faults`): while set, sync
        #: rounds fire but their control messages are lost — followers
        #: keep applying the last rate that arrived.
        self.paused = False
        self._proc = None

    def link(
        self,
        primary: Tuple["ResExController", int],
        follower: Tuple["ResExController", int],
    ) -> None:
        """Propagate the charge rate of ``primary``'s domain to
        ``follower``'s domain every sync interval."""
        p_ctl, p_domid = primary
        f_ctl, f_domid = follower
        if p_ctl is f_ctl:
            raise PricingError("federation links join distinct controllers")
        # Validate both ends exist now rather than at first sync.
        p_ctl.vm_by_domid(p_domid)
        f_ctl.vm_by_domid(f_domid)
        self._links.append((p_ctl, p_domid, f_ctl, f_domid))

    def start(self) -> None:
        if not self._links:
            raise PricingError("no federation links configured")
        if self._proc is None:
            self._proc = self.env.process(self._run(), name="resex-federation")

    def _run(self):
        while True:
            yield self.env.timeout(self.sync_interval_ns)
            if self.paused:
                # Federation link down: this round's message is lost.
                self.syncs_lost += 1
                continue
            # One cross-host control message per sync round.
            yield self.env.timeout(self.propagation_ns)
            for p_ctl, p_domid, f_ctl, f_domid in self._links:
                rate = p_ctl.vm_by_domid(p_domid).charge_rate
                f_ctl.vm_by_domid(f_domid).charge_rate = rate
            self.syncs += 1

    def __repr__(self) -> str:
        return f"<ResExFederation links={len(self._links)} syncs={self.syncs}>"
