"""Federated ResEx: coordinating controllers across hosts.

The paper's experiments run ResEx on the server host only, but an
interfering application has two halves: its server VM (big responses,
server-host egress) and its client VM (big requests, server-host
*ingress*) — the latter on a machine the server-side controller cannot
touch.  The authors' companion work (ACT [9]) coordinates managers
across machines; this module implements that deployment:

* :class:`Follower` — a pricing policy that charges and actuates from
  externally-imposed charge rates (no local interference detection).
* :class:`ResExFederation` — a relay that periodically copies the
  congestion price of each *primary* (detected interferer) VM to its
  *linked* VM under another controller, modelling the cross-host
  control message with a small propagation delay.

With the interferer priced on both hosts, its inbound request stream
throttles along with its responses, removing the residual ingress
interference a single-sided deployment leaves behind.

At cluster scale the same idea becomes the core abstraction rather
than a two-host afterthought:

* :class:`RackFollower` — a Follower variant whose imposed price is
  the controller-wide :attr:`~repro.resex.controller.ResExController.
  cluster_price` a federation maintains, instead of a per-VM relay.
* :class:`ClusterFederation` — one ResEx controller per rack, with
  congestion prices gossiped across racks **over the simulated
  fabric**: each sync round the rack heads send their local price to
  the first-registered rack (the coordinator), which reduces them to
  the cluster price and broadcasts it back.  Every control message is
  a real fabric transfer along the topology's static route, so price
  propagation contends for (and is delayed by) the very links it is
  trying to govern.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Callable, Dict, List, Optional, Tuple

from repro.errors import PricingError
from repro.hw.fabric import FluidFabric
from repro.hw.host import path_between
from repro.resex.ioshares import IOShares
from repro.resex.policy import register_policy
from repro.sim.events import AllOf
from repro.units import US

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.resex.controller import ResExController


@register_policy
class Follower(IOShares):
    """Applies congestion prices imposed by a federation, detecting
    nothing locally.  Charging, depletion capping and the congestion
    cap (100 / rate) are identical to IOShares."""

    name = "follower"

    def on_interval(self, controller: "ResExController") -> None:
        for vm in controller.vms:
            self._charge_and_actuate(controller, vm)


class ResExFederation:
    """Relays charge rates between controllers on different hosts."""

    def __init__(
        self,
        env,
        sync_interval_ns: int = 1_000_000,
        propagation_ns: int = 50 * US,
    ) -> None:
        if sync_interval_ns <= 0:
            raise PricingError("sync interval must be positive")
        self.env = env
        self.sync_interval_ns = sync_interval_ns
        self.propagation_ns = propagation_ns
        self._links: List[Tuple] = []
        self.syncs = 0
        self.syncs_lost = 0
        #: Fault-injection hook (:mod:`repro.faults`): while set, sync
        #: rounds fire but their control messages are lost — followers
        #: keep applying the last rate that arrived.
        self.paused = False
        self._proc = None

    def link(
        self,
        primary: Tuple["ResExController", int],
        follower: Tuple["ResExController", int],
    ) -> None:
        """Propagate the charge rate of ``primary``'s domain to
        ``follower``'s domain every sync interval."""
        p_ctl, p_domid = primary
        f_ctl, f_domid = follower
        if p_ctl is f_ctl:
            raise PricingError("federation links join distinct controllers")
        # Validate both ends exist now rather than at first sync.
        p_ctl.vm_by_domid(p_domid)
        f_ctl.vm_by_domid(f_domid)
        for q_ctl, q_domid, g_ctl, g_domid in self._links:
            # A follower VM with two feeding links would be rewritten
            # by both every sync round — last writer wins on
            # ``charge_rate``, silently, in link-registration order.
            # Reject the duplicate instead of racing.
            if g_ctl is f_ctl and g_domid == f_domid:
                raise PricingError(
                    f"domain {f_domid} is already the follower of a "
                    "federation link; duplicate links would race on its "
                    "charge rate"
                )
        self._links.append((p_ctl, p_domid, f_ctl, f_domid))

    def start(self) -> None:
        if not self._links:
            raise PricingError("no federation links configured")
        if self._proc is None:
            self._proc = self.env.process(self._run(), name="resex-federation")

    def _run(self):
        while True:
            yield self.env.timeout(self.sync_interval_ns)
            if self.paused:
                # Federation link down: this round's message is lost.
                self.syncs_lost += 1
                continue
            # One cross-host control message per sync round.
            yield self.env.timeout(self.propagation_ns)
            for p_ctl, p_domid, f_ctl, f_domid in self._links:
                rate = p_ctl.vm_by_domid(p_domid).charge_rate
                f_ctl.vm_by_domid(f_domid).charge_rate = rate
            self.syncs += 1

    def __repr__(self) -> str:
        return f"<ResExFederation links={len(self._links)} syncs={self.syncs}>"


@register_policy
class RackFollower(IOShares):
    """Applies the cluster-wide congestion price a
    :class:`ClusterFederation` maintains to every managed VM, then
    charges and actuates like IOShares.  No local interference
    detection: racks that only host the remote halves of cross-rack
    flows run this, so a price discovered in one rack throttles the
    flows' other ends everywhere."""

    name = "rack-follower"

    def on_interval(self, controller: "ResExController") -> None:
        price = controller.cluster_price
        for vm in controller.vms:
            vm.charge_rate = price
            self._charge_and_actuate(controller, vm)


class ClusterFederation:
    """Per-rack ResEx controllers with fabric-borne price gossip.

    One controller per rack registers under its rack id.  Every sync
    round the non-coordinator rack heads each send one control message
    (a real fabric transfer along the topology's static route) to the
    coordinator — the first-registered rack — carrying their local
    price (the rack's highest VM charge rate, sampled at send time).
    The coordinator reduces them with ``max`` and broadcasts the
    cluster price back the same way; only when the last broadcast
    message lands is :attr:`ResExController.cluster_price` updated on
    every rack, so price propagation pays the latency and contention of
    the very fabric it governs.

    ``paused`` is the :mod:`repro.faults` hook: while set, sync rounds
    fire but their messages are lost and every rack keeps its stale
    price — the same semantics as :class:`ResExFederation`.
    """

    def __init__(
        self,
        env,
        fabric: FluidFabric,
        sync_interval_ns: int = 1_000_000,
        payload_bytes: int = 256,
    ) -> None:
        if sync_interval_ns <= 0:
            raise PricingError("sync interval must be positive")
        if payload_bytes < 0:
            raise PricingError("payload size must be >= 0")
        self.env = env
        self.fabric = fabric
        self.sync_interval_ns = sync_interval_ns
        self.payload_bytes = payload_bytes
        self._racks: List[Tuple[int, "ResExController"]] = []
        #: The current cluster-wide congestion price (1.0 = calm).
        self.cluster_price = 1.0
        self.syncs = 0
        self.syncs_lost = 0
        self.paused = False
        self._proc = None

    def register(self, rack_id: int, controller: "ResExController") -> None:
        """Register ``controller`` as rack ``rack_id``'s manager.

        The first registration becomes the coordinator rack.
        """
        if self._proc is not None:
            raise PricingError(
                "cannot register racks after the federation started"
            )
        if any(rid == rack_id for rid, _ in self._racks):
            raise PricingError(f"rack {rack_id} is already registered")
        if any(ctl is controller for _, ctl in self._racks):
            raise PricingError(
                "controller is already registered under another rack"
            )
        self._racks.append((rack_id, controller))

    @property
    def racks(self) -> Tuple[Tuple[int, "ResExController"], ...]:
        return tuple(self._racks)

    def start(self) -> None:
        if len(self._racks) < 2:
            raise PricingError("a cluster federation needs at least two racks")
        if self._proc is None:
            self._proc = self.env.process(
                self._run(), name="resex-cluster-federation"
            )

    def _messages(
        self, pairs: List[Tuple[object, object]], label: str
    ) -> AllOf:
        """One control transfer per (src_host, dst_host) pair."""
        done = [
            self.fabric.submit(
                path_between(src, dst), self.payload_bytes, f"fed.{label}.{i}"
            ).done
            for i, (src, dst) in enumerate(pairs)
        ]
        return AllOf(self.env, done)

    def _run(self):
        coord = self._racks[0][1]
        coord_host = coord.node.host
        while True:
            yield self.env.timeout(self.sync_interval_ns)
            if self.paused:
                # Federation down: this round's messages are lost and
                # every rack keeps applying its stale price.
                self.syncs_lost += 1
                continue
            # Gather: prices are sampled at send time — what the wire
            # carries — in registration order (deterministic max).
            prices = [coord.local_price()]
            prices += [ctl.local_price() for _, ctl in self._racks[1:]]
            yield self._messages(
                [(ctl.node.host, coord_host) for _, ctl in self._racks[1:]],
                "gather",
            )
            price = max(prices)
            # Broadcast the reduced price back to every rack head.
            yield self._messages(
                [(coord_host, ctl.node.host) for _, ctl in self._racks[1:]],
                "cast",
            )
            self.cluster_price = price
            for _, ctl in self._racks:
                ctl.cluster_price = price
            self.syncs += 1

    def __repr__(self) -> str:
        return (
            f"<ClusterFederation racks={len(self._racks)} "
            f"price={self.cluster_price:.2f} syncs={self.syncs}>"
        )


#: The wire signature of the message-passing federation: a transport
#: callback ``send(src_rack, dst_rack, verb, round_no, price)`` owned
#: by the deployment (the cluster world routes it over per-rack fabric
#: transfers plus the cross-shard channel).
FederationSend = Callable[[int, int, str, int, float], None]

#: Sentinel marking a gossip round whose messages were lost (federation
#: paused by a fault campaign) — the round completes with no effect.
_LOST: Dict[int, float] = {}


class PriceCoordinator:
    """Rack 0's end of the message-passing price federation.

    :class:`ClusterFederation` mutates every rack's controller directly
    from one process — fine for a single environment, impossible once
    racks are partitioned across shard workers
    (:mod:`repro.sim.shard`).  This pair of endpoints carries the same
    protocol over *messages only*: each sync round every
    :class:`PriceAgent` sends its rack's local price to the
    coordinator (``gather``), which reduces the round with ``max`` and
    sends the cluster price back (``cast``).  How a message travels is
    the deployment's business — the ``send`` callback is handed in —
    so the identical objects run serially or sharded.

    Rounds are numbered by sync ticks (every endpoint ticks on the
    same interval from t=0, so numbering agrees cluster-wide) and are
    completed **strictly in order**: gathers for round *k+1* may arrive
    before round *k* is full (transfer latencies vary with contention),
    but the reduction and cast for *k+1* never overtake *k*'s.
    """

    #: Control-message size on the wire (what deployments should charge
    #: the fabric for).
    PAYLOAD_BYTES = 256

    def __init__(
        self,
        env,
        controller: "ResExController",
        n_racks: int,
        sync_interval_ns: int,
        send: FederationSend,
    ) -> None:
        if sync_interval_ns <= 0:
            raise PricingError("sync interval must be positive")
        if n_racks < 2:
            raise PricingError("a cluster federation needs at least two racks")
        self.env = env
        self.controller = controller
        self.n_racks = n_racks
        self.sync_interval_ns = sync_interval_ns
        self.send = send
        #: The current cluster-wide congestion price (1.0 = calm).
        self.cluster_price = 1.0
        self.syncs = 0
        self.syncs_lost = 0
        #: Fault-injection hook: while set, new rounds open lost —
        #: their gathers are dropped and no cast goes out.
        self.paused = False
        self._pending: Dict[int, Dict[int, float]] = {}
        self._round = 0
        self._completed = 0
        self._proc = None

    def start(self) -> None:
        if self._proc is None:
            self._proc = self.env.process(
                self._run(), name="resex-price-coordinator"
            )

    def _run(self):
        while True:
            yield self.env.timeout(self.sync_interval_ns)
            self._round += 1
            if self.paused:
                self.syncs_lost += 1
                self._pending[self._round] = _LOST
            else:
                # The coordinator's own price is sampled when the round
                # opens — the instant every agent samples theirs.
                self._pending[self._round] = {
                    0: self.controller.local_price()
                }
            self._try_complete()

    def on_gather(self, round_no: int, src_rack: int, price: float) -> None:
        """An agent's local price arrived for ``round_no``."""
        bucket = self._pending.get(round_no)
        if bucket is None or bucket is _LOST:
            # Round already closed or lost while paused: message is
            # stale, drop it (same loss semantics as ClusterFederation).
            return
        bucket[src_rack] = price
        self._try_complete()

    def _try_complete(self) -> None:
        while True:
            nxt = self._completed + 1
            bucket = self._pending.get(nxt)
            if bucket is None:
                return
            if bucket is _LOST:
                del self._pending[nxt]
                self._completed = nxt
                continue
            if len(bucket) < self.n_racks:
                return
            # Reduce in rack order (max is order-free; the iteration
            # order is pinned anyway for determinism-by-construction).
            price = max(bucket[r] for r in sorted(bucket))
            del self._pending[nxt]
            self._completed = nxt
            self.cluster_price = price
            self.controller.cluster_price = price
            self.syncs += 1
            for rack in range(1, self.n_racks):
                self.send(0, rack, "cast", nxt, price)

    def __repr__(self) -> str:
        return (
            f"<PriceCoordinator racks={self.n_racks} "
            f"price={self.cluster_price:.2f} syncs={self.syncs}>"
        )


class PriceAgent:
    """A non-coordinator rack's end of the price federation.

    Every sync tick it sends its rack's local price to the coordinator;
    every ``cast`` it applies the reduced cluster price to its
    controller.  Casts are idempotent per round and never applied out
    of order (a late-arriving older cast is dropped)."""

    def __init__(
        self,
        env,
        rack_id: int,
        controller: "ResExController",
        sync_interval_ns: int,
        send: FederationSend,
    ) -> None:
        if sync_interval_ns <= 0:
            raise PricingError("sync interval must be positive")
        if rack_id <= 0:
            raise PricingError("rack 0 is the coordinator; agents take >= 1")
        self.env = env
        self.rack_id = rack_id
        self.controller = controller
        self.sync_interval_ns = sync_interval_ns
        self.send = send
        self.cluster_price = 1.0
        #: Rounds whose cast this agent has applied.
        self.syncs = 0
        self._round = 0
        self._applied = 0
        self._proc = None

    def start(self) -> None:
        if self._proc is None:
            self._proc = self.env.process(
                self._run(), name=f"resex-price-agent-{self.rack_id}"
            )

    def _run(self):
        while True:
            yield self.env.timeout(self.sync_interval_ns)
            self._round += 1
            self.send(
                self.rack_id, 0, "gather", self._round,
                self.controller.local_price(),
            )

    def on_cast(self, round_no: int, price: float) -> None:
        if round_no <= self._applied:
            return
        self._applied = round_no
        self.cluster_price = price
        self.controller.cluster_price = price
        self.syncs += 1

    def __repr__(self) -> str:
        return (
            f"<PriceAgent rack={self.rack_id} "
            f"price={self.cluster_price:.2f} syncs={self.syncs}>"
        )
